// dfw_serve: a long-running classification daemon over a hot-swappable
// compiled policy (src/serve).
//
// The data plane classifies packet batches against the currently
// published classifier version, sharding each batch's lookups across the
// --threads executor workers. The operator channel is stdin: a line-
// oriented command loop that can push replacement policies while batches
// keep flowing — each swap compiles the new policy under the governance
// flags (--max-nodes / --deadline-ms), atomically publishes it, and
// retires the predecessor through the epoch limbo (docs/serve.md).
//
// commands (stdin, one per line):
//   swap FILE       compile FILE and publish it; prints the new version
//   batch FILE      classify FILE's packets; prints version + decisions
//   stats           print the metrics snapshot JSON (serve.* counters)
//   reclaim         drain the retire limbo now
//   quit            flush --trace output and exit
//
// Packet files are one packet per line: <field-count> decimal values in
// schema order (five-tuple: sip dip sport dport proto), '#' comments.
//
// Exit codes follow the shared dfw tool contract (cli_common.hpp):
// 0 when every command succeeded, 1 when any swap or batch was rejected
// (governance or admission), 2 on usage/parse errors.

#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "fw/parser.hpp"
#include "serve/serve.hpp"

namespace {

constexpr const char* kUsage =
    "usage: dfw_serve [options] <initial-policy-file>\n"
    "\n"
    "input:\n"
    "  --format=native            policy syntax (default native)\n"
    "  <initial-policy-file>      path, or - for stdin (not useful with\n"
    "                             the stdin command loop)\n"
    "\n"
    "serving:\n"
    "  --max-inflight=N  refuse batches past N in flight (default 0 =\n"
    "                    unbounded); refusals exit-code 1\n"
    "  --backend=NAME    compiled layout for every version: flat_slab\n"
    "                    (default), prefix_trie, or bit_parallel; all are\n"
    "                    byte-identical in output (docs/classifier.md)\n"
    "\n"
    "The governance flags bound each swap's compile: --max-nodes the\n"
    "diagram, --deadline-ms the wall clock. A breached swap is rejected\n"
    "and the previous version keeps serving.\n"
    "\n";

constexpr std::string_view kTool = "dfw_serve";

std::optional<dfw::Policy> load_policy(const std::string& path,
                                       std::ostream& err) {
  const auto text = dfw::cli::slurp(path, err, kTool);
  if (!text.has_value()) {
    return std::nullopt;
  }
  try {
    return dfw::parse_policy(dfw::five_tuple_schema(),
                             dfw::default_decisions(), *text);
  } catch (const dfw::ParseError& e) {
    err << "dfw_serve: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

std::optional<std::vector<dfw::Packet>> load_packets(
    const std::string& path, std::size_t field_count, std::ostream& err) {
  const auto text = dfw::cli::slurp(path, err, kTool);
  if (!text.has_value()) {
    return std::nullopt;
  }
  std::vector<dfw::Packet> packets;
  std::istringstream lines(*text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    dfw::Packet packet;
    dfw::Value value = 0;
    while (fields >> value) {
      packet.push_back(value);
    }
    if (packet.empty()) {
      continue;  // blank or comment-only line
    }
    if (!fields.eof() || packet.size() != field_count) {
      err << "dfw_serve: " << path << ":" << line_no
          << ": expected " << field_count << " decimal field values\n";
      return std::nullopt;
    }
    packets.push_back(std::move(packet));
  }
  return packets;
}

}  // namespace

int main(int argc, char** argv) {
  namespace cli = dfw::cli;
  cli::CommonOptions common;
  std::size_t max_inflight = 0;
  dfw::ClassifierBackendKind backend = dfw::ClassifierBackendKind::kFlatSlab;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage << cli::kCommonUsage;
      return cli::kExitClean;
    }
    switch (cli::consume_common_flag(common, arg, std::cerr, kTool)) {
      case cli::FlagResult::kConsumed:
        continue;
      case cli::FlagResult::kError:
        return cli::kExitUsage;
      case cli::FlagResult::kNotMine:
        break;
    }
    if (const auto v = cli::flag_value(arg, "--max-inflight=")) {
      const auto n = cli::parse_size(*v);
      if (!n.has_value()) {
        std::cerr << "dfw_serve: bad --max-inflight value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      max_inflight = *n;
    } else if (const auto b = cli::flag_value(arg, "--backend=")) {
      const auto kind = dfw::parse_backend_kind(*b);
      if (!kind.has_value()) {
        std::cerr << "dfw_serve: unknown backend '" << *b
                  << "' (flat_slab, prefix_trie, bit_parallel)\n";
        return cli::kExitUsage;
      }
      backend = *kind;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "dfw_serve: unknown option '" << arg << "'\n"
                << kUsage << cli::kCommonUsage;
      return cli::kExitUsage;
    } else {
      common.positional.push_back(arg);
    }
  }
  if (common.format.empty()) {
    common.format = "native";
  }
  if (common.format != "native") {
    std::cerr << "dfw_serve: unknown format '" << common.format << "'\n";
    return cli::kExitUsage;
  }
  if (common.positional.size() != 1) {
    std::cerr << kUsage << cli::kCommonUsage;
    return cli::kExitUsage;
  }

  auto initial = load_policy(common.positional[0], std::cerr);
  if (!initial.has_value()) {
    return cli::kExitUsage;
  }
  const std::size_t field_count = initial->schema().field_count();

  // The swap governance comes from the shared flags; the data-plane
  // executor and the obs sinks come from the shared runtime.
  cli::CommonRuntime runtime(common);
  dfw::serve::ServeOptions options;
  const dfw::RunOptions run = runtime.run_options();
  options.run.executor = run.executor;
  options.run.obs = run.obs;
  options.max_inflight_batches = max_inflight;
  options.swap_budgets.max_nodes = common.max_nodes;
  options.swap_deadline_ms = common.deadline_ms;
  options.backend = backend;

  std::optional<dfw::serve::ServeCore> core;
  try {
    core.emplace(std::move(*initial), options);
  } catch (const std::exception& e) {
    std::cerr << "dfw_serve: " << common.positional[0] << ": " << e.what()
              << "\n";
    return cli::kExitUsage;
  }
  dfw::serve::ServeCore::Shard shard = core->shard();
  std::cout << "serving version=" << core->current_sequence()
            << " backend=" << dfw::to_string(backend) << "\n";

  bool any_rejected = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty() || command[0] == '#') {
      continue;
    }
    std::string path;
    if (command == "quit") {
      break;
    } else if (command == "stats") {
      std::cout << runtime.metrics().snapshot().to_json() << "\n";
    } else if (command == "reclaim") {
      std::cout << "reclaimed " << core->reclaim() << " version(s)\n";
    } else if (command == "swap" && (words >> path)) {
      auto next = load_policy(path, std::cerr);
      if (!next.has_value()) {
        return cli::kExitUsage;
      }
      const auto result = core->swap(std::move(*next));
      if (result.ok()) {
        std::cout << "swap ok version=" << result.value() << "\n";
      } else {
        std::cout << "swap rejected: " << result.error().what() << "\n";
        any_rejected = true;
      }
    } else if (command == "batch" && (words >> path)) {
      const auto packets = load_packets(path, field_count, std::cerr);
      if (!packets.has_value()) {
        return cli::kExitUsage;
      }
      const dfw::serve::BatchResult result = shard.classify(*packets);
      if (result.status != dfw::ErrorCode::kOk) {
        std::cout << "batch rejected: " << dfw::to_string(result.status)
                  << "\n";
        any_rejected = true;
        continue;
      }
      std::vector<std::size_t> counts(dfw::default_decisions().size(), 0);
      for (const dfw::Decision d : result.decisions) {
        ++counts[d];
      }
      std::cout << "batch ok version=" << result.version
                << " packets=" << result.decisions.size();
      for (std::size_t d = 0; d < counts.size(); ++d) {
        if (counts[d] != 0) {
          std::cout << " " << dfw::default_decisions().name(
                           static_cast<dfw::Decision>(d))
                    << "=" << counts[d];
        }
      }
      std::cout << "\n";
    } else {
      std::cerr << "dfw_serve: bad command '" << line << "'\n";
      return cli::kExitUsage;
    }
  }

  const int trace_status = runtime.finish(std::cerr, kTool);
  if (trace_status != cli::kExitClean) {
    return trace_status;
  }
  return any_rejected ? cli::kExitFindings : cli::kExitClean;
}
