// dfw_serve: a long-running classification daemon over a hot-swappable
// compiled policy. The whole driver lives in src/serve/cli.cpp (library
// form, so tests exercise flags, snapshot boot, the command loop, and
// exit codes in-process); this translation unit only adapts main().
//
// See serve/cli.hpp for the command set and docs/serve.md for the
// serving model: hot swaps with retry/backoff and backend degradation,
// last-good fallback, crash-consistent snapshots, health reporting.

#include <iostream>
#include <string>
#include <vector>

#include "serve/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return dfw::serve::run_serve_cli(args, std::cin, std::cout, std::cerr);
}
