#include "bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"

namespace dfw::bench {
namespace {

constexpr const char* kUsage =
    "usage: dfw_bench_diff [options] <baseline.json> <current.json>\n"
    "       dfw_bench_diff --validate-prom=FILE [--validate-jsonl=FILE]\n"
    "\n"
    "Diffs two dfw-bench-obs-v1 documents record by record and exits 1\n"
    "when any compared value's current/baseline ratio escapes the\n"
    "threshold window — the CI perf-regression gate (docs/benchmarks).\n"
    "\n"
    "matching and thresholds:\n"
    "  --max-ratio=R     fail a record when current/baseline > R\n"
    "                    (default 2.0; measured on wall_ns)\n"
    "  --min-ratio=R     fail when current/baseline < R (default 0 = off;\n"
    "                    catches a benchmark that silently stopped\n"
    "                    measuring anything)\n"
    "  --key-params=a,b  params forming record identity together with the\n"
    "                    record name (default: every param; measured\n"
    "                    params like lookups_per_sec must be excluded or\n"
    "                    no record ever matches itself)\n"
    "  --select=PREFIX   only compare records whose name starts with\n"
    "                    PREFIX (e.g. compile. when the quick run changes\n"
    "                    the classify workload)\n"
    "\n"
    "quantile comparison (in addition to wall_ns):\n"
    "  --hist=NAME       also compare a quantile of histogram NAME from\n"
    "                    each record's metrics snapshot\n"
    "  --quantile=Q      which quantile, in (0,1] (default 0.99)\n"
    "\n"
    "output:\n"
    "  --report=FILE     write a dfw-bench-diff-v1 JSON report to FILE\n"
    "\n"
    "validator mode (no baseline/current needed):\n"
    "  --validate-prom=FILE   structurally validate a Prometheus text\n"
    "                    exposition file (obs/export.hpp)\n"
    "  --validate-jsonl=FILE  structurally validate a dfw-metrics-v1\n"
    "                    JSONL file\n"
    "\n"
    "exit codes: 0 within thresholds / valid, 1 breaches or validation\n"
    "failures, 2 usage or unreadable/malformed input\n";

constexpr std::string_view kTool = "dfw_bench_diff";

/// One parsed dfw-bench-obs-v1 record.
struct BenchRecord {
  std::string name;
  std::vector<std::pair<std::string, std::uint64_t>> params;
  std::uint64_t wall_ns = 0;
  const json::Value* metrics = nullptr;  ///< borrowed from the document
};

struct BenchDoc {
  std::string bench;
  json::Value root;  ///< owns everything `records` points into
  std::vector<BenchRecord> records;
};

std::optional<BenchDoc> load_bench(const std::string& path,
                                   std::ostream& err) {
  const auto text = cli::slurp(path, err, kTool);
  if (!text.has_value()) {
    return std::nullopt;
  }
  std::string parse_error;
  auto root = json::parse(*text, &parse_error);
  if (!root.has_value()) {
    err << kTool << ": " << path << ": " << parse_error << "\n";
    return std::nullopt;
  }
  BenchDoc doc;
  doc.root = std::move(*root);
  const json::Value* schema = doc.root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "dfw-bench-obs-v1") {
    err << kTool << ": " << path << ": not a dfw-bench-obs-v1 document\n";
    return std::nullopt;
  }
  if (const json::Value* bench = doc.root.find("bench");
      bench != nullptr && bench->is_string()) {
    doc.bench = bench->string;
  }
  const json::Value* records = doc.root.find("records");
  if (records == nullptr || !records->is_array()) {
    err << kTool << ": " << path << ": missing records array\n";
    return std::nullopt;
  }
  for (std::size_t i = 0; i < records->array.size(); ++i) {
    const json::Value& r = records->array[i];
    BenchRecord record;
    const json::Value* name = r.find("name");
    const json::Value* wall = r.find("wall_ns");
    if (name == nullptr || !name->is_string() || wall == nullptr ||
        !wall->is_number()) {
      err << kTool << ": " << path << ": record " << i
          << ": needs a string name and numeric wall_ns\n";
      return std::nullopt;
    }
    record.name = name->string;
    record.wall_ns = static_cast<std::uint64_t>(wall->number);
    if (const json::Value* params = r.find("params");
        params != nullptr && params->is_object()) {
      for (const auto& [key, value] : params->object) {
        if (!value.is_number()) {
          err << kTool << ": " << path << ": record " << i << ": param '"
              << key << "' is not a number\n";
          return std::nullopt;
        }
        record.params.emplace_back(key,
                                   static_cast<std::uint64_t>(value.number));
      }
    }
    record.metrics = r.find("metrics");
    doc.records.push_back(std::move(record));
  }
  return doc;
}

/// Stable identity of one record: name plus the selected params, in
/// sorted-by-key order so emission order never splits a match.
std::string record_key(const BenchRecord& record,
                       const std::vector<std::string>& key_params) {
  std::vector<std::pair<std::string, std::uint64_t>> selected;
  for (const auto& [key, value] : record.params) {
    if (key_params.empty() ||
        std::find(key_params.begin(), key_params.end(), key) !=
            key_params.end()) {
      selected.emplace_back(key, value);
    }
  }
  std::sort(selected.begin(), selected.end());
  std::string out = record.name;
  for (const auto& [key, value] : selected) {
    out += ' ';
    out += key;
    out += '=';
    out += std::to_string(value);
  }
  return out;
}

/// The p-quantile of histogram `hist_name` inside a record's metrics
/// object; nullopt when the record has no such histogram.
std::optional<double> record_quantile(const BenchRecord& record,
                                      const std::string& hist_name, double q,
                                      std::ostream& err,
                                      const std::string& path) {
  if (record.metrics == nullptr) {
    return std::nullopt;
  }
  const json::Value* histograms = record.metrics->find("histograms");
  if (histograms == nullptr) {
    return std::nullopt;
  }
  const json::Value* hist = histograms->find(hist_name);
  if (hist == nullptr) {
    return std::nullopt;
  }
  std::string error;
  const auto snapshot = histogram_from_json(*hist, &error);
  if (!snapshot.has_value()) {
    err << kTool << ": " << path << ": record '" << record.name
        << "': histogram '" << hist_name << "': " << error << "\n";
    return std::nullopt;
  }
  return snapshot->quantile(q);
}

/// One compared value's outcome.
struct DiffResult {
  std::string key;
  std::string metric;  ///< "wall_ns" or "p<q> <hist>"
  double baseline = 0;
  double current = 0;
  double ratio = 1.0;
  bool ok = true;
};

DiffResult compare(const std::string& key, std::string metric,
                   double baseline, double current, double max_ratio,
                   double min_ratio) {
  DiffResult result;
  result.key = key;
  result.metric = std::move(metric);
  result.baseline = baseline;
  result.current = current;
  if (baseline <= 0.0) {
    // A zero baseline has no meaningful ratio: identical zeros pass,
    // anything appearing from nowhere is flagged.
    result.ratio = current <= 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
  } else {
    result.ratio = current / baseline;
  }
  result.ok = result.ratio <= max_ratio &&
              (min_ratio <= 0.0 || result.ratio >= min_ratio);
  return result;
}

std::string json_escaped(const std::string& s) {
  std::string out;
  json::escape(out, s);
  return out;
}

void write_report(std::ostream& file, const std::string& baseline_path,
                  const std::string& current_path, double max_ratio,
                  double min_ratio, const std::vector<DiffResult>& results,
                  const std::vector<std::string>& unmatched) {
  std::size_t breaches = 0;
  for (const DiffResult& r : results) {
    breaches += r.ok ? 0 : 1;
  }
  file << "{\n  \"schema\": \"dfw-bench-diff-v1\",\n  \"baseline\": \""
       << json_escaped(baseline_path) << "\",\n  \"current\": \""
       << json_escaped(current_path) << "\",\n  \"max_ratio\": " << max_ratio
       << ",\n  \"min_ratio\": " << min_ratio
       << ",\n  \"compared\": " << results.size()
       << ",\n  \"breaches\": " << breaches << ",\n  \"results\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const DiffResult& r = results[i];
    file << (i == 0 ? "\n" : ",\n") << "    {\"key\": \""
         << json_escaped(r.key) << "\", \"metric\": \""
         << json_escaped(r.metric) << "\", \"baseline\": " << r.baseline
         << ", \"current\": " << r.current << ", \"ratio\": " << r.ratio
         << ", \"ok\": " << (r.ok ? "true" : "false") << "}";
  }
  file << "\n  ],\n  \"unmatched\": [";
  for (std::size_t i = 0; i < unmatched.size(); ++i) {
    file << (i == 0 ? "\n" : ",\n") << "    \""
         << json_escaped(unmatched[i]) << "\"";
  }
  file << "\n  ]\n}\n";
}

std::optional<double> parse_double(const std::string& s) {
  try {
    std::size_t end = 0;
    const double value = std::stod(s, &end);
    if (end != s.size() || !std::isfinite(value)) {
      return std::nullopt;
    }
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

int run_bench_diff_cli(const std::vector<std::string>& args,
                       std::ostream& out, std::ostream& err) {
  double max_ratio = 2.0;
  double min_ratio = 0.0;
  double quantile = 0.99;
  std::vector<std::string> key_params;
  bool key_params_set = false;
  std::string select;
  std::string hist_name;
  std::string report_path;
  std::string validate_prom;
  std::string validate_jsonl;
  std::vector<std::string> positional;

  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return cli::kExitClean;
    }
    if (const auto v = cli::flag_value(arg, "--max-ratio=")) {
      const auto r = parse_double(*v);
      if (!r.has_value() || *r <= 0.0) {
        err << kTool << ": bad --max-ratio value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      max_ratio = *r;
    } else if (const auto v = cli::flag_value(arg, "--min-ratio=")) {
      const auto r = parse_double(*v);
      if (!r.has_value() || *r < 0.0) {
        err << kTool << ": bad --min-ratio value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      min_ratio = *r;
    } else if (const auto v = cli::flag_value(arg, "--quantile=")) {
      const auto q = parse_double(*v);
      if (!q.has_value() || *q <= 0.0 || *q > 1.0) {
        err << kTool << ": bad --quantile value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      quantile = *q;
    } else if (const auto v = cli::flag_value(arg, "--key-params=")) {
      key_params = cli::split_csv(*v);
      key_params_set = true;
    } else if (const auto v = cli::flag_value(arg, "--select=")) {
      select = *v;
    } else if (const auto v = cli::flag_value(arg, "--hist=")) {
      hist_name = *v;
    } else if (const auto v = cli::flag_value(arg, "--report=")) {
      report_path = *v;
    } else if (const auto v = cli::flag_value(arg, "--validate-prom=")) {
      validate_prom = *v;
    } else if (const auto v = cli::flag_value(arg, "--validate-jsonl=")) {
      validate_jsonl = *v;
    } else if (arg.rfind("--", 0) == 0) {
      err << kTool << ": unknown option '" << arg << "'\n" << kUsage;
      return cli::kExitUsage;
    } else {
      positional.push_back(arg);
    }
  }

  bool findings = false;

  // Validator mode runs first; it composes with a diff when both are
  // requested (one CI step, one artifact check).
  if (!validate_prom.empty()) {
    const auto text = cli::slurp(validate_prom, err, kTool);
    if (!text.has_value()) {
      return cli::kExitUsage;
    }
    const PromValidation v = validate_prometheus(*text);
    if (v.ok) {
      out << "prom ok: " << validate_prom << " (" << v.families
          << " families, " << v.samples << " samples)\n";
    } else {
      out << "prom INVALID: " << validate_prom << ": " << v.error << "\n";
      findings = true;
    }
  }
  if (!validate_jsonl.empty()) {
    const auto text = cli::slurp(validate_jsonl, err, kTool);
    if (!text.has_value()) {
      return cli::kExitUsage;
    }
    const JsonlValidation v = validate_metrics_jsonl(*text);
    if (v.ok) {
      out << "jsonl ok: " << validate_jsonl << " (" << v.records
          << " records)\n";
    } else {
      out << "jsonl INVALID: " << validate_jsonl << ": " << v.error << "\n";
      findings = true;
    }
  }

  if (positional.empty() &&
      (!validate_prom.empty() || !validate_jsonl.empty())) {
    return findings ? cli::kExitFindings : cli::kExitClean;
  }
  if (positional.size() != 2) {
    err << kUsage;
    return cli::kExitUsage;
  }

  const auto baseline = load_bench(positional[0], err);
  const auto current = load_bench(positional[1], err);
  if (!baseline.has_value() || !current.has_value()) {
    return cli::kExitUsage;
  }

  // Index the current run by identity key; walk the baseline in order.
  std::map<std::string, const BenchRecord*> current_by_key;
  for (const BenchRecord& record : current->records) {
    if (!select.empty() && record.name.rfind(select, 0) != 0) {
      continue;
    }
    current_by_key[record_key(record, key_params)] = &record;
  }

  std::vector<DiffResult> results;
  std::vector<std::string> unmatched;
  for (const BenchRecord& record : baseline->records) {
    if (!select.empty() && record.name.rfind(select, 0) != 0) {
      continue;
    }
    const std::string key = record_key(record, key_params);
    const auto it = current_by_key.find(key);
    if (it == current_by_key.end()) {
      unmatched.push_back(key);
      continue;
    }
    const BenchRecord& other = *it->second;
    results.push_back(compare(key, "wall_ns",
                              static_cast<double>(record.wall_ns),
                              static_cast<double>(other.wall_ns), max_ratio,
                              min_ratio));
    if (!hist_name.empty()) {
      const auto base_q =
          record_quantile(record, hist_name, quantile, err, positional[0]);
      const auto cur_q =
          record_quantile(other, hist_name, quantile, err, positional[1]);
      if (base_q.has_value() && cur_q.has_value()) {
        std::ostringstream metric;
        metric << "p" << quantile * 100 << " " << hist_name;
        results.push_back(compare(key, metric.str(), *base_q, *cur_q,
                                  max_ratio, min_ratio));
      }
    }
    current_by_key.erase(it);
  }
  for (const auto& [key, record] : current_by_key) {
    unmatched.push_back(key);
  }

  if (results.empty()) {
    // Nothing compared is a broken invocation (wrong --select or
    // --key-params), not a clean pass — CI must not green-light it.
    err << kTool << ": no records matched between " << positional[0]
        << " and " << positional[1] << "\n";
    return cli::kExitUsage;
  }

  for (const DiffResult& r : results) {
    if (!r.ok) {
      findings = true;
    }
    out << (r.ok ? "ok    " : "BREACH") << " " << r.key << " [" << r.metric
        << "] " << r.baseline << " -> " << r.current << " (x" << r.ratio
        << ")\n";
  }
  for (const std::string& key : unmatched) {
    out << "unmatched " << key << "\n";
  }
  out << results.size() << " compared, "
      << (findings ? "thresholds breached" : "all within thresholds")
      << " (max x" << max_ratio;
  if (min_ratio > 0.0) {
    out << ", min x" << min_ratio;
  }
  out << ")\n";
  if (key_params_set && key_params.empty()) {
    out << "note: --key-params= empty — records matched by name only\n";
  }

  if (!report_path.empty()) {
    std::ofstream file(report_path, std::ios::binary);
    if (!file) {
      err << kTool << ": cannot write " << report_path << "\n";
      return cli::kExitUsage;
    }
    write_report(file, positional[0], positional[1], max_ratio, min_ratio,
                 results, unmatched);
  }

  return findings ? cli::kExitFindings : cli::kExitClean;
}

}  // namespace dfw::bench
