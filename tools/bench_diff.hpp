// The perf-regression gate: diff two dfw-bench-obs-v1 documents.
//
// Benchmarks produce numbers; numbers only gate anything when something
// compares them run over run. run_bench_diff_cli matches records between a
// committed baseline and a fresh run (by name plus a configurable subset
// of identity params — some params are *measured*, e.g. lookups_per_sec,
// and must not participate in matching), computes the current/baseline
// ratio of each record's wall_ns (and optionally a histogram quantile from
// the embedded metrics snapshot), and fails when any ratio escapes the
// [min, max] window. Exit codes follow the shared contract
// (tools/cli_common.hpp): 0 within thresholds, 1 breaches found, 2 the
// invocation or an input file is at fault.
//
// The same binary fronts the obs/export.hpp validators
// (--validate-prom/--validate-jsonl) so CI can vet scraped exporter output
// without a second tool.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dfw::bench {

/// The dfw_bench_diff driver. Pure function of its arguments and the
/// filesystem; writes the human report to `out`, errors to `err`.
int run_bench_diff_cli(const std::vector<std::string>& args,
                       std::ostream& out, std::ostream& err);

}  // namespace dfw::bench
