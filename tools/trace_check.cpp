// Standalone trace validator for CI and local workflows: reads a Chrome
// trace_event JSON file (as written by Tracer::chrome_trace_json or the
// --trace modes of the benches/examples), runs the library's structural
// validator (well-formed "X" events, per-thread span nesting), and checks
// that every span name passed via --require appears at least once.
//
//   trace_check FILE [--require NAME]...
//
// Exit status: 0 when the trace validates and all required names are
// present, 1 otherwise — so a CI step can gate on it directly.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.hpp"

int main(int argc, char** argv) {
  const char* path = nullptr;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require") == 0 && i + 1 < argc) {
      required.emplace_back(argv[++i]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s FILE [--require NAME]...\n", argv[0]);
      return 1;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: %s FILE [--require NAME]...\n", argv[0]);
    return 1;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "trace_check: cannot read %s\n", path);
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();

  const dfw::TraceValidation v = dfw::validate_chrome_trace(json);
  if (!v.ok) {
    std::fprintf(stderr, "trace_check: %s: %s\n", path, v.error.c_str());
    return 1;
  }
  bool ok = true;
  for (const std::string& name : required) {
    const auto it = v.name_counts.find(name);
    if (it == v.name_counts.end()) {
      std::fprintf(stderr, "trace_check: %s: no \"%s\" span\n", path,
                   name.c_str());
      ok = false;
    }
  }
  if (ok) {
    std::printf("%s: ok — %zu events across %zu threads\n", path, v.events,
                v.threads);
  }
  return ok ? 0 : 1;
}
