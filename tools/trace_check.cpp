// Standalone trace validator for CI and local workflows: reads a Chrome
// trace_event JSON file (as written by Tracer::chrome_trace_json or the
// --trace modes of the tools/benches/examples), runs the library's
// structural validator (well-formed "X" events, per-thread span nesting),
// and checks that every span name passed via --require appears at least
// once.
//
//   trace_check [options] FILE
//
// Flags and exit codes follow the shared dfw tool contract
// (cli_common.hpp): 0 when the trace validates and all required names are
// present, 1 when validation or a --require check fails, 2 on usage or
// input errors. The shared resource flags (--threads/--max-nodes/
// --deadline-ms/--trace) are accepted for interface uniformity; trace
// validation itself is a single serial pass, so they have no effect here.

#include <iostream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "obs/trace.hpp"

namespace {

constexpr const char* kUsage =
    "usage: trace_check [options] <trace-file>\n"
    "\n"
    "input:\n"
    "  --format=chrome   trace syntax (default chrome: trace_event JSON)\n"
    "  <trace-file>      path, or - for stdin\n"
    "\n"
    "checks:\n"
    "  --require=NAME    fail unless a span named NAME appears (repeat\n"
    "                    for several names; --require NAME also accepted)\n"
    "\n";

constexpr std::string_view kTool = "trace_check";

}  // namespace

int main(int argc, char** argv) {
  namespace cli = dfw::cli;
  cli::CommonOptions common;
  std::vector<std::string> required;
  bool expect_require_value = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (expect_require_value) {
      required.push_back(arg);
      expect_require_value = false;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::cout << kUsage << cli::kCommonUsage;
      return cli::kExitClean;
    }
    switch (cli::consume_common_flag(common, arg, std::cerr, kTool)) {
      case cli::FlagResult::kConsumed:
        continue;
      case cli::FlagResult::kError:
        return cli::kExitUsage;
      case cli::FlagResult::kNotMine:
        break;
    }
    if (const auto v = cli::flag_value(arg, "--require=")) {
      required.push_back(*v);
    } else if (arg == "--require") {
      expect_require_value = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "trace_check: unknown option '" << arg << "'\n"
                << kUsage << cli::kCommonUsage;
      return cli::kExitUsage;
    } else {
      common.positional.push_back(arg);
    }
  }
  if (expect_require_value || common.positional.size() != 1) {
    std::cerr << kUsage << cli::kCommonUsage;
    return cli::kExitUsage;
  }
  if (common.format.empty()) {
    common.format = "chrome";
  }
  if (common.format != "chrome") {
    std::cerr << "trace_check: unknown format '" << common.format << "'\n";
    return cli::kExitUsage;
  }

  const std::string& path = common.positional[0];
  const auto json = cli::slurp(path, std::cerr, kTool);
  if (!json.has_value()) {
    return cli::kExitUsage;
  }

  const dfw::TraceValidation v = dfw::validate_chrome_trace(*json);
  if (!v.ok) {
    std::cerr << "trace_check: " << path << ": " << v.error << "\n";
    return cli::kExitFindings;
  }
  bool ok = true;
  for (const std::string& name : required) {
    if (v.name_counts.find(name) == v.name_counts.end()) {
      std::cerr << "trace_check: " << path << ": no \"" << name
                << "\" span\n";
      ok = false;
    }
  }
  if (ok) {
    std::cout << path << ": ok — " << v.events << " events across "
              << v.threads << " threads\n";
  }
  return ok ? cli::kExitClean : cli::kExitFindings;
}
