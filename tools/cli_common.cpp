#include "cli_common.hpp"

#include <climits>
#include <fstream>
#include <iostream>
#include <sstream>

namespace dfw::cli {

const char* kCommonUsage =
    "shared flags (all dfw tools):\n"
    "  --threads=N       worker threads (default 0 = serial)\n"
    "  --max-nodes=N     abort governed FDD work past N nodes\n"
    "  --deadline-ms=N   abort governed work after N milliseconds\n"
    "  --trace=FILE      write a Chrome trace of the run to FILE\n"
    "  --hist-subbits=N  histogram resolution: N linear sub-bucket bits\n"
    "                    per octave, 0..6 (default 0 = power-of-two)\n"
    "  --format=NAME     input syntax (see the tool's input section)\n"
    "\n"
    "exit codes: 0 clean, 1 findings/partial result, 2 usage/input "
    "error\n";

std::optional<std::size_t> parse_size(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  std::size_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9' || value > (SIZE_MAX - 9) / 10) {
      return std::nullopt;
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

std::vector<std::string> split_csv(std::string_view list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string_view item = list.substr(
        start, comma == std::string_view::npos ? std::string_view::npos
                                               : comma - start);
    if (!item.empty()) {
      out.emplace_back(item);
    }
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

std::optional<std::string> flag_value(const std::string& arg,
                                      std::string_view prefix) {
  if (arg.rfind(prefix, 0) != 0) {
    return std::nullopt;
  }
  return arg.substr(prefix.size());
}

std::optional<std::string> slurp(const std::string& path, std::ostream& err,
                                 std::string_view tool) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << tool << ": cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

FlagResult consume_common_flag(CommonOptions& opts, const std::string& arg,
                               std::ostream& err, std::string_view tool) {
  if (const auto v = flag_value(arg, "--threads=")) {
    const auto n = parse_size(*v);
    if (!n.has_value() || *n > 256) {
      err << tool << ": bad --threads value '" << *v << "'\n";
      return FlagResult::kError;
    }
    opts.threads = *n;
    return FlagResult::kConsumed;
  }
  if (const auto v = flag_value(arg, "--max-nodes=")) {
    const auto n = parse_size(*v);
    if (!n.has_value()) {
      err << tool << ": bad --max-nodes value '" << *v << "'\n";
      return FlagResult::kError;
    }
    opts.max_nodes = *n;
    return FlagResult::kConsumed;
  }
  if (const auto v = flag_value(arg, "--deadline-ms=")) {
    const auto n = parse_size(*v);
    if (!n.has_value() || *n > static_cast<std::size_t>(INT64_MAX)) {
      err << tool << ": bad --deadline-ms value '" << *v << "'\n";
      return FlagResult::kError;
    }
    opts.deadline_ms = static_cast<std::int64_t>(*n);
    return FlagResult::kConsumed;
  }
  if (const auto v = flag_value(arg, "--hist-subbits=")) {
    const auto n = parse_size(*v);
    if (!n.has_value() || *n > Histogram::kMaxSubbits) {
      err << tool << ": bad --hist-subbits value '" << *v << "' (0..6)\n";
      return FlagResult::kError;
    }
    opts.hist_subbits = static_cast<std::uint32_t>(*n);
    return FlagResult::kConsumed;
  }
  if (const auto v = flag_value(arg, "--trace=")) {
    if (v->empty()) {
      err << tool << ": bad --trace value (empty path)\n";
      return FlagResult::kError;
    }
    opts.trace_path = *v;
    return FlagResult::kConsumed;
  }
  if (const auto v = flag_value(arg, "--format=")) {
    opts.format = *v;  // the tool validates its own format names
    return FlagResult::kConsumed;
  }
  return FlagResult::kNotMine;
}

CommonRuntime::CommonRuntime(const CommonOptions& opts)
    : metrics_(opts.hist_subbits), trace_path_(opts.trace_path) {
  if (opts.threads != 0) {
    executor_.emplace(opts.threads);
  }
  if (opts.max_nodes != 0 || opts.deadline_ms != 0) {
    RunContext::Config config;
    config.budgets.max_nodes = opts.max_nodes;
    if (opts.deadline_ms != 0) {
      config.deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts.deadline_ms);
    }
    context_.emplace(std::move(config));
  }
  if (!trace_path_.empty()) {
    tracer_.emplace();
  }
}

RunOptions CommonRuntime::run_options() {
  RunOptions run;
  run.executor = executor_ ? &*executor_ : nullptr;
  run.context = context_ ? &*context_ : nullptr;
  run.obs.tracer = tracer_ ? &*tracer_ : nullptr;
  run.obs.metrics = &metrics_;
  return run;
}

int CommonRuntime::finish(std::ostream& err, std::string_view tool) {
  if (trace_path_.empty()) {
    return kExitClean;
  }
  std::ofstream out(trace_path_, std::ios::binary);
  if (!out) {
    err << tool << ": cannot write " << trace_path_ << "\n";
    return kExitUsage;
  }
  out << tracer_->chrome_trace_json();
  return kExitClean;
}

}  // namespace dfw::cli
