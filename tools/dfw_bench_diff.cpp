// dfw_bench_diff: the CI perf-regression gate. Diffs two
// dfw-bench-obs-v1 documents (committed baseline vs fresh run) and exits
// 1 when any record's ratio escapes the threshold window; also fronts
// the obs/export.hpp structural validators for scraped exporter output.
// The driver lives in bench_diff.cpp (library form, so tests exercise
// matching, thresholds, and exit codes in-process); this translation
// unit only adapts main().

#include <iostream>
#include <string>
#include <vector>

#include "bench_diff.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return dfw::bench::run_bench_diff_cli(args, std::cout, std::cerr);
}
