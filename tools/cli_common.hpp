// The shared command-line layer for the dfw tools (dfw_lint, trace_check,
// dfw_serve).
//
// Every tool accepts the same resource and observability flags, parsed by
// the same code with the same validation and error wording:
//
//   --threads=N       worker threads for parallelizable work (0 = serial)
//   --max-nodes=N     governance node budget (0 = unlimited)
//   --deadline-ms=N   governance wall-clock deadline (0 = none)
//   --trace=FILE      write a Chrome trace of the run to FILE
//   --hist-subbits=N  log-linear histogram resolution, 0..6 (0 = legacy
//                     power-of-two buckets; see docs/observability.md)
//   --format=NAME     input syntax (tool validates its own set of names)
//
// and every tool exits through the same three-way contract:
//
//   0  clean — the tool ran and found nothing to report
//   1  findings — diagnostics, a partial (governed) result, or a failed
//      validation: the input is at fault
//   2  usage or input error — bad flags, unreadable files, parse errors:
//      the invocation is at fault
//
// CommonRuntime turns parsed flags into the owned runtime objects
// (Executor, RunContext, Tracer, MetricsRegistry) and hands out a wired
// dfw::RunOptions — one materialisation path instead of three hand-rolled
// ones.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "rt/executor.hpp"
#include "rt/govern.hpp"
#include "rt/run_options.hpp"

namespace dfw::cli {

/// The shared exit-code contract (see the header comment).
inline constexpr int kExitClean = 0;
inline constexpr int kExitFindings = 1;
inline constexpr int kExitUsage = 2;

/// Usage text for the shared flags, for inclusion in each tool's --help.
extern const char* kCommonUsage;

/// Values of the shared flags after parsing.
struct CommonOptions {
  std::size_t threads = 0;
  std::size_t max_nodes = 0;
  std::int64_t deadline_ms = 0;
  std::uint32_t hist_subbits = 0;
  std::string trace_path;
  std::string format;  ///< empty until --format= is seen
  std::vector<std::string> positional;
};

/// Strict unsigned decimal; nullopt on empty/overflow/non-digit.
std::optional<std::size_t> parse_size(std::string_view s);

/// Splits "a,b,c" dropping empty items.
std::vector<std::string> split_csv(std::string_view list);

/// The value after `prefix` when `arg` starts with it; nullopt otherwise.
std::optional<std::string> flag_value(const std::string& arg,
                                      std::string_view prefix);

/// Whole file (or stdin for "-") as a string; on failure prints
/// "<tool>: cannot open <path>" to err and returns nullopt.
std::optional<std::string> slurp(const std::string& path, std::ostream& err,
                                 std::string_view tool);

/// One step of the shared parser. kConsumed: `arg` was a shared flag and
/// was applied to `opts`. kError: it was a shared flag with a bad value
/// (message already printed; exit kExitUsage). kNotMine: not a shared
/// flag — the tool parses it itself. Positional arguments are kNotMine.
enum class FlagResult { kConsumed, kError, kNotMine };
FlagResult consume_common_flag(CommonOptions& opts, const std::string& arg,
                               std::ostream& err, std::string_view tool);

/// Owns the runtime the shared flags ask for and exposes it as a wired
/// RunOptions. Construct after parsing; call run_options() as many times
/// as needed; call finish() once before exiting to flush the trace file
/// (returns kExitClean, or kExitUsage when the file cannot be written).
class CommonRuntime {
 public:
  explicit CommonRuntime(const CommonOptions& opts);

  CommonRuntime(const CommonRuntime&) = delete;
  CommonRuntime& operator=(const CommonRuntime&) = delete;

  /// Borrowed pointers into this runtime; valid until destruction.
  RunOptions run_options();

  MetricsRegistry& metrics() { return metrics_; }
  Tracer* tracer() { return tracer_ ? &*tracer_ : nullptr; }

  int finish(std::ostream& err, std::string_view tool);

 private:
  std::optional<Executor> executor_;
  std::optional<RunContext> context_;
  std::optional<Tracer> tracer_;
  MetricsRegistry metrics_;
  std::string trace_path_;
};

}  // namespace dfw::cli
