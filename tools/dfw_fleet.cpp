// dfw_fleet: the fleet-scale static-analysis CLI — shard a directory or
// manifest of device configs through parse -> simplify -> lint ->
// compare and emit one aggregate report. All logic lives in
// fleet/cli.cpp so tests drive the same code path in-process; see there
// (and docs/fleet.md) for flags and the exit-code contract.

#include <iostream>
#include <string>
#include <vector>

#include "fleet/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return dfw::fleet::run_fleet_cli(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "dfw_fleet: internal error: " << e.what() << "\n";
    return 2;
  }
}
