// dfw_lint: the semantic policy static-analysis CLI. All logic lives in
// lint/cli.cpp so tests drive the same code path in-process; see there
// (and docs/lint.md) for flags and the exit-code contract.

#include <iostream>
#include <string>
#include <vector>

#include "lint/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    return dfw::lint::run_lint_cli(args, std::cout, std::cerr);
  } catch (const std::exception& e) {
    std::cerr << "dfw_lint: internal error: " << e.what() << "\n";
    return 2;
  }
}
