// The dfw_fleet command-line driver, factored as a library function so
// tests exercise the full CLI — manifest/directory input, the generator
// mode, report emission, exit codes — in-process against string streams.
//
// Exit-code contract (the shared cli_common one):
//   0  clean: every device analysed completely with no findings and no
//      divergences
//   1  findings: lint findings, divergences, parse-error devices, or a
//      partial (budget-cut) run — the fleet needs attention
//   2  usage or input error: bad flags, unreadable files, malformed
//      manifest

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dfw::fleet {

/// Runs the CLI. `args` excludes argv[0]. Reports go to `out`,
/// usage/errors to `err`. Returns the process exit code.
int run_fleet_cli(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err);

}  // namespace dfw::fleet
