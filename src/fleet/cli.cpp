#include "fleet/cli.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "cli_common.hpp"
#include "fleet/fleet.hpp"
#include "fw/format.hpp"
#include "synth/synth.hpp"

namespace dfw::fleet {
namespace {

constexpr const char* kUsage =
    "usage: dfw_fleet [options] <fleet-dir | manifest-file>\n"
    "       dfw_fleet --generate=N --out=DIR [generator options]\n"
    "\n"
    "input (a directory is scanned — *.fw native, *.rules iptables,\n"
    "*.acl cisco — anything else is read as a manifest: one\n"
    "'<format> <path> [chain=|acl=|name=]' line per device):\n"
    "  --chain=NAME      iptables chain for scanned configs (default INPUT)\n"
    "  --acl=ID          Cisco ACL id for scanned configs (default 101)\n"
    "\n"
    "analysis:\n"
    "  --no-simplify     skip the semantics-preserving simplify stage\n"
    "  --no-prove        skip the per-device FDD equivalence proofs\n"
    "  --passes=a,b,c    run only these lint passes\n"
    "  --disable=a,b     remove lint passes (default disables the\n"
    "        O(n^2)-semantic 'redundancy' pass; --disable= re-enables it)\n"
    "  --compare=none|pairs|nway   cross-device comparison (default none)\n"
    "  --max-divergences=N         divergence records kept (default 64)\n"
    "\n"
    "output:\n"
    "  --output=text|json|sarif    stdout format (default text)\n"
    "  --report=FILE               also write the JSON report to FILE\n"
    "\n"
    "generator (writes a synthetic fleet, then exits):\n"
    "  --generate=N      number of devices\n"
    "  --out=DIR         output directory (created; must be empty or new)\n"
    "  --seed=S          fleet seed (default 1)\n"
    "  --rules=R         base rules per device (default 60)\n"
    "  --perturb=P       per-site perturbation percent (default 10)\n"
    "\n";

constexpr std::string_view kTool = "dfw_fleet";

struct CliOptions {
  cli::CommonOptions common;
  std::string chain = "INPUT";
  std::string acl = "101";
  bool no_simplify = false;
  bool no_prove = false;
  std::vector<std::string> passes;
  std::vector<std::string> disabled = {"redundancy"};
  std::string compare = "none";
  std::size_t max_divergences = 64;
  std::string output = "text";
  std::string report_path;
  std::size_t generate = 0;
  std::string out_dir;
  std::size_t seed = 1;
  std::size_t rules = 60;
  std::size_t perturb = 10;
};

int run_generator(const CliOptions& opts, std::ostream& out,
                  std::ostream& err) {
  namespace fs = std::filesystem;
  if (opts.out_dir.empty()) {
    err << "dfw_fleet: --generate requires --out=DIR\n";
    return cli::kExitUsage;
  }
  std::error_code ec;
  fs::create_directories(opts.out_dir, ec);
  if (ec) {
    err << "dfw_fleet: cannot create " << opts.out_dir << ": "
        << ec.message() << "\n";
    return cli::kExitUsage;
  }

  FleetSynthConfig config;
  config.sites = opts.generate;
  config.base.num_rules = opts.rules;
  config.perturb_percent = static_cast<double>(opts.perturb);
  config.seed = opts.seed;
  const std::vector<Policy> fleet = make_fleet(config);

  std::string manifest;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "site%04zu.fw", i);
    const fs::path path = fs::path(opts.out_dir) / name;
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      err << "dfw_fleet: cannot write " << path.string() << "\n";
      return cli::kExitUsage;
    }
    file << format_policy(fleet[i], default_decisions());
    manifest += std::string("native ") + name + " name=" + name + "\n";
  }
  const fs::path manifest_path = fs::path(opts.out_dir) / "fleet.manifest";
  std::ofstream file(manifest_path, std::ios::binary);
  if (!file) {
    err << "dfw_fleet: cannot write " << manifest_path.string() << "\n";
    return cli::kExitUsage;
  }
  file << manifest;
  out << "wrote " << fleet.size() << " device(s) + fleet.manifest to "
      << opts.out_dir << "\n";
  return cli::kExitClean;
}

}  // namespace

int run_fleet_cli(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  CliOptions opts;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out << kUsage << cli::kCommonUsage;
      return cli::kExitClean;
    }
    switch (cli::consume_common_flag(opts.common, arg, err, kTool)) {
      case cli::FlagResult::kConsumed:
        continue;
      case cli::FlagResult::kError:
        return cli::kExitUsage;
      case cli::FlagResult::kNotMine:
        break;
    }
    if (arg == "--no-simplify") {
      opts.no_simplify = true;
    } else if (arg == "--no-prove") {
      opts.no_prove = true;
    } else if (const auto v = cli::flag_value(arg, "--chain=")) {
      opts.chain = *v;
    } else if (const auto v = cli::flag_value(arg, "--acl=")) {
      opts.acl = *v;
    } else if (const auto v = cli::flag_value(arg, "--passes=")) {
      opts.passes = cli::split_csv(*v);
    } else if (const auto v = cli::flag_value(arg, "--disable=")) {
      opts.disabled = cli::split_csv(*v);
    } else if (const auto v = cli::flag_value(arg, "--compare=")) {
      opts.compare = *v;
      if (opts.compare != "none" && opts.compare != "pairs" &&
          opts.compare != "nway") {
        err << "dfw_fleet: unknown compare mode '" << opts.compare << "'\n";
        return cli::kExitUsage;
      }
    } else if (const auto v = cli::flag_value(arg, "--max-divergences=")) {
      const auto parsed = cli::parse_size(*v);
      if (!parsed.has_value()) {
        err << "dfw_fleet: bad --max-divergences value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      opts.max_divergences = *parsed;
    } else if (const auto v = cli::flag_value(arg, "--output=")) {
      opts.output = *v;
      if (opts.output != "text" && opts.output != "json" &&
          opts.output != "sarif") {
        err << "dfw_fleet: unknown output '" << opts.output << "'\n";
        return cli::kExitUsage;
      }
    } else if (const auto v = cli::flag_value(arg, "--report=")) {
      opts.report_path = *v;
    } else if (const auto v = cli::flag_value(arg, "--generate=")) {
      const auto parsed = cli::parse_size(*v);
      if (!parsed.has_value() || *parsed == 0) {
        err << "dfw_fleet: bad --generate value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      opts.generate = *parsed;
    } else if (const auto v = cli::flag_value(arg, "--out=")) {
      opts.out_dir = *v;
    } else if (const auto v = cli::flag_value(arg, "--seed=")) {
      const auto parsed = cli::parse_size(*v);
      if (!parsed.has_value()) {
        err << "dfw_fleet: bad --seed value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      opts.seed = *parsed;
    } else if (const auto v = cli::flag_value(arg, "--rules=")) {
      const auto parsed = cli::parse_size(*v);
      if (!parsed.has_value() || *parsed == 0) {
        err << "dfw_fleet: bad --rules value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      opts.rules = *parsed;
    } else if (const auto v = cli::flag_value(arg, "--perturb=")) {
      const auto parsed = cli::parse_size(*v);
      if (!parsed.has_value() || *parsed > 100) {
        err << "dfw_fleet: bad --perturb value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      opts.perturb = *parsed;
    } else if (arg.rfind("--", 0) == 0) {
      err << "dfw_fleet: unknown option '" << arg << "'\n"
          << kUsage << cli::kCommonUsage;
      return cli::kExitUsage;
    } else {
      opts.common.positional.push_back(arg);
    }
  }

  if (opts.generate != 0) {
    if (!opts.common.positional.empty()) {
      err << "dfw_fleet: --generate takes no positional arguments\n";
      return cli::kExitUsage;
    }
    return run_generator(opts, out, err);
  }
  if (opts.common.positional.size() != 1) {
    err << kUsage << cli::kCommonUsage;
    return cli::kExitUsage;
  }

  // Resolve the fleet: a directory is scanned; anything else is read as a
  // manifest whose relative paths resolve against the manifest's parent.
  namespace fs = std::filesystem;
  const std::string& input = opts.common.positional[0];
  std::vector<FleetItem> items;
  std::error_code ec;
  if (fs::is_directory(input, ec)) {
    try {
      items = scan_fleet_dir(input);
    } catch (const fs::filesystem_error& e) {
      err << "dfw_fleet: cannot scan " << input << ": " << e.what() << "\n";
      return cli::kExitUsage;
    }
    for (FleetItem& item : items) {
      item.chain = opts.chain;
      item.acl = opts.acl;
    }
  } else {
    const auto text = cli::slurp(input, err, kTool);
    if (!text.has_value()) {
      return cli::kExitUsage;
    }
    std::string error;
    const auto parsed = parse_fleet_manifest(*text, &error);
    if (!parsed.has_value()) {
      err << "dfw_fleet: " << input << ": " << error << "\n";
      return cli::kExitUsage;
    }
    items = *parsed;
    const fs::path base = fs::path(input).parent_path();
    for (FleetItem& item : items) {
      if (!base.empty() && fs::path(item.path).is_relative()) {
        item.path = (base / item.path).string();
      }
    }
  }
  if (items.empty()) {
    err << "dfw_fleet: " << input << ": no devices found\n";
    return cli::kExitUsage;
  }

  std::vector<FleetSource> sources;
  sources.reserve(items.size());
  for (FleetItem& item : items) {
    const auto text = cli::slurp(item.path, err, kTool);
    if (!text.has_value()) {
      return cli::kExitUsage;
    }
    sources.push_back(FleetSource{std::move(item), *text});
  }

  cli::CommonRuntime runtime(opts.common);
  FleetOptions options;
  options.run = runtime.run_options();
  options.simplify = !opts.no_simplify;
  options.simplify_options.prove = !opts.no_prove;
  options.lint.passes = opts.passes;
  options.lint.disabled = opts.disabled;
  options.compare = opts.compare == "pairs"   ? CompareMode::kPairs
                    : opts.compare == "nway" ? CompareMode::kNway
                                             : CompareMode::kNone;
  options.max_divergences = opts.max_divergences;

  const FleetReport report = run_fleet(sources, options);

  if (opts.output == "json") {
    out << render_fleet_json(report) << "\n";
  } else if (opts.output == "sarif") {
    out << render_fleet_sarif(report) << "\n";
  } else {
    out << render_fleet_text(report);
  }
  if (!opts.report_path.empty()) {
    std::ofstream file(opts.report_path, std::ios::binary);
    if (!file) {
      err << "dfw_fleet: cannot write " << opts.report_path << "\n";
      return cli::kExitUsage;
    }
    file << render_fleet_json(report) << "\n";
  }
  const int trace_status = runtime.finish(err, kTool);
  if (trace_status != cli::kExitClean) {
    return trace_status;
  }
  if (!report.complete || !report.compare_complete) {
    return cli::kExitFindings;
  }
  for (const DeviceReport& dev : report.devices) {
    if (dev.status != DeviceStatus::kOk) {
      return cli::kExitFindings;
    }
  }
  return report.divergences_total == 0 ? cli::kExitClean
                                       : cli::kExitFindings;
}

}  // namespace dfw::fleet
