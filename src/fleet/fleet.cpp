#include "fleet/fleet.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <map>
#include <set>
#include <utility>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "fw/parser.hpp"
#include "obs/json.hpp"
#include "obs/names.hpp"
#include "rt/executor.hpp"

namespace dfw::fleet {
namespace {

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  json::escape(out, s);
  out += '"';
  return out;
}

/// FNV-1a over `s`, rendered as the lint layer's 16-hex-char fingerprint
/// shape — used for the fleet-level SARIF results (divergences, device
/// statuses), which have no lint Diagnostic to carry one.
std::string fnv_fingerprint(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool analysed(const DeviceReport& dev) {
  return dev.status == DeviceStatus::kOk ||
         dev.status == DeviceStatus::kFindings;
}

}  // namespace

const char* to_string(DeviceFormat format) {
  switch (format) {
    case DeviceFormat::kNative:
      return "native";
    case DeviceFormat::kIptables:
      return "iptables";
    case DeviceFormat::kIp6tables:
      return "ip6tables";
    case DeviceFormat::kCisco:
      return "cisco";
  }
  return "unknown";
}

std::optional<DeviceFormat> parse_device_format(std::string_view name) {
  if (name == "native") {
    return DeviceFormat::kNative;
  }
  if (name == "iptables") {
    return DeviceFormat::kIptables;
  }
  if (name == "ip6tables") {
    return DeviceFormat::kIp6tables;
  }
  if (name == "cisco") {
    return DeviceFormat::kCisco;
  }
  return std::nullopt;
}

const char* to_string(DeviceStatus status) {
  switch (status) {
    case DeviceStatus::kOk:
      return "ok";
    case DeviceStatus::kFindings:
      return "findings";
    case DeviceStatus::kParseError:
      return "parse-error";
    case DeviceStatus::kPartial:
      return "partial";
    case DeviceStatus::kSkipped:
      return "skipped";
  }
  return "unknown";
}

std::optional<std::vector<FleetItem>> parse_fleet_manifest(
    std::string_view text, std::string* error) {
  const auto fail = [error](std::size_t line_no, std::string message) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + std::move(message);
    }
    return std::nullopt;
  };

  std::vector<FleetItem> items;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }

    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) {
        ++i;
      }
      std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t') {
        ++i;
      }
      if (i > start) {
        tokens.push_back(line.substr(start, i - start));
      }
    }
    if (tokens.empty() || tokens[0].front() == '#') {
      continue;
    }

    const std::optional<DeviceFormat> format = parse_device_format(tokens[0]);
    if (!format.has_value()) {
      return fail(line_no,
                  "unknown format '" + std::string(tokens[0]) +
                      "' (expected native|iptables|ip6tables|cisco)");
    }
    if (tokens.size() < 2) {
      return fail(line_no, "missing config path");
    }
    FleetItem item;
    item.format = *format;
    item.path = std::string(tokens[1]);
    for (std::size_t t = 2; t < tokens.size(); ++t) {
      const std::string_view token = tokens[t];
      if (token.rfind("chain=", 0) == 0) {
        item.chain = std::string(token.substr(6));
      } else if (token.rfind("acl=", 0) == 0) {
        item.acl = std::string(token.substr(4));
      } else if (token.rfind("name=", 0) == 0) {
        item.name = std::string(token.substr(5));
      } else {
        return fail(line_no, "unknown option '" + std::string(token) +
                                 "' (expected chain=|acl=|name=)");
      }
    }
    if (item.name.empty()) {
      item.name = item.path;
    }
    items.push_back(std::move(item));
  }
  return items;
}

std::vector<FleetItem> scan_fleet_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<FleetItem> items;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string ext = entry.path().extension().string();
    DeviceFormat format;
    if (ext == ".fw") {
      format = DeviceFormat::kNative;
    } else if (ext == ".rules") {
      format = DeviceFormat::kIptables;
    } else if (ext == ".acl") {
      format = DeviceFormat::kCisco;
    } else {
      continue;
    }
    FleetItem item;
    item.format = format;
    item.path = entry.path().string();
    item.name = entry.path().filename().string();
    items.push_back(std::move(item));
  }
  std::sort(items.begin(), items.end(),
            [](const FleetItem& a, const FleetItem& b) {
              return a.path < b.path;
            });
  return items;
}

FleetReport run_fleet(const std::vector<FleetSource>& sources,
                      const FleetOptions& options) {
  const std::size_t n = sources.size();
  RunContext* ctx = options.run.context;
  const ObsOptions obs = options.run.obs;

  FleetReport report;
  report.devices.resize(n);
  // Simplified policies staged per device for the compare stage (slot
  // layout, never touched by two tasks).
  std::vector<std::optional<Policy>> policies(n);
  const lint::LintEngine engine;

  const auto analyse = [&](std::size_t i) {
    DeviceReport& dev = report.devices[i];
    dev.item = sources[i].item;
    if (dev.item.name.empty()) {
      dev.item.name = dev.item.path;
    }
    if (govern::aborted(ctx)) {
      dev.status = DeviceStatus::kSkipped;
      dev.message = std::string("not started: shared context aborted (") +
                    to_string(ctx->abort_code()) + ")";
      return;
    }

    lint::LintInput input;
    std::optional<Policy> policy;
    try {
      const std::string& text = sources[i].text;
      switch (dev.item.format) {
        case DeviceFormat::kIptables:
          policy.emplace(parse_iptables_save(text, dev.item.chain,
                                             &input.adapter_notes));
          break;
        case DeviceFormat::kIp6tables:
          policy.emplace(parse_ip6tables_save(text, dev.item.chain,
                                              &input.adapter_notes));
          break;
        case DeviceFormat::kCisco:
          policy.emplace(
              parse_cisco_acl(text, dev.item.acl, &input.adapter_notes));
          break;
        case DeviceFormat::kNative:
          policy.emplace(
              parse_policy(five_tuple_schema(), default_decisions(), text));
          break;
      }
    } catch (const ParseError& e) {
      dev.status = DeviceStatus::kParseError;
      dev.message = e.what();
      return;
    }

    // Inside one device everything is serial; the fleet's parallelism is
    // the across-device fan-out. The GLOBAL context and sinks thread in.
    RunOptions device_run;
    device_run.context = ctx;
    device_run.obs = obs;

    if (options.simplify) {
      SimplifyOptions simplify_options = options.simplify_options;
      simplify_options.run = device_run;
      SimplifyOutcome outcome = simplify_policy(*policy, simplify_options);
      dev.simplify = outcome.report;
      if (!outcome.report.complete) {
        dev.status = DeviceStatus::kPartial;
        dev.message = outcome.report.message;
        return;
      }
      policy.emplace(std::move(outcome.policy));
    } else {
      dev.simplify.rules_before = policy->size();
      dev.simplify.rules_after = policy->size();
    }

    input.policy = &*policy;
    input.decisions = &default_decisions();
    input.source_name = dev.item.path;
    lint::LintOptions lint_options;
    lint_options.passes = options.lint.passes;
    lint_options.disabled = options.lint.disabled;
    lint_options.run = device_run;
    lint::LintReport lint_report = engine.run(input, lint_options);
    dev.diagnostics = std::move(lint_report.diagnostics);
    if (!lint_report.complete) {
      dev.status = DeviceStatus::kPartial;
      dev.message = lint_report.message;
    } else {
      dev.status = dev.diagnostics.empty() ? DeviceStatus::kOk
                                           : DeviceStatus::kFindings;
    }
    dev.comparable = policy->last_rule_is_catch_all();
    policies[i] = std::move(policy);
  };

  {
    PhaseSpan span(obs, "fleet.devices", "devices",
                   static_cast<std::uint64_t>(n));
    // Deliberately the UNgoverned fan-out: a shared-context abort must not
    // skip devices silently at the pool level — each task checks the
    // context itself and records an explicit kSkipped/kPartial status.
    if (Executor* executor = options.run.executor;
        executor != nullptr && n > 1) {
      executor->parallel_for(n, analyse);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        analyse(i);
      }
    }
  }

  if (govern::aborted(ctx)) {
    report.complete = false;
    report.status = ctx->abort_code();
    report.message = std::string("global budget exhausted (") +
                     to_string(report.status) +
                     "); per-device statuses mark what completed";
  }

  std::set<std::string> fingerprints;
  for (const DeviceReport& dev : report.devices) {
    report.findings_total += dev.diagnostics.size();
    for (const lint::Diagnostic& d : dev.diagnostics) {
      fingerprints.insert(d.fingerprint);
    }
  }
  report.findings_distinct = fingerprints.size();

  if (options.compare != CompareMode::kNone && !govern::aborted(ctx)) {
    PhaseSpan span(obs, "fleet.compare");
    // Schema groups among the devices that analysed cleanly and end in a
    // catch-all (the syntactic comprehensiveness gate construction needs).
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < n; ++i) {
      if (!policies[i].has_value() || !report.devices[i].comparable ||
          !analysed(report.devices[i])) {
        continue;
      }
      bool placed = false;
      for (std::vector<std::size_t>& group : groups) {
        if (policies[group[0]]->schema() == policies[i]->schema()) {
          group.push_back(i);
          placed = true;
          break;
        }
      }
      if (!placed) {
        groups.push_back({i});
      }
    }

    const auto record = [&](const std::vector<std::size_t>& members,
                            const Discrepancy& d) {
      ++report.divergences_total;
      if (report.divergences.size() >= options.max_divergences) {
        return;
      }
      Divergence v;
      for (const std::size_t idx : members) {
        v.devices.push_back(report.devices[idx].item.name);
      }
      v.conjuncts = d.conjuncts;
      v.decisions = d.decisions;
      v.text = lint::format_class(policies[members[0]]->schema(),
                                  d.conjuncts);
      report.divergences.push_back(std::move(v));
    };

    try {
      for (const std::vector<std::size_t>& group : groups) {
        if (group.size() < 2) {
          continue;
        }
        if (options.compare == CompareMode::kNway) {
          std::vector<Policy> members;
          members.reserve(group.size());
          for (const std::size_t idx : group) {
            members.push_back(*policies[idx]);
          }
          CompareOptions compare_options;
          compare_options.run = options.run;
          const CompareOutcome outcome =
              discrepancies_many_governed(members, compare_options);
          if (!outcome.complete) {
            report.compare_complete = false;
            report.compare_message = outcome.message;
          }
          for (const Discrepancy& d : outcome.discrepancies) {
            record(group, d);
          }
        } else {
          // All pairs, staged per pair index, merged serially in pair
          // order — deterministic at every thread count.
          std::vector<std::pair<std::size_t, std::size_t>> pairs;
          for (std::size_t a = 0; a < group.size(); ++a) {
            for (std::size_t b = a + 1; b < group.size(); ++b) {
              pairs.emplace_back(group[a], group[b]);
            }
          }
          std::vector<CompareOutcome> outcomes(pairs.size());
          const auto compare_pair = [&](std::size_t k) {
            CompareOptions compare_options;
            compare_options.run.context = ctx;
            compare_options.run.obs = obs;
            outcomes[k] = discrepancies_governed(*policies[pairs[k].first],
                                                 *policies[pairs[k].second],
                                                 compare_options);
          };
          if (Executor* executor = options.run.executor;
              executor != nullptr && pairs.size() > 1) {
            executor->parallel_for(pairs.size(), compare_pair);
          } else {
            for (std::size_t k = 0; k < pairs.size(); ++k) {
              compare_pair(k);
            }
          }
          for (std::size_t k = 0; k < pairs.size(); ++k) {
            if (!outcomes[k].complete) {
              report.compare_complete = false;
              report.compare_message = outcomes[k].message;
            }
            for (const Discrepancy& d : outcomes[k].discrepancies) {
              record({pairs[k].first, pairs[k].second}, d);
            }
          }
        }
      }
    } catch (const std::exception& e) {
      report.compare_complete = false;
      report.compare_message = e.what();
    }
    if (govern::aborted(ctx)) {
      report.complete = false;
      report.status = ctx->abort_code();
      report.message = std::string("global budget exhausted (") +
                       to_string(report.status) +
                       "); per-device statuses mark what completed";
    }
  }

  if (MetricsRegistry* metrics = obs.metrics) {
    std::size_t partial = 0;
    std::size_t skipped = 0;
    std::size_t parse_errors = 0;
    for (const DeviceReport& dev : report.devices) {
      partial += dev.status == DeviceStatus::kPartial ? 1 : 0;
      skipped += dev.status == DeviceStatus::kSkipped ? 1 : 0;
      parse_errors += dev.status == DeviceStatus::kParseError ? 1 : 0;
    }
    metrics->counter(names::kFleetDevices).add(n);
    metrics->counter(names::kFleetDevicePartial).add(partial);
    metrics->counter(names::kFleetDeviceSkipped).add(skipped);
    metrics->counter(names::kFleetParseErrors).add(parse_errors);
    metrics->counter(names::kFleetFindings).add(report.findings_total);
    metrics->counter(names::kFleetFindingsDistinct)
        .add(report.findings_distinct);
    metrics->counter(names::kFleetDivergences)
        .add(report.divergences_total);
  }
  return report;
}

std::string render_fleet_text(const FleetReport& report) {
  std::string out = "fleet: " + std::to_string(report.devices.size()) +
                    " device(s)\n";
  std::size_t counts[5] = {0, 0, 0, 0, 0};
  for (const DeviceReport& dev : report.devices) {
    ++counts[static_cast<std::size_t>(dev.status)];
    out += "  " + dev.item.name + "  " + to_string(dev.status);
    if (analysed(dev) || dev.status == DeviceStatus::kPartial) {
      out += "  rules " + std::to_string(dev.simplify.rules_before) +
             " -> " + std::to_string(dev.simplify.rules_after) + " (proof " +
             to_string(dev.simplify.proof) + ")";
      out += "  findings " + std::to_string(dev.diagnostics.size());
    }
    if (!dev.message.empty()) {
      out += "  [" + dev.message + "]";
    }
    out += "\n";
  }
  out += "summary: ok " + std::to_string(counts[0]) + ", findings " +
         std::to_string(counts[1]) + ", parse-error " +
         std::to_string(counts[2]) + ", partial " +
         std::to_string(counts[3]) + ", skipped " +
         std::to_string(counts[4]) + "\n";
  out += "findings: " + std::to_string(report.findings_total) + " total, " +
         std::to_string(report.findings_distinct) + " distinct\n";
  out += "divergences: " + std::to_string(report.divergences_total) +
         " (reported " + std::to_string(report.divergences.size()) + ")\n";
  for (const Divergence& v : report.divergences) {
    out += "  " + v.text + ":";
    for (std::size_t i = 0; i < v.devices.size(); ++i) {
      out += " " + v.devices[i] + "=" +
             default_decisions().name(v.decisions[i]);
    }
    out += "\n";
  }
  if (!report.compare_complete) {
    out += "compare partial: " + report.compare_message + "\n";
  }
  if (!report.complete) {
    out += "PARTIAL: " + report.message + "\n";
  }
  return out;
}

std::string render_fleet_json(const FleetReport& report) {
  std::string out = "{\"schema\":\"dfw-fleet-report-v1\",";
  out += "\"complete\":";
  out += report.complete ? "true" : "false";
  out += ",\"status\":" + json_quote(to_string(report.status));
  out += ",\"message\":" + json_quote(report.message);
  out += ",\"devices\":[";
  std::size_t counts[5] = {0, 0, 0, 0, 0};
  std::size_t rules_before = 0;
  std::size_t rules_after = 0;
  for (std::size_t i = 0; i < report.devices.size(); ++i) {
    const DeviceReport& dev = report.devices[i];
    ++counts[static_cast<std::size_t>(dev.status)];
    rules_before += dev.simplify.rules_before;
    rules_after += dev.simplify.rules_after;
    if (i != 0) {
      out += ",";
    }
    out += "{\"name\":" + json_quote(dev.item.name);
    out += ",\"path\":" + json_quote(dev.item.path);
    out += ",\"format\":" + json_quote(to_string(dev.item.format));
    out += ",\"status\":" + json_quote(to_string(dev.status));
    out += ",\"message\":" + json_quote(dev.message);
    out += ",\"rules_before\":" + std::to_string(dev.simplify.rules_before);
    out += ",\"rules_after\":" + std::to_string(dev.simplify.rules_after);
    out += ",\"proof\":" + json_quote(to_string(dev.simplify.proof));
    out += ",\"simplify_passes\":" + std::to_string(dev.simplify.passes);
    out += ",\"dead_eliminated\":" +
           std::to_string(dev.simplify.stats.dead_eliminated);
    out += ",\"adjacent_merged\":" +
           std::to_string(dev.simplify.stats.adjacent_merged);
    out += ",\"run_subsumed\":" +
           std::to_string(dev.simplify.stats.run_subsumed);
    out += ",\"run_merged\":" + std::to_string(dev.simplify.stats.run_merged);
    out += ",\"findings\":" + std::to_string(dev.diagnostics.size());
    out += "}";
  }
  out += "],\"summary\":{";
  out += "\"devices\":" + std::to_string(report.devices.size());
  out += ",\"ok\":" + std::to_string(counts[0]);
  out += ",\"findings\":" + std::to_string(counts[1]);
  out += ",\"parse_error\":" + std::to_string(counts[2]);
  out += ",\"partial\":" + std::to_string(counts[3]);
  out += ",\"skipped\":" + std::to_string(counts[4]);
  out += ",\"rules_before\":" + std::to_string(rules_before);
  out += ",\"rules_after\":" + std::to_string(rules_after);
  out += ",\"findings_total\":" + std::to_string(report.findings_total);
  out += ",\"findings_distinct\":" +
         std::to_string(report.findings_distinct);
  out += ",\"divergences\":" + std::to_string(report.divergences_total);
  out += ",\"divergences_reported\":" +
         std::to_string(report.divergences.size());
  out += "},\"compare\":{\"complete\":";
  out += report.compare_complete ? "true" : "false";
  out += ",\"message\":" + json_quote(report.compare_message);
  out += ",\"divergences\":[";
  for (std::size_t i = 0; i < report.divergences.size(); ++i) {
    const Divergence& v = report.divergences[i];
    if (i != 0) {
      out += ",";
    }
    out += "{\"class\":" + json_quote(v.text) + ",\"devices\":[";
    for (std::size_t d = 0; d < v.devices.size(); ++d) {
      if (d != 0) {
        out += ",";
      }
      out += json_quote(v.devices[d]);
    }
    out += "],\"decisions\":[";
    for (std::size_t d = 0; d < v.decisions.size(); ++d) {
      if (d != 0) {
        out += ",";
      }
      out += json_quote(default_decisions().name(v.decisions[d]));
    }
    out += "]}";
  }
  out += "]}}";
  return out;
}

namespace {

constexpr const char* kSarifSchema =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json";
constexpr const char* kFingerprintKey = "dfwFingerprint/v1";

constexpr const char* kRuleDivergence = "fleet.divergence";
constexpr const char* kRuleParseError = "fleet.parse-error";
constexpr const char* kRulePartial = "fleet.device-partial";
constexpr const char* kRuleSkipped = "fleet.device-skipped";

std::string fleet_rule_description(const std::string& id) {
  if (id == kRuleDivergence) {
    return "devices assign different decisions to the same traffic class";
  }
  if (id == kRuleParseError) {
    return "the device configuration failed to parse";
  }
  if (id == kRulePartial) {
    return "the global budget cut this device's analysis short";
  }
  if (id == kRuleSkipped) {
    return "the global budget was exhausted before this device started";
  }
  return id;
}

/// One deduplicated lint finding: its first occurrence plus how many
/// devices reproduce it.
struct DedupedFinding {
  std::size_t device = 0;
  const lint::Diagnostic* diagnostic = nullptr;
  std::size_t occurrences = 0;
};

}  // namespace

std::string render_fleet_sarif(const FleetReport& report) {
  // Deduplicate by lint fingerprint, keeping fleet order (first device,
  // first diagnostic) so the aggregate is deterministic.
  std::vector<DedupedFinding> findings;
  {
    std::map<std::string, std::size_t> by_fingerprint;
    for (std::size_t dev = 0; dev < report.devices.size(); ++dev) {
      for (const lint::Diagnostic& d : report.devices[dev].diagnostics) {
        const auto [it, inserted] =
            by_fingerprint.emplace(d.fingerprint, findings.size());
        if (inserted) {
          findings.push_back(DedupedFinding{dev, &d, 1});
        } else {
          ++findings[it->second].occurrences;
        }
      }
    }
  }

  std::vector<std::string> rule_ids;
  for (const DedupedFinding& f : findings) {
    rule_ids.push_back(f.diagnostic->check_id);
  }
  if (!report.divergences.empty()) {
    rule_ids.push_back(kRuleDivergence);
  }
  for (const DeviceReport& dev : report.devices) {
    if (dev.status == DeviceStatus::kParseError) {
      rule_ids.push_back(kRuleParseError);
    } else if (dev.status == DeviceStatus::kPartial) {
      rule_ids.push_back(kRulePartial);
    } else if (dev.status == DeviceStatus::kSkipped) {
      rule_ids.push_back(kRuleSkipped);
    }
  }
  std::sort(rule_ids.begin(), rule_ids.end());
  rule_ids.erase(std::unique(rule_ids.begin(), rule_ids.end()),
                 rule_ids.end());
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    rule_index[rule_ids[i]] = i;
  }

  std::string out = "{";
  out += "\"$schema\":" + json_quote(kSarifSchema) + ",";
  out += "\"version\":\"2.1.0\",";
  out += "\"runs\":[{";
  out += "\"tool\":{\"driver\":{";
  out += "\"name\":\"dfw-fleet\",";
  out += "\"informationUri\":\"https://github.com/dfw/dfw\",";
  out += "\"rules\":[";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += "{\"id\":" + json_quote(rule_ids[i]) +
           ",\"shortDescription\":{\"text\":" +
           json_quote(fleet_rule_description(rule_ids[i])) + "}}";
  }
  out += "]}},";
  const bool successful = report.complete && report.compare_complete;
  out += "\"invocations\":[{\"executionSuccessful\":";
  out += successful ? "true" : "false";
  if (!successful) {
    const std::string& why =
        report.complete ? report.compare_message : report.message;
    out += ",\"toolExecutionNotifications\":[{\"level\":\"error\","
           "\"message\":{\"text\":" +
           json_quote("partial result: " + why) + "}}]";
  }
  out += "}],";
  out += "\"columnKind\":\"unicodeCodePoints\",";
  out += "\"results\":[";
  bool first = true;
  const auto emit = [&](const std::string& rule, const std::string& level,
                        const std::string& text, const std::string& uri,
                        std::size_t line, const std::string& fingerprint) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"ruleId\":" + json_quote(rule) + ",";
    out += "\"ruleIndex\":" + std::to_string(rule_index[rule]) + ",";
    out += "\"level\":" + json_quote(level) + ",";
    out += "\"message\":{\"text\":" + json_quote(text) + "},";
    out += "\"locations\":[{\"physicalLocation\":{";
    out += "\"artifactLocation\":{\"uri\":" + json_quote(uri) + "}";
    if (line != 0) {
      out += ",\"region\":{\"startLine\":" + std::to_string(line) + "}";
    }
    out += "}}],";
    out += "\"partialFingerprints\":{" + json_quote(kFingerprintKey) + ":" +
           json_quote(fingerprint) + "}}";
  };

  for (const DedupedFinding& f : findings) {
    const lint::Diagnostic& d = *f.diagnostic;
    std::string text = d.message;
    if (f.occurrences > 1) {
      text += " (seen on " + std::to_string(f.occurrences) + " devices)";
    }
    emit(d.check_id, to_string(d.severity), text,
         report.devices[f.device].item.path, d.line, d.fingerprint);
  }
  for (const Divergence& v : report.divergences) {
    std::string text = "devices diverge on " + v.text + ":";
    std::string key = v.text;
    for (std::size_t i = 0; i < v.devices.size(); ++i) {
      const std::string decision =
          default_decisions().name(v.decisions[i]);
      text += " " + v.devices[i] + "=" + decision;
      key += "|" + v.devices[i] + "=" + decision;
    }
    emit(kRuleDivergence, "warning", text, v.devices.empty() ? "" :
         v.devices[0], 0, fnv_fingerprint(key));
  }
  for (const DeviceReport& dev : report.devices) {
    const char* rule = nullptr;
    const char* level = "warning";
    if (dev.status == DeviceStatus::kParseError) {
      rule = kRuleParseError;
      level = "error";
    } else if (dev.status == DeviceStatus::kPartial) {
      rule = kRulePartial;
    } else if (dev.status == DeviceStatus::kSkipped) {
      rule = kRuleSkipped;
    } else {
      continue;
    }
    emit(rule, level, dev.item.name + ": " + dev.message, dev.item.path, 0,
         fnv_fingerprint(std::string(rule) + "|" + dev.item.name));
  }
  out += "]}]}";
  return out;
}

}  // namespace dfw::fleet
