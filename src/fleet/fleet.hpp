// Fleet-scale static analysis: one audit pipeline over many device
// configurations.
//
// A real deployment is not one firewall but hundreds to thousands of
// device configs in mixed syntaxes. run_fleet shards a fleet across the
// rt/ Executor and pushes every device through parse -> simplify
// (src/simplify/, every rewrite FDD-proven) -> lint (src/lint/), then
// optionally cross-compares the surviving policies (pairwise or N-way,
// the paper's Section 7.3 direct N-way comparison) — all under ONE shared
// RunContext, so a global budget or deadline degrades the batch into
// per-device partial statuses instead of an abort: devices that finished
// keep their findings, the device that breached reports kPartial, and
// devices whose tasks had not started report kSkipped.
//
// Determinism contract: per-device work is staged into preassigned index
// slots and aggregated serially, so for a run that completes (no budget
// breach) the fleet report — text, JSON, and SARIF — is byte-identical at
// every thread count. Under a breach the set of completed devices may
// legitimately vary with scheduling; the statuses are the honest record
// of what ran.
//
// Findings are deduplicated across devices by the lint layer's content
// fingerprints: configs stamped from one template reproduce the same
// defect everywhere, and the aggregate SARIF reports it once (first
// device in fleet order) with an occurrence count, instead of N times.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fdd/compare.hpp"
#include "lint/engine.hpp"
#include "rt/govern.hpp"
#include "rt/run_options.hpp"
#include "simplify/simplify.hpp"

namespace dfw::fleet {

enum class DeviceFormat { kNative, kIptables, kIp6tables, kCisco };

/// Stable identifier string, e.g. "iptables" (also the manifest keyword).
const char* to_string(DeviceFormat format);

/// Parses a manifest/CLI format keyword; nullopt on an unknown name.
std::optional<DeviceFormat> parse_device_format(std::string_view name);

/// One fleet member, as named by a manifest line or a directory scan.
struct FleetItem {
  std::string path;  ///< as given; relative paths are the caller's affair
  DeviceFormat format = DeviceFormat::kNative;
  std::string chain = "INPUT";  ///< iptables/ip6tables chain
  std::string acl = "101";      ///< Cisco access-list id
  std::string name;             ///< display name; defaults to path
};

/// Parses a fleet manifest: one device per line,
///
///   <format> <path> [chain=NAME] [acl=ID] [name=NAME]
///
/// where <format> is native|iptables|ip6tables|cisco; blank lines and
/// #-comments are skipped. Returns nullopt with a "<line N>: ..."
/// message in *error (when non-null) on a malformed line.
std::optional<std::vector<FleetItem>> parse_fleet_manifest(
    std::string_view text, std::string* error);

/// Scans a directory (non-recursive) for device configs by extension —
/// .fw native, .rules iptables, .acl cisco — returning items sorted by
/// path, so scan order never shows in reports. Throws
/// std::filesystem::filesystem_error when the directory cannot be read.
std::vector<FleetItem> scan_fleet_dir(const std::string& dir);

/// One loaded device config: the manifest entry plus its text. Loading is
/// the caller's job (the CLI slurps files; tests inject strings), keeping
/// run_fleet pure and deterministic.
struct FleetSource {
  FleetItem item;
  std::string text;
};

/// What happened to one device.
enum class DeviceStatus {
  kOk,          ///< analysed completely, no findings
  kFindings,    ///< analysed completely, lint findings present
  kParseError,  ///< config failed to parse; nothing analysed
  kPartial,     ///< governance cut the device short; findings so far kept
  kSkipped,     ///< shared context already aborted before the task began
};

/// Stable identifier string, e.g. "parse-error" (also the report token).
const char* to_string(DeviceStatus status);

struct DeviceReport {
  FleetItem item;
  DeviceStatus status = DeviceStatus::kOk;
  std::string message;  ///< empty unless parse-error/partial/skipped
  SimplifyReport simplify;
  std::vector<lint::Diagnostic> diagnostics;
  /// True when the (simplified) policy ends in a catch-all — the
  /// syntactic comprehensiveness gate for the compare stage.
  bool comparable = false;
};

enum class CompareMode { kNone, kPairs, kNway };

/// One cross-device behavioural divergence: a traffic class plus the
/// decision each named device assigns it (decisions parallel to devices;
/// not all equal).
struct Divergence {
  std::vector<std::string> devices;
  std::vector<IntervalSet> conjuncts;
  std::vector<Decision> decisions;
  /// The class rendered in the rule-like report style ("S in ... ^ ..."),
  /// filled by run_fleet (renderers have no schema to format against).
  std::string text;
};

struct FleetOptions {
  /// Shared execution knobs. `run.executor` shards devices (and compare
  /// pairs); null analyses serially. `run.context` is the GLOBAL budget
  /// every device draws from — see the header comment for the partial
  /// semantics. `run.obs` receives fleet.* counters and the
  /// fleet.devices / fleet.compare phase spans.
  RunOptions run = {};

  /// Run the simplify stage (lint and compare then see the smaller
  /// proven-equivalent policy).
  bool simplify = true;
  /// Knobs for the simplify stage; its `run` member is ignored (the
  /// fleet's context/obs are threaded in, executor stays per-device
  /// serial).
  SimplifyOptions simplify_options;

  /// Pass selection for the lint stage (LintOptions::passes/disabled);
  /// its `run` member is ignored likewise.
  lint::LintOptions lint;

  CompareMode compare = CompareMode::kNone;
  /// Divergence records kept in the report; the total is always counted
  /// (a capped report says so instead of silently truncating).
  std::size_t max_divergences = 64;
};

struct FleetReport {
  std::vector<DeviceReport> devices;  ///< input order
  /// Divergences in deterministic order (schema group, then pair, then
  /// decision-path order), capped at max_divergences.
  std::vector<Divergence> divergences;
  std::size_t divergences_total = 0;  ///< uncapped count
  bool compare_complete = true;       ///< compare stage ran to completion
  std::string compare_message;
  std::size_t findings_total = 0;     ///< lint findings across devices
  std::size_t findings_distinct = 0;  ///< distinct lint fingerprints
  /// Global verdict: false iff the shared context aborted (some device
  /// statuses are then kPartial/kSkipped).
  bool complete = true;
  ErrorCode status = ErrorCode::kOk;
  std::string message;
};

/// Analyses a fleet (see the header comment). Governance breaches are
/// absorbed into per-device statuses and the global verdict; parse errors
/// never throw (they are per-device statuses); other exceptions propagate.
FleetReport run_fleet(const std::vector<FleetSource>& sources,
                      const FleetOptions& options = {});

/// Human-readable per-device table plus totals.
std::string render_fleet_text(const FleetReport& report);

/// One JSON document, schema "dfw-fleet-report-v1": per-device records
/// (status, rule counts, simplify proof, findings) plus fleet summary and
/// divergences. Pure function of the report — byte-deterministic.
std::string render_fleet_json(const FleetReport& report);

/// Aggregate SARIF 2.1.0 log (passes lint::validate_sarif): one result
/// per DISTINCT lint fingerprint (first device in fleet order, occurrence
/// count in the message), plus fleet.divergence results and fleet.device-*
/// status results for parse-error/partial/skipped devices.
std::string render_fleet_sarif(const FleetReport& report);

}  // namespace dfw::fleet
