// Property checking.
//
// The paper's related work verifies access policies against declarative
// properties (its ref [8], Fisler et al.) and its own lineage answers
// firewall queries (ref [20]); combining the two gives a verification
// API for the design and resolution phases: assert that a policy
// satisfies statements like "no packet from the malicious domain is
// accepted" or "the mail server can receive TCP port 25", and get exact
// counterexample traffic classes when it does not.
//
// A Property constrains some fields and requires a decision for every (or
// some) packet in the constrained set:
//   kForAll — every matching packet must map to `required`
//   kExists — at least one matching packet must map to `required`

#pragma once

#include <string>
#include <vector>

#include "query/query.hpp"

namespace dfw {

enum class PropertyMode {
  kForAll,
  kExists,
};

struct Property {
  std::string name;      ///< for reports
  Query scope;           ///< constrained packet set + required decision
  PropertyMode mode = PropertyMode::kForAll;
};

/// Outcome of checking one property. For a failed kForAll,
/// counterexamples hold the traffic classes inside the scope whose
/// decision differs from the required one; for a failed kExists they are
/// empty (nothing in scope has the required decision).
struct PropertyResult {
  bool holds = false;
  std::vector<QueryResult> counterexamples;
};

/// Checks one property; the query's decision filter is the requirement
/// and must be set.
PropertyResult check_property(const Policy& policy, const Property& prop);

/// Checks a batch against one policy (the FDD is built once).
std::vector<PropertyResult> check_properties(
    const Policy& policy, const std::vector<Property>& props);

/// Renders a report line per property; counterexamples rendered rule-like.
std::string format_property_report(const Schema& schema,
                                   const DecisionSet& decisions,
                                   const std::vector<Property>& props,
                                   const std::vector<PropertyResult>& results);

}  // namespace dfw
