// Rule-pair anomaly analysis.
//
// The paper's related work (its ref [1], Al-Shaer & Hamed) classifies
// suspicious rule-pair configurations; the paper positions such per-team
// analysis as a design-phase complement to cross-team comparison
// (Sections 1.4, 9). We implement the classic taxonomy over our rule
// model, plus a *semantic* dead-rule check the syntactic pair scan cannot
// provide: a rule no packet ever first-matches, detected exactly via the
// FDD query engine.
//
// For rules r_i before r_j (i < j) with predicates P_i, P_j:
//   shadowing      P_j subset of P_i, decisions differ  (r_j can never fire
//                  with its intended effect — almost always an error)
//   generalization P_i strict subset of P_j, decisions differ (r_j is the
//                  broader fallback; legitimate but worth an eyebrow)
//   correlation    P_i, P_j overlap, neither contains the other, decisions
//                  differ (order-sensitive pair)
//   redundancy-pair P_j subset of P_i, same decision (r_j looks removable;
//                  confirm with the semantic gen/redundancy check)

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fw/policy.hpp"
#include "obs/obs.hpp"
#include "rt/run_options.hpp"

namespace dfw {

class Executor;
class RunContext;

enum class AnomalyKind {
  kShadowing,
  kGeneralization,
  kCorrelation,
  kRedundancyPair,
};

const char* to_string(AnomalyKind kind);

/// One detected rule-pair anomaly between rules()[first] (the earlier
/// rule) and rules()[second].
struct Anomaly {
  AnomalyKind kind;
  std::size_t first;
  std::size_t second;

  bool operator==(const Anomaly&) const = default;
};

/// True iff every packet matching `inner` also matches `outer`.
bool predicate_subset(const Rule& inner, const Rule& outer);

/// True iff some packet matches both rules.
bool predicates_overlap(const Rule& a, const Rule& b);

/// Knobs for the anomaly scans, in the library's options-struct idiom.
struct AnomalyOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.executor`
  /// (borrowed; null = inline/serial) drives the pair scan: the O(n^2 d)
  /// triangle is chunked by later-rule row, each row's findings staged in
  /// its own slot and concatenated in row order, so the result is
  /// bit-identical to the serial scan at every thread count.
  /// `run.context` (borrowed, nullable): the pair scan takes amortized
  /// cancellation/deadline checkpoints per pair; dead_rules additionally
  /// charges every coverage-FDD node it materialises against the node
  /// budget. A breach throws dfw::Error (from the batch join under an
  /// executor). `run.obs` (borrowed, nullable sinks): the scans run under
  /// "anomaly_pairs" / "dead_rules" phase spans. Null sinks are free.
  RunOptions run = {};

  /// Rows of the pair triangle handed to one executor task. Row j costs
  /// O(j d), so modest grains already amortise scheduling.
  std::size_t row_grain = 16;
};

/// Scans all ordered rule pairs and reports every anomaly, ordered by
/// (second, first). Pure syntax over predicates; O(n^2 d).
std::vector<Anomaly> find_anomalies(const Policy& policy,
                                    const AnomalyOptions& options = {});

/// Indices of *dead* rules: rules no packet ever first-matches (fully
/// masked by the rules above them). Exact, via one incremental Fig. 7
/// append pass over a growing coverage FDD (never rebuilt per rule), with
/// interleaved reduction keeping the coverage diagram near-minimal. Dead
/// rules are a strict subset of rules flagged by shadowing/redundancy-pair
/// anomalies.
std::vector<std::size_t> dead_rules(const Policy& policy,
                                    const AnomalyOptions& options = {});

/// Renders an administrator-facing report.
std::string format_anomaly_report(const Policy& policy,
                                  const DecisionSet& decisions,
                                  const std::vector<Anomaly>& anomalies,
                                  const std::vector<std::size_t>& dead);

}  // namespace dfw
