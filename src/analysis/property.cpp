#include "analysis/property.hpp"

#include <stdexcept>

#include "fdd/construct.hpp"

namespace dfw {
namespace {

PropertyResult check_on_fdd(const Fdd& fdd, const Property& prop) {
  if (!prop.scope.decision.has_value()) {
    throw std::invalid_argument(
        "check_property: the property must require a decision");
  }
  PropertyResult result;
  switch (prop.mode) {
    case PropertyMode::kForAll: {
      // Counterexamples: scope traffic with any *other* decision.
      Query complement = prop.scope;
      complement.decision.reset();
      for (QueryResult& r : run_query(fdd, complement)) {
        if (r.decision != *prop.scope.decision) {
          result.counterexamples.push_back(std::move(r));
        }
      }
      result.holds = result.counterexamples.empty();
      return result;
    }
    case PropertyMode::kExists: {
      result.holds = !run_query(fdd, prop.scope).empty();
      return result;
    }
  }
  throw std::invalid_argument("check_property: unknown mode");
}

}  // namespace

PropertyResult check_property(const Policy& policy, const Property& prop) {
  return check_on_fdd(build_reduced_fdd(policy), prop);
}

std::vector<PropertyResult> check_properties(
    const Policy& policy, const std::vector<Property>& props) {
  const Fdd fdd = build_reduced_fdd(policy);
  std::vector<PropertyResult> results;
  results.reserve(props.size());
  for (const Property& prop : props) {
    results.push_back(check_on_fdd(fdd, prop));
  }
  return results;
}

std::string format_property_report(
    const Schema& schema, const DecisionSet& decisions,
    const std::vector<Property>& props,
    const std::vector<PropertyResult>& results) {
  if (props.size() != results.size()) {
    throw std::invalid_argument(
        "format_property_report: property/result count mismatch");
  }
  std::string out;
  for (std::size_t i = 0; i < props.size(); ++i) {
    out += (results[i].holds ? "PASS " : "FAIL ") + props[i].name + "\n";
    for (const QueryResult& cx : results[i].counterexamples) {
      out += "      counterexample: " +
             format_query_results(schema, decisions, {cx});
    }
  }
  return out;
}

}  // namespace dfw
