#include "analysis/anomaly.hpp"

#include "fdd/construct.hpp"
#include "fdd/reduce.hpp"
#include "fw/format.hpp"
#include "rt/executor.hpp"
#include "rt/govern.hpp"

namespace dfw {

const char* to_string(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kShadowing:
      return "shadowing";
    case AnomalyKind::kGeneralization:
      return "generalization";
    case AnomalyKind::kCorrelation:
      return "correlation";
    case AnomalyKind::kRedundancyPair:
      return "redundancy-pair";
  }
  return "unknown";
}

bool predicate_subset(const Rule& inner, const Rule& outer) {
  for (std::size_t f = 0; f < inner.conjuncts().size(); ++f) {
    if (!outer.conjunct(f).contains(inner.conjunct(f))) {
      return false;
    }
  }
  return true;
}

bool predicates_overlap(const Rule& a, const Rule& b) {
  for (std::size_t f = 0; f < a.conjuncts().size(); ++f) {
    if (!a.conjunct(f).overlaps(b.conjunct(f))) {
      return false;
    }
  }
  return true;
}

namespace {

// Classifies the ordered pair (i, j), i < j, appending at most one
// anomaly to `out`.
void classify_pair(const Policy& policy, std::size_t i, std::size_t j,
                   std::vector<Anomaly>& out) {
  const Rule& earlier = policy.rule(i);
  const Rule& later = policy.rule(j);
  if (!predicates_overlap(earlier, later)) {
    return;
  }
  const bool later_inside = predicate_subset(later, earlier);
  const bool earlier_inside = predicate_subset(earlier, later);
  const bool same_decision = earlier.decision() == later.decision();
  if (later_inside && !same_decision) {
    out.push_back({AnomalyKind::kShadowing, i, j});
  } else if (later_inside && same_decision) {
    out.push_back({AnomalyKind::kRedundancyPair, i, j});
  } else if (earlier_inside && !later_inside && !same_decision) {
    out.push_back({AnomalyKind::kGeneralization, i, j});
  } else if (!earlier_inside && !later_inside && !same_decision) {
    out.push_back({AnomalyKind::kCorrelation, i, j});
  }
  // Overlapping, non-nested, same decision: benign overlap — the
  // taxonomy does not flag it.
}

}  // namespace

std::vector<Anomaly> find_anomalies(const Policy& policy,
                                    const AnomalyOptions& options) {
  PhaseSpan span(options.run.obs, "anomaly_pairs");
  std::vector<Anomaly> anomalies;
  if (policy.size() < 2) {
    return anomalies;
  }
  // Row r scans pairs (i, j) with j = r + 1, i < j — the triangle sliced
  // by its later rule, so every row is independent of the others.
  const std::size_t rows = policy.size() - 1;
  if (options.run.executor == nullptr || options.run.executor->is_inline()) {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t i = 0; i <= r; ++i) {
        govern::checkpoint(options.run.context);
        classify_pair(policy, i, r + 1, anomalies);
      }
    }
    return anomalies;
  }
  // Each row stages its findings in its own slot; concatenating slots in
  // row order reproduces the serial (second, first) ordering exactly,
  // whatever the schedule.
  std::vector<std::vector<Anomaly>> staged(rows);
  const std::size_t grain = options.row_grain == 0 ? 1 : options.row_grain;
  options.run.executor->parallel_for_chunked(
      rows, grain,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          for (std::size_t i = 0; i <= r; ++i) {
            govern::checkpoint(options.run.context);
            classify_pair(policy, i, r + 1, staged[r]);
          }
        }
      },
      options.run.context, options.run.obs);
  std::size_t total = 0;
  for (const std::vector<Anomaly>& row : staged) {
    total += row.size();
  }
  anomalies.reserve(total);
  for (std::vector<Anomaly>& row : staged) {
    anomalies.insert(anomalies.end(), row.begin(), row.end());
  }
  return anomalies;
}

namespace {

// True iff some packet matching `rule` falls off the *partial* FDD rooted
// at `node` — i.e. is not covered by the rules folded in so far. A
// terminal means "covered"; an uncovered slice of the rule's conjunct at
// any node means "alive" (the rule's remaining conjuncts are nonempty by
// Rule's invariant, so the slice extends to whole packets).
bool escapes_coverage(const FddNode& node, const Rule& rule) {
  if (node.is_terminal()) {
    return false;
  }
  const IntervalSet& wanted = rule.conjunct(node.field);
  if (!wanted.subtract(node.edge_label_union()).empty()) {
    return true;
  }
  for (const FddEdge& e : node.edges) {
    if (!e.label.overlaps(wanted)) {
      continue;
    }
    if (escapes_coverage(*e.target, rule)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<std::size_t> dead_rules(const Policy& policy,
                                    const AnomalyOptions& options) {
  PhaseSpan span(options.run.obs, "dead_rules");
  std::vector<std::size_t> dead;
  // Fold rules into one growing *partial* FDD: after i rules it covers
  // exactly the packets some earlier rule matches. Rule i is dead iff its
  // predicate cannot escape that coverage. Reduction is sound on partial
  // FDDs (merged siblings and spliced full-domain nodes cover the same
  // packets), so reduce whenever the coverage diagram outgrows a budget
  // proportional to its reduced size — the same strategy that keeps
  // build_reduced_fdd's intermediates small.
  Fdd coverage = build_partial_fdd(policy, 1, options.run.context);
  std::size_t budget = 256;
  for (std::size_t i = 1; i < policy.size(); ++i) {
    govern::checkpoint(options.run.context);
    if (!escapes_coverage(coverage.root(), policy.rule(i))) {
      dead.push_back(i);
    }
    append_rule(coverage, policy.rule(i), options.run.context);
    if (coverage.node_count() > budget) {
      reduce(coverage);
      budget = coverage.node_count() * 2 + 256;
    }
  }
  return dead;
}

std::string format_anomaly_report(const Policy& policy,
                                  const DecisionSet& decisions,
                                  const std::vector<Anomaly>& anomalies,
                                  const std::vector<std::size_t>& dead) {
  std::string out;
  if (anomalies.empty()) {
    out += "rule-pair anomalies: none\n";
  } else {
    out += "rule-pair anomalies (" + std::to_string(anomalies.size()) +
           "):\n";
    for (const Anomaly& a : anomalies) {
      out += "  [" + std::string(to_string(a.kind)) + "] r" +
             std::to_string(a.second + 1) + " vs r" +
             std::to_string(a.first + 1) + ": " +
             format_rule(policy.schema(), decisions, policy.rule(a.second)) +
             "  <->  " +
             format_rule(policy.schema(), decisions, policy.rule(a.first)) +
             "\n";
    }
  }
  if (dead.empty()) {
    out += "dead rules: none\n";
  } else {
    out += "dead rules (never first-matched):\n";
    for (const std::size_t i : dead) {
      out += "  r" + std::to_string(i + 1) + ": " +
             format_rule(policy.schema(), decisions, policy.rule(i)) + "\n";
    }
  }
  return out;
}

}  // namespace dfw
