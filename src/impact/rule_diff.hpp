// Rule-level edit scripts.
//
// Change-impact analysis (Section 1.3) answers *what traffic* changed;
// administrators also ask *which rules* changed. This module computes a
// minimal textual edit script between two rule sequences — a longest-
// common-subsequence diff over whole rules — so a change report can say
// "rule 4 was inserted, old rule 7 deleted" next to the semantic impact.
// The two views intentionally differ: a reorder of non-conflicting rules
// is a textual edit with zero semantic impact, and the pair of reports
// makes that visible (the property the migration_audit example shows off).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fw/policy.hpp"

namespace dfw {

enum class EditKind {
  kKeep,    ///< rule present in both sequences
  kDelete,  ///< rule only in `before`
  kInsert,  ///< rule only in `after`
};

/// One entry of the edit script, in output order. `before_index` is set
/// for kKeep/kDelete, `after_index` for kKeep/kInsert.
struct RuleEdit {
  EditKind kind;
  std::size_t before_index = 0;
  std::size_t after_index = 0;
};

/// LCS-based minimal edit script between the two rule sequences. Policies
/// must share a schema. O(n*m) time and space.
std::vector<RuleEdit> rule_diff(const Policy& before, const Policy& after);

/// Counts of each edit kind, for summaries.
struct EditSummary {
  std::size_t kept = 0;
  std::size_t deleted = 0;
  std::size_t inserted = 0;
};
EditSummary summarize_edits(const std::vector<RuleEdit>& edits);

/// Renders a unified-diff-style listing (' ' keep, '-' delete, '+' insert).
std::string format_edit_script(const Policy& before, const Policy& after,
                               const DecisionSet& decisions,
                               const std::vector<RuleEdit>& edits);

}  // namespace dfw
