#include "impact/rule_diff.hpp"

#include <stdexcept>

#include "fw/format.hpp"

namespace dfw {

std::vector<RuleEdit> rule_diff(const Policy& before, const Policy& after) {
  if (!(before.schema() == after.schema())) {
    throw std::invalid_argument("rule_diff: schemas differ");
  }
  const std::size_t n = before.size();
  const std::size_t m = after.size();
  // lcs[i][j] = LCS length of before[i..] and after[j..].
  std::vector<std::vector<std::size_t>> lcs(
      n + 1, std::vector<std::size_t>(m + 1, 0));
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = m; j-- > 0;) {
      if (before.rule(i) == after.rule(j)) {
        lcs[i][j] = lcs[i + 1][j + 1] + 1;
      } else {
        lcs[i][j] = std::max(lcs[i + 1][j], lcs[i][j + 1]);
      }
    }
  }
  std::vector<RuleEdit> edits;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < n && j < m) {
    if (before.rule(i) == after.rule(j)) {
      edits.push_back({EditKind::kKeep, i, j});
      ++i;
      ++j;
    } else if (lcs[i + 1][j] >= lcs[i][j + 1]) {
      edits.push_back({EditKind::kDelete, i, 0});
      ++i;
    } else {
      edits.push_back({EditKind::kInsert, 0, j});
      ++j;
    }
  }
  for (; i < n; ++i) {
    edits.push_back({EditKind::kDelete, i, 0});
  }
  for (; j < m; ++j) {
    edits.push_back({EditKind::kInsert, 0, j});
  }
  return edits;
}

EditSummary summarize_edits(const std::vector<RuleEdit>& edits) {
  EditSummary summary;
  for (const RuleEdit& e : edits) {
    switch (e.kind) {
      case EditKind::kKeep:
        ++summary.kept;
        break;
      case EditKind::kDelete:
        ++summary.deleted;
        break;
      case EditKind::kInsert:
        ++summary.inserted;
        break;
    }
  }
  return summary;
}

std::string format_edit_script(const Policy& before, const Policy& after,
                               const DecisionSet& decisions,
                               const std::vector<RuleEdit>& edits) {
  const EditSummary summary = summarize_edits(edits);
  std::string out = "rule edits: " + std::to_string(summary.inserted) +
                    " inserted, " + std::to_string(summary.deleted) +
                    " deleted, " + std::to_string(summary.kept) +
                    " unchanged\n";
  for (const RuleEdit& e : edits) {
    switch (e.kind) {
      case EditKind::kKeep:
        out += "  " +
               format_rule(before.schema(), decisions,
                           before.rule(e.before_index)) +
               "\n";
        break;
      case EditKind::kDelete:
        out += "- " +
               format_rule(before.schema(), decisions,
                           before.rule(e.before_index)) +
               "\n";
        break;
      case EditKind::kInsert:
        out += "+ " +
               format_rule(after.schema(), decisions,
                           after.rule(e.after_index)) +
               "\n";
        break;
    }
  }
  return out;
}

}  // namespace dfw
