// Firewall change-impact analysis (paper, Sections 1.3 and 8.1).
//
// "The impact of the changes can literally be defined as the functional
// discrepancies between the firewall before changes and the firewall after
// changes." This module wraps the comparison pipeline in an edit-centric
// API: apply edits, compute the impact, classify each impacted predicate
// by what happened to its traffic (newly accepted, newly discarded, other
// decision change), and render an administrator-facing report.

#pragma once

#include <string>
#include <vector>

#include "fdd/compare.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// Direction of a decision change, from a security standpoint.
enum class ImpactKind {
  kNowAccepted,   ///< was discarded, now accepted: potential new hole
  kNowDiscarded,  ///< was accepted, now discarded: potential outage
  kOtherChange,   ///< change among user-defined decisions (e.g. logging)
};

/// One impacted traffic class.
struct Impact {
  Discrepancy discrepancy;  ///< decisions[0] = before, decisions[1] = after
  ImpactKind kind = ImpactKind::kOtherChange;
  Value packet_count = 0;   ///< saturating number of packets affected
};

/// Classifies a before/after decision pair. Treats kAccept/kDiscard as the
/// security-relevant axis; everything else is kOtherChange.
ImpactKind classify_impact(Decision before, Decision after);

/// Computes the full impact of replacing `before` with `after`; both must
/// be comprehensive policies over the same schema. Results are ordered by
/// decreasing packet count (biggest blast radius first).
std::vector<Impact> change_impact(const Policy& before, const Policy& after);

/// True when the change is a pure refactoring: no packet changes decision.
bool is_semantics_preserving(const Policy& before, const Policy& after);

/// Renders an administrator-facing report of change_impact().
std::string format_impact_report(const Schema& schema,
                                 const DecisionSet& decisions,
                                 const std::vector<Impact>& impacts);

}  // namespace dfw
