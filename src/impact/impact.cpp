#include "impact/impact.hpp"

#include <algorithm>

#include "diverse/discrepancy.hpp"

namespace dfw {

ImpactKind classify_impact(Decision before, Decision after) {
  if (before == kDiscard && after == kAccept) {
    return ImpactKind::kNowAccepted;
  }
  if (before == kAccept && after == kDiscard) {
    return ImpactKind::kNowDiscarded;
  }
  return ImpactKind::kOtherChange;
}

std::vector<Impact> change_impact(const Policy& before,
                                  const Policy& after) {
  std::vector<Discrepancy> diffs = discrepancies(before, after);
  std::vector<Impact> impacts;
  impacts.reserve(diffs.size());
  for (Discrepancy& d : diffs) {
    Impact impact;
    impact.kind = classify_impact(d.decisions[0], d.decisions[1]);
    impact.packet_count = discrepancy_packet_count(d);
    impact.discrepancy = std::move(d);
    impacts.push_back(std::move(impact));
  }
  std::stable_sort(impacts.begin(), impacts.end(),
                   [](const Impact& a, const Impact& b) {
                     return a.packet_count > b.packet_count;
                   });
  return impacts;
}

bool is_semantics_preserving(const Policy& before, const Policy& after) {
  return equivalent(before, after);
}

std::string format_impact_report(const Schema& schema,
                                 const DecisionSet& decisions,
                                 const std::vector<Impact>& impacts) {
  if (impacts.empty()) {
    return "change impact: none (semantics preserved)\n";
  }
  std::size_t now_accepted = 0;
  std::size_t now_discarded = 0;
  std::string body;
  for (const Impact& impact : impacts) {
    const char* tag = "changed";
    switch (impact.kind) {
      case ImpactKind::kNowAccepted:
        tag = "NOW-ACCEPTED";
        ++now_accepted;
        break;
      case ImpactKind::kNowDiscarded:
        tag = "NOW-DISCARDED";
        ++now_discarded;
        break;
      case ImpactKind::kOtherChange:
        break;
    }
    body += "  [" + std::string(tag) + ", " +
            std::to_string(impact.packet_count) + " packets] " +
            format_discrepancy(schema, decisions, impact.discrepancy,
                               {"before", "after"}) +
            "\n";
  }
  std::string out = "change impact: " + std::to_string(impacts.size()) +
                    " traffic classes (" + std::to_string(now_accepted) +
                    " newly accepted, " + std::to_string(now_discarded) +
                    " newly discarded)\n";
  return out + body;
}

}  // namespace dfw
