#include "lint/render.hpp"

#include "obs/json.hpp"

namespace dfw::lint {
namespace {

std::string quoted(std::string_view s) {
  std::string out = "\"";
  json::escape(out, s);
  out += '"';
  return out;
}

std::string witness_text(const LintInput& input, const Witness& w) {
  std::string out =
      "witness: " + format_class(input.policy->schema(), w.conjuncts);
  if (w.observed.has_value()) {
    out += " -> " + input.decisions->name(*w.observed);
  } else {
    out += " -> (no rule matches)";
  }
  if (w.expected.has_value()) {
    out += " (required " + input.decisions->name(*w.expected) + ")";
  }
  return out;
}

}  // namespace

std::string render_text(const LintInput& input, const LintReport& report) {
  std::string out;
  for (const Diagnostic& d : report.diagnostics) {
    out += input.source_name;
    if (d.line != 0) {
      out += ":" + std::to_string(d.line);
    }
    out += ": ";
    out += to_string(d.severity);
    out += ": [" + d.check_id + "] " + d.message + "\n";
    if (d.witness.has_value()) {
      out += "    " + witness_text(input, *d.witness) + "\n";
    }
  }
  if (!report.complete) {
    out += "PARTIAL: " + report.message +
           " — findings below this point may be missing\n";
  }
  out += std::to_string(report.count(Severity::kError)) + " error(s), " +
         std::to_string(report.count(Severity::kWarning)) + " warning(s), " +
         std::to_string(report.count(Severity::kNote)) + " note(s)\n";
  return out;
}

std::string render_json(const LintInput& input, const LintReport& report) {
  std::string out = "{";
  out += "\"version\":1,";
  out += "\"source\":" + quoted(input.source_name) + ",";
  out += std::string("\"complete\":") +
         (report.complete ? "true" : "false") + ",";
  out += "\"status\":" + quoted(to_string(report.status)) + ",";
  out += "\"message\":" + quoted(report.message) + ",";
  out += "\"passes\":[";
  for (std::size_t i = 0; i < report.passes_run.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += quoted(report.passes_run[i]);
  }
  out += "],";
  out += "\"counts\":{\"error\":" +
         std::to_string(report.count(Severity::kError)) +
         ",\"warning\":" + std::to_string(report.count(Severity::kWarning)) +
         ",\"note\":" + std::to_string(report.count(Severity::kNote)) + "},";
  out += "\"diagnostics\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i != 0) {
      out += ",";
    }
    out += "{";
    out += "\"check\":" + quoted(d.check_id) + ",";
    out += "\"severity\":" + quoted(to_string(d.severity)) + ",";
    if (d.rule != kNoRule) {
      out += "\"rule\":" + std::to_string(d.rule) + ",";
    }
    if (d.related_rule != kNoRule) {
      out += "\"related_rule\":" + std::to_string(d.related_rule) + ",";
    }
    if (d.line != 0) {
      out += "\"line\":" + std::to_string(d.line) + ",";
    }
    out += "\"message\":" + quoted(d.message) + ",";
    if (d.witness.has_value()) {
      const Witness& w = *d.witness;
      out += "\"witness\":{";
      out += "\"class\":" +
             quoted(format_class(input.policy->schema(), w.conjuncts)) + ",";
      // Packet values are emitted as strings: Value is 64-bit and JSON
      // numbers are not reliably lossless past 2^53.
      out += "\"packet\":[";
      const Packet packet = witness_packet(w);
      for (std::size_t f = 0; f < packet.size(); ++f) {
        if (f != 0) {
          out += ",";
        }
        out += quoted(std::to_string(packet[f]));
      }
      out += "]";
      if (w.observed.has_value()) {
        out += ",\"observed\":" + quoted(input.decisions->name(*w.observed));
      }
      if (w.expected.has_value()) {
        out += ",\"expected\":" + quoted(input.decisions->name(*w.expected));
      }
      out += "},";
    }
    out += "\"fingerprint\":" + quoted(d.fingerprint);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace dfw::lint
