// Baseline suppression: gate CI on *new* findings only.
//
// A baseline file records the fingerprints of the findings a project has
// accepted (one per line, with the check id as a trailing comment for
// humans). Applying it to a report removes every diagnostic whose
// fingerprint is recorded, so the CI gate fails only on findings
// introduced since the baseline was written. Fingerprints hash the check
// id plus the *texts* of the rules involved (lint/diagnostic.hpp), so
// reordering rules or editing unrelated ones does not churn the file.
//
// The format is deliberately strict — parse_baseline either accepts a
// line or reports it; a malformed baseline must fail the gate loudly, not
// silently un-suppress everything.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint/engine.hpp"

namespace dfw::lint {

/// A set of accepted fingerprints.
struct Baseline {
  std::vector<std::string> fingerprints;  ///< sorted, deduplicated
};

/// Parses baseline text. Grammar per line: blank (any mix of space, tab,
/// \v, \f), '#'-comment, or a 16-lower-hex-digit fingerprint optionally
/// followed by whitespace and a trailing comment; a leading UTF-8 BOM is
/// ignored. An empty or whitespace-only file is a valid baseline with no
/// suppressions. Returns nullopt and fills `error` (when non-null, with a
/// line-numbered message) on anything else.
std::optional<Baseline> parse_baseline(std::string_view text,
                                       std::string* error);

/// Renders the report's findings as baseline text: header comment, then
/// one "<fingerprint>  # <check-id>" line per distinct fingerprint,
/// sorted. Deterministic.
std::string render_baseline(const LintReport& report);

/// Removes diagnostics whose fingerprint is in the baseline; returns how
/// many were suppressed.
std::size_t apply_baseline(LintReport& report, const Baseline& baseline);

}  // namespace dfw::lint
