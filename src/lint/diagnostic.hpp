// Structured lint findings.
//
// Every analysis in the lint engine — semantic passes over the FDD, the
// syntactic pair scan, adapter-level notes — reports through one shape: a
// Diagnostic with a stable check id, a severity, the rule indices it
// concerns, a human message, and (for semantic findings) an exact witness
// traffic class that *reproduces* the misbehavior. Witnesses are the
// contract that separates this linter from a heuristic one: an
// error-severity semantic finding always carries a packet set the caller
// can evaluate against the policy to observe the problem first-hand.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "fw/decision.hpp"
#include "fw/packet.hpp"
#include "fw/policy.hpp"

namespace dfw::lint {

enum class Severity {
  kError,    ///< the policy misbehaves; a witness class demonstrates it
  kWarning,  ///< suspicious but not provably wrong (or an absence finding)
  kNote,     ///< stylistic / compaction opportunity
};

/// Stable identifier: "error" | "warning" | "note" (also the SARIF level).
const char* to_string(Severity severity);

/// Sentinel for "no rule index" (whole-policy or source-level findings).
inline constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);

/// An exact traffic class demonstrating a semantic finding: one nonempty
/// value set per schema field. `observed` is the decision the policy
/// actually assigns to every packet in the class (unset when the class
/// falls off the policy entirely — the not-comprehensive case);
/// `expected` is the decision a property required.
struct Witness {
  std::vector<IntervalSet> conjuncts;
  std::optional<Decision> observed;
  std::optional<Decision> expected;
};

/// A concrete packet inside the witness class (the lowest corner), for
/// one-packet reproduction: policy.evaluate(witness_packet(w)).
Packet witness_packet(const Witness& witness);

/// One lint finding.
struct Diagnostic {
  std::string check_id;  ///< stable dotted id, e.g. "policy.shadowed-rule"
  Severity severity = Severity::kWarning;
  std::size_t rule = kNoRule;          ///< primary rule index (0-based)
  std::size_t related_rule = kNoRule;  ///< e.g. the earlier shadowing rule
  std::size_t line = 0;                ///< 1-based source line; 0 = unknown
  std::string message;
  std::optional<Witness> witness;
  /// Content fingerprint for baseline suppression (16 hex chars), filled
  /// in by the engine: FNV-1a over the check id and the texts of the
  /// rules involved — stable across reorderings and unrelated edits.
  std::string fingerprint;
};

/// Computes a diagnostic's baseline fingerprint. `policy`/`decisions` may
/// be null when no rule text is available (adapter findings fall back to
/// the source line).
std::string compute_fingerprint(const Diagnostic& d, const Policy* policy,
                                const DecisionSet* decisions);

/// Renders a traffic class in the rule-like report style ("S in ... ^ N in
/// ..."; "all packets" when unconstrained).
std::string format_class(const Schema& schema,
                         const std::vector<IntervalSet>& conjuncts);

}  // namespace dfw::lint
