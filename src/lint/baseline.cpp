#include "lint/baseline.hpp"

#include <algorithm>
#include <map>

namespace dfw::lint {
namespace {

bool is_hex_digit(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

}  // namespace

std::optional<Baseline> parse_baseline(std::string_view text,
                                       std::string* error) {
  Baseline baseline;
  // Editors routinely stamp a UTF-8 BOM on an otherwise-empty file; an
  // empty or whitespace-only baseline means "no suppressions accepted
  // yet", never a parse error.
  if (text.size() >= 3 && text.substr(0, 3) == "\xEF\xBB\xBF") {
    text.remove_prefix(3);
  }
  std::size_t line_no = 0;
  std::size_t start = 0;
  const auto fail = [&](const std::string& message) -> std::optional<Baseline> {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + message;
    }
    return std::nullopt;
  };
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++line_no;
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;
    if (!line.empty() && line.back() == '\r') {
      line.remove_suffix(1);
    }
    // The full horizontal-whitespace set: a line of \f/\v (or the spaces
    // and tabs everyone expects) is blank, not a malformed fingerprint.
    const std::size_t first = line.find_first_not_of(" \t\v\f");
    if (first == std::string_view::npos || line[first] == '#') {
      continue;
    }
    line.remove_prefix(first);
    if (line.size() < 16) {
      return fail("expected a 16-hex-digit fingerprint");
    }
    const std::string_view fp = line.substr(0, 16);
    if (!std::all_of(fp.begin(), fp.end(), is_hex_digit)) {
      return fail("fingerprint is not 16 lowercase hex digits");
    }
    const std::string_view rest = line.substr(16);
    const std::size_t tail = rest.find_first_not_of(" \t");
    if (tail != std::string_view::npos && rest[tail] != '#') {
      return fail("unexpected text after fingerprint");
    }
    baseline.fingerprints.emplace_back(fp);
  }
  std::sort(baseline.fingerprints.begin(), baseline.fingerprints.end());
  baseline.fingerprints.erase(std::unique(baseline.fingerprints.begin(),
                                          baseline.fingerprints.end()),
                              baseline.fingerprints.end());
  return baseline;
}

std::string render_baseline(const LintReport& report) {
  // fingerprint -> check id; the map sorts and deduplicates in one go
  // (identical fingerprints have identical check ids by construction).
  std::map<std::string, std::string> entries;
  for (const Diagnostic& d : report.diagnostics) {
    entries.emplace(d.fingerprint, d.check_id);
  }
  std::string out =
      "# dfw-lint baseline: accepted findings, one fingerprint per line.\n"
      "# Regenerate with: dfw_lint --write-baseline=<this file> <policy>\n";
  for (const auto& [fingerprint, check_id] : entries) {
    out += fingerprint + "  # " + check_id + "\n";
  }
  return out;
}

std::size_t apply_baseline(LintReport& report, const Baseline& baseline) {
  const std::size_t before = report.diagnostics.size();
  report.diagnostics.erase(
      std::remove_if(report.diagnostics.begin(), report.diagnostics.end(),
                     [&](const Diagnostic& d) {
                       return std::binary_search(
                           baseline.fingerprints.begin(),
                           baseline.fingerprints.end(), d.fingerprint);
                     }),
      report.diagnostics.end());
  return before - report.diagnostics.size();
}

}  // namespace dfw::lint
