// The builtin lint passes. Check-id naming scheme (docs/lint.md):
//
//   adapter.<frontend>.<finding>  source-level, collected while parsing
//   policy.<finding>              semantic, about the whole rule sequence
//   rule.<finding>                local to one or two concrete rules
//   property.<finding>            declarative property checks
//   lint.<finding>                about the lint run itself
//
// Error severity is reserved for findings the engine can *demonstrate*:
// every error-severity semantic diagnostic carries a witness traffic
// class, computed through the FDD query engine, that reproduces the
// misbehavior. Absence findings ("no packet ever ...", "removable") are
// warnings; compaction opportunities are notes.

#include "lint/passes.hpp"

#include <algorithm>
#include <string>

#include "analysis/anomaly.hpp"
#include "fw/format.hpp"
#include "gen/generate.hpp"
#include "gen/redundancy.hpp"
#include "query/query.hpp"

namespace dfw::lint {
namespace {

std::string rule_ref(std::size_t index) {
  return "r" + std::to_string(index + 1);
}

std::string rule_text(const PassState& state, std::size_t index) {
  return format_rule(state.input.policy->schema(), *state.input.decisions,
                     state.input.policy->rule(index));
}

std::size_t source_line(const PassState& state, std::size_t rule) {
  return rule < state.input.rule_lines.size() ? state.input.rule_lines[rule]
                                              : 0;
}

// The exact witness for a rule-anchored semantic finding: run the query
// engine restricted to the rule's predicate and take the first resulting
// traffic class — preferring one whose observed decision differs from the
// rule's own, which is the class that demonstrates the packets are *not*
// getting this rule's treatment. Falls back to the bare predicate when
// the (partial) diagram covers none of it.
Witness predicate_witness(PassState& state, const Rule& rule) {
  Query q;
  q.constraints = rule.conjuncts();
  const std::vector<QueryResult> results = run_query(state.fdd(), q);
  Witness w;
  if (results.empty()) {
    w.conjuncts = rule.conjuncts();
    return w;
  }
  const QueryResult* pick = &results.front();
  for (const QueryResult& r : results) {
    if (r.decision != rule.decision()) {
      pick = &r;
      break;
    }
  }
  w.conjuncts = pick->conjuncts;
  w.observed = pick->decision;
  return w;
}

// --- pass: adapter ---------------------------------------------------------
// Forwards the notes an adapter frontend collected while parsing. These
// are source-level (line-anchored) findings about accepted-yet-suspicious
// input; the adapters themselves stay behavior-preserving.

void pass_adapter(PassState& state, std::vector<Diagnostic>& out) {
  for (const AdapterNote& note : state.input.adapter_notes) {
    Diagnostic d;
    d.check_id = note.check_id;
    d.severity = Severity::kWarning;
    d.rule = note.rule == AdapterNote::kNoRule ? kNoRule : note.rule;
    d.line = note.line;
    d.message = note.message;
    out.push_back(std::move(d));
  }
}

// --- pass: syntax-pairs ----------------------------------------------------
// The Al-Shaer & Hamed rule-pair taxonomy via the (parallelizable) pair
// scan. Shadowing is an error with a query-engine witness; the other
// kinds are order-sensitivity warnings / style notes.

void pass_syntax_pairs(PassState& state, std::vector<Diagnostic>& out) {
  AnomalyOptions scan;
  scan.run.executor = state.options.run.executor;
  scan.run.context = state.options.run.context;
  scan.run.obs = state.options.run.obs;
  for (const Anomaly& a : find_anomalies(*state.input.policy, scan)) {
    Diagnostic d;
    d.rule = a.second;
    d.related_rule = a.first;
    d.line = source_line(state, a.second);
    switch (a.kind) {
      case AnomalyKind::kShadowing:
        d.check_id = "policy.shadowed-rule";
        d.severity = Severity::kError;
        d.message = rule_ref(a.second) + " (" + rule_text(state, a.second) +
                    ") is shadowed by " + rule_ref(a.first) + " (" +
                    rule_text(state, a.first) +
                    "): it can never first-match with its own decision";
        d.witness = predicate_witness(state,
                                      state.input.policy->rule(a.second));
        break;
      case AnomalyKind::kRedundancyPair:
        d.check_id = "policy.redundant-pair";
        d.severity = Severity::kWarning;
        d.message = rule_ref(a.second) + " matches a subset of " +
                    rule_ref(a.first) +
                    " with the same decision; it looks removable (confirm "
                    "with the redundancy pass)";
        break;
      case AnomalyKind::kGeneralization:
        d.check_id = "policy.generalization";
        d.severity = Severity::kNote;
        d.message = rule_ref(a.second) + " generalizes " + rule_ref(a.first) +
                    " with a different decision; legitimate fallback "
                    "shape, but order-dependent";
        break;
      case AnomalyKind::kCorrelation: {
        d.check_id = "policy.correlation";
        d.severity = Severity::kWarning;
        d.message = rule_ref(a.second) + " and " + rule_ref(a.first) +
                    " overlap without nesting and decide differently; "
                    "their relative order changes the overlap's fate";
        // Witness: the overlap region, as the query engine sees it.
        const Rule& earlier = state.input.policy->rule(a.first);
        const Rule& later = state.input.policy->rule(a.second);
        std::vector<IntervalSet> overlap;
        overlap.reserve(later.conjuncts().size());
        for (std::size_t f = 0; f < later.conjuncts().size(); ++f) {
          overlap.push_back(later.conjunct(f).intersect(earlier.conjunct(f)));
        }
        Query q;
        q.constraints = std::move(overlap);
        const std::vector<QueryResult> classes =
            run_query(state.fdd(), q);
        if (!classes.empty()) {
          Witness w;
          w.conjuncts = classes.front().conjuncts;
          w.observed = classes.front().decision;
          d.witness = std::move(w);
        }
        break;
      }
    }
    out.push_back(std::move(d));
  }
}

// --- pass: coverage --------------------------------------------------------
// Whole-policy coverage gaps: packets no rule decides, and decisions no
// packet reaches ("no packet is ever logged").

// Finds a traffic class the (partial) diagram does not cover; conjuncts
// must come in sized to the schema with full domains.
bool find_uncovered(const Schema& schema, const FddNode& node,
                    std::vector<IntervalSet>& conjuncts) {
  if (node.is_terminal()) {
    return false;
  }
  const IntervalSet uncovered =
      schema.domain_set(node.field).subtract(node.edge_label_union());
  if (!uncovered.empty()) {
    conjuncts[node.field] = uncovered;
    return true;
  }
  for (const FddEdge& e : node.edges) {
    conjuncts[node.field] = e.label;
    if (find_uncovered(schema, *e.target, conjuncts)) {
      return true;
    }
  }
  conjuncts[node.field] = schema.domain_set(node.field);
  return false;
}

void pass_coverage(PassState& state, std::vector<Diagnostic>& out) {
  const Schema& schema = state.input.policy->schema();
  if (!state.comprehensive()) {
    std::vector<IntervalSet> conjuncts;
    conjuncts.reserve(schema.field_count());
    for (std::size_t f = 0; f < schema.field_count(); ++f) {
      conjuncts.push_back(schema.domain_set(f));
    }
    Diagnostic d;
    d.check_id = "policy.not-comprehensive";
    d.severity = Severity::kError;
    if (find_uncovered(schema, state.fdd().root(), conjuncts)) {
      d.message = "no rule matches " + format_class(schema, conjuncts) +
                  "; add a final catch-all";
      Witness w;
      w.conjuncts = std::move(conjuncts);
      d.witness = std::move(w);  // observed unset: the class falls off
    } else {
      d.message = "policy is not comprehensive; add a final catch-all";
    }
    out.push_back(std::move(d));
  }
  const std::vector<Decision> reachable =
      reachable_decisions(state.fdd());
  for (Decision dec = 0; dec < state.input.decisions->size(); ++dec) {
    if (std::find(reachable.begin(), reachable.end(), dec) !=
        reachable.end()) {
      continue;
    }
    Diagnostic d;
    d.check_id = "policy.decision-unreachable";
    d.severity = Severity::kWarning;
    d.message = "no packet is ever mapped to '" +
                state.input.decisions->name(dec) +
                "': every rule deciding it is unreachable or absent";
    out.push_back(std::move(d));
  }
}

// --- pass: dead-rules ------------------------------------------------------
// Semantic dead rules via the incremental coverage FDD: rules no packet
// ever first-matches. Strictly stronger than pairwise shadowing (a rule
// can be killed by several earlier rules jointly).

void pass_dead_rules(PassState& state, std::vector<Diagnostic>& out) {
  AnomalyOptions scan;
  scan.run.context = state.options.run.context;
  scan.run.obs = state.options.run.obs;
  for (const std::size_t i : dead_rules(*state.input.policy, scan)) {
    Diagnostic d;
    d.check_id = "policy.dead-rule";
    d.severity = Severity::kError;
    d.rule = i;
    d.line = source_line(state, i);
    d.message = rule_ref(i) + " (" + rule_text(state, i) +
                ") is dead: the rules above it jointly cover its whole "
                "predicate, so no packet ever first-matches it";
    d.witness = predicate_witness(state, state.input.policy->rule(i));
    out.push_back(std::move(d));
  }
}

// --- pass: merge -----------------------------------------------------------
// Compaction opportunities: adjacent rules that fold into one, and the
// whole-policy "the generator can say this shorter" check.

void pass_merge(PassState& state, std::vector<Diagnostic>& out) {
  const Policy& policy = *state.input.policy;
  for (std::size_t i = 0; i + 1 < policy.size(); ++i) {
    const Rule& a = policy.rule(i);
    const Rule& b = policy.rule(i + 1);
    if (a.decision() != b.decision()) {
      continue;
    }
    std::size_t differing = kNoRule;
    bool mergeable = true;
    for (std::size_t f = 0; f < a.conjuncts().size(); ++f) {
      if (a.conjunct(f) == b.conjunct(f)) {
        continue;
      }
      if (differing != kNoRule) {
        mergeable = false;  // differ in two fields: union is not a rule
        break;
      }
      differing = f;
    }
    if (!mergeable || differing == kNoRule) {
      continue;  // identical adjacent rules are the pair scan's business
    }
    Diagnostic d;
    d.check_id = "rule.merge-adjacent";
    d.severity = Severity::kNote;
    d.rule = i;
    d.related_rule = i + 1;
    d.line = source_line(state, i);
    d.message = rule_ref(i) + " and " + rule_ref(i + 1) +
                " decide alike and differ only in " +
                policy.schema().field(differing).name +
                "; merge them into one rule with the union";
    out.push_back(std::move(d));
  }

  if (state.comprehensive()) {
    GenerateOptions gen;
    gen.run.context = state.options.run.context;
    gen.run.obs = state.options.run.obs;
    const Policy compact = generate_policy(state.fdd(), gen);
    if (compact.size() < policy.size()) {
      Diagnostic d;
      d.check_id = "policy.compactable";
      d.severity = Severity::kNote;
      d.message = "an equivalent policy with " +
                  std::to_string(compact.size()) + " rules exists (" +
                  std::to_string(policy.size()) +
                  " now); regenerate via the FDD to compact";
      out.push_back(std::move(d));
    }
  }
}

// --- pass: redundancy ------------------------------------------------------
// Semantic per-rule redundancy (the paper's ref [19]): rules whose
// removal provably leaves the packet-to-decision mapping unchanged. An
// absence finding — warning, no witness. The most expensive pass (one
// FDD equivalence check per rule); disable it for quick gates.

void pass_redundancy(PassState& state, std::vector<Diagnostic>& out) {
  if (!state.comprehensive()) {
    return;  // the coverage pass already reported the real problem
  }
  for (const std::size_t i :
       redundant_rules(*state.input.policy, state.options.run.context)) {
    Diagnostic d;
    d.check_id = "policy.redundant-rule";
    d.severity = Severity::kWarning;
    d.rule = i;
    d.line = source_line(state, i);
    d.message = rule_ref(i) + " (" + rule_text(state, i) +
                ") is redundant: removing it leaves every packet's "
                "decision unchanged";
    out.push_back(std::move(d));
  }
}

// --- pass: properties ------------------------------------------------------
// Declarative property checks against the already-built diagram. A failed
// for-all carries its first counterexample class as the witness; a failed
// exists is an absence finding.

void pass_properties(PassState& state, std::vector<Diagnostic>& out) {
  for (const Property& prop : state.input.properties) {
    if (!prop.scope.decision.has_value()) {
      Diagnostic d;
      d.check_id = "property.malformed";
      d.severity = Severity::kWarning;
      d.message = "property '" + prop.name +
                  "' has no required decision; skipped";
      out.push_back(std::move(d));
      continue;
    }
    const Decision required = *prop.scope.decision;
    Query q = prop.scope;
    q.decision.reset();
    const std::vector<QueryResult> classes = run_query(state.fdd(), q);
    if (prop.mode == PropertyMode::kForAll) {
      for (const QueryResult& r : classes) {
        if (r.decision == required) {
          continue;
        }
        Diagnostic d;
        d.check_id = "property.violation";
        d.severity = Severity::kError;
        d.message = "property '" + prop.name + "' violated: " +
                    format_class(state.input.policy->schema(), r.conjuncts) +
                    " maps to '" + state.input.decisions->name(r.decision) +
                    "', required '" + state.input.decisions->name(required) +
                    "'";
        Witness w;
        w.conjuncts = r.conjuncts;
        w.observed = r.decision;
        w.expected = required;
        d.witness = std::move(w);
        out.push_back(std::move(d));
        break;  // one witness per property keeps reports readable
      }
    } else {
      const bool satisfied =
          std::any_of(classes.begin(), classes.end(),
                      [&](const QueryResult& r) {
                        return r.decision == required;
                      });
      if (!satisfied) {
        Diagnostic d;
        d.check_id = "property.unsatisfied";
        d.severity = Severity::kWarning;
        d.message = "property '" + prop.name + "' unsatisfied: nothing in "
                    "its scope maps to '" +
                    state.input.decisions->name(required) + "'";
        out.push_back(std::move(d));
      }
    }
  }
}

}  // namespace

std::vector<LintPass> builtin_passes() {
  return {
      {"adapter", "source-level notes collected while parsing",
       pass_adapter},
      {"syntax-pairs", "rule-pair anomaly taxonomy (parallel pair scan)",
       pass_syntax_pairs},
      {"coverage", "comprehensiveness and unreachable decisions",
       pass_coverage},
      {"dead-rules", "rules no packet ever first-matches (semantic)",
       pass_dead_rules},
      {"merge", "adjacent-rule merges and whole-policy compaction",
       pass_merge},
      {"redundancy", "semantically removable rules (expensive)",
       pass_redundancy},
      {"properties", "declarative property checks", pass_properties},
  };
}

}  // namespace dfw::lint
