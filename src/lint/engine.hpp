// The lint engine: a registry of named, individually-toggleable analysis
// passes over one policy, federating the library's analyses — rule-pair
// anomalies, semantic dead rules, redundancy, coverage, property checks —
// plus source-level adapter notes behind a single structured-diagnostics
// API.
//
// Passes run in a fixed order, share lazily-built state (most importantly
// the policy's reduced FDD, built at most once per run, governed), and
// observe the run's RunContext: a breached budget or deadline stops the
// run at a pass boundary and the report comes back *partial, clearly
// marked* (complete = false, the breach's code and message attached) with
// every diagnostic found so far — the CompareOutcome pattern. Null
// executor/context/obs keep runs serial, ungoverned, and unobserved; the
// engine's output is deterministic for any executor and thread count.

#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "adapters/diag.hpp"
#include "analysis/property.hpp"
#include "lint/diagnostic.hpp"
#include "obs/obs.hpp"
#include "rt/govern.hpp"
#include "rt/run_options.hpp"

namespace dfw {
class Executor;
}  // namespace dfw

namespace dfw::lint {

/// Everything the engine analyses. Policy and decisions are borrowed and
/// must outlive the run.
struct LintInput {
  const Policy* policy = nullptr;
  const DecisionSet* decisions = nullptr;
  /// Artifact name for reports (a file path, or "<stdin>").
  std::string source_name = "<policy>";
  /// Source-level findings collected by an adapter frontend while parsing
  /// (parse_iptables_save / parse_cisco_acl notes overloads).
  std::vector<AdapterNote> adapter_notes;
  /// Declarative properties for the "properties" pass; empty skips it.
  std::vector<Property> properties;
  /// Optional rule-index -> 1-based source line map (parallel to
  /// policy->rules(), shorter is fine); used to anchor diagnostics.
  std::vector<std::size_t> rule_lines;
};

/// Per-run knobs.
struct LintOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.executor`
  /// (borrowed; null = serial) drives the parallelizable passes (the pair
  /// scan); output is identical for every executor. `run.context`
  /// (borrowed, nullable) governs the run; see the header comment.
  /// `run.obs` (borrowed, nullable sinks): the run emits a "lint" phase
  /// span plus one "lint_pass" span per executed pass.
  dfw::RunOptions run = {};

  /// Pass selection: when `passes` is nonempty only the named passes run;
  /// `disabled` passes are then removed. Unknown names are reported as a
  /// "lint.unknown-pass" warning, not an error.
  std::vector<std::string> passes;
  std::vector<std::string> disabled;
};

/// The outcome of a run. Diagnostics are ordered by pass, then by the
/// pass's own deterministic order — stable across runs, executors, and
/// thread counts.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  std::vector<std::string> passes_run;
  bool complete = true;
  ErrorCode status = ErrorCode::kOk;
  std::string message;  ///< empty when complete; Error::what() otherwise

  /// Count of diagnostics at the given severity.
  std::size_t count(Severity severity) const;
};

/// Shared lazily-built per-run state handed to every pass. The reduced
/// FDD of the policy is built (governed) on first use and reused by every
/// later pass in the run.
class PassState {
 public:
  PassState(const LintInput& input, const LintOptions& options);

  /// The policy's reduced FDD (possibly partial when the policy is not
  /// comprehensive). Governed by the run's context — throws dfw::Error on
  /// a breach. Never null once returned.
  const Fdd& fdd();

  /// True iff the policy is comprehensive (the FDD is complete). Builds
  /// the FDD on first use.
  bool comprehensive();

  const LintInput& input;
  const LintOptions& options;

 private:
  std::optional<Fdd> fdd_;
  bool checked_complete_ = false;
  bool comprehensive_ = false;
};

/// One registered pass. `name` and `description` must be string literals
/// (they feed trace spans and --list-passes output).
struct LintPass {
  const char* name;
  const char* description;
  std::function<void(PassState&, std::vector<Diagnostic>&)> fn;
};

class LintEngine {
 public:
  /// An engine with the builtin pass set registered, in execution order:
  /// adapter, syntax-pairs, coverage, dead-rules, merge, redundancy,
  /// properties.
  LintEngine();

  /// Registers an additional pass (appended after the builtins).
  void register_pass(LintPass pass);

  const std::vector<LintPass>& passes() const { return passes_; }

  /// Runs the selected passes over the input. Requires input.policy and
  /// input.decisions non-null. Governance breaches are absorbed into the
  /// report (complete = false); other exceptions propagate.
  LintReport run(const LintInput& input, const LintOptions& options) const;

 private:
  std::vector<LintPass> passes_;
};

}  // namespace dfw::lint
