// The builtin pass set (see engine.hpp for the execution model). Split
// from the engine so the pass implementations — the bulk of the analysis
// code — live in one translation unit.

#pragma once

#include <vector>

#include "lint/engine.hpp"

namespace dfw::lint {

/// The builtin passes in execution order.
std::vector<LintPass> builtin_passes();

}  // namespace dfw::lint
