// SARIF 2.1.0 emission and structural validation.
//
// SARIF (Static Analysis Results Interchange Format, OASIS) is the
// interchange format CI code-scanning surfaces ingest. The emitter
// produces a minimal, spec-conformant log: one run, the tool's rule
// catalog (the check ids actually fired, sorted), one result per
// diagnostic with level, message, location, and a partial fingerprint for
// result matching across runs. Like the JSON renderer it is a pure
// function of (input, report) — no timestamps, no absolute paths — so
// output is byte-deterministic across runs and thread counts.
//
// validate_sarif is the in-repo structural checker (the
// validate_chrome_trace pattern): it parses the text with the obs JSON
// DOM and verifies the invariants CI consumers rely on, returning every
// problem found rather than stopping at the first.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lint/engine.hpp"

namespace dfw::lint {

/// Renders the report as a SARIF 2.1.0 log (single run).
std::string render_sarif(const LintInput& input, const LintReport& report);

/// Outcome of validate_sarif: ok iff problems is empty.
struct SarifValidation {
  bool ok = true;
  std::vector<std::string> problems;
};

/// Structurally validates SARIF text: well-formed JSON; version "2.1.0";
/// a nonempty runs array; each run carrying tool.driver.name and a
/// results array; each result carrying a ruleId known to the driver's
/// rule catalog, a valid level, a message with text, and 1-based line
/// numbers when regions are present. Never throws on malformed input —
/// problems are reported in the result.
SarifValidation validate_sarif(std::string_view text);

}  // namespace dfw::lint
