#include "lint/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "fdd/construct.hpp"
#include "lint/passes.hpp"

namespace dfw::lint {

std::size_t LintReport::count(Severity severity) const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) {
      ++n;
    }
  }
  return n;
}

PassState::PassState(const LintInput& in, const LintOptions& opts)
    : input(in), options(opts) {}

const Fdd& PassState::fdd() {
  if (!fdd_) {
    ConstructOptions construct;
    construct.run.context = options.run.context;
    construct.run.obs = options.run.obs;
    fdd_.emplace(build_reduced_fdd(*input.policy, construct));
  }
  return *fdd_;
}

bool PassState::comprehensive() {
  if (!checked_complete_) {
    const Fdd& diagram = fdd();
    checked_complete_ = true;
    try {
      diagram.validate();
      comprehensive_ = true;
    } catch (const std::logic_error&) {
      comprehensive_ = false;
    }
  }
  return comprehensive_;
}

LintEngine::LintEngine() : passes_(builtin_passes()) {}

void LintEngine::register_pass(LintPass pass) {
  passes_.push_back(std::move(pass));
}

namespace {

bool contains(const std::vector<std::string>& names, const char* name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}

}  // namespace

LintReport LintEngine::run(const LintInput& input,
                           const LintOptions& options) const {
  if (input.policy == nullptr || input.decisions == nullptr) {
    throw std::invalid_argument("LintEngine::run: policy and decisions");
  }
  PhaseSpan span(options.run.obs, "lint");
  LintReport report;

  // Unknown pass names in the selection are findings, not crashes: the
  // caller's CI config should not brick the gate over a renamed pass.
  for (const std::vector<std::string>* list : {&options.passes,
                                               &options.disabled}) {
    for (const std::string& name : *list) {
      const bool known =
          std::any_of(passes_.begin(), passes_.end(),
                      [&](const LintPass& p) { return name == p.name; });
      if (!known) {
        Diagnostic d;
        d.check_id = "lint.unknown-pass";
        d.severity = Severity::kWarning;
        d.message = "no pass named '" + name + "'";
        report.diagnostics.push_back(std::move(d));
      }
    }
  }

  PassState state(input, options);
  for (const LintPass& pass : passes_) {
    if (!options.passes.empty() && !contains(options.passes, pass.name)) {
      continue;
    }
    if (contains(options.disabled, pass.name)) {
      continue;
    }
    try {
      // pass.name is a string literal per the LintPass contract, so it is
      // safe as a span name.
      PhaseSpan pass_span(options.run.obs, pass.name);
      pass.fn(state, report.diagnostics);
      report.passes_run.push_back(pass.name);
    } catch (const Error& e) {
      // Governance breach: report what we have, clearly marked. The
      // context is sticky-aborted, so later governed passes would fail
      // immediately anyway — stop at this boundary.
      report.complete = false;
      report.status = e.code();
      report.message = std::string("pass '") + pass.name + "': " + e.what();
      break;
    }
  }

  for (Diagnostic& d : report.diagnostics) {
    d.fingerprint = compute_fingerprint(d, input.policy, input.decisions);
  }
  return report;
}

}  // namespace dfw::lint
