// Report renderers: human text and deterministic machine JSON.
//
// Both renderings are pure functions of (input, report) — no timestamps,
// no environment, no pointer values — so two runs over the same policy
// produce byte-identical output whatever the executor or thread count.
// The SARIF rendering lives in lint/sarif.hpp.

#pragma once

#include <string>

#include "lint/engine.hpp"

namespace dfw::lint {

/// Compiler-style text: "<source>:<line>: <severity>: [<check>] <message>"
/// plus an indented witness line for semantic findings, ending with a
/// summary line (and a clearly-marked PARTIAL banner when the run was cut
/// short by governance).
std::string render_text(const LintInput& input, const LintReport& report);

/// Deterministic JSON: fixed key order, sorted pass lists, diagnostics in
/// report order. Schema:
///   {"version":1,"source":...,"complete":...,"status":...,
///    "message":...,"passes":[...],"counts":{...},"diagnostics":[...]}
std::string render_json(const LintInput& input, const LintReport& report);

}  // namespace dfw::lint
