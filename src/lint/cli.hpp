// The dfw_lint command-line driver, factored as a library function so
// tests exercise the full CLI — flag parsing, file IO, exit codes —
// in-process against string streams.
//
// Exit-code contract (the CI gate's interface):
//   0  clean: the run completed and no findings remain after baseline
//      suppression
//   1  findings: at least one unsuppressed diagnostic, or the run was cut
//      short by a governance budget (a partial result cannot claim clean)
//   2  usage or input error: bad flags, unreadable files, parse errors,
//      malformed baseline

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dfw::lint {

/// Runs the CLI. `args` excludes argv[0]. Reports go to `out`,
/// usage/errors to `err`. Returns the process exit code.
int run_lint_cli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);

}  // namespace dfw::lint
