#include "lint/diagnostic.hpp"

#include <cstdint>
#include <stdexcept>

#include "fw/format.hpp"

namespace dfw::lint {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

Packet witness_packet(const Witness& witness) {
  Packet p;
  p.reserve(witness.conjuncts.size());
  for (const IntervalSet& set : witness.conjuncts) {
    if (set.empty()) {
      throw std::logic_error("witness_packet: empty conjunct");
    }
    p.push_back(set.intervals().front().lo());
  }
  return p;
}

namespace {

// FNV-1a 64: tiny, dependency-free, and stable across platforms — all a
// baseline fingerprint needs.
class Fnv1a {
 public:
  void feed(std::string_view s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
    // Separator so ("ab","c") and ("a","bc") differ.
    hash_ ^= 0xffU;
    hash_ *= 0x100000001b3ULL;
  }

  std::string hex() const {
    static const char* const digits = "0123456789abcdef";
    std::string out(16, '0');
    std::uint64_t h = hash_;
    for (std::size_t i = 16; i-- > 0; h >>= 4) {
      out[i] = digits[h & 0xf];
    }
    return out;
  }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::string compute_fingerprint(const Diagnostic& d, const Policy* policy,
                                const DecisionSet* decisions) {
  Fnv1a h;
  h.feed(d.check_id);
  const auto feed_rule = [&](std::size_t index) {
    if (index == kNoRule) {
      h.feed("");
      return;
    }
    if (policy != nullptr && decisions != nullptr && index < policy->size()) {
      // The rule's text, not its index: inserting an unrelated rule above
      // must not churn the baseline.
      h.feed(format_rule(policy->schema(), *decisions, policy->rule(index)));
    } else {
      h.feed("#" + std::to_string(index));
    }
  };
  feed_rule(d.rule);
  feed_rule(d.related_rule);
  if (d.rule == kNoRule && d.related_rule == kNoRule) {
    // Whole-policy and adapter findings have no rule text to anchor on;
    // fall back to the message and source line.
    h.feed(d.message);
    h.feed(std::to_string(d.line));
  }
  return h.hex();
}

std::string format_class(const Schema& schema,
                         const std::vector<IntervalSet>& conjuncts) {
  std::string out;
  bool any_field = false;
  for (std::size_t f = 0; f < schema.field_count(); ++f) {
    if (conjuncts[f] == schema.domain_set(f)) {
      continue;
    }
    if (any_field) {
      out += " ^ ";
    }
    out += schema.field(f).name + " in " +
           format_spec(schema.field(f), conjuncts[f]);
    any_field = true;
  }
  if (!any_field) {
    out = "all packets";
  }
  return out;
}

}  // namespace dfw::lint
