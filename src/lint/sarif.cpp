#include "lint/sarif.hpp"

#include <algorithm>
#include <map>

#include "obs/json.hpp"

namespace dfw::lint {
namespace {

constexpr const char* kSarifVersion = "2.1.0";
constexpr const char* kSarifSchema =
    "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/"
    "sarif-schema-2.1.0.json";
constexpr const char* kFingerprintKey = "dfwFingerprint/v1";

std::string quoted(std::string_view s) {
  std::string out = "\"";
  json::escape(out, s);
  out += '"';
  return out;
}

// Per-check one-line descriptions for the rule catalog. Checks not listed
// (adapter notes carry their own context) fall back to the check id.
std::string rule_description(const std::string& id) {
  static const std::map<std::string, std::string> kDescriptions = {
      {"policy.shadowed-rule",
       "a later rule's predicate is contained in an earlier rule with a "
       "different decision"},
      {"policy.redundant-pair",
       "a later rule matches a subset of an earlier same-decision rule"},
      {"policy.generalization",
       "a later rule generalizes an earlier rule with a different decision"},
      {"policy.correlation",
       "two rules overlap without nesting and decide differently"},
      {"policy.dead-rule", "no packet ever first-matches this rule"},
      {"policy.not-comprehensive", "some packets match no rule"},
      {"policy.decision-unreachable",
       "a declared decision is assigned to no packet"},
      {"policy.redundant-rule",
       "removing this rule leaves every packet's decision unchanged"},
      {"policy.compactable", "an equivalent shorter policy exists"},
      {"rule.merge-adjacent",
       "adjacent same-decision rules differ in a single field"},
      {"property.violation", "a for-all property has a counterexample"},
      {"property.unsatisfied", "an exists property has no witness"},
      {"property.malformed", "a property lacks a required decision"},
      {"lint.unknown-pass", "the pass selection names an unknown pass"},
  };
  const auto it = kDescriptions.find(id);
  return it != kDescriptions.end() ? it->second : id;
}

}  // namespace

std::string render_sarif(const LintInput& input, const LintReport& report) {
  // Rule catalog: the check ids that fired, sorted and deduplicated so the
  // catalog (and every result's ruleIndex) is deterministic.
  std::vector<std::string> rule_ids;
  for (const Diagnostic& d : report.diagnostics) {
    rule_ids.push_back(d.check_id);
  }
  std::sort(rule_ids.begin(), rule_ids.end());
  rule_ids.erase(std::unique(rule_ids.begin(), rule_ids.end()),
                 rule_ids.end());
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    rule_index[rule_ids[i]] = i;
  }

  std::string out = "{";
  out += "\"$schema\":" + quoted(kSarifSchema) + ",";
  out += "\"version\":" + quoted(kSarifVersion) + ",";
  out += "\"runs\":[{";
  out += "\"tool\":{\"driver\":{";
  out += "\"name\":\"dfw-lint\",";
  out += "\"informationUri\":\"https://github.com/dfw/dfw\",";
  out += "\"rules\":[";
  for (std::size_t i = 0; i < rule_ids.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += "{\"id\":" + quoted(rule_ids[i]) +
           ",\"shortDescription\":{\"text\":" +
           quoted(rule_description(rule_ids[i])) + "}}";
  }
  out += "]}},";
  // An incomplete (governed, cut short) run is surfaced the SARIF way:
  // executionSuccessful=false plus a toolExecutionNotification.
  out += "\"invocations\":[{\"executionSuccessful\":";
  out += report.complete ? "true" : "false";
  if (!report.complete) {
    out += ",\"toolExecutionNotifications\":[{\"level\":\"error\","
           "\"message\":{\"text\":" +
           quoted("partial result: " + report.message) + "}}]";
  }
  out += "}],";
  out += "\"columnKind\":\"unicodeCodePoints\",";
  out += "\"results\":[";
  for (std::size_t i = 0; i < report.diagnostics.size(); ++i) {
    const Diagnostic& d = report.diagnostics[i];
    if (i != 0) {
      out += ",";
    }
    out += "{";
    out += "\"ruleId\":" + quoted(d.check_id) + ",";
    out += "\"ruleIndex\":" + std::to_string(rule_index[d.check_id]) + ",";
    out += "\"level\":" + quoted(to_string(d.severity)) + ",";
    std::string text = d.message;
    if (d.witness.has_value()) {
      text += " [witness: " +
              format_class(input.policy->schema(), d.witness->conjuncts);
      if (d.witness->observed.has_value()) {
        text += " -> " + input.decisions->name(*d.witness->observed);
      }
      text += "]";
    }
    out += "\"message\":{\"text\":" + quoted(text) + "},";
    out += "\"locations\":[{\"physicalLocation\":{";
    out += "\"artifactLocation\":{\"uri\":" + quoted(input.source_name) +
           "}";
    if (d.line != 0) {
      out += ",\"region\":{\"startLine\":" + std::to_string(d.line) + "}";
    }
    out += "}}],";
    out += "\"partialFingerprints\":{" + quoted(kFingerprintKey) + ":" +
           quoted(d.fingerprint) + "}";
    out += "}";
  }
  out += "]}]}";
  return out;
}

SarifValidation validate_sarif(std::string_view text) {
  SarifValidation v;
  const auto problem = [&](std::string message) {
    v.ok = false;
    v.problems.push_back(std::move(message));
  };

  std::string error;
  const std::optional<json::Value> doc = json::parse(text, &error);
  if (!doc.has_value()) {
    problem("not valid JSON: " + error);
    return v;
  }
  if (!doc->is_object()) {
    problem("top level is not an object");
    return v;
  }
  const json::Value* version = doc->find("version");
  if (version == nullptr || !version->is_string() ||
      version->string != kSarifVersion) {
    problem("version is not \"2.1.0\"");
  }
  const json::Value* runs = doc->find("runs");
  if (runs == nullptr || !runs->is_array() || runs->array.empty()) {
    problem("runs is not a nonempty array");
    return v;
  }
  for (std::size_t r = 0; r < runs->array.size(); ++r) {
    const json::Value& run = runs->array[r];
    const std::string where = "runs[" + std::to_string(r) + "]";
    if (!run.is_object()) {
      problem(where + " is not an object");
      continue;
    }
    const json::Value* tool = run.find("tool");
    const json::Value* driver =
        tool != nullptr ? tool->find("driver") : nullptr;
    const json::Value* name =
        driver != nullptr ? driver->find("name") : nullptr;
    if (name == nullptr || !name->is_string() || name->string.empty()) {
      problem(where + ".tool.driver.name is missing or empty");
    }
    // Collect the rule catalog so results can be cross-checked against it.
    std::vector<std::string> rule_ids;
    if (driver != nullptr) {
      if (const json::Value* rules = driver->find("rules");
          rules != nullptr && rules->is_array()) {
        for (const json::Value& rule : rules->array) {
          const json::Value* id = rule.find("id");
          if (id == nullptr || !id->is_string()) {
            problem(where + ": rule catalog entry without a string id");
            continue;
          }
          rule_ids.push_back(id->string);
        }
      }
    }
    const json::Value* results = run.find("results");
    if (results == nullptr || !results->is_array()) {
      problem(where + ".results is not an array");
      continue;
    }
    for (std::size_t i = 0; i < results->array.size(); ++i) {
      const json::Value& result = results->array[i];
      const std::string rwhere = where + ".results[" + std::to_string(i) +
                                 "]";
      if (!result.is_object()) {
        problem(rwhere + " is not an object");
        continue;
      }
      const json::Value* rule_id = result.find("ruleId");
      if (rule_id == nullptr || !rule_id->is_string()) {
        problem(rwhere + ".ruleId is missing");
      } else if (!rule_ids.empty() &&
                 std::find(rule_ids.begin(), rule_ids.end(),
                           rule_id->string) == rule_ids.end()) {
        problem(rwhere + ".ruleId '" + rule_id->string +
                "' is not in the driver's rule catalog");
      }
      if (const json::Value* level = result.find("level");
          level != nullptr &&
          (!level->is_string() ||
           (level->string != "error" && level->string != "warning" &&
            level->string != "note" && level->string != "none"))) {
        problem(rwhere + ".level is not error/warning/note/none");
      }
      const json::Value* message = result.find("message");
      const json::Value* text_v =
          message != nullptr ? message->find("text") : nullptr;
      if (text_v == nullptr || !text_v->is_string()) {
        problem(rwhere + ".message.text is missing");
      }
      if (const json::Value* locations = result.find("locations");
          locations != nullptr && locations->is_array()) {
        for (const json::Value& loc : locations->array) {
          const json::Value* physical = loc.find("physicalLocation");
          const json::Value* region =
              physical != nullptr ? physical->find("region") : nullptr;
          const json::Value* start =
              region != nullptr ? region->find("startLine") : nullptr;
          if (start != nullptr &&
              (!start->is_number() || start->number < 1)) {
            problem(rwhere + ": region.startLine is not a positive number");
          }
        }
      }
    }
  }
  return v;
}

}  // namespace dfw::lint
