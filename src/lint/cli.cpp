#include "lint/cli.hpp"

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "fw/parser.hpp"
#include "lint/baseline.hpp"
#include "lint/render.hpp"
#include "lint/sarif.hpp"
#include "rt/executor.hpp"

namespace dfw::lint {
namespace {

constexpr const char* kUsage =
    "usage: dfw_lint [options] <policy-file>\n"
    "       dfw_lint --validate-sarif=<file>\n"
    "       dfw_lint --list-passes\n"
    "\n"
    "input:\n"
    "  --format=native|iptables|ip6tables|cisco   input syntax (default\n"
    "        native: one rule per line over the five-tuple schema)\n"
    "  --chain=NAME      iptables chain (default INPUT)\n"
    "  --acl=ID          Cisco access-list id (default 101)\n"
    "  <policy-file>     path, or - for stdin\n"
    "\n"
    "passes:\n"
    "  --passes=a,b,c    run only these passes\n"
    "  --disable=a,b     remove passes from the selection\n"
    "  --list-passes     print the pass catalog and exit\n"
    "\n"
    "output:\n"
    "  --output=text|json|sarif    report format (default text)\n"
    "  --baseline=FILE             suppress findings recorded in FILE\n"
    "  --write-baseline=FILE       record current findings, then exit 0\n"
    "\n"
    "resources:\n"
    "  --max-nodes=N     abort FDD work past N nodes (partial result)\n"
    "  --threads=N       worker threads for the pair scan (default 0)\n"
    "\n"
    "exit codes: 0 clean, 1 findings or partial result, 2 usage/parse "
    "error\n";

struct CliOptions {
  std::string format = "native";
  std::string chain = "INPUT";
  std::string acl = "101";
  std::vector<std::string> passes;
  std::vector<std::string> disabled;
  bool list_passes = false;
  std::string output = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string validate_sarif_path;
  std::size_t max_nodes = 0;
  std::size_t threads = 0;
  std::vector<std::string> files;
};

std::vector<std::string> split_csv(std::string_view list) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string_view item = list.substr(
        start,
        comma == std::string_view::npos ? std::string_view::npos
                                        : comma - start);
    if (!item.empty()) {
      out.emplace_back(item);
    }
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

std::optional<std::size_t> parse_size(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  std::size_t value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9' || value > (SIZE_MAX - 9) / 10) {
      return std::nullopt;
    }
    value = value * 10 + static_cast<std::size_t>(c - '0');
  }
  return value;
}

std::optional<std::string> slurp(const std::string& path, std::ostream& err) {
  if (path == "-") {
    std::ostringstream buf;
    buf << std::cin.rdbuf();
    return buf.str();
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    err << "dfw_lint: cannot open " << path << "\n";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int run_lint_cli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  CliOptions opts;
  for (const std::string& arg : args) {
    const auto value_of = [&](std::string_view prefix)
        -> std::optional<std::string> {
      if (arg.rfind(prefix, 0) != 0) {
        return std::nullopt;
      }
      return arg.substr(prefix.size());
    };
    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    }
    if (arg == "--list-passes") {
      opts.list_passes = true;
    } else if (const auto v = value_of("--format=")) {
      opts.format = *v;
      if (opts.format != "native" && opts.format != "iptables" &&
          opts.format != "ip6tables" && opts.format != "cisco") {
        err << "dfw_lint: unknown format '" << opts.format << "'\n";
        return 2;
      }
    } else if (const auto v = value_of("--chain=")) {
      opts.chain = *v;
    } else if (const auto v = value_of("--acl=")) {
      opts.acl = *v;
    } else if (const auto v = value_of("--passes=")) {
      opts.passes = split_csv(*v);
    } else if (const auto v = value_of("--disable=")) {
      opts.disabled = split_csv(*v);
    } else if (const auto v = value_of("--output=")) {
      opts.output = *v;
      if (opts.output != "text" && opts.output != "json" &&
          opts.output != "sarif") {
        err << "dfw_lint: unknown output '" << opts.output << "'\n";
        return 2;
      }
    } else if (const auto v = value_of("--baseline=")) {
      opts.baseline_path = *v;
    } else if (const auto v = value_of("--write-baseline=")) {
      opts.write_baseline_path = *v;
    } else if (const auto v = value_of("--validate-sarif=")) {
      opts.validate_sarif_path = *v;
    } else if (const auto v = value_of("--max-nodes=")) {
      const auto n = parse_size(*v);
      if (!n.has_value()) {
        err << "dfw_lint: bad --max-nodes value '" << *v << "'\n";
        return 2;
      }
      opts.max_nodes = *n;
    } else if (const auto v = value_of("--threads=")) {
      const auto n = parse_size(*v);
      if (!n.has_value() || *n > 256) {
        err << "dfw_lint: bad --threads value '" << *v << "'\n";
        return 2;
      }
      opts.threads = *n;
    } else if (arg.rfind("--", 0) == 0) {
      err << "dfw_lint: unknown option '" << arg << "'\n" << kUsage;
      return 2;
    } else {
      opts.files.push_back(arg);
    }
  }

  const LintEngine engine;
  if (opts.list_passes) {
    for (const LintPass& pass : engine.passes()) {
      out << pass.name << "\t" << pass.description << "\n";
    }
    return 0;
  }
  if (!opts.validate_sarif_path.empty()) {
    const auto text = slurp(opts.validate_sarif_path, err);
    if (!text.has_value()) {
      return 2;
    }
    const SarifValidation v = validate_sarif(*text);
    if (v.ok) {
      out << opts.validate_sarif_path << ": valid SARIF 2.1.0\n";
      return 0;
    }
    for (const std::string& problem : v.problems) {
      err << opts.validate_sarif_path << ": " << problem << "\n";
    }
    return 1;
  }
  if (opts.files.size() != 1) {
    err << kUsage;
    return 2;
  }

  const auto text = slurp(opts.files[0], err);
  if (!text.has_value()) {
    return 2;
  }

  LintInput input;
  const DecisionSet& decisions = default_decisions();
  input.decisions = &decisions;
  input.source_name = opts.files[0] == "-" ? "<stdin>" : opts.files[0];
  std::optional<Policy> policy;
  try {
    if (opts.format == "iptables") {
      policy.emplace(
          parse_iptables_save(*text, opts.chain, &input.adapter_notes));
    } else if (opts.format == "ip6tables") {
      policy.emplace(
          parse_ip6tables_save(*text, opts.chain, &input.adapter_notes));
    } else if (opts.format == "cisco") {
      policy.emplace(parse_cisco_acl(*text, opts.acl, &input.adapter_notes));
    } else {
      policy.emplace(
          parse_policy(five_tuple_schema(), default_decisions(), *text));
    }
  } catch (const ParseError& e) {
    err << "dfw_lint: " << input.source_name << ": " << e.what() << "\n";
    return 2;
  }
  input.policy = &*policy;

  std::optional<Baseline> baseline;
  if (!opts.baseline_path.empty()) {
    const auto baseline_text = slurp(opts.baseline_path, err);
    if (!baseline_text.has_value()) {
      return 2;
    }
    std::string error;
    baseline = parse_baseline(*baseline_text, &error);
    if (!baseline.has_value()) {
      err << "dfw_lint: " << opts.baseline_path << ": " << error << "\n";
      return 2;
    }
  }

  LintOptions options;
  options.passes = opts.passes;
  options.disabled = opts.disabled;
  std::optional<RunContext> context;
  if (opts.max_nodes != 0) {
    RunContext::Config config;
    config.budgets.max_nodes = opts.max_nodes;
    context.emplace(std::move(config));
    options.context = &*context;
  }
  std::optional<Executor> executor;
  if (opts.threads != 0) {
    executor.emplace(opts.threads);
    options.executor = &*executor;
  }

  LintReport report = engine.run(input, options);
  if (!opts.write_baseline_path.empty()) {
    std::ofstream file(opts.write_baseline_path, std::ios::binary);
    if (!file) {
      err << "dfw_lint: cannot write " << opts.write_baseline_path << "\n";
      return 2;
    }
    file << render_baseline(report);
    out << "wrote " << report.diagnostics.size() << " finding(s) to "
        << opts.write_baseline_path << "\n";
    return 0;
  }
  std::size_t suppressed = 0;
  if (baseline.has_value()) {
    suppressed = apply_baseline(report, *baseline);
  }

  if (opts.output == "json") {
    out << render_json(input, report) << "\n";
  } else if (opts.output == "sarif") {
    out << render_sarif(input, report) << "\n";
  } else {
    out << render_text(input, report);
    if (suppressed != 0) {
      out << suppressed << " finding(s) suppressed by baseline\n";
    }
  }
  if (!report.complete) {
    return 1;
  }
  return report.diagnostics.empty() ? 0 : 1;
}

}  // namespace dfw::lint
