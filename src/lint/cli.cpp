#include "lint/cli.hpp"

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "cli_common.hpp"
#include "fw/parser.hpp"
#include "lint/baseline.hpp"
#include "lint/render.hpp"
#include "lint/sarif.hpp"
#include "rt/executor.hpp"

namespace dfw::lint {
namespace {

constexpr const char* kUsage =
    "usage: dfw_lint [options] <policy-file>\n"
    "       dfw_lint --validate-sarif=<file>\n"
    "       dfw_lint --list-passes\n"
    "\n"
    "input:\n"
    "  --format=native|iptables|ip6tables|cisco   input syntax (default\n"
    "        native: one rule per line over the five-tuple schema)\n"
    "  --chain=NAME      iptables chain (default INPUT)\n"
    "  --acl=ID          Cisco access-list id (default 101)\n"
    "  <policy-file>     path, or - for stdin\n"
    "\n"
    "passes:\n"
    "  --passes=a,b,c    run only these passes\n"
    "  --disable=a,b     remove passes from the selection\n"
    "  --list-passes     print the pass catalog and exit\n"
    "\n"
    "output:\n"
    "  --output=text|json|sarif    report format (default text)\n"
    "  --baseline=FILE             suppress findings recorded in FILE\n"
    "  --write-baseline=FILE       record current findings, then exit 0\n"
    "\n";

constexpr std::string_view kTool = "dfw_lint";

struct CliOptions {
  cli::CommonOptions common;
  std::string chain = "INPUT";
  std::string acl = "101";
  std::vector<std::string> passes;
  std::vector<std::string> disabled;
  bool list_passes = false;
  std::string output = "text";
  std::string baseline_path;
  std::string write_baseline_path;
  std::string validate_sarif_path;
};

}  // namespace

int run_lint_cli(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  CliOptions opts;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out << kUsage << cli::kCommonUsage;
      return cli::kExitClean;
    }
    switch (cli::consume_common_flag(opts.common, arg, err, kTool)) {
      case cli::FlagResult::kConsumed:
        continue;
      case cli::FlagResult::kError:
        return cli::kExitUsage;
      case cli::FlagResult::kNotMine:
        break;
    }
    if (arg == "--list-passes") {
      opts.list_passes = true;
    } else if (const auto v = cli::flag_value(arg, "--chain=")) {
      opts.chain = *v;
    } else if (const auto v = cli::flag_value(arg, "--acl=")) {
      opts.acl = *v;
    } else if (const auto v = cli::flag_value(arg, "--passes=")) {
      opts.passes = cli::split_csv(*v);
    } else if (const auto v = cli::flag_value(arg, "--disable=")) {
      opts.disabled = cli::split_csv(*v);
    } else if (const auto v = cli::flag_value(arg, "--output=")) {
      opts.output = *v;
      if (opts.output != "text" && opts.output != "json" &&
          opts.output != "sarif") {
        err << "dfw_lint: unknown output '" << opts.output << "'\n";
        return cli::kExitUsage;
      }
    } else if (const auto v = cli::flag_value(arg, "--baseline=")) {
      opts.baseline_path = *v;
    } else if (const auto v = cli::flag_value(arg, "--write-baseline=")) {
      opts.write_baseline_path = *v;
    } else if (const auto v = cli::flag_value(arg, "--validate-sarif=")) {
      opts.validate_sarif_path = *v;
    } else if (arg.rfind("--", 0) == 0) {
      err << "dfw_lint: unknown option '" << arg << "'\n"
          << kUsage << cli::kCommonUsage;
      return cli::kExitUsage;
    } else {
      opts.common.positional.push_back(arg);
    }
  }
  if (opts.common.format.empty()) {
    opts.common.format = "native";
  }
  if (opts.common.format != "native" && opts.common.format != "iptables" &&
      opts.common.format != "ip6tables" && opts.common.format != "cisco") {
    err << "dfw_lint: unknown format '" << opts.common.format << "'\n";
    return cli::kExitUsage;
  }

  const LintEngine engine;
  if (opts.list_passes) {
    for (const LintPass& pass : engine.passes()) {
      out << pass.name << "\t" << pass.description << "\n";
    }
    return cli::kExitClean;
  }
  if (!opts.validate_sarif_path.empty()) {
    const auto text = cli::slurp(opts.validate_sarif_path, err, kTool);
    if (!text.has_value()) {
      return cli::kExitUsage;
    }
    const SarifValidation v = validate_sarif(*text);
    if (v.ok) {
      out << opts.validate_sarif_path << ": valid SARIF 2.1.0\n";
      return cli::kExitClean;
    }
    for (const std::string& problem : v.problems) {
      err << opts.validate_sarif_path << ": " << problem << "\n";
    }
    return cli::kExitFindings;
  }
  if (opts.common.positional.size() != 1) {
    err << kUsage << cli::kCommonUsage;
    return cli::kExitUsage;
  }

  const auto text = cli::slurp(opts.common.positional[0], err, kTool);
  if (!text.has_value()) {
    return cli::kExitUsage;
  }

  LintInput input;
  const DecisionSet& decisions = default_decisions();
  input.decisions = &decisions;
  input.source_name = opts.common.positional[0] == "-"
                          ? "<stdin>"
                          : opts.common.positional[0];
  std::optional<Policy> policy;
  try {
    if (opts.common.format == "iptables") {
      policy.emplace(
          parse_iptables_save(*text, opts.chain, &input.adapter_notes));
    } else if (opts.common.format == "ip6tables") {
      policy.emplace(
          parse_ip6tables_save(*text, opts.chain, &input.adapter_notes));
    } else if (opts.common.format == "cisco") {
      policy.emplace(parse_cisco_acl(*text, opts.acl, &input.adapter_notes));
    } else {
      policy.emplace(
          parse_policy(five_tuple_schema(), default_decisions(), *text));
    }
  } catch (const ParseError& e) {
    err << "dfw_lint: " << input.source_name << ": " << e.what() << "\n";
    return cli::kExitUsage;
  }
  input.policy = &*policy;

  std::optional<Baseline> baseline;
  if (!opts.baseline_path.empty()) {
    const auto baseline_text = cli::slurp(opts.baseline_path, err, kTool);
    if (!baseline_text.has_value()) {
      return cli::kExitUsage;
    }
    std::string error;
    baseline = parse_baseline(*baseline_text, &error);
    if (!baseline.has_value()) {
      err << "dfw_lint: " << opts.baseline_path << ": " << error << "\n";
      return cli::kExitUsage;
    }
  }

  cli::CommonRuntime runtime(opts.common);
  LintOptions options;
  options.passes = opts.passes;
  options.disabled = opts.disabled;
  options.run = runtime.run_options();

  LintReport report = engine.run(input, options);
  if (!opts.write_baseline_path.empty()) {
    std::ofstream file(opts.write_baseline_path, std::ios::binary);
    if (!file) {
      err << "dfw_lint: cannot write " << opts.write_baseline_path << "\n";
      return cli::kExitUsage;
    }
    file << render_baseline(report);
    out << "wrote " << report.diagnostics.size() << " finding(s) to "
        << opts.write_baseline_path << "\n";
    return runtime.finish(err, kTool);
  }
  std::size_t suppressed = 0;
  if (baseline.has_value()) {
    suppressed = apply_baseline(report, *baseline);
  }

  if (opts.output == "json") {
    out << render_json(input, report) << "\n";
  } else if (opts.output == "sarif") {
    out << render_sarif(input, report) << "\n";
  } else {
    out << render_text(input, report);
    if (suppressed != 0) {
      out << suppressed << " finding(s) suppressed by baseline\n";
    }
  }
  const int trace_status = runtime.finish(err, kTool);
  if (trace_status != cli::kExitClean) {
    return trace_status;
  }
  if (!report.complete) {
    return cli::kExitFindings;
  }
  return report.diagnostics.empty() ? cli::kExitClean : cli::kExitFindings;
}

}  // namespace dfw::lint
