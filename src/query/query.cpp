#include "query/query.hpp"

#include <algorithm>
#include <stdexcept>

#include "fdd/construct.hpp"
#include "fw/format.hpp"

namespace dfw {
namespace {

void collect(const Schema& schema, const FddNode& node,
             const Query& query, std::vector<IntervalSet>& conjuncts,
             std::vector<QueryResult>& out) {
  if (node.is_terminal()) {
    if (!query.decision || node.decision == *query.decision) {
      out.push_back({conjuncts, node.decision});
    }
    return;
  }
  // Constraint for this field: the query's, or the whole domain.
  const IntervalSet domain{schema.domain(node.field)};
  const IntervalSet& wanted = query.constraints[node.field].empty()
                                  ? domain
                                  : query.constraints[node.field];
  for (const FddEdge& e : node.edges) {
    const IntervalSet common = e.label.intersect(wanted);
    if (common.empty()) {
      continue;  // the query cannot reach this branch
    }
    conjuncts[node.field] = common;
    collect(schema, *e.target, query, conjuncts, out);
  }
  // Restore: fields skipped by deeper paths keep the query constraint.
  conjuncts[node.field] = wanted;
}

}  // namespace

Query Query::any(const Schema& schema) {
  Query q;
  q.constraints.resize(schema.field_count());
  return q;
}

std::vector<QueryResult> run_query(const Fdd& fdd, const Query& query) {
  const Schema& schema = fdd.schema();
  if (query.constraints.size() != schema.field_count()) {
    throw std::invalid_argument("run_query: constraint arity mismatch");
  }
  for (std::size_t f = 0; f < schema.field_count(); ++f) {
    if (!query.constraints[f].empty() &&
        !IntervalSet(schema.domain(f)).contains(query.constraints[f])) {
      throw std::invalid_argument("run_query: constraint exceeds domain of " +
                                  schema.field(f).name);
    }
  }
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema.field_count());
  for (std::size_t f = 0; f < schema.field_count(); ++f) {
    conjuncts.push_back(query.constraints[f].empty()
                            ? IntervalSet(schema.domain(f))
                            : query.constraints[f]);
  }
  std::vector<QueryResult> out;
  collect(schema, fdd.root(), query, conjuncts, out);
  return out;
}

std::vector<QueryResult> run_query(const Policy& policy, const Query& query) {
  return run_query(build_reduced_fdd(policy), query);
}

namespace {

void collect_decisions(const FddNode& node, std::vector<Decision>& out) {
  if (node.is_terminal()) {
    out.push_back(node.decision);
    return;
  }
  for (const FddEdge& e : node.edges) {
    collect_decisions(*e.target, out);
  }
}

}  // namespace

std::vector<Decision> reachable_decisions(const Fdd& fdd) {
  std::vector<Decision> out;
  collect_decisions(fdd.root(), out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string format_query_results(const Schema& schema,
                                 const DecisionSet& decisions,
                                 const std::vector<QueryResult>& results) {
  if (results.empty()) {
    return "no packets match the query\n";
  }
  std::string out;
  for (const QueryResult& r : results) {
    bool any_field = false;
    for (std::size_t f = 0; f < schema.field_count(); ++f) {
      if (r.conjuncts[f] == IntervalSet(schema.domain(f))) {
        continue;
      }
      if (any_field) {
        out += " ^ ";
      }
      out += schema.field(f).name + " in " +
             format_spec(schema.field(f), r.conjuncts[f]);
      any_field = true;
    }
    if (!any_field) {
      out += "all packets";
    }
    out += " -> " + decisions.name(r.decision) + "\n";
  }
  return out;
}

}  // namespace dfw
