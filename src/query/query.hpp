// Firewall queries over FDDs.
//
// The paper positions per-team analysis tools as complements used during
// the design phase (Sections 1.4 and 9), citing the authors' companion
// work on firewall queries [20]: questions of the form "which packets with
// dport = 25 does this firewall accept?". An FDD answers such questions
// exactly: intersect the query's constraints with every decision path and
// collect the nonempty remainders with the requested decision.

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fdd/fdd.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// A query: optional constraint per field (unconstrained = whole domain)
/// plus an optional decision filter (nullopt = any decision).
struct Query {
  /// One entry per schema field; empty IntervalSet means unconstrained.
  std::vector<IntervalSet> constraints;
  std::optional<Decision> decision;

  /// An unconstrained query over `schema` ("describe the whole policy").
  static Query any(const Schema& schema);
};

/// One query answer: a traffic class (nonempty set per field) and the
/// decision the firewall maps it to.
struct QueryResult {
  std::vector<IntervalSet> conjuncts;
  Decision decision;
};

/// Runs a query against an FDD. Results are the intersections of the
/// query constraints with each decision path, in path order; together
/// they partition exactly the queried packet set (restricted to the
/// decision filter when present).
std::vector<QueryResult> run_query(const Fdd& fdd, const Query& query);

/// Convenience: builds the (reduced) FDD internally.
std::vector<QueryResult> run_query(const Policy& policy, const Query& query);

/// The decisions some packet actually reaches in the diagram, sorted
/// ascending and deduplicated. A decision declared in the DecisionSet but
/// absent here is unreachable — no packet is ever mapped to it (the
/// "no packet is ever logged" class of coverage gap).
std::vector<Decision> reachable_decisions(const Fdd& fdd);

/// Renders results in the rule-like report style.
std::string format_query_results(const Schema& schema,
                                 const DecisionSet& decisions,
                                 const std::vector<QueryResult>& results);

}  // namespace dfw
