// Umbrella header: the whole dfw public API in one include.
//
// Fine-grained headers remain the recommended way to take dependencies
// from library code; this header is for applications and exploratory use.

#pragma once

#include "adapters/cisco.hpp"     // IWYU pragma: export
#include "adapters/emit.hpp"      // IWYU pragma: export
#include "adapters/iptables.hpp"  // IWYU pragma: export
#include "analysis/anomaly.hpp"   // IWYU pragma: export
#include "analysis/property.hpp"  // IWYU pragma: export
#include "bdd/bdd.hpp"            // IWYU pragma: export
#include "bdd/packet_encode.hpp"  // IWYU pragma: export
#include "diverse/discrepancy.hpp"  // IWYU pragma: export
#include "diverse/resolve.hpp"    // IWYU pragma: export
#include "diverse/workflow.hpp"   // IWYU pragma: export
#include "engine/classifier.hpp"  // IWYU pragma: export
#include "engine/trace.hpp"       // IWYU pragma: export
#include "fdd/builder.hpp"        // IWYU pragma: export
#include "fdd/compare.hpp"        // IWYU pragma: export
#include "fdd/construct.hpp"      // IWYU pragma: export
#include "fdd/dot.hpp"            // IWYU pragma: export
#include "fdd/fdd.hpp"            // IWYU pragma: export
#include "fdd/reduce.hpp"         // IWYU pragma: export
#include "fdd/serialize.hpp"      // IWYU pragma: export
#include "fdd/shape.hpp"          // IWYU pragma: export
#include "fdd/simplify.hpp"       // IWYU pragma: export
#include "fdd/stats.hpp"          // IWYU pragma: export
#include "fw/format.hpp"          // IWYU pragma: export
#include "fw/parser.hpp"          // IWYU pragma: export
#include "fw/permute.hpp"         // IWYU pragma: export
#include "fw/policy.hpp"          // IWYU pragma: export
#include "gen/generate.hpp"       // IWYU pragma: export
#include "gen/redundancy.hpp"     // IWYU pragma: export
#include "impact/impact.hpp"      // IWYU pragma: export
#include "impact/rule_diff.hpp"   // IWYU pragma: export
#include "net/prefix.hpp"         // IWYU pragma: export
#include "query/query.hpp"        // IWYU pragma: export
#include "rt/executor.hpp"        // IWYU pragma: export
#include "rt/parallel.hpp"        // IWYU pragma: export
#include "stateful/stateful.hpp"  // IWYU pragma: export
#include "synth/mutate.hpp"       // IWYU pragma: export
#include "synth/synth.hpp"        // IWYU pragma: export
