// Adapter-level lint notes.
//
// The frontends (iptables.hpp, cisco.hpp) reject inputs they cannot model
// with ParseError, but plenty of accepted input is still *suspicious*: a
// port match on a rule whose protocol has no ports, a rule that the chain
// flattening proves unreachable, an explicit copy of the implicit deny.
// Those findings belong to the input syntax — after conversion to the
// neutral rule model the evidence is gone — so the parsers surface them
// here, as structured notes a caller (the lint engine's `adapter` pass)
// can forward as diagnostics. Parsing behaviour is unchanged: the notes
// overloads accept exactly the inputs the plain ones do.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dfw {

/// One frontend finding: the 1-based source line it was observed on, a
/// stable check id in the lint naming scheme ("adapter.<frontend>.<name>",
/// see docs/lint.md), and a human message. `rule` is the 0-based index of
/// the emitted rule the note concerns, or npos when the note concerns
/// input that produced no rule (e.g. a dropped unreachable rule).
struct AdapterNote {
  static constexpr std::size_t kNoRule = static_cast<std::size_t>(-1);

  std::size_t line = 0;
  std::string check_id;
  std::string message;
  std::size_t rule = kNoRule;
};

}  // namespace dfw
