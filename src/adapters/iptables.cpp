#include "adapters/iptables.hpp"

#include <cctype>
#include <map>
#include <charconv>
#include <string>
#include <vector>

#include "net/ipv6.hpp"
#include "net/prefix.hpp"

namespace dfw {
namespace {

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) {
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

std::optional<Value> parse_uint(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  Value v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

Interval parse_address(std::string_view spec, std::size_t line) {
  const auto prefix = parse_prefix(spec);
  if (!prefix) {
    throw ParseError(line, "bad address '" + std::string(spec) + "'");
  }
  return prefix->to_interval();
}

Interval parse_port_range(std::string_view spec, std::size_t line) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string_view::npos) {
    const auto port = parse_uint(spec);
    if (!port || *port > 65535) {
      throw ParseError(line, "bad port '" + std::string(spec) + "'");
    }
    return Interval::point(*port);
  }
  // iptables allows open-ended ranges ":1023" and "1024:".
  const std::string_view lo_s = spec.substr(0, colon);
  const std::string_view hi_s = spec.substr(colon + 1);
  const Value lo = lo_s.empty() ? 0 : parse_uint(lo_s).value_or(UINT64_MAX);
  const Value hi =
      hi_s.empty() ? 65535 : parse_uint(hi_s).value_or(UINT64_MAX);
  if (lo > 65535 || hi > 65535 || lo > hi) {
    throw ParseError(line, "bad port range '" + std::string(spec) + "'");
  }
  return Interval(lo, hi);
}

IntervalSet parse_multiport(std::string_view spec, std::size_t line) {
  IntervalSet set;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string_view item =
        spec.substr(start, comma == std::string_view::npos
                               ? std::string_view::npos
                               : comma - start);
    if (item.empty()) {
      throw ParseError(line, "empty multiport item");
    }
    set.add(parse_port_range(item, line));
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  return set;
}

Value parse_protocol(std::string_view spec, std::size_t line) {
  if (spec == "tcp") {
    return 6;
  }
  if (spec == "udp") {
    return 17;
  }
  if (spec == "icmp") {
    return 1;
  }
  const auto num = parse_uint(spec);
  if (!num || *num > 255) {
    throw ParseError(line, "unsupported protocol '" + std::string(spec) + "'");
  }
  return *num;
}

std::optional<Decision> builtin_target(std::string_view target) {
  if (target == "ACCEPT") {
    return kAccept;
  }
  if (target == "DROP" || target == "REJECT") {
    return kDiscard;
  }
  return std::nullopt;
}

Decision parse_policy_target(std::string_view target, std::size_t line) {
  const auto decision = builtin_target(target);
  if (!decision) {
    throw ParseError(line, "chain policy must be ACCEPT or DROP, got '" +
                               std::string(target) + "'");
  }
  return *decision;
}

// Field layout of the active schema: v4 uses one field per address, v6 a
// (hi, lo) pair.
struct FieldLayout {
  bool v6;
  std::size_t sip;
  std::size_t dip;
  std::size_t sport;
  std::size_t dport;
  std::size_t proto;
};

constexpr FieldLayout kV4Layout{false, 0, 1, 2, 3, 4};
constexpr FieldLayout kV6Layout{true, 0, 2, 4, 5, 6};

// Writes an address spec into the conjunct vector: one interval for v4,
// the (hi, lo) pair for v6.
void set_address(std::vector<IntervalSet>& conjuncts, std::size_t field,
                 bool v6, std::string_view spec, std::size_t line) {
  if (!v6) {
    conjuncts[field] = IntervalSet(parse_address(spec, line));
    return;
  }
  const auto prefix = parse_ipv6_prefix(spec);
  if (!prefix) {
    throw ParseError(line, "bad IPv6 address '" + std::string(spec) + "'");
  }
  const auto [hi, lo] = prefix->to_intervals();
  conjuncts[field] = IntervalSet(hi);
  conjuncts[field + 1] = IntervalSet(lo);
}

Policy parse_save_impl(std::string_view text, std::string_view chain,
                       const Schema& schema, const FieldLayout& layout,
                       std::vector<AdapterNote>* notes) {
  const auto add_note = [&](std::size_t line, const char* id,
                            std::string message,
                            std::size_t rule = AdapterNote::kNoRule) {
    if (notes != nullptr) {
      notes->push_back({line, id, std::move(message), rule});
    }
  };
  const std::size_t kSip = layout.sip;
  const std::size_t kDip = layout.dip;
  const std::size_t kSport = layout.sport;
  const std::size_t kDport = layout.dport;
  const std::size_t kProto = layout.proto;

  // Pass 1: collect every chain's rules (predicate + raw target) and the
  // built-in chains' policies.
  struct ChainRule {
    std::vector<IntervalSet> conjuncts;
    std::string target;
    std::size_t line;
  };
  std::map<std::string, std::vector<ChainRule>, std::less<>> chains;
  std::optional<Decision> chain_policy;

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++line_no;
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#' || tokens[0][0] == '*' ||
        tokens[0] == "COMMIT") {
      continue;  // comments, table headers, commit markers
    }
    // Chain header: ":INPUT DROP [0:0]" (user chains use "-").
    if (tokens[0][0] == ':') {
      if (!chains.try_emplace(std::string(tokens[0].substr(1))).second) {
        add_note(line_no, "adapter.iptables.duplicate-chain",
                 "chain '" + std::string(tokens[0].substr(1)) +
                     "' declared more than once");
      }
      if (tokens.size() >= 2 && tokens[0].substr(1) == chain &&
          tokens[1] != "-") {
        chain_policy = parse_policy_target(tokens[1], line_no);
      }
      continue;
    }
    if (tokens[0] != "-A") {
      throw ParseError(line_no, "unsupported directive '" +
                                    std::string(tokens[0]) + "'");
    }
    if (tokens.size() < 2) {
      throw ParseError(line_no, "-A without a chain name");
    }

    std::vector<IntervalSet> conjuncts;
    conjuncts.reserve(schema.field_count());
    for (std::size_t f = 0; f < schema.field_count(); ++f) {
      conjuncts.emplace_back(schema.domain(f));
    }
    std::optional<std::string> target;
    std::vector<std::string_view> proto_modules;

    const auto need_arg = [&](std::size_t i) -> std::string_view {
      if (i + 1 >= tokens.size()) {
        throw ParseError(line_no, "option '" + std::string(tokens[i]) +
                                      "' missing its argument");
      }
      return tokens[i + 1];
    };

    for (std::size_t i = 2; i < tokens.size(); ++i) {
      const std::string_view opt = tokens[i];
      if (opt == "!") {
        throw ParseError(line_no, "negation ('!') is not supported");
      }
      if (opt == "-s" || opt == "--source") {
        set_address(conjuncts, kSip, layout.v6, need_arg(i), line_no);
        ++i;
      } else if (opt == "-d" || opt == "--destination") {
        set_address(conjuncts, kDip, layout.v6, need_arg(i), line_no);
        ++i;
      } else if (opt == "-p" || opt == "--protocol") {
        conjuncts[kProto] =
            IntervalSet(Interval::point(parse_protocol(need_arg(i), line_no)));
        ++i;
      } else if (opt == "--sport" || opt == "--source-port") {
        conjuncts[kSport] = IntervalSet(parse_port_range(need_arg(i), line_no));
        ++i;
      } else if (opt == "--dport" || opt == "--destination-port") {
        conjuncts[kDport] = IntervalSet(parse_port_range(need_arg(i), line_no));
        ++i;
      } else if (opt == "--sports") {
        conjuncts[kSport] = parse_multiport(need_arg(i), line_no);
        ++i;
      } else if (opt == "--dports") {
        conjuncts[kDport] = parse_multiport(need_arg(i), line_no);
        ++i;
      } else if (opt == "-m") {
        const std::string_view module = need_arg(i);
        if (module != "tcp" && module != "udp" && module != "multiport") {
          throw ParseError(line_no, "unsupported match module '" +
                                        std::string(module) + "'");
        }
        if (module != "multiport") {
          proto_modules.push_back(module);
        }
        ++i;
      } else if (opt == "-j" || opt == "--jump") {
        target = std::string(need_arg(i));
        ++i;
      } else {
        throw ParseError(line_no,
                         "unsupported option '" + std::string(opt) + "'");
      }
    }
    if (!target) {
      throw ParseError(line_no, "rule has no -j target");
    }
    if (notes != nullptr) {
      const IntervalSet tcp_only(Interval::point(6));
      const IntervalSet udp_only(Interval::point(17));
      const bool proto_has_ports =
          conjuncts[kProto] == tcp_only || conjuncts[kProto] == udp_only;
      const bool ports_constrained =
          conjuncts[kSport] != schema.domain_set(kSport) ||
          conjuncts[kDport] != schema.domain_set(kDport);
      if (ports_constrained && !proto_has_ports) {
        add_note(line_no, "adapter.iptables.port-without-proto",
                 "port match without '-p tcp' or '-p udp' — real iptables "
                 "rejects this, and the constraint binds ports of "
                 "protocols that have none");
      }
      for (const std::string_view module : proto_modules) {
        const IntervalSet& expect = module == "tcp" ? tcp_only : udp_only;
        if (conjuncts[kProto] != expect) {
          add_note(line_no, "adapter.iptables.module-without-proto",
                   "'-m " + std::string(module) + "' without a matching '-p " +
                       std::string(module) + "'");
        }
      }
    }
    chains[std::string(tokens[1])].push_back(
        {std::move(conjuncts), std::move(*target), line_no});
  }

  // Pass 2: flatten the requested chain. A jump into a user chain runs the
  // chain's rules with each predicate narrowed by the jump predicate; a
  // packet matching the jump but nothing inside falls through to the next
  // caller rule, which is exactly what the flattened first-match order
  // produces. RETURN would need non-conjunctive predicate subtraction and
  // is rejected.
  if (chains.find(chain) == chains.end()) {
    // Built-in chains exist even when the save file never mentions them;
    // asking for anything else is a caller mistake.
    if (chain == "INPUT" || chain == "OUTPUT" || chain == "FORWARD") {
      chains.try_emplace(std::string(chain));
    } else {
      throw ParseError(line_no,
                       "chain '" + std::string(chain) + "' not found");
    }
  }
  std::vector<Rule> rules;
  std::vector<std::string_view> call_stack;
  const auto flatten = [&](auto&& self, const std::string& name,
                           const std::vector<IntervalSet>* context)
      -> void {
    for (const std::string_view open : call_stack) {
      if (open == name) {
        throw ParseError(0, "chain jump cycle through '" + name + "'");
      }
    }
    const auto chain_it = chains.find(name);
    if (chain_it == chains.end()) {
      throw ParseError(0, "jump to undefined chain '" + name + "'");
    }
    call_stack.push_back(chain_it->first);
    for (const ChainRule& cr : chain_it->second) {
      // Narrow by the jump context; an empty field kills the whole rule.
      std::vector<IntervalSet> conjuncts = cr.conjuncts;
      bool feasible = true;
      if (context != nullptr) {
        for (std::size_t f = 0; f < conjuncts.size(); ++f) {
          conjuncts[f] = conjuncts[f].intersect((*context)[f]);
          feasible = feasible && !conjuncts[f].empty();
        }
      }
      if (!feasible) {
        // The jump predicate and the rule's own predicate contradict: no
        // packet can both enter the chain here and match the rule.
        add_note(cr.line, "adapter.iptables.unreachable-rule",
                 "rule is unreachable when '" + name +
                     "' is entered from this jump (contradictory predicate)");
        continue;
      }
      if (const auto decision = builtin_target(cr.target)) {
        rules.emplace_back(schema, std::move(conjuncts), *decision);
        continue;
      }
      if (cr.target == "RETURN") {
        throw ParseError(cr.line,
                         "RETURN is not supported (cannot be flattened "
                         "into conjunctive rules)");
      }
      self(self, cr.target, &conjuncts);
    }
    call_stack.pop_back();
  };
  flatten(flatten, std::string(chain), nullptr);

  // The chain policy is the implicit final rule; default ACCEPT matches
  // iptables' built-in chains when no header was present.
  rules.push_back(Rule::catch_all(schema, chain_policy.value_or(kAccept)));
  return Policy(schema, std::move(rules));
}

}  // namespace

Policy parse_iptables_save(std::string_view text, std::string_view chain) {
  return parse_save_impl(text, chain, five_tuple_schema(), kV4Layout,
                         nullptr);
}

Policy parse_ip6tables_save(std::string_view text, std::string_view chain) {
  return parse_save_impl(text, chain, five_tuple_v6_schema(), kV6Layout,
                         nullptr);
}

Policy parse_iptables_save(std::string_view text, std::string_view chain,
                           std::vector<AdapterNote>* notes) {
  return parse_save_impl(text, chain, five_tuple_schema(), kV4Layout, notes);
}

Policy parse_ip6tables_save(std::string_view text, std::string_view chain,
                            std::vector<AdapterNote>* notes) {
  return parse_save_impl(text, chain, five_tuple_v6_schema(), kV6Layout,
                         notes);
}

}  // namespace dfw
