#include "adapters/cisco.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <utility>
#include <vector>

#include "net/ipv4.hpp"

namespace dfw {
namespace {

constexpr std::array<std::pair<std::string_view, Value>, 12> kServiceNames = {
    {{"ftp-data", 20},
     {"ftp", 21},
     {"ssh", 22},
     {"telnet", 23},
     {"smtp", 25},
     {"domain", 53},
     {"www", 80},
     {"pop3", 110},
     {"ntp", 123},
     {"snmp", 161},
     {"bgp", 179},
     {"https", 443}}};

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i > start) {
      tokens.push_back(line.substr(start, i - start));
    }
  }
  return tokens;
}

std::optional<Value> parse_uint(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  Value v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

Value parse_port(std::string_view s, std::size_t line) {
  for (const auto& [name, port] : kServiceNames) {
    if (s == name) {
      return port;
    }
  }
  const auto num = parse_uint(s);
  if (!num || *num > 65535) {
    throw ParseError(line, "bad port '" + std::string(s) + "'");
  }
  return *num;
}

// A token cursor over one ACL line.
struct Cursor {
  const std::vector<std::string_view>& tokens;
  std::size_t pos;
  std::size_t line;

  bool done() const { return pos >= tokens.size(); }
  std::string_view peek() const {
    return done() ? std::string_view{} : tokens[pos];
  }
  std::string_view next(const char* what) {
    if (done()) {
      throw ParseError(line, std::string("missing ") + what);
    }
    return tokens[pos++];
  }
};

Interval parse_address(Cursor& c) {
  const std::string_view tok = c.next("address");
  if (tok == "any") {
    return Interval(0, UINT32_MAX);
  }
  if (tok == "host") {
    const auto addr = parse_ipv4(c.next("host address"));
    if (!addr) {
      throw ParseError(c.line, "bad host address");
    }
    return Interval::point(*addr);
  }
  const auto base = parse_ipv4(tok);
  if (!base) {
    throw ParseError(c.line, "bad address '" + std::string(tok) + "'");
  }
  const auto wildcard = parse_ipv4(c.next("wildcard mask"));
  if (!wildcard) {
    throw ParseError(c.line, "bad wildcard mask");
  }
  // Contiguous wildcard: 0...01...1 — adding one makes a power of two.
  const std::uint64_t plus_one = std::uint64_t{*wildcard} + 1;
  if ((plus_one & (plus_one - 1)) != 0) {
    throw ParseError(c.line, "non-contiguous wildcard mask " +
                                 format_ipv4(*wildcard) + " is not supported");
  }
  if ((*base & *wildcard) != 0) {
    throw ParseError(c.line, "address bits set inside the wildcard mask");
  }
  return Interval(*base, *base | *wildcard);
}

// Port operator, if present. Returns the whole domain when the next token
// is not a port operator.
IntervalSet parse_port_op(Cursor& c) {
  const std::string_view op = c.peek();
  if (op != "eq" && op != "neq" && op != "lt" && op != "gt" && op != "range") {
    return IntervalSet(Interval(0, 65535));
  }
  c.next("port operator");
  if (op == "range") {
    const Value lo = parse_port(c.next("range start"), c.line);
    const Value hi = parse_port(c.next("range end"), c.line);
    if (lo > hi) {
      throw ParseError(c.line, "inverted port range");
    }
    return IntervalSet(Interval(lo, hi));
  }
  const Value p = parse_port(c.next("port"), c.line);
  if (op == "eq") {
    return IntervalSet(Interval::point(p));
  }
  if (op == "lt") {
    if (p == 0) {
      throw ParseError(c.line, "lt 0 matches nothing");
    }
    return IntervalSet(Interval(0, p - 1));
  }
  if (op == "gt") {
    if (p == 65535) {
      throw ParseError(c.line, "gt 65535 matches nothing");
    }
    return IntervalSet(Interval(p + 1, 65535));
  }
  // neq: everything except p — a two-interval set.
  IntervalSet set;
  if (p > 0) {
    set.add(Interval(0, p - 1));
  }
  if (p < 65535) {
    set.add(Interval(p + 1, 65535));
  }
  return set;
}

}  // namespace

Policy parse_cisco_acl(std::string_view text, std::string_view acl_id) {
  return parse_cisco_acl(text, acl_id, nullptr);
}

Policy parse_cisco_acl(std::string_view text, std::string_view acl_id,
                       std::vector<AdapterNote>* notes) {
  const Schema schema = five_tuple_schema();
  std::vector<Rule> rules;
  std::vector<std::size_t> rule_lines;
  const auto add_note = [&](std::size_t line, const char* id,
                            std::string message,
                            std::size_t rule = AdapterNote::kNoRule) {
    if (notes != nullptr) {
      notes->push_back({line, id, std::move(message), rule});
    }
  };

  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view line = text.substr(
        start, nl == std::string_view::npos ? std::string_view::npos
                                            : nl - start);
    ++line_no;
    start = (nl == std::string_view::npos) ? text.size() + 1 : nl + 1;

    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.size() < 3 || tokens[0] != "access-list" ||
        tokens[1] != acl_id) {
      continue;  // another ACL or unrelated configuration
    }
    if (tokens[2] == "remark") {
      continue;
    }
    Cursor c{tokens, 2, line_no};

    const std::string_view action = c.next("permit/deny");
    Decision decision;
    if (action == "permit") {
      decision = kAccept;
    } else if (action == "deny") {
      decision = kDiscard;
    } else {
      throw ParseError(line_no,
                       "expected permit or deny, got '" +
                           std::string(action) + "'");
    }

    const std::string_view proto = c.next("protocol");
    IntervalSet proto_set{Interval(0, 255)};
    bool ports_allowed = false;
    if (proto == "tcp") {
      proto_set = IntervalSet(Interval::point(6));
      ports_allowed = true;
    } else if (proto == "udp") {
      proto_set = IntervalSet(Interval::point(17));
      ports_allowed = true;
    } else if (proto == "icmp") {
      proto_set = IntervalSet(Interval::point(1));
    } else if (proto != "ip") {
      const auto num = parse_uint(proto);
      if (!num || *num > 255) {
        throw ParseError(line_no,
                         "unsupported protocol '" + std::string(proto) + "'");
      }
      proto_set = IntervalSet(Interval::point(*num));
    }

    const Interval src = parse_address(c);
    const IntervalSet sport = parse_port_op(c);
    const Interval dst = parse_address(c);
    const IntervalSet dport = parse_port_op(c);
    if (!ports_allowed &&
        (sport != IntervalSet(Interval(0, 65535)) ||
         dport != IntervalSet(Interval(0, 65535)))) {
      throw ParseError(line_no, "port operators require tcp or udp");
    }
    if (!c.done()) {
      const std::string_view trailing = c.next("");
      if (trailing != "log" && trailing != "log-input") {
        throw ParseError(line_no, "unsupported trailing token '" +
                                      std::string(trailing) + "'");
      }
      // Logging does not change the accept/discard mapping in this model.
      add_note(line_no, "adapter.cisco.log-ignored",
               "'" + std::string(trailing) +
                   "' does not affect the accept/discard mapping in this "
                   "model — decision coverage will not see a log decision",
               rules.size());
    }
    if (!c.done()) {
      throw ParseError(line_no, "unexpected tokens after 'log'");
    }

    Rule parsed(schema,
                std::vector<IntervalSet>{IntervalSet(src), IntervalSet(dst),
                                         sport, dport, proto_set},
                decision);
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (rules[i].conjuncts() != parsed.conjuncts()) {
        continue;
      }
      if (rules[i].decision() == parsed.decision()) {
        add_note(line_no, "adapter.cisco.duplicate-rule",
                 "entry repeats line " + std::to_string(rule_lines[i]) +
                     " exactly; the later copy never matters",
                 rules.size());
      } else {
        add_note(line_no, "adapter.cisco.conflicting-duplicate",
                 "entry has the same predicate as line " +
                     std::to_string(rule_lines[i]) +
                     " with the opposite action; first match wins, so this "
                     "line can never fire",
                 rules.size());
      }
      break;
    }
    rules.push_back(std::move(parsed));
    rule_lines.push_back(line_no);
  }

  if (rules.empty()) {
    throw ParseError(line_no, "no rules found for access-list " +
                                  std::string(acl_id));
  }
  if (rules.back() == Rule::catch_all(schema, kDiscard)) {
    add_note(rule_lines.back(), "adapter.cisco.redundant-implicit-deny",
             "explicit 'deny ip any any' duplicates the ACL's implicit deny",
             rules.size() - 1);
  }
  // Cisco's implicit deny closes every ACL.
  rules.push_back(Rule::catch_all(schema, kDiscard));
  return Policy(schema, std::move(rules));
}

}  // namespace dfw
