// iptables-save frontend.
//
// Converts (a well-defined subset of) `iptables-save` output into a
// five-tuple Policy so that production Linux firewalls can be fed to the
// comparison pipeline. Supported per-rule matches:
//
//   -A <chain>                       rule appended to <chain>
//   -s/--source      a.b.c.d[/len]   source prefix
//   -d/--destination a.b.c.d[/len]   destination prefix
//   -p/--protocol    tcp|udp|icmp|<num>
//   --sport/--dport  N | N:M         single port or range
//   -m multiport --sports/--dports   comma list of ports/ranges
//   -m tcp / -m udp                  accepted (no-op markers)
//   -j ACCEPT|DROP|REJECT            target (REJECT maps to discard)
//
// Chain policy headers (":INPUT DROP [0:0]") provide the implicit default
// appended as a final catch-all. Unsupported options (negation with '!',
// -i/-o interfaces, stateful -m conntrack, jumps to user chains, ...)
// raise ParseError rather than silently altering semantics.

#pragma once

#include <string_view>
#include <vector>

#include "adapters/diag.hpp"
#include "fw/parser.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// Parses `iptables-save` text and extracts the rules of `chain` (e.g.
/// "INPUT") as a Policy over five_tuple_schema(). The chain's policy
/// target (or ACCEPT when the header is absent) becomes the final
/// catch-all. Throws ParseError with line information on malformed or
/// unsupported input.
Policy parse_iptables_save(std::string_view text, std::string_view chain);

/// The ip6tables-save counterpart: identical grammar, IPv6 addresses, and
/// a Policy over five_tuple_v6_schema() (paired 64-bit address halves).
Policy parse_ip6tables_save(std::string_view text, std::string_view chain);

/// Lint-aware variants: identical parsing (same accepted inputs, same
/// ParseErrors, same resulting Policy), but accepted-yet-suspicious input
/// additionally appends AdapterNotes to `notes` (borrowed, nullable):
///   adapter.iptables.port-without-proto   port match, protocol not tcp/udp
///   adapter.iptables.module-without-proto -m tcp/udp without matching -p
///   adapter.iptables.unreachable-rule     rule dropped while flattening a
///                                         chain jump (empty intersection
///                                         with the jump predicate)
///   adapter.iptables.duplicate-chain      chain header declared twice
Policy parse_iptables_save(std::string_view text, std::string_view chain,
                           std::vector<AdapterNote>* notes);
Policy parse_ip6tables_save(std::string_view text, std::string_view chain,
                            std::vector<AdapterNote>* notes);

}  // namespace dfw
