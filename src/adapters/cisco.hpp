// Cisco extended-ACL frontend.
//
// Converts numbered extended access lists into five-tuple Policies, so
// router configurations can flow into the comparison pipeline. Supported
// grammar per line (fields in Cisco's fixed order):
//
//   access-list <id> {permit|deny} <proto> <src> [<sport-op>] <dst>
//                    [<dport-op>] [log]
//
//   <proto>    ip | tcp | udp | icmp | <0-255>
//   <src/dst>  any | host a.b.c.d | a.b.c.d <wildcard-mask>
//   <port-op>  eq <p> | neq <p> | lt <p> | gt <p> | range <p> <q>
//              (ports numeric or a well-known service name)
//
// Wildcard masks must be contiguous (an inverted prefix mask); arbitrary
// bit patterns raise ParseError. `neq` produces a two-interval conjunct —
// the rule model handles non-contiguous sets natively. The ACL's implicit
// "deny ip any any" is appended as the final catch-all.

#pragma once

#include <string_view>
#include <vector>

#include "adapters/diag.hpp"
#include "fw/parser.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// Parses the lines of access list `acl_id` (e.g. "101") out of a Cisco
/// configuration and returns the equivalent Policy over
/// five_tuple_schema(). Unrelated configuration lines are ignored; bad or
/// unsupported ACL syntax raises ParseError with line information.
Policy parse_cisco_acl(std::string_view text, std::string_view acl_id);

/// Lint-aware variant: identical parsing, but accepted-yet-suspicious
/// input additionally appends AdapterNotes to `notes` (borrowed,
/// nullable):
///   adapter.cisco.log-ignored            'log'/'log-input' does not alter
///                                        the accept/discard mapping here
///   adapter.cisco.duplicate-rule         line repeats an earlier entry's
///                                        predicate and action exactly
///   adapter.cisco.conflicting-duplicate  same predicate as an earlier
///                                        entry, opposite action (the
///                                        later line can never fire)
///   adapter.cisco.redundant-implicit-deny  explicit trailing
///                                        'deny ip any any'
Policy parse_cisco_acl(std::string_view text, std::string_view acl_id,
                       std::vector<AdapterNote>* notes);

}  // namespace dfw
