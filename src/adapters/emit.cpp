#include "adapters/emit.hpp"

#include <stdexcept>

#include "net/ipv4.hpp"
#include "net/prefix.hpp"

namespace dfw {
namespace {

// Field indices in five_tuple_schema().
constexpr std::size_t kSip = 0;
constexpr std::size_t kDip = 1;
constexpr std::size_t kSport = 2;
constexpr std::size_t kDport = 3;
constexpr std::size_t kProto = 4;

void require_five_tuple(const Policy& policy, const char* who) {
  if (!(policy.schema() == five_tuple_schema())) {
    throw std::invalid_argument(std::string(who) +
                                ": policy must use five_tuple_schema()");
  }
  if (!policy.last_rule_is_catch_all()) {
    throw std::invalid_argument(std::string(who) +
                                ": policy must end in a catch-all rule");
  }
}

bool is_full(const Schema& schema, std::size_t field, const IntervalSet& s) {
  return s == IntervalSet(schema.domain(field));
}

// One vendor-expressible slice of a model rule.
struct Atom {
  std::optional<Prefix> sip;     // nullopt = any
  std::optional<Prefix> dip;
  std::optional<Interval> sport; // nullopt = unconstrained
  std::optional<Interval> dport;
  std::optional<Value> proto;    // nullopt = ip/any
  Decision decision = kAccept;
};

std::vector<std::optional<Prefix>> address_pieces(const Schema& schema,
                                                  std::size_t field,
                                                  const IntervalSet& s) {
  if (is_full(schema, field, s)) {
    return {std::nullopt};
  }
  std::vector<std::optional<Prefix>> pieces;
  for (const Interval& run : s.intervals()) {
    for (const Prefix& p : interval_to_prefixes(run, 32)) {
      pieces.emplace_back(p);
    }
  }
  return pieces;
}

std::vector<std::optional<Interval>> port_pieces(const Schema& schema,
                                                 std::size_t field,
                                                 const IntervalSet& s) {
  if (is_full(schema, field, s)) {
    return {std::nullopt};
  }
  std::vector<std::optional<Interval>> pieces;
  for (const Interval& run : s.intervals()) {
    pieces.emplace_back(run);
  }
  return pieces;
}

std::vector<std::optional<Value>> proto_pieces(const Schema& schema,
                                               const IntervalSet& s,
                                               bool ports_constrained,
                                               const char* who) {
  if (is_full(schema, kProto, s)) {
    if (ports_constrained) {
      throw std::invalid_argument(
          std::string(who) +
          ": a rule constrains ports without pinning the protocol to "
          "tcp/udp — not expressible in this vendor language");
    }
    return {std::nullopt};
  }
  std::vector<std::optional<Value>> pieces;
  for (const Interval& run : s.intervals()) {
    for (Value v = run.lo(); v <= run.hi(); ++v) {
      pieces.emplace_back(v);
    }
  }
  if (ports_constrained) {
    for (const std::optional<Value>& v : pieces) {
      if (*v != 6 && *v != 17) {
        throw std::invalid_argument(
            std::string(who) +
            ": port constraints combined with a non-tcp/udp protocol are "
            "not expressible in this vendor language");
      }
    }
  }
  return pieces;
}

// Expands one model rule into vendor atoms, enforcing the expansion cap.
void expand_rule(const Policy& policy, const Rule& rule,
                 std::size_t max_expansion, const char* who,
                 std::vector<Atom>& out) {
  const Schema& schema = policy.schema();
  if (rule.decision() != kAccept && rule.decision() != kDiscard) {
    throw std::invalid_argument(std::string(who) +
                                ": only accept/discard are emittable");
  }
  const bool ports_constrained =
      !is_full(schema, kSport, rule.conjunct(kSport)) ||
      !is_full(schema, kDport, rule.conjunct(kDport));
  const auto sips = address_pieces(schema, kSip, rule.conjunct(kSip));
  const auto dips = address_pieces(schema, kDip, rule.conjunct(kDip));
  const auto sports = port_pieces(schema, kSport, rule.conjunct(kSport));
  const auto dports = port_pieces(schema, kDport, rule.conjunct(kDport));
  const auto protos =
      proto_pieces(schema, rule.conjunct(kProto), ports_constrained, who);

  const std::size_t expansion = sips.size() * dips.size() * sports.size() *
                                dports.size() * protos.size();
  if (out.size() + expansion > max_expansion) {
    throw std::length_error(
        std::string(who) + ": expansion exceeds the cap of " +
        std::to_string(max_expansion) +
        " vendor rules; raise max_expansion or simplify the policy");
  }
  for (const auto& sip : sips) {
    for (const auto& dip : dips) {
      for (const auto& sport : sports) {
        for (const auto& dport : dports) {
          for (const auto& proto : protos) {
            out.push_back({sip, dip, sport, dport, proto, rule.decision()});
          }
        }
      }
    }
  }
}

std::vector<Atom> expand_policy(const Policy& policy,
                                std::size_t max_expansion, const char* who) {
  std::vector<Atom> atoms;
  for (std::size_t i = 0; i + 1 < policy.size(); ++i) {
    expand_rule(policy, policy.rule(i), max_expansion, who, atoms);
  }
  return atoms;
}

const char* proto_name(Value v) {
  switch (v) {
    case 1:
      return "icmp";
    case 6:
      return "tcp";
    case 17:
      return "udp";
    default:
      return nullptr;
  }
}

}  // namespace

std::string emit_iptables_save(const Policy& policy, std::string_view chain,
                               std::size_t max_expansion) {
  require_five_tuple(policy, "emit_iptables_save");
  const Decision fallback = policy.rules().back().decision();
  if (fallback != kAccept && fallback != kDiscard) {
    throw std::invalid_argument(
        "emit_iptables_save: catch-all must be accept or discard");
  }
  const std::vector<Atom> atoms =
      expand_policy(policy, max_expansion, "emit_iptables_save");

  std::string out = "*filter\n:" + std::string(chain) + " " +
                    (fallback == kAccept ? "ACCEPT" : "DROP") + " [0:0]\n";
  for (const Atom& atom : atoms) {
    out += "-A " + std::string(chain);
    if (atom.sip) {
      out += " -s " + atom.sip->to_string();
    }
    if (atom.dip) {
      out += " -d " + atom.dip->to_string();
    }
    if (atom.proto) {
      const char* name = proto_name(*atom.proto);
      out += " -p " + (name ? std::string(name)
                            : std::to_string(*atom.proto));
    }
    const auto port_spec = [](const Interval& iv) {
      if (iv.lo() == iv.hi()) {
        return std::to_string(iv.lo());
      }
      return std::to_string(iv.lo()) + ":" + std::to_string(iv.hi());
    };
    if (atom.sport) {
      out += " --sport " + port_spec(*atom.sport);
    }
    if (atom.dport) {
      out += " --dport " + port_spec(*atom.dport);
    }
    out += atom.decision == kAccept ? " -j ACCEPT\n" : " -j DROP\n";
  }
  out += "COMMIT\n";
  return out;
}

std::string emit_cisco_acl(const Policy& policy, std::string_view acl_id,
                           std::size_t max_expansion) {
  require_five_tuple(policy, "emit_cisco_acl");
  const Decision fallback = policy.rules().back().decision();
  const std::vector<Atom> atoms =
      expand_policy(policy, max_expansion, "emit_cisco_acl");

  const auto address_spec = [](const std::optional<Prefix>& p) {
    if (!p) {
      return std::string("any");
    }
    if (p->length() == 32) {
      return "host " + format_ipv4(p->bits());
    }
    const Interval iv = p->to_interval();
    const std::uint32_t wildcard =
        static_cast<std::uint32_t>(iv.hi() - iv.lo());
    return format_ipv4(p->bits()) + " " + format_ipv4(wildcard);
  };
  const auto port_spec = [](const std::optional<Interval>& iv) {
    if (!iv) {
      return std::string();
    }
    if (iv->lo() == iv->hi()) {
      return " eq " + std::to_string(iv->lo());
    }
    return " range " + std::to_string(iv->lo()) + " " +
           std::to_string(iv->hi());
  };

  std::string out;
  for (const Atom& atom : atoms) {
    out += "access-list " + std::string(acl_id) + " " +
           (atom.decision == kAccept ? "permit " : "deny ");
    if (atom.proto) {
      const char* name = proto_name(*atom.proto);
      out += name ? std::string(name) : std::to_string(*atom.proto);
    } else {
      out += "ip";
    }
    out += " " + address_spec(atom.sip) + port_spec(atom.sport);
    out += " " + address_spec(atom.dip) + port_spec(atom.dport);
    out += "\n";
  }
  if (fallback == kAccept) {
    out += "access-list " + std::string(acl_id) + " permit ip any any\n";
  }
  // A discarding catch-all is Cisco's implicit deny: nothing to emit, but
  // an empty ACL is unparseable, so keep at least the explicit deny.
  if (atoms.empty() && fallback == kDiscard) {
    out += "access-list " + std::string(acl_id) + " deny ip any any\n";
  }
  return out;
}

}  // namespace dfw
