// Deployment backends: render a Policy as vendor configuration.
//
// The resolution phase ends with a Policy "that is agreed upon by all
// teams" (paper, Section 1.2); these emitters turn it into deployable
// text. Vendor rule languages are less expressive than the model — an
// iptables rule takes one prefix per address and one port range — so a
// model rule whose conjuncts need several prefixes or runs is emitted as
// the equivalent *cartesian expansion* of vendor rules (adjacent rules
// with one decision commute, so expansion preserves first-match
// semantics). `max_expansion` caps the blow-up; exceeding it throws
// instead of silently emitting a monster config.

#pragma once

#include <string>

#include "fw/policy.hpp"

namespace dfw {

/// Renders the policy as an iptables-save fragment for `chain`:
/// ":<chain> <policy> [0:0]" header (from the final catch-all's decision)
/// followed by one "-A <chain> ..." line per expanded rule. The final
/// catch-all becomes the chain policy rather than a rule. Requires the
/// five-tuple schema and a comprehensive policy ending in a catch-all.
/// Round-trips through parse_iptables_save to an equivalent policy.
std::string emit_iptables_save(const Policy& policy, std::string_view chain,
                               std::size_t max_expansion = 4096);

/// Renders the policy as Cisco extended-ACL lines for `acl_id`. The final
/// catch-all is emitted only when it differs from the implicit deny.
/// Round-trips through parse_cisco_acl to an equivalent policy.
std::string emit_cisco_acl(const Policy& policy, std::string_view acl_id,
                           std::size_t max_expansion = 4096);

}  // namespace dfw
