#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace dfw {
namespace {

bool legal_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool legal_name_char(char c) {
  return legal_name_start(c) ||
         std::isdigit(static_cast<unsigned char>(c));
}

/// Dotted registry name -> legal Prometheus family name.
std::string sanitize(std::string_view prefix, std::string_view name) {
  std::string out(prefix);
  for (const char c : name) {
    out += legal_name_char(c) ? c : '_';
  }
  return out;
}

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// The cumulative (inclusive upper bound, count) series of one histogram.
/// Adjacent snapshot buckets can share an upper bound — the legacy zero
/// and v==1 buckets both render as le=0 — so equal bounds coalesce into
/// the later (larger) cumulative sample.
std::vector<std::pair<std::uint64_t, std::uint64_t>> cumulative_buckets(
    const HistogramSnapshot& h) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  std::uint64_t cum = 0;
  for (const auto& [lo, n] : h.buckets) {
    cum += n;
    const std::uint64_t le = Histogram::bucket_next_bound(lo, h.subbits) - 1;
    if (!out.empty() && out.back().first == le) {
      out.back().second = cum;
    } else {
      out.emplace_back(le, cum);
    }
  }
  return out;
}

}  // namespace

MetricsExporter::MetricsExporter(ExportOptions options)
    : options_(std::move(options)) {}

std::string MetricsExporter::prometheus(
    const MetricsSnapshot& snapshot) const {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = sanitize(options_.prometheus_prefix, name);
    out += "# TYPE " + family + " counter\n";
    out += family + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string family = sanitize(options_.prometheus_prefix, name);
    out += "# TYPE " + family + " histogram\n";
    for (const auto& [le, cum] : cumulative_buckets(h)) {
      out += family + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += family + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += family + "_sum " + std::to_string(h.sum) + "\n";
    out += family + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsExporter::jsonl(const MetricsSnapshot& snapshot,
                                   std::uint64_t seq,
                                   std::uint64_t uptime_ms) const {
  std::string out = "{\"schema\": \"dfw-metrics-v1\", \"seq\": ";
  out += std::to_string(seq);
  out += ", \"uptime_ms\": " + std::to_string(uptime_ms);
  out += ", \"source\": \"";
  json::escape(out, options_.source);
  out += "\", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "" : ", ";
    first = false;
    out += "\"";
    json::escape(out, name);
    out += "\": " + std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    out += first ? "" : ", ";
    first = false;
    out += "\"";
    json::escape(out, name);
    out += "\": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"subbits\": " + std::to_string(h.subbits) + ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [lo, n] : h.buckets) {
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      out += "[" + std::to_string(lo) + ", " + std::to_string(n) + "]";
    }
    out += "], \"p50\": " + format_double(h.quantile(0.50)) +
           ", \"p90\": " + format_double(h.quantile(0.90)) +
           ", \"p99\": " + format_double(h.quantile(0.99)) +
           ", \"p999\": " + format_double(h.quantile(0.999)) + "}";
  }
  out += "}}\n";
  return out;
}

// ---------------------------------------------------------------------------
// Prometheus validation

namespace {

struct PromFail {
  std::size_t line;
  std::string message;
};

/// One histogram family's series under assembly.
struct HistSeries {
  std::vector<std::pair<double, std::uint64_t>> buckets;  ///< (le, cum)
  bool has_inf = false;
  std::uint64_t inf_value = 0;
  bool has_sum = false;
  bool has_count = false;
  std::uint64_t count_value = 0;
};

bool parse_number(std::string_view s, double& out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  const std::string copy(s);
  out = std::strtod(copy.c_str(), &end);
  return end == copy.c_str() + copy.size();
}

}  // namespace

PromValidation validate_prometheus(std::string_view text) {
  PromValidation v;
  std::map<std::string, HistSeries> histograms;
  std::map<std::string, std::uint64_t> seen_samples;  // name+labels -> count
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& message) {
    v.ok = false;
    v.error = "line " + std::to_string(line_no) + ": " + message;
    return v;
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      // Only "# TYPE name type" is structural; HELP and comments pass.
      if (line.rfind("# TYPE ", 0) != 0) {
        continue;
      }
      std::string_view rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string_view::npos) {
        return fail("TYPE line without a type");
      }
      const std::string name(rest.substr(0, space));
      const std::string type(rest.substr(space + 1));
      if (name.empty() || !legal_name_start(name[0]) ||
          !std::all_of(name.begin(), name.end(), legal_name_char)) {
        return fail("illegal family name '" + name + "'");
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        return fail("unknown family type '" + type + "'");
      }
      if (!v.family_types.emplace(name, type).second) {
        return fail("duplicate TYPE for family '" + name + "'");
      }
      ++v.families;
      if (type == "histogram") {
        histograms.emplace(name, HistSeries{});
      }
      continue;
    }

    // Sample: name[{labels}] value
    std::size_t name_end = 0;
    while (name_end < line.size() && legal_name_char(line[name_end])) {
      ++name_end;
    }
    if (name_end == 0 || !legal_name_start(line[0])) {
      return fail("sample with an illegal metric name");
    }
    const std::string name(line.substr(0, name_end));
    std::string_view after = line.substr(name_end);
    std::string labels;
    std::string le_value;
    if (!after.empty() && after[0] == '{') {
      const std::size_t close = after.find('}');
      if (close == std::string_view::npos) {
        return fail("unterminated label set");
      }
      labels = std::string(after.substr(0, close + 1));
      // The only label this exporter emits; parse it when present.
      const std::string_view body = after.substr(1, close - 1);
      if (body.rfind("le=\"", 0) == 0 && body.size() >= 5 &&
          body.back() == '"') {
        le_value = std::string(body.substr(4, body.size() - 5));
      } else if (!body.empty()) {
        return fail("unsupported label set '" + labels + "'");
      }
      after = after.substr(close + 1);
    }
    if (after.empty() || after[0] != ' ') {
      return fail("sample without a value");
    }
    double value = 0;
    if (std::string_view sv = after.substr(1); !parse_number(sv, value)) {
      return fail("unparsable sample value '" + std::string(sv) + "'");
    }
    if (++seen_samples[name + labels] > 1) {
      return fail("duplicate sample '" + name + labels + "'");
    }
    ++v.samples;

    // Attribute the sample to a declared family.
    std::string family = name;
    std::string suffix;
    if (v.family_types.find(family) == v.family_types.end()) {
      for (const char* s : {"_bucket", "_sum", "_count"}) {
        const std::string_view tail(s);
        if (name.size() > tail.size() &&
            name.compare(name.size() - tail.size(), tail.size(), s) == 0) {
          const std::string base = name.substr(0, name.size() - tail.size());
          if (v.family_types.count(base) != 0) {
            family = base;
            suffix = s;
            break;
          }
        }
      }
    }
    const auto type_it = v.family_types.find(family);
    if (type_it == v.family_types.end()) {
      return fail("sample '" + name + "' precedes any TYPE declaration");
    }
    if (type_it->second == "histogram") {
      if (suffix.empty()) {
        return fail("bare sample for histogram family '" + family + "'");
      }
      HistSeries& series = histograms[family];
      if (value < 0 || (suffix != "_sum" && value != std::floor(value))) {
        return fail("non-integer histogram sample for '" + name + "'");
      }
      if (suffix == "_bucket") {
        if (le_value.empty()) {
          return fail("_bucket sample without an le label");
        }
        if (le_value == "+Inf") {
          series.has_inf = true;
          series.inf_value = static_cast<std::uint64_t>(value);
        } else {
          double le = 0;
          if (!parse_number(le_value, le)) {
            return fail("unparsable le '" + le_value + "'");
          }
          series.buckets.emplace_back(le,
                                      static_cast<std::uint64_t>(value));
        }
      } else if (suffix == "_sum") {
        if (series.has_sum) {
          return fail("duplicate _sum for '" + family + "'");
        }
        series.has_sum = true;
      } else {
        if (series.has_count) {
          return fail("duplicate _count for '" + family + "'");
        }
        series.has_count = true;
        series.count_value = static_cast<std::uint64_t>(value);
      }
    } else if (!suffix.empty() || !le_value.empty()) {
      return fail("histogram-style sample for " + type_it->second +
                  " family '" + family + "'");
    } else if (type_it->second == "counter" && value < 0) {
      return fail("negative counter '" + name + "'");
    }
  }

  // Whole-series checks per histogram family.
  for (auto& [family, series] : histograms) {
    line_no = 0;  // series errors are not line-local
    std::vector<std::pair<double, std::uint64_t>> buckets = series.buckets;
    std::sort(buckets.begin(), buckets.end());
    std::uint64_t prev = 0;
    for (const auto& [le, cum] : buckets) {
      if (cum < prev) {
        return fail("family '" + family +
                    "': cumulative bucket counts decrease");
      }
      prev = cum;
    }
    if (!series.has_inf) {
      return fail("family '" + family + "': no +Inf bucket");
    }
    if (prev > series.inf_value) {
      return fail("family '" + family + "': +Inf below a finite bucket");
    }
    if (!series.has_sum || !series.has_count) {
      return fail("family '" + family + "': missing _sum or _count");
    }
    if (series.count_value != series.inf_value) {
      return fail("family '" + family + "': _count != +Inf bucket");
    }
  }

  v.ok = true;
  return v;
}

// ---------------------------------------------------------------------------
// JSONL validation and parse-back

namespace {

bool number_field(const json::Value& object, const char* key, double& out) {
  const json::Value* v = object.find(key);
  if (v == nullptr || !v->is_number()) {
    return false;
  }
  out = v->number;
  return true;
}

}  // namespace

std::optional<HistogramSnapshot> histogram_from_json(const json::Value& value,
                                                     std::string* error) {
  const auto fail = [&](const char* message) {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  if (!value.is_object()) {
    return fail("histogram is not an object");
  }
  double count = 0;
  double sum = 0;
  if (!number_field(value, "count", count) ||
      !number_field(value, "sum", sum)) {
    return fail("histogram without numeric count/sum");
  }
  HistogramSnapshot h;
  h.count = static_cast<std::uint64_t>(count);
  h.sum = static_cast<std::uint64_t>(sum);
  if (const json::Value* subbits = value.find("subbits")) {
    if (!subbits->is_number() || subbits->number < 0 ||
        subbits->number > Histogram::kMaxSubbits) {
      return fail("histogram with an out-of-range subbits");
    }
    h.subbits = static_cast<std::uint32_t>(subbits->number);
  }
  const json::Value* buckets = value.find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    return fail("histogram without a buckets array");
  }
  std::uint64_t total = 0;
  std::uint64_t prev_lo = 0;
  for (const json::Value& pair : buckets->array) {
    if (!pair.is_array() || pair.array.size() != 2 ||
        !pair.array[0].is_number() || !pair.array[1].is_number()) {
      return fail("histogram bucket is not a [bound, count] pair");
    }
    const std::uint64_t lo =
        static_cast<std::uint64_t>(pair.array[0].number);
    const std::uint64_t n = static_cast<std::uint64_t>(pair.array[1].number);
    if (!h.buckets.empty() && lo < prev_lo) {
      return fail("histogram bucket bounds decrease");
    }
    prev_lo = lo;
    total += n;
    h.buckets.emplace_back(lo, n);
  }
  if (total != h.count) {
    return fail("histogram bucket counts do not sum to count");
  }
  return h;
}

std::optional<MetricsSnapshot> metrics_from_json(const json::Value& value,
                                                 std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) {
      *error = message;
    }
    return std::nullopt;
  };
  if (!value.is_object()) {
    return fail("metrics is not an object");
  }
  MetricsSnapshot snap;
  const json::Value* counters = value.find("counters");
  const json::Value* histograms = value.find("histograms");
  if (counters == nullptr || !counters->is_object() ||
      histograms == nullptr || !histograms->is_object()) {
    return fail("metrics without counters/histograms objects");
  }
  for (const auto& [name, counter] : counters->object) {
    if (!counter.is_number() || counter.number < 0) {
      return fail("counter '" + name + "' is not a non-negative number");
    }
    snap.counters[name] = static_cast<std::uint64_t>(counter.number);
  }
  for (const auto& [name, histogram] : histograms->object) {
    std::string sub_error;
    const auto h = histogram_from_json(histogram, &sub_error);
    if (!h.has_value()) {
      return fail("histogram '" + name + "': " + sub_error);
    }
    snap.histograms[name] = *h;
  }
  return snap;
}

JsonlValidation validate_metrics_jsonl(std::string_view text) {
  JsonlValidation v;
  const auto fail = [&](const std::string& message) {
    v.ok = false;
    v.error = "record " + std::to_string(v.records + 1) + ": " + message;
    return v;
  };

  bool have_prev_seq = false;
  double prev_seq = 0;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() : eol + 1;
    if (line.empty()) {
      continue;
    }
    std::string parse_error;
    const auto doc = json::parse(line, &parse_error);
    if (!doc.has_value()) {
      return fail("not JSON (" + parse_error + ")");
    }
    if (!doc->is_object()) {
      return fail("record is not an object");
    }
    const json::Value* schema = doc->find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->string != "dfw-metrics-v1") {
      return fail("missing dfw-metrics-v1 schema marker");
    }
    double seq = 0;
    double uptime = 0;
    if (!number_field(*doc, "seq", seq) ||
        !number_field(*doc, "uptime_ms", uptime)) {
      return fail("missing numeric seq/uptime_ms");
    }
    if (have_prev_seq && seq <= prev_seq) {
      return fail("seq does not increase");
    }
    have_prev_seq = true;
    prev_seq = seq;
    std::string error;
    if (!metrics_from_json(*doc, &error).has_value()) {
      return fail(error);
    }
    const json::Value* histograms = doc->find("histograms");
    for (const auto& [name, histogram] : histograms->object) {
      double p50 = 0;
      double p90 = 0;
      double p99 = 0;
      double p999 = 0;
      const bool has_quantiles = number_field(histogram, "p50", p50) &&
                                 number_field(histogram, "p90", p90) &&
                                 number_field(histogram, "p99", p99) &&
                                 number_field(histogram, "p999", p999);
      if (has_quantiles && (p50 > p90 || p90 > p99 || p99 > p999)) {
        return fail("histogram '" + name + "': quantiles out of order");
      }
    }
    ++v.records;
  }
  if (v.records == 0) {
    return fail("no records");
  }
  v.ok = true;
  return v;
}

}  // namespace dfw
