// Tracing: low-overhead scoped spans exported as Chrome trace_event JSON.
//
// The evaluation questions of the paper (Section 7, Figs. 12-13) are all
// "where do the nodes and the time go as policies scale" — questions a
// profiler answers badly for phase-structured pipelines. A Tracer gives
// every pipeline phase (construct, shape, compare, generate, ...) a
// duration span with thread attribution and nesting, cheap enough to leave
// compiled in:
//
//   * Recording is wait-free per thread: each thread owns a fixed-capacity
//     ring buffer it alone writes; the tracer only takes a lock the first
//     time a thread records into it. A full ring overwrites its oldest
//     events and counts the drops — tracing never blocks or allocates on
//     the hot path after warm-up.
//   * A span is RAII: ScopedSpan stamps steady-clock begin/end, the owning
//     thread's stable id, and the nesting depth at begin. Span names are
//     string literals (the tracer stores the pointer, not a copy).
//   * Export is Chrome trace_event JSON ("X" complete events), loadable in
//     Perfetto or chrome://tracing. Export is meant for quiescence (no
//     spans concurrently ending); a concurrent export is safe but may miss
//     the newest events.
//
// A null Tracer* disables everything: ScopedSpan against nullptr compiles
// to two pointer tests, so instrumented pipelines with no sink attached
// are byte-identical in output and within noise in speed.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace dfw {

/// One completed span. `name` and the arg names are borrowed pointers to
/// string literals and must outlive the tracer.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< steady-clock ns since the tracer's epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;    ///< tracer-assigned stable thread id (0-based)
  std::uint32_t depth = 0;  ///< open spans on this thread at begin
  const char* arg0_name = nullptr;  ///< optional scalar argument
  std::uint64_t arg0 = 0;
  const char* arg1_name = nullptr;
  std::uint64_t arg1 = 0;
};

class Tracer {
 public:
  /// Per-thread ring capacity in events; at least 16.
  explicit Tracer(std::size_t capacity_per_thread = 1 << 14);
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Steady-clock nanoseconds since this tracer was constructed.
  std::uint64_t now_ns() const;

  /// Appends one completed event from the calling thread. tid/depth fields
  /// are overwritten with the calling thread's; ScopedSpan is the normal
  /// front end.
  void record(TraceEvent event);

  /// Events currently held (sum over threads, post-wrap).
  std::size_t event_count() const;
  /// Events lost to ring wrap-around, summed over threads.
  std::uint64_t dropped() const;
  /// Threads that have recorded at least one span.
  std::size_t thread_count() const;

  /// The whole trace as a Chrome trace_event JSON document (object form:
  /// {"traceEvents": [...], ...}), events sorted by start time so parents
  /// precede their children. Load in Perfetto / chrome://tracing.
  std::string chrome_trace_json() const;

  /// Opaque per-thread log, public only so the implementation's
  /// thread-local cache can name the pointer type; defined in trace.cpp.
  struct ThreadLog;

 private:
  friend class ScopedSpan;

  /// The calling thread's log, creating and registering it on first use.
  ThreadLog& local_log();

  const std::size_t capacity_;
  const std::uint64_t serial_;  ///< process-unique, validates cached logs
  const std::uint64_t epoch_steady_ns_;  ///< steady_clock at construction
  const std::int64_t epoch_unix_us_;     ///< system_clock at construction

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

/// RAII span: records [construction, destruction) on `tracer`, or nothing
/// when `tracer` is null. Must be destroyed on the thread that created it
/// (it is the per-thread nesting bookkeeping).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name) noexcept;
  ScopedSpan(Tracer* tracer, const char* name, const char* arg0_name,
             std::uint64_t arg0) noexcept;
  ScopedSpan(Tracer* tracer, const char* name, const char* arg0_name,
             std::uint64_t arg0, const char* arg1_name,
             std::uint64_t arg1) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_;
  TraceEvent event_{};
};

/// Result of validating a Chrome trace document (see validate_chrome_trace).
struct TraceValidation {
  bool ok = false;
  std::string error;        ///< empty when ok
  std::size_t events = 0;   ///< "X" events seen
  std::size_t threads = 0;  ///< distinct tids
  std::map<std::string, std::size_t> name_counts;  ///< spans per name
};

/// Structurally validates a Chrome trace_event JSON document: it must
/// parse as JSON, carry a "traceEvents" array of complete ("ph":"X")
/// events with string names and numeric ts/dur/pid/tid, and the spans of
/// each thread must nest properly (no partial overlap). Used by the
/// obs tests and the trace_check tool; independent of how the JSON was
/// produced, so it also vets externally captured traces.
TraceValidation validate_chrome_trace(std::string_view json);

}  // namespace dfw
