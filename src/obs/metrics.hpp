// Metrics: one registry of named atomic counters and fixed-bucket
// histograms for the whole pipeline.
//
// Before this layer the library's instrumentation was three disjoint,
// hand-polled structs — ExecutorMetrics (runtime), ArenaStats (hash-consed
// FDD storage), and the RunContext usage counters (governance). The
// MetricsRegistry unifies them behind one surface: pipeline phases record
// into it directly (durations as histograms, work items as counters), and
// the legacy structs are absorbed under stable dotted names (see
// docs/observability.md for the mapping table), so one snapshot() answers
// "what did this run cost" across every subsystem.
//
// Histogram bucketing is log-linear (HDR-style): each power-of-two octave
// is split into 2^subbits linear sub-buckets, so the relative error of any
// reconstructed value is bounded by 2^-subbits. The default, subbits = 0,
// is exactly the original power-of-two bucketing — one bucket per octave —
// and registries built that way snapshot and serialize byte-identically to
// the pre-log-linear layer. Finer resolutions are an opt-in knob on the
// registry (they change bucket boundaries, hence bytes), and are what make
// HistogramSnapshot::quantile() tight enough to report p99/p999 tail
// latencies (docs/observability.md, "Quantiles and bucket resolution").
//
// Concurrency: counters and histogram buckets are relaxed atomics — safe
// to bump from any thread, including the Executor's workers. Registering a
// name takes a short-lived lock, so hot paths should look their Counter /
// Histogram up once and keep the reference (both have stable addresses for
// the registry's lifetime). snapshot() is a point-in-time read ordered by
// name: for a quiesced workload it is deterministic in which names exist
// and every non-timing counter value; timing histograms keep deterministic
// counts with run-dependent sums.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dfw {

struct ExecutorMetrics;
struct ArenaStats;
class RunContext;
class FaultPlan;

/// A monotonically increasing named value.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A histogram over log-linear buckets. With `subbits` = s, values below
/// 2^(s+1) get one bucket each (exact), and every octave [2^(w-1), 2^w)
/// above splits into 2^s equal sub-buckets — so any recorded value is
/// reconstructible to a relative error below 2^-s. s = 0 is the original
/// power-of-two scheme: bucket i counts values v with 2^(i-1) <= v < 2^i
/// (bucket 0 counts v == 0). All 64-bit values land in some bucket, so
/// recording never clips; the intended unit for timing series is
/// nanoseconds.
class Histogram {
 public:
  /// Bucket count of the default (subbits = 0) resolution, kept for the
  /// legacy callers; num_buckets() is the general form.
  static constexpr std::size_t kBuckets = 65;
  /// Resolution cap: 2^6 sub-buckets per octave is a <= 1.6% relative
  /// error and a 30 KB bucket array — finer would be all memory, no
  /// signal for nanosecond timings.
  static constexpr std::uint32_t kMaxSubbits = 6;

  explicit Histogram(std::uint32_t subbits = 0);

  void record(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[bucket_of(value, subbits_)].fetch_add(1,
                                                   std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint32_t subbits() const { return subbits_; }

  /// Buckets a resolution has: 2^s * (65 - s).
  static std::size_t num_buckets(std::uint32_t subbits);
  /// Index of the bucket `value` lands in at the given resolution.
  static std::size_t bucket_of(std::uint64_t value, std::uint32_t subbits = 0);
  /// Inclusive lower bound of bucket i (0 for the first two buckets —
  /// bucket 1 holds exactly v == 1 but reports 0, a wire-format quirk
  /// kept for byte compatibility).
  static std::uint64_t bucket_lower_bound(std::size_t i,
                                          std::uint32_t subbits = 0);
  /// Exclusive upper bound of the bucket whose lower bound is `lo`
  /// (saturates to uint64-max for the top bucket). Defined on bounds, not
  /// indices, so it also serves snapshots, which keep only non-empty
  /// (bound, count) pairs.
  static std::uint64_t bucket_next_bound(std::uint64_t lo,
                                         std::uint32_t subbits = 0);

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::uint32_t subbits_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  // Value-initialized (zeroed) array sized by the resolution.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
};

/// Point-in-time copy of one histogram: total count and sum plus the
/// non-empty buckets as (inclusive lower bound, count) pairs, and the
/// resolution they were recorded at (needed to recover upper bounds).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint32_t subbits = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  /// The q-quantile (q in [0, 1], clamped) reconstructed from the
  /// buckets by linear interpolation inside the bucket holding the
  /// target rank. Exact when the bucket is a single value (the linear
  /// region); otherwise off by at most the bucket's width — a relative
  /// error below 2^-subbits. Returns 0 on an empty histogram.
  double quantile(double q) const;

  /// Folds `other` into this snapshot (counts and sums add, bucket lists
  /// merge by lower bound). Both sides must share a resolution; merging
  /// across resolutions throws std::logic_error, because their bucket
  /// bounds do not line up.
  void merge(const HistogramSnapshot& other);

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Point-in-time copy of a whole registry, ordered by name. Comparable for
/// the determinism tests and serializable for the bench reports.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"counters": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"buckets":[[lo,n],...]}, ...}}. Key order is the
  /// map order, so equal snapshots serialize to equal bytes. The
  /// resolution is deliberately not serialized here — the format predates
  /// it; obs/export.hpp's JSONL records carry it.
  std::string to_json() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

class MetricsRegistry {
 public:
  /// `histogram_subbits` is the log-linear resolution every histogram in
  /// this registry records at (clamped to kMaxSubbits). The default 0
  /// keeps the original power-of-two buckets and byte-identical
  /// snapshots.
  explicit MetricsRegistry(std::uint32_t histogram_subbits = 0);
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter/histogram registered under `name`, created on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  std::uint32_t histogram_subbits() const { return subbits_; }

  MetricsSnapshot snapshot() const;

 private:
  std::uint32_t subbits_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Absorb the legacy per-subsystem counter structs into a registry under
/// the unified names (docs/observability.md lists the full mapping).
/// Absorption *adds* the argument's values, so per-task sources — e.g. the
/// task-local arenas of a governed cross comparison — aggregate naturally;
/// absorb one source exactly once per measurement window.
void absorb(MetricsRegistry& registry, const ExecutorMetrics& metrics);
void absorb(MetricsRegistry& registry, const ArenaStats& stats);
void absorb(MetricsRegistry& registry, const RunContext& context);
/// The fault plane's per-site observation counters, as
/// rt.fault.site.<site>.{hits,fires} plus the rt.fault.total_* sums
/// (obs/names.hpp). Additive like the others — once per window.
void absorb(MetricsRegistry& registry, const FaultPlan& plan);

/// Overlays the fault plane's *cumulative* per-site counters onto an
/// already-taken snapshot (set, not add) — the form the serve telemetry
/// reporter wants, where the same live plan is re-read every tick and
/// absorption would double-count. A plan with no armed sites adds no
/// keys, so the null/empty case stays byte-identical.
void overlay(MetricsSnapshot& snapshot, const FaultPlan& plan);

}  // namespace dfw
