// Metrics: one registry of named atomic counters and fixed-bucket
// histograms for the whole pipeline.
//
// Before this layer the library's instrumentation was three disjoint,
// hand-polled structs — ExecutorMetrics (runtime), ArenaStats (hash-consed
// FDD storage), and the RunContext usage counters (governance). The
// MetricsRegistry unifies them behind one surface: pipeline phases record
// into it directly (durations as histograms, work items as counters), and
// the legacy structs are absorbed under stable dotted names (see
// docs/observability.md for the mapping table), so one snapshot() answers
// "what did this run cost" across every subsystem.
//
// Concurrency: counters and histogram buckets are relaxed atomics — safe
// to bump from any thread, including the Executor's workers. Registering a
// name takes a short-lived lock, so hot paths should look their Counter /
// Histogram up once and keep the reference (both have stable addresses for
// the registry's lifetime). snapshot() is a point-in-time read ordered by
// name: for a quiesced workload it is deterministic in which names exist
// and every non-timing counter value; timing histograms keep deterministic
// counts with run-dependent sums.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dfw {

struct ExecutorMetrics;
struct ArenaStats;
class RunContext;

/// A monotonically increasing named value.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A histogram over fixed power-of-two buckets: bucket i counts values v
/// with 2^(i-1) <= v < 2^i (bucket 0 counts v == 0). 64 buckets cover the
/// whole uint64 range, so recording never clips; the intended unit for
/// timing series is nanoseconds.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Index of the bucket `value` lands in.
  static std::size_t bucket_of(std::uint64_t value);
  /// Inclusive lower bound of bucket i (0 for the first two buckets).
  static std::uint64_t bucket_lower_bound(std::size_t i);

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Point-in-time copy of one histogram: total count and sum plus the
/// non-empty buckets as (inclusive lower bound, count) pairs.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Point-in-time copy of a whole registry, ordered by name. Comparable for
/// the determinism tests and serializable for the bench reports.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// One JSON object: {"counters": {...}, "histograms": {name:
  /// {"count":..,"sum":..,"buckets":[[lo,n],...]}, ...}}. Key order is the
  /// map order, so equal snapshots serialize to equal bytes.
  std::string to_json() const;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The counter/histogram registered under `name`, created on first use.
  /// References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Absorb the legacy per-subsystem counter structs into a registry under
/// the unified names (docs/observability.md lists the full mapping).
/// Absorption *adds* the argument's values, so per-task sources — e.g. the
/// task-local arenas of a governed cross comparison — aggregate naturally;
/// absorb one source exactly once per measurement window.
void absorb(MetricsRegistry& registry, const ExecutorMetrics& metrics);
void absorb(MetricsRegistry& registry, const ArenaStats& stats);
void absorb(MetricsRegistry& registry, const RunContext& context);

}  // namespace dfw
