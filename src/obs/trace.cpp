#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace dfw {

// -- Tracer ------------------------------------------------------------------

// Owned by the tracer, written only by the thread it belongs to. `head` is
// the count of events ever pushed; slot head % capacity is written before
// head is bumped with release, so an exporter that acquires head sees every
// event below it fully written.
struct Tracer::ThreadLog {
  std::thread::id owner;
  std::uint32_t tid = 0;
  std::size_t open_spans = 0;  // nesting depth, owner thread only
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> ring;
  std::atomic<std::uint64_t> head{0};
};

namespace {

std::uint64_t next_tracer_serial() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Per-thread fast path: the log this thread last used, validated by the
// owning tracer's process-unique serial (a dead tracer's serial never
// recurs, so a stale cache entry can only miss, never dangle into use).
struct LogCache {
  std::uint64_t tracer_serial = 0;
  Tracer::ThreadLog* log = nullptr;
};
thread_local LogCache t_log_cache;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Tracer::Tracer(std::size_t capacity_per_thread)
    : capacity_(std::max<std::size_t>(16, capacity_per_thread)),
      serial_(next_tracer_serial()),
      epoch_steady_ns_(steady_now_ns()),
      epoch_unix_us_(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count()) {}

Tracer::~Tracer() = default;

std::uint64_t Tracer::now_ns() const {
  return steady_now_ns() - epoch_steady_ns_;
}

Tracer::ThreadLog& Tracer::local_log() {
  if (t_log_cache.tracer_serial == serial_) {
    return *t_log_cache.log;
  }
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lk(mu_);
  for (const std::unique_ptr<ThreadLog>& log : logs_) {
    if (log->owner == self) {
      t_log_cache = {serial_, log.get()};
      return *log;
    }
  }
  auto log = std::make_unique<ThreadLog>();
  log->owner = self;
  log->tid = static_cast<std::uint32_t>(logs_.size());
  log->ring.resize(capacity_);
  logs_.push_back(std::move(log));
  t_log_cache = {serial_, logs_.back().get()};
  return *logs_.back();
}

void Tracer::record(TraceEvent event) {
  ThreadLog& log = local_log();
  event.tid = log.tid;
  const std::uint64_t head = log.head.load(std::memory_order_relaxed);
  if (head >= capacity_) {
    ++log.dropped;  // overwrites the oldest event below
  }
  log.ring[head % capacity_] = event;
  log.head.store(head + 1, std::memory_order_release);
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t total = 0;
  for (const std::unique_ptr<ThreadLog>& log : logs_) {
    total += static_cast<std::size_t>(
        std::min<std::uint64_t>(log->head.load(std::memory_order_acquire),
                                capacity_));
  }
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::uint64_t total = 0;
  for (const std::unique_ptr<ThreadLog>& log : logs_) {
    total += log->dropped;
  }
  return total;
}

std::size_t Tracer::thread_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return logs_.size();
}

namespace {

void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

// Microseconds with nanosecond precision — the unit trace_event's ts/dur
// are defined in.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> events;
  std::uint64_t total_dropped = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const std::unique_ptr<ThreadLog>& log : logs_) {
      const std::uint64_t head = log->head.load(std::memory_order_acquire);
      const std::uint64_t n = std::min<std::uint64_t>(head, capacity_);
      // Oldest surviving event first; after a wrap that is slot head %
      // capacity, before it slot 0.
      for (std::uint64_t i = 0; i < n; ++i) {
        events.push_back(log->ring[(head - n + i) % capacity_]);
      }
      total_dropped += log->dropped;
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns) {
                       return a.start_ns < b.start_ns;
                     }
                     if (a.tid != b.tid) {
                       return a.tid < b.tid;
                     }
                     return a.depth < b.depth;  // parent before child
                   });

  std::string out;
  out.reserve(events.size() * 128 + 256);
  out += "{\n\"displayTimeUnit\": \"ns\",\n\"otherData\": "
         "{\"tracer\": \"dfw\", \"epoch_unix_us\": ";
  out += std::to_string(epoch_unix_us_);
  out += ", \"dropped_events\": ";
  out += std::to_string(total_dropped);
  out += "},\n\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "{\"name\": ";
    append_json_string(out, e.name != nullptr ? e.name : "?");
    out += ", \"cat\": \"dfw\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"ts\": ";
    append_us(out, e.start_ns);
    out += ", \"dur\": ";
    append_us(out, e.dur_ns);
    out += ", \"args\": {\"depth\": ";
    out += std::to_string(e.depth);
    if (e.arg0_name != nullptr) {
      out += ", ";
      append_json_string(out, e.arg0_name);
      out += ": ";
      out += std::to_string(e.arg0);
    }
    if (e.arg1_name != nullptr) {
      out += ", ";
      append_json_string(out, e.arg1_name);
      out += ": ";
      out += std::to_string(e.arg1);
    }
    out += "}}";
  }
  out += "\n]\n}\n";
  return out;
}

// -- ScopedSpan --------------------------------------------------------------

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name) noexcept
    : ScopedSpan(tracer, name, nullptr, 0, nullptr, 0) {}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name,
                       const char* arg0_name, std::uint64_t arg0) noexcept
    : ScopedSpan(tracer, name, arg0_name, arg0, nullptr, 0) {}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name,
                       const char* arg0_name, std::uint64_t arg0,
                       const char* arg1_name, std::uint64_t arg1) noexcept
    : tracer_(tracer) {
  if (tracer_ == nullptr) {
    return;
  }
  event_.name = name;
  event_.arg0_name = arg0_name;
  event_.arg0 = arg0;
  event_.arg1_name = arg1_name;
  event_.arg1 = arg1;
  Tracer::ThreadLog& log = tracer_->local_log();
  event_.depth = static_cast<std::uint32_t>(log.open_spans++);
  event_.start_ns = tracer_->now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) {
    return;
  }
  event_.dur_ns = tracer_->now_ns() - event_.start_ns;
  --tracer_->local_log().open_spans;
  tracer_->record(event_);
}

// -- validate_chrome_trace ---------------------------------------------------
//
// A deliberately small recursive-descent JSON reader: enough structure to
// check the trace document without pulling in a JSON dependency. It parses
// values generically and surfaces only what the validator needs (event
// fields), erroring on the first malformed byte.

namespace {

struct JsonReader {
  std::string_view in;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }
  void skip_ws() {
    while (pos < in.size() &&
           std::isspace(static_cast<unsigned char>(in[pos])) != 0) {
      ++pos;
    }
  }
  bool consume(char c) {
    skip_ws();
    if (pos >= in.size() || in[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }
  bool peek(char c) {
    skip_ws();
    return pos < in.size() && in[pos] == c;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= in.size() || in[pos] != '"') {
      return fail("expected string");
    }
    ++pos;
    std::string s;
    while (pos < in.size() && in[pos] != '"') {
      char c = in[pos];
      if (c == '\\') {
        if (pos + 1 >= in.size()) {
          return fail("truncated escape");
        }
        const char esc = in[pos + 1];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos + 5 >= in.size()) {
              return fail("truncated \\u escape");
            }
            pos += 4;  // keep a placeholder; exact code point is irrelevant
            c = '?';
            break;
          }
          default:
            return fail("bad escape");
        }
        pos += 2;
      } else {
        ++pos;
      }
      s += c;
    }
    if (pos >= in.size()) {
      return fail("unterminated string");
    }
    ++pos;  // closing quote
    if (out != nullptr) {
      *out = std::move(s);
    }
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const std::size_t start = pos;
    if (pos < in.size() && (in[pos] == '-' || in[pos] == '+')) {
      ++pos;
    }
    bool digits = false;
    while (pos < in.size() &&
           (std::isdigit(static_cast<unsigned char>(in[pos])) != 0 ||
            in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E' ||
            in[pos] == '-' || in[pos] == '+')) {
      digits = digits ||
               std::isdigit(static_cast<unsigned char>(in[pos])) != 0;
      ++pos;
    }
    if (!digits) {
      return fail("expected number");
    }
    if (out != nullptr) {
      *out = std::strtod(std::string(in.substr(start, pos - start)).c_str(),
                         nullptr);
    }
    return true;
  }

  // Parses and discards any JSON value.
  bool skip_value() {
    skip_ws();
    if (pos >= in.size()) {
      return fail("unexpected end of input");
    }
    const char c = in[pos];
    if (c == '"') {
      return parse_string(nullptr);
    }
    if (c == '{') {
      return skip_object();
    }
    if (c == '[') {
      return skip_array();
    }
    if (c == 't' || c == 'f' || c == 'n') {
      static constexpr std::string_view words[] = {"true", "false", "null"};
      for (const std::string_view w : words) {
        if (in.substr(pos, w.size()) == w) {
          pos += w.size();
          return true;
        }
      }
      return fail("bad literal");
    }
    return parse_number(nullptr);
  }

  bool skip_object() {
    if (!consume('{')) {
      return false;
    }
    if (peek('}')) {
      ++pos;
      return true;
    }
    for (;;) {
      if (!parse_string(nullptr) || !consume(':') || !skip_value()) {
        return false;
      }
      if (peek(',')) {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool skip_array() {
    if (!consume('[')) {
      return false;
    }
    if (peek(']')) {
      ++pos;
      return true;
    }
    for (;;) {
      if (!skip_value()) {
        return false;
      }
      if (peek(',')) {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }
};

struct ParsedEvent {
  std::string name;
  std::string ph;
  double ts = -1;
  double dur = -1;
  double tid = -1;
  bool has_pid = false;
};

// Parses one traceEvents element, collecting the fields the checks need.
bool parse_event(JsonReader& r, ParsedEvent* ev) {
  if (!r.consume('{')) {
    return false;
  }
  if (r.peek('}')) {
    ++r.pos;
    return true;
  }
  for (;;) {
    std::string key;
    if (!r.parse_string(&key) || !r.consume(':')) {
      return false;
    }
    if (key == "name" || key == "ph") {
      std::string value;
      if (!r.parse_string(&value)) {
        return false;
      }
      (key == "name" ? ev->name : ev->ph) = std::move(value);
    } else if (key == "ts" || key == "dur" || key == "tid") {
      double value = 0;
      if (!r.parse_number(&value)) {
        return false;
      }
      (key == "ts" ? ev->ts : key == "dur" ? ev->dur : ev->tid) = value;
    } else if (key == "pid") {
      double value = 0;
      if (!r.parse_number(&value)) {
        return false;
      }
      ev->has_pid = true;
    } else {
      if (!r.skip_value()) {
        return false;
      }
    }
    if (r.peek(',')) {
      ++r.pos;
      continue;
    }
    return r.consume('}');
  }
}

}  // namespace

TraceValidation validate_chrome_trace(std::string_view json) {
  TraceValidation v;
  JsonReader r{json, 0, {}};
  std::vector<ParsedEvent> events;
  bool saw_trace_events = false;

  if (!r.consume('{')) {
    v.error = r.error;
    return v;
  }
  bool object_ok = true;
  if (!r.peek('}')) {
    for (;;) {
      std::string key;
      if (!r.parse_string(&key) || !r.consume(':')) {
        object_ok = false;
        break;
      }
      if (key == "traceEvents") {
        saw_trace_events = true;
        if (!r.consume('[')) {
          object_ok = false;
          break;
        }
        if (r.peek(']')) {
          ++r.pos;
        } else {
          for (;;) {
            ParsedEvent ev;
            if (!parse_event(r, &ev)) {
              object_ok = false;
              break;
            }
            events.push_back(std::move(ev));
            if (r.peek(',')) {
              ++r.pos;
              continue;
            }
            object_ok = r.consume(']');
            break;
          }
          if (!object_ok) {
            break;
          }
        }
      } else if (!r.skip_value()) {
        object_ok = false;
        break;
      }
      if (r.peek(',')) {
        ++r.pos;
        continue;
      }
      object_ok = r.consume('}');
      break;
    }
  } else {
    ++r.pos;
  }
  if (!object_ok) {
    v.error = r.error.empty() ? "malformed JSON" : r.error;
    return v;
  }
  r.skip_ws();
  if (r.pos != json.size()) {
    v.error = "trailing bytes after the top-level object";
    return v;
  }
  if (!saw_trace_events) {
    v.error = "no \"traceEvents\" array";
    return v;
  }

  // Field checks plus per-thread interval collection.
  std::map<double, std::vector<std::pair<double, double>>> by_tid;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const ParsedEvent& e = events[i];
    const std::string where = "event " + std::to_string(i);
    if (e.name.empty()) {
      v.error = where + ": missing name";
      return v;
    }
    if (e.ph != "X") {
      v.error = where + " (" + e.name + "): ph is not \"X\"";
      return v;
    }
    if (e.ts < 0 || e.dur < 0 || e.tid < 0 || !e.has_pid) {
      v.error = where + " (" + e.name + "): missing ts/dur/tid/pid";
      return v;
    }
    by_tid[e.tid].emplace_back(e.ts, e.ts + e.dur);
    ++v.name_counts[e.name];
  }

  // Nesting: on one thread, two spans either do not overlap or one
  // contains the other. Sorting by (begin asc, end desc) makes any
  // violation visible against the innermost open ancestor.
  constexpr double kSlackUs = 0.002;  // sub-ns rounding from the export
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(),
              [](const std::pair<double, double>& a,
                 const std::pair<double, double>& b) {
                if (a.first != b.first) {
                  return a.first < b.first;
                }
                return a.second > b.second;
              });
    std::vector<double> open_ends;
    for (const auto& [begin, end] : spans) {
      while (!open_ends.empty() && open_ends.back() <= begin + kSlackUs) {
        open_ends.pop_back();
      }
      if (!open_ends.empty() && end > open_ends.back() + kSlackUs) {
        v.error = "tid " + std::to_string(tid) +
                  ": spans partially overlap (broken nesting)";
        return v;
      }
      open_ends.push_back(end);
    }
  }

  v.ok = true;
  v.events = events.size();
  v.threads = by_tid.size();
  return v;
}

}  // namespace dfw
