// A small JSON document model, shared by the structural validators.
//
// trace.cpp validates Chrome traces with a streaming reader because a
// trace is one flat array of small events; SARIF logs (lint/sarif.hpp) are
// deeply nested objects whose checks cross-reference each other (results
// point at rule ids declared elsewhere), which wants a document tree. This
// parser builds that tree: strict enough for validation work (rejects
// trailing garbage, truncated escapes, unbounded nesting), small enough to
// stay dependency-free. Writers keep hand-emitting JSON — only escape() is
// shared on that side, so every emitter escapes strings identically.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dfw::json {

/// One JSON value. Object members keep document order; find() does the
/// usual last-writer-wins lookup validators want.
struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
};

/// Parses a complete JSON document. Returns nullopt and fills `error`
/// (when non-null) with a byte-positioned message on malformed input,
/// trailing garbage, or nesting deeper than 128 levels — the depth cap
/// keeps adversarial inputs from overflowing the stack.
std::optional<Value> parse(std::string_view text, std::string* error);

/// Appends `s` to `out` as a JSON string body (no surrounding quotes),
/// escaping quotes, backslashes, and control characters.
void escape(std::string& out, std::string_view s);

}  // namespace dfw::json
