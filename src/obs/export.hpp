// Metrics export: the continuous-telemetry face of the obs layer.
//
// A MetricsSnapshot is an in-process value; a running daemon needs it on
// the wire, repeatedly, in formats downstream tooling already speaks. The
// MetricsExporter renders any snapshot two ways:
//
//   * Prometheus text exposition format — "# TYPE" families plus samples,
//     histograms as cumulative _bucket{le="..."}/_sum/_count series — the
//     scrape format, for pull-based collection of a point-in-time view.
//   * JSONL time-series records ("dfw-metrics-v1") — one self-contained
//     JSON object per line with a sequence number, uptime, the full
//     counter/histogram state, and precomputed p50/p90/p99/p999 per
//     histogram — the append-only format, for trending a daemon's life
//     across ticks (the serve reporter's --metrics-out file).
//
// Both formats get an in-repo structural validator, the same discipline as
// the Chrome-trace (obs/trace.hpp) and SARIF (lint/sarif.hpp) validators:
// CI never uploads an export the repo cannot itself vet. The JSONL side
// also parses back — histogram_from_json / metrics_from_json — which is
// what tools/dfw_bench_diff uses to recompute quantiles offline from
// dfw-bench-obs-v1 records.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace dfw::json {
struct Value;
}  // namespace dfw::json

namespace dfw {

/// Rendering knobs for a MetricsExporter.
struct ExportOptions {
  /// Prepended to every Prometheus family name (after sanitization);
  /// dotted registry names become e.g. dfw_serve_batch_ns.
  std::string prometheus_prefix = "dfw_";
  /// The "source" field of every JSONL record — which process/core the
  /// series came from, for multi-daemon aggregation.
  std::string source = "dfw";
};

class MetricsExporter {
 public:
  explicit MetricsExporter(ExportOptions options = {});

  /// The snapshot as a Prometheus text-exposition document: one
  /// "# TYPE name counter" + sample per counter, one histogram family
  /// (cumulative buckets keyed by inclusive integer upper bounds, then
  /// "+Inf", _sum, _count) per histogram. Deterministic: snapshot order,
  /// no timestamps.
  std::string prometheus(const MetricsSnapshot& snapshot) const;

  /// The snapshot as one dfw-metrics-v1 JSONL record (newline
  /// terminated): schema, seq, uptime_ms, source, counters, histograms —
  /// each histogram with its bucket resolution and p50/p90/p99/p999.
  /// Appending successive calls with increasing `seq` builds a valid
  /// time-series file.
  std::string jsonl(const MetricsSnapshot& snapshot, std::uint64_t seq,
                    std::uint64_t uptime_ms) const;

 private:
  ExportOptions options_;
};

/// Result of validating a Prometheus text-exposition document.
struct PromValidation {
  bool ok = false;
  std::string error;         ///< first failure, with a line number; empty ok
  std::size_t families = 0;  ///< "# TYPE" declarations seen
  std::size_t samples = 0;   ///< sample lines seen
  std::map<std::string, std::string> family_types;  ///< name -> type
};

/// Structurally validates Prometheus text exposition: TYPE declarations
/// precede their samples, names are legal, values are numbers, histogram
/// families carry monotone cumulative buckets ending in an "+Inf" bucket
/// that equals _count, plus exactly one _sum and _count, and no sample is
/// duplicated. Strict by design — it vets this repo's exporter output (and
/// CI scrapes), not arbitrary exposition in the wild.
PromValidation validate_prometheus(std::string_view text);

/// Result of validating a dfw-metrics-v1 JSONL document.
struct JsonlValidation {
  bool ok = false;
  std::string error;        ///< first failure, with a record number
  std::size_t records = 0;  ///< lines that parsed as records
};

/// Structurally validates a dfw-metrics-v1 JSONL file: every non-empty
/// line is a JSON object with the schema marker, a strictly increasing
/// seq, numeric counters, and histograms whose bucket counts sum to their
/// count, whose bounds are non-decreasing, and whose quantile fields are
/// ordered p50 <= p90 <= p99 <= p999.
JsonlValidation validate_metrics_jsonl(std::string_view text);

/// Rebuilds a HistogramSnapshot from its JSON object form — either the
/// MetricsSnapshot::to_json() shape {"count","sum","buckets"} (subbits
/// defaults to 0) or the richer JSONL shape with "subbits". Returns
/// nullopt and fills `error` (when non-null) on a malformed object.
std::optional<HistogramSnapshot> histogram_from_json(const json::Value& value,
                                                     std::string* error);

/// Rebuilds a MetricsSnapshot from a {"counters":..,"histograms":..}
/// JSON object — the `metrics` member of dfw-bench-obs-v1 records and the
/// body of dfw-metrics-v1 JSONL lines. Extra per-histogram fields
/// (quantiles) are ignored; they are derived data.
std::optional<MetricsSnapshot> metrics_from_json(const json::Value& value,
                                                 std::string* error);

}  // namespace dfw
