// Stable dotted metric names for the serve layer.
//
// The registry accepts arbitrary names, which invites drift between the
// code that records a metric and the tools/tests that assert on it (the
// CI serve-smoke job greps a snapshot for serve.swap.count). Naming the
// strings once here keeps recorder and consumer in lockstep; the
// convention matches the rest of the registry: subsystem-dotted, _ns
// suffix for nanosecond histograms (docs/observability.md).

#pragma once

namespace dfw::names {

/// Successful classifier publications (excludes the initial compile).
inline constexpr const char* kServeSwapCount = "serve.swap.count";
/// Swap requests refused by the compile governance (budget/deadline).
inline constexpr const char* kServeSwapRejected = "serve.swap.rejected";
/// Governed compile duration per accepted or rejected swap.
inline constexpr const char* kServeSwapCompileNs = "serve.swap.compile_ns";
/// Retry attempts taken inside self-healing swaps (transient failures:
/// injected faults, deadline breaches, allocation failure).
inline constexpr const char* kServeSwapRetries = "serve.swap.retries";
/// Swaps that fell back to the flat_slab backend after the configured
/// backend breached a capacity cap (kCapacityExceeded).
inline constexpr const char* kServeSwapDegraded = "serve.swap.degraded";
/// Swaps that failed permanently after retries/degradation were
/// exhausted (the served version is untouched — last-good guarantee).
inline constexpr const char* kServeSwapFailed = "serve.swap.failed";
/// High-water mark of the limbo list (a gauge: reported through
/// ServeStats::limbo_peak and the health JSON, not the counter registry).
inline constexpr const char* kServeLimboPeak = "serve.limbo.peak";
/// Snapshot files written after successful boots/swaps.
inline constexpr const char* kServeSnapshotSave = "serve.snapshot.save.count";
/// Snapshots decoded and restored at boot.
inline constexpr const char* kServeSnapshotLoad = "serve.snapshot.load.count";
/// Versions moved to the limbo list (one per successful swap).
inline constexpr const char* kServeRetireCount = "serve.retire.count";
/// Retired versions actually freed after draining.
inline constexpr const char* kServeReclaimCount = "serve.reclaim.count";
/// Batches admitted and classified.
inline constexpr const char* kServeBatchCount = "serve.batch.count";
/// Batches refused by admission control (kOverloaded).
inline constexpr const char* kServeBatchRejected = "serve.batch.rejected";
/// End-to-end duration per admitted batch — the canonical data-plane
/// latency histogram (pin + classify + record). The executor-level
/// rt.executor.chunk_ns histogram is deliberately distinct: it times each
/// pool *chunk* inside a batch, so under a pool executor one batch fans
/// into many chunk samples (and under the inline executor the two series
/// coincide at count parity). Do not re-derive batch latency from it.
inline constexpr const char* kServeBatchNs = "serve.batch.ns";
/// Individual packet lookups across all admitted batches.
inline constexpr const char* kServeLookupCount = "serve.lookup.count";
/// Versions compiled with each classifier backend (one counter bumps per
/// successful compile_version, keyed by ServeOptions::backend).
inline constexpr const char* kServeBackendFlatSlab = "serve.backend.flat_slab";
inline constexpr const char* kServeBackendPrefixTrie =
    "serve.backend.prefix_trie";
inline constexpr const char* kServeBackendBitParallel =
    "serve.backend.bit_parallel";

/// Telemetry ticks taken by the serve reporter thread (one per interval
/// elapse while the core is up; on-demand telemetry_now() calls do not
/// bump it).
inline constexpr const char* kServeTelemetryTicks =
    "serve.telemetry.tick.count";

/// Trace-span names of the serve planes. serve.batch is a *span only*:
/// its duration histogram is the canonical kServeBatchNs above, recorded
/// once per batch (the span used to double-record as phase.serve.batch_ns
/// — deduplicated, see docs/observability.md). serve.swap keeps the
/// PhaseSpan pairing: phase.serve.swap_ns times the whole self-healing
/// loop (retries and backoff included) while kServeSwapCompileNs times
/// each individual compile attempt.
inline constexpr const char* kSpanServeBatch = "serve.batch";
inline constexpr const char* kSpanServeSwap = "serve.swap";

/// Fault-plane counters (rt/fault.hpp): per armed site as
/// rt.fault.site.<site>.hits / .fires, plus the totals below. Registered
/// by absorb(registry, plan) — once per window — or overlaid point-in-time
/// onto telemetry snapshots by overlay(snapshot, plan); a null or unarmed
/// plan registers nothing, preserving byte-identity.
inline constexpr const char* kFaultSitePrefix = "rt.fault.site.";
inline constexpr const char* kFaultTotalHits = "rt.fault.total_hits";
inline constexpr const char* kFaultTotalFires = "rt.fault.total_fires";

/// Simplify pass (src/simplify/): rules removed across all transforms
/// (dead elimination + merges + subsumption) per simplify_policy call.
inline constexpr const char* kSimplifyRulesRemoved =
    "simplify.rules_removed";
/// Equivalence proofs that ended kProven.
inline constexpr const char* kSimplifyProven = "simplify.proof.proven";
/// Simplify runs cut short by governance (original policy returned).
inline constexpr const char* kSimplifyAborted = "simplify.aborted";

/// Fleet driver (src/fleet/): devices attempted (every manifest entry).
inline constexpr const char* kFleetDevices = "fleet.device.count";
/// Devices that finished with a partial (governed) result.
inline constexpr const char* kFleetDevicePartial = "fleet.device.partial";
/// Devices skipped outright because the shared context was already
/// aborted when their task started.
inline constexpr const char* kFleetDeviceSkipped = "fleet.device.skipped";
/// Devices whose config failed to parse.
inline constexpr const char* kFleetParseErrors = "fleet.device.parse_error";
/// Lint findings across all devices, before fingerprint deduplication.
inline constexpr const char* kFleetFindings = "fleet.finding.count";
/// Distinct lint fingerprints across the fleet (the deduplicated count).
inline constexpr const char* kFleetFindingsDistinct =
    "fleet.finding.distinct";
/// Cross-device behavioural divergences recorded by the compare stage.
inline constexpr const char* kFleetDivergences = "fleet.divergence.count";

/// Fleet phase-span names (PhaseSpan requires static string literals):
/// fleet.devices wraps the sharded per-device fan-out, fleet.compare the
/// cross-device comparison stage, fleet.render the report emission.
inline constexpr const char* kSpanFleetDevices = "fleet.devices";
inline constexpr const char* kSpanFleetCompare = "fleet.compare";
inline constexpr const char* kSpanFleetRender = "fleet.render";

/// Per-backend classifier compile phases (phase.<name>_ns histograms via
/// PhaseSpan, which requires these to be static string literals).
inline constexpr const char* kClassifierCompileFlatSlab =
    "classifier.compile.flat_slab";
inline constexpr const char* kClassifierCompilePrefixTrie =
    "classifier.compile.prefix_trie";
inline constexpr const char* kClassifierCompileBitParallel =
    "classifier.compile.bit_parallel";
/// Packet lookups through Classifier::classify* (recorded per batch).
inline constexpr const char* kClassifierLookupCount =
    "engine.classifier.lookup.count";
/// classify_batch / classify_into invocations.
inline constexpr const char* kClassifierBatchCount =
    "engine.classifier.batch.count";
/// End-to-end duration per batch call.
inline constexpr const char* kClassifierBatchNs =
    "engine.classifier.batch_ns";

}  // namespace dfw::names
