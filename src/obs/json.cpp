#include "obs/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dfw::json {
namespace {

constexpr std::size_t kMaxDepth = 128;

struct Parser {
  std::string_view in;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  void skip_ws() {
    while (pos < in.size() &&
           std::isspace(static_cast<unsigned char>(in[pos])) != 0) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos >= in.size() || in[pos] != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool peek(char c) {
    skip_ws();
    return pos < in.size() && in[pos] == c;
  }

  bool parse_string(std::string* out) {
    skip_ws();
    if (pos >= in.size() || in[pos] != '"') {
      return fail("expected string");
    }
    ++pos;
    std::string s;
    while (pos < in.size() && in[pos] != '"') {
      char c = in[pos];
      if (c == '\\') {
        if (pos + 1 >= in.size()) {
          return fail("truncated escape");
        }
        const char esc = in[pos + 1];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos + 5 >= in.size()) {
              return fail("truncated \\u escape");
            }
            for (std::size_t i = 2; i < 6; ++i) {
              if (std::isxdigit(static_cast<unsigned char>(in[pos + i])) ==
                  0) {
                return fail("bad \\u escape");
              }
            }
            pos += 4;  // validators only need structure, not code points
            c = '?';
            break;
          }
          default:
            return fail("bad escape");
        }
        pos += 2;
      } else {
        ++pos;
      }
      s += c;
    }
    if (pos >= in.size()) {
      return fail("unterminated string");
    }
    ++pos;
    if (out != nullptr) {
      *out = std::move(s);
    }
    return true;
  }

  bool parse_number(double* out) {
    skip_ws();
    const std::size_t start = pos;
    if (pos < in.size() && in[pos] == '-') {
      ++pos;
    }
    bool digits = false;
    while (pos < in.size() &&
           (std::isdigit(static_cast<unsigned char>(in[pos])) != 0 ||
            in[pos] == '.' || in[pos] == 'e' || in[pos] == 'E' ||
            in[pos] == '-' || in[pos] == '+')) {
      digits =
          digits || std::isdigit(static_cast<unsigned char>(in[pos])) != 0;
      ++pos;
    }
    if (!digits) {
      return fail("expected number");
    }
    *out = std::strtod(std::string(in.substr(start, pos - start)).c_str(),
                       nullptr);
    return true;
  }

  bool parse_value(Value& out, std::size_t depth) {
    if (depth > kMaxDepth) {
      return fail("nesting too deep");
    }
    skip_ws();
    if (pos >= in.size()) {
      return fail("unexpected end of input");
    }
    const char c = in[pos];
    if (c == '"') {
      out.kind = Value::Kind::kString;
      return parse_string(&out.string);
    }
    if (c == '{') {
      out.kind = Value::Kind::kObject;
      ++pos;
      if (peek('}')) {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        Value member;
        if (!parse_string(&key) || !consume(':') ||
            !parse_value(member, depth + 1)) {
          return false;
        }
        out.object.emplace_back(std::move(key), std::move(member));
        if (peek(',')) {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      out.kind = Value::Kind::kArray;
      ++pos;
      if (peek(']')) {
        ++pos;
        return true;
      }
      for (;;) {
        Value element;
        if (!parse_value(element, depth + 1)) {
          return false;
        }
        out.array.push_back(std::move(element));
        if (peek(',')) {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == 't' || c == 'f' || c == 'n') {
      static constexpr std::string_view kWords[] = {"true", "false", "null"};
      for (const std::string_view w : kWords) {
        if (in.substr(pos, w.size()) == w) {
          pos += w.size();
          out.kind = w[0] == 'n' ? Value::Kind::kNull : Value::Kind::kBool;
          out.boolean = w[0] == 't';
          return true;
        }
      }
      return fail("bad literal");
    }
    out.kind = Value::Kind::kNumber;
    return parse_number(&out.number);
  }
};

}  // namespace

const Value* Value::find(std::string_view key) const {
  if (!is_object()) {
    return nullptr;
  }
  const Value* found = nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) {
      found = &value;
    }
  }
  return found;
}

std::optional<Value> parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Value root;
  if (!p.parse_value(root, 0)) {
    if (error != nullptr) {
      *error = p.error;
    }
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error != nullptr) {
      *error = "trailing garbage at byte " + std::to_string(p.pos);
    }
    return std::nullopt;
  }
  return root;
}

void escape(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace dfw::json
