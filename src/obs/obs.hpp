// The observability sink threaded through the pipeline options structs.
//
// ObsOptions bundles the two sinks — a Tracer for spans and a
// MetricsRegistry for counters/histograms — as borrowed, nullable
// pointers, exactly like RunContext travels for governance: embed an
// ObsOptions in an options struct (ConstructOptions, CompareOptions,
// GenerateOptions, WorkflowOptions), leave it defaulted for the null sink.
// The null sink is the invariant the whole layer rests on: with both
// pointers null every instrumentation point reduces to a pointer test, so
// uninstrumented runs stay byte-identical in output and within noise in
// speed (the <= 2% bench_micro acceptance bound).
//
// PhaseSpan is the standard instrumentation point: one RAII object that
// emits a trace span named after the phase AND records the phase duration
// into the registry histogram "phase.<name>_ns" — so a trace viewer and a
// metrics snapshot agree on where the time went.

#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dfw {

/// Borrowed, nullable observability sinks. Copyable two-pointer value —
/// pass it around by value inside options structs.
struct ObsOptions {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool active() const { return tracer != nullptr || metrics != nullptr; }
};

/// RAII phase instrumentation: a trace span plus a duration sample in the
/// registry histogram "phase.<name>_ns". `name` must be a string literal
/// (the tracer keeps the pointer). Null sinks cost two pointer tests.
class PhaseSpan {
 public:
  PhaseSpan(const ObsOptions& obs, const char* name)
      : span_(obs.tracer, name), metrics_(obs.metrics), name_(name) {
    if (metrics_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  PhaseSpan(const ObsOptions& obs, const char* name, const char* arg0_name,
            std::uint64_t arg0)
      : span_(obs.tracer, name, arg0_name, arg0),
        metrics_(obs.metrics),
        name_(name) {
    if (metrics_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~PhaseSpan() {
    if (metrics_ != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      metrics_->histogram(std::string("phase.") + name_ + "_ns")
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
    }
  }

  PhaseSpan(const PhaseSpan&) = delete;
  PhaseSpan& operator=(const PhaseSpan&) = delete;

 private:
  ScopedSpan span_;
  MetricsRegistry* metrics_;
  const char* name_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace dfw
