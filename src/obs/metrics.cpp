#include "obs/metrics.hpp"

#include <bit>
#include <cmath>

#include "fdd/stats.hpp"
#include "rt/executor.hpp"
#include "rt/govern.hpp"

namespace dfw {

std::size_t Histogram::bucket_of(std::uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t i) {
  return i <= 1 ? 0 : std::uint64_t{1} << (i - 1);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = histogram->bucket_count(i);
      if (n != 0) {
        h.buckets.emplace_back(Histogram::bucket_lower_bound(i), n);
      }
    }
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

namespace {

void append_json_key(std::string& out, const std::string& name) {
  out += '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += "\": ";
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "" : ", ";
    first = false;
    append_json_key(out, name);
    out += std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "" : ", ";
    first = false;
    append_json_key(out, name);
    out += "{\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [lo, n] : h.buckets) {
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      out += "[" + std::to_string(lo) + ", " + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void absorb(MetricsRegistry& registry, const ExecutorMetrics& metrics) {
  registry.counter("rt.executor.tasks_run").add(metrics.tasks_run);
  registry.counter("rt.executor.steals").add(metrics.steals);
  registry.counter("rt.executor.batches").add(metrics.batches);
  registry.counter("rt.executor.busy_ns")
      .add(static_cast<std::uint64_t>(metrics.busy_ms * 1e6));
}

void absorb(MetricsRegistry& registry, const ArenaStats& stats) {
  registry.counter("fdd.arena.unique_nodes").add(stats.unique_nodes);
  registry.counter("fdd.arena.unique_labels").add(stats.unique_labels);
  registry.counter("fdd.arena.node_queries").add(stats.node_queries);
  registry.counter("fdd.arena.node_hits").add(stats.node_hits);
  registry.counter("fdd.arena.label_queries").add(stats.label_queries);
  registry.counter("fdd.arena.label_hits").add(stats.label_hits);
  registry.counter("fdd.arena.append_cache_hits").add(stats.append_cache_hits);
  registry.counter("fdd.arena.append_cache_misses")
      .add(stats.append_cache_misses);
  registry.counter("fdd.arena.shape_cache_hits").add(stats.shape_cache_hits);
  registry.counter("fdd.arena.shape_cache_misses")
      .add(stats.shape_cache_misses);
  registry.counter("fdd.arena.compare_cache_hits")
      .add(stats.compare_cache_hits);
  registry.counter("fdd.arena.compare_cache_misses")
      .add(stats.compare_cache_misses);
  registry.counter("fdd.arena.equiv_cache_hits").add(stats.equiv_cache_hits);
  registry.counter("fdd.arena.equiv_cache_misses")
      .add(stats.equiv_cache_misses);
}

void absorb(MetricsRegistry& registry, const RunContext& context) {
  registry.counter("rt.govern.nodes_charged").add(context.nodes_charged());
  registry.counter("rt.govern.label_bytes_charged")
      .add(context.label_bytes_charged());
  registry.counter("rt.govern.rules_charged").add(context.rules_charged());
  registry.counter("rt.govern.aborted").add(context.aborted() ? 1 : 0);
}

}  // namespace dfw
