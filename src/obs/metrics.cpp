#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "fdd/stats.hpp"
#include "obs/names.hpp"
#include "rt/executor.hpp"
#include "rt/fault.hpp"
#include "rt/govern.hpp"

namespace dfw {

Histogram::Histogram(std::uint32_t subbits)
    : subbits_(std::min(subbits, kMaxSubbits)),
      buckets_(new std::atomic<std::uint64_t>[num_buckets(subbits_)]()) {}

std::size_t Histogram::num_buckets(std::uint32_t subbits) {
  subbits = std::min(subbits, kMaxSubbits);
  // One zero bucket, 2^(s+1)-1 exact buckets for [1, 2^(s+1)), and 2^s
  // sub-buckets for each of the 63-s remaining octaves.
  return (std::size_t{65} - subbits) << subbits;
}

std::size_t Histogram::bucket_of(std::uint64_t value, std::uint32_t subbits) {
  const std::uint32_t s = std::min(subbits, kMaxSubbits);
  if (value == 0) {
    return 0;
  }
  const std::uint32_t width = std::bit_width(value);
  if (width <= s + 1) {
    return static_cast<std::size_t>(value);  // the exact linear region
  }
  // Octave [2^(width-1), 2^width), sub-bucket from the s bits after the
  // leading one.
  const std::uint64_t sub =
      (value >> (width - 1 - s)) & ((std::uint64_t{1} << s) - 1);
  return (std::size_t{1} << (s + 1)) +
         static_cast<std::size_t>(width - s - 2) * (std::size_t{1} << s) +
         static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_lower_bound(std::size_t i,
                                            std::uint32_t subbits) {
  const std::uint32_t s = std::min(subbits, kMaxSubbits);
  if (i <= 1) {
    return 0;  // the zero bucket, and the v==1 bucket's legacy 0 label
  }
  const std::size_t linear = std::size_t{1} << (s + 1);
  if (i < linear) {
    return i;
  }
  const std::size_t j = i - linear;
  const std::size_t octave = j >> s;  // octaves above the linear region
  const std::uint64_t sub = j & ((std::uint64_t{1} << s) - 1);
  return ((std::uint64_t{1} << s) + sub) << (octave + 1);
}

std::uint64_t Histogram::bucket_next_bound(std::uint64_t lo,
                                           std::uint32_t subbits) {
  const std::uint32_t s = std::min(subbits, kMaxSubbits);
  if (lo < (std::uint64_t{1} << (s + 1))) {
    return lo + 1;  // zero/linear region: single-value buckets
  }
  const std::uint64_t step = std::uint64_t{1} << (std::bit_width(lo) - 1 - s);
  const std::uint64_t next = lo + step;
  return next < lo ? ~std::uint64_t{0} : next;  // top bucket saturates
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the target observation under the nearest-rank rule.
  const std::uint64_t target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (const auto& [lo, n] : buckets) {
    if (seen + n >= target) {
      const std::uint64_t hi = Histogram::bucket_next_bound(lo, subbits);
      // Linear interpolation inside the bucket: rank 1 of n maps to the
      // lower bound, rank n to just below the upper.
      const double within = n <= 1 ? 0.0
                                   : static_cast<double>(target - seen - 1) /
                                         static_cast<double>(n - 1);
      const double width = static_cast<double>(hi - lo);
      return static_cast<double>(lo) +
             within * std::max(0.0, width - 1.0);
    }
    seen += n;
  }
  // Counts and buckets disagree (hand-built snapshot): report the top.
  return buckets.empty() ? 0.0
                         : static_cast<double>(buckets.back().first);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (subbits != other.subbits && count != 0 && other.count != 0) {
    throw std::logic_error(
        "HistogramSnapshot::merge: mismatched bucket resolutions");
  }
  if (count == 0) {
    subbits = other.subbits;
  }
  count += other.count;
  sum += other.sum;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0;
  std::size_t b = 0;
  // Both lists are ordered by bucket index; equal bounds are the same
  // bucket except the legacy (0, n) pair, where the zero bucket precedes
  // the v==1 bucket on both sides — summing positionally keeps that shape.
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b == other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a == buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
}

MetricsRegistry::MetricsRegistry(std::uint32_t histogram_subbits)
    : subbits_(std::min(histogram_subbits, Histogram::kMaxSubbits)) {}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(subbits_))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.subbits = histogram->subbits();
    const std::size_t buckets = Histogram::num_buckets(h.subbits);
    for (std::size_t i = 0; i < buckets; ++i) {
      const std::uint64_t n = histogram->bucket_count(i);
      if (n != 0) {
        h.buckets.emplace_back(Histogram::bucket_lower_bound(i, h.subbits),
                               n);
      }
    }
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

namespace {

void append_json_key(std::string& out, const std::string& name) {
  out += '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  out += "\": ";
}

}  // namespace

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "" : ", ";
    first = false;
    append_json_key(out, name);
    out += std::to_string(value);
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "" : ", ";
    first = false;
    append_json_key(out, name);
    out += "{\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) + ", \"buckets\": [";
    bool first_bucket = true;
    for (const auto& [lo, n] : h.buckets) {
      out += first_bucket ? "" : ", ";
      first_bucket = false;
      out += "[" + std::to_string(lo) + ", " + std::to_string(n) + "]";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void absorb(MetricsRegistry& registry, const ExecutorMetrics& metrics) {
  registry.counter("rt.executor.tasks_run").add(metrics.tasks_run);
  registry.counter("rt.executor.steals").add(metrics.steals);
  registry.counter("rt.executor.batches").add(metrics.batches);
  registry.counter("rt.executor.busy_ns")
      .add(static_cast<std::uint64_t>(metrics.busy_ms * 1e6));
}

void absorb(MetricsRegistry& registry, const ArenaStats& stats) {
  registry.counter("fdd.arena.unique_nodes").add(stats.unique_nodes);
  registry.counter("fdd.arena.unique_labels").add(stats.unique_labels);
  registry.counter("fdd.arena.node_queries").add(stats.node_queries);
  registry.counter("fdd.arena.node_hits").add(stats.node_hits);
  registry.counter("fdd.arena.label_queries").add(stats.label_queries);
  registry.counter("fdd.arena.label_hits").add(stats.label_hits);
  registry.counter("fdd.arena.append_cache_hits").add(stats.append_cache_hits);
  registry.counter("fdd.arena.append_cache_misses")
      .add(stats.append_cache_misses);
  registry.counter("fdd.arena.shape_cache_hits").add(stats.shape_cache_hits);
  registry.counter("fdd.arena.shape_cache_misses")
      .add(stats.shape_cache_misses);
  registry.counter("fdd.arena.compare_cache_hits")
      .add(stats.compare_cache_hits);
  registry.counter("fdd.arena.compare_cache_misses")
      .add(stats.compare_cache_misses);
  registry.counter("fdd.arena.equiv_cache_hits").add(stats.equiv_cache_hits);
  registry.counter("fdd.arena.equiv_cache_misses")
      .add(stats.equiv_cache_misses);
}

void absorb(MetricsRegistry& registry, const RunContext& context) {
  registry.counter("rt.govern.nodes_charged").add(context.nodes_charged());
  registry.counter("rt.govern.label_bytes_charged")
      .add(context.label_bytes_charged());
  registry.counter("rt.govern.rules_charged").add(context.rules_charged());
  registry.counter("rt.govern.aborted").add(context.aborted() ? 1 : 0);
}

namespace {

std::string fault_site_counter(const std::string& site, const char* leaf) {
  std::string name = names::kFaultSitePrefix;
  name += site;
  name += leaf;
  return name;
}

}  // namespace

void absorb(MetricsRegistry& registry, const FaultPlan& plan) {
  const std::vector<FaultPlan::SiteStats> stats = plan.stats();
  if (stats.empty()) {
    return;  // an unarmed plan registers no keys — snapshot bytes unchanged
  }
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  for (const FaultPlan::SiteStats& s : stats) {
    registry.counter(fault_site_counter(s.site, ".hits")).add(s.hits);
    registry.counter(fault_site_counter(s.site, ".fires")).add(s.fires);
    hits += s.hits;
    fires += s.fires;
  }
  registry.counter(names::kFaultTotalHits).add(hits);
  registry.counter(names::kFaultTotalFires).add(fires);
}

void overlay(MetricsSnapshot& snapshot, const FaultPlan& plan) {
  const std::vector<FaultPlan::SiteStats> stats = plan.stats();
  if (stats.empty()) {
    return;  // an unarmed plan adds no keys — snapshot bytes unchanged
  }
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  for (const FaultPlan::SiteStats& s : stats) {
    snapshot.counters[fault_site_counter(s.site, ".hits")] = s.hits;
    snapshot.counters[fault_site_counter(s.site, ".fires")] = s.fires;
    hits += s.hits;
    fires += s.fires;
  }
  snapshot.counters[names::kFaultTotalHits] = hits;
  snapshot.counters[names::kFaultTotalFires] = fires;
}

}  // namespace dfw
