// Firewall generation from an FDD (the paper's ref [12], "Structured
// Firewall Design"), used by discrepancy-resolution method 1 (Section 6.1).
//
// The generator turns an FDD back into a first-match rule sequence. At each
// node one outgoing edge is elected the *default* branch: rules for the
// other branches are emitted first with explicit field constraints, then
// the default branch's rules follow with the field left unconstrained —
// first-match shadowing makes that sound, and it is what produces compact,
// human-style rule lists ending in a catch-all. Electing the branch with
// the largest generated-rule count as default minimises the output size
// greedily.

#pragma once

#include "fdd/fdd.hpp"
#include "fw/policy.hpp"
#include "obs/obs.hpp"
#include "rt/run_options.hpp"

namespace dfw {

class RunContext;

/// Knobs for the generation entry points, in the same options-struct idiom
/// as ConstructOptions/CompareOptions.
struct GenerateOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.context` governs
  /// the generation: every emitted rule is charged against the rule budget
  /// (the rule-blowup guard — path enumeration over a shared diagram can
  /// be exponentially larger than the diagram), interned arena nodes
  /// against the node budget, and the recursion takes amortized
  /// cancellation/deadline checkpoints. A breach throws dfw::Error; a
  /// half-generated policy has no first-match semantics, so there is no
  /// partial-policy form. `run.obs`: generation runs under a "generate"
  /// phase span/histogram and counts emitted rules into
  /// "gen.rules_emitted". `run.executor` is accepted for uniformity but
  /// unused — generation is a single serial walk.
  RunOptions run = {};

  /// Reduce the diagram first (through the arena's canonical interning);
  /// false generates from the diagram exactly as given.
  bool reduce_first = true;
};

/// Generates a comprehensive policy equivalent to the FDD. Requires a
/// valid, complete FDD. The FDD is reduced internally first; set
/// `options.reduce_first = false` to generate from the diagram exactly as
/// given.
Policy generate_policy(const Fdd& fdd, const GenerateOptions& options = {});

/// Alternative generation for deployment: one rule per decision path whose
/// decision differs from `fallback`, followed by a catch-all deciding
/// `fallback`. The emitted non-default rules are pairwise disjoint (they
/// are distinct FDD paths), so their order is immaterial — the natural
/// "carve-outs over a default" shape vendor configurations use, and the
/// shape the adapters' emitters can always express when each carve-out
/// pins its protocol. Usually longer than generate_policy's output but
/// free of "negative space" rules.
Policy generate_disjoint_policy(const Fdd& fdd, Decision fallback,
                                const GenerateOptions& options = {});

}  // namespace dfw
