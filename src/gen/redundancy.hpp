// Redundant-rule detection and removal (the paper's ref [19], "Complete
// Redundancy Detection in Firewalls"), used by discrepancy-resolution
// method 2 (Section 6.2).
//
// A rule is redundant iff removing it does not change the firewall's
// mapping from packets to decisions. We decide that definitionally with an
// FDD equivalence check per candidate, and remove greedily back to front,
// re-checking against the shrinking policy so the final sequence has no
// redundant rule left (a maximal removal set).

#pragma once

#include <cstddef>
#include <vector>

#include "fw/policy.hpp"

namespace dfw {

class RunContext;

/// True iff rules()[index] is redundant in `policy` — removing it leaves
/// the packet-to-decision mapping unchanged. Requires a comprehensive
/// policy with at least two rules and index < size(). The governed
/// variant threads `context` (borrowed, nullable) through the per-
/// candidate FDD builds and equivalence walks; a breach throws dfw::Error.
bool is_redundant(const Policy& policy, std::size_t index);
bool is_redundant(const Policy& policy, std::size_t index,
                  RunContext* context);

/// Indices (ascending) of rules redundant *in the original policy*, each
/// tested independently. Note removing several at once is not always
/// sound; use remove_redundant for that. Same governed-variant contract
/// as is_redundant.
std::vector<std::size_t> redundant_rules(const Policy& policy);
std::vector<std::size_t> redundant_rules(const Policy& policy,
                                         RunContext* context);

/// Returns an equivalent policy from which redundant rules have been
/// removed greedily (back to front, re-testing after each removal) until
/// none remains.
Policy remove_redundant(const Policy& policy);

}  // namespace dfw
