#include "gen/generate.hpp"

#include "fdd/arena.hpp"
#include "rt/govern.hpp"

namespace dfw {
namespace {

// Number of rules gen() would emit for this subtree.
std::size_t rule_cost(const FddNode& n) {
  if (n.is_terminal()) {
    return 1;
  }
  std::size_t total = 0;
  for (const FddEdge& e : n.edges) {
    total += rule_cost(*e.target);
  }
  return total;
}

// Emits rules for the subtree under `node` given the constraints
// accumulated so far. The default (last-emitted) branch leaves its field
// unconstrained; correctness rests on the earlier, explicitly-constrained
// rules having carved out every other branch's packets.
void gen(const Schema& schema, const FddNode& node,
         std::vector<IntervalSet>& conjuncts, std::vector<Rule>& out,
         RunContext* ctx = nullptr) {
  govern::checkpoint(ctx);
  if (node.is_terminal()) {
    govern::charge_rules(ctx);
    out.emplace_back(schema, conjuncts, node.decision);
    return;
  }
  // Elect the default branch: highest rule cost, ties broken toward the
  // larger value region (the "everything else" branch human authors would
  // leave for last, and the one most likely to be absorbed by an outer
  // default during redundancy removal).
  std::size_t default_edge = 0;
  std::size_t best_cost = 0;
  Value best_width = 0;
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    const std::size_t cost = rule_cost(*node.edges[i].target);
    const Value width = node.edges[i].label.size();
    if (cost > best_cost || (cost == best_cost && width > best_width)) {
      best_cost = cost;
      best_width = width;
      default_edge = i;
    }
  }
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    if (i == default_edge) {
      continue;
    }
    conjuncts[node.field] = node.edges[i].label;
    gen(schema, *node.edges[i].target, conjuncts, out, ctx);
  }
  conjuncts[node.field] = IntervalSet(schema.domain(node.field));
  gen(schema, *node.edges[default_edge].target, conjuncts, out, ctx);
}

}  // namespace

Policy generate_disjoint_policy(const Fdd& fdd, Decision fallback,
                                const GenerateOptions& options) {
  PhaseSpan phase(options.run.obs, "generate");
  const Schema& schema = fdd.schema();
  RunContext* context = options.run.context;
  std::vector<Rule> rules;
  const auto emit = [&](const std::vector<IntervalSet>& conjuncts,
                        Decision decision) {
    govern::checkpoint(context);
    if (decision != fallback) {
      govern::charge_rules(context);
      rules.emplace_back(schema, conjuncts, decision);
    }
  };
  if (options.reduce_first) {
    // Interning through canonical() is the arena image of reduce(); the
    // clone-and-reduce of the tree path is never materialised, and shared
    // subdiagrams are expanded per path only while enumerating.
    FddArena arena(schema);
    arena.set_context(context);
    const ArenaNodeId root = arena.from_tree_canonical(fdd.root());
    arena.for_each_path(root, emit);
    if (options.run.obs.metrics != nullptr) {
      absorb(*options.run.obs.metrics, arena.stats());
    }
  } else {
    fdd.for_each_path(emit);
  }
  rules.push_back(Rule::catch_all(schema, fallback));
  if (options.run.obs.metrics != nullptr) {
    options.run.obs.metrics->counter("gen.rules_emitted").add(rules.size());
  }
  return Policy(schema, std::move(rules));
}

Policy generate_policy(const Fdd& fdd, const GenerateOptions& options) {
  PhaseSpan phase(options.run.obs, "generate");
  const Schema& schema = fdd.schema();
  Policy out = [&] {
    if (options.reduce_first) {
      // Arena path: canonical interning is reduce(), and the default-branch
      // election's rule-cost recursion — quadratic on trees — is memoised
      // by node id, once per unique subdiagram.
      FddArena arena(schema);
      arena.set_context(options.run.context);
      Policy p = arena.generate(arena.from_tree_canonical(fdd.root()));
      if (options.run.obs.metrics != nullptr) {
        absorb(*options.run.obs.metrics, arena.stats());
      }
      return p;
    }
    std::vector<IntervalSet> conjuncts;
    conjuncts.reserve(schema.field_count());
    for (std::size_t i = 0; i < schema.field_count(); ++i) {
      conjuncts.emplace_back(schema.domain(i));
    }
    std::vector<Rule> rules;
    gen(schema, fdd.root(), conjuncts, rules, options.run.context);
    return Policy(schema, std::move(rules));
  }();
  if (options.run.obs.metrics != nullptr) {
    options.run.obs.metrics->counter("gen.rules_emitted").add(out.size());
  }
  return out;
}

}  // namespace dfw
