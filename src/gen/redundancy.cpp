#include "gen/redundancy.hpp"

#include <stdexcept>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"

namespace dfw {
namespace {

Policy without_rule(const Policy& policy, std::size_t index) {
  std::vector<Rule> rules = policy.rules();
  rules.erase(rules.begin() + static_cast<std::ptrdiff_t>(index));
  return Policy(policy.schema(), std::move(rules));
}

}  // namespace

bool is_redundant(const Policy& policy, std::size_t index) {
  return is_redundant(policy, index, nullptr);
}

bool is_redundant(const Policy& policy, std::size_t index,
                  RunContext* context) {
  if (index >= policy.size()) {
    throw std::out_of_range("is_redundant: index out of range");
  }
  if (policy.size() < 2) {
    return false;  // the only rule of a policy is never removable
  }
  // Removing the final catch-all can make the rest non-comprehensive, in
  // which case it is certainly not redundant; detect that cheaply first.
  const Policy candidate = without_rule(policy, index);
  ConstructOptions construct;
  construct.run.context = context;
  Fdd rest = build_reduced_fdd(candidate, construct);
  try {
    rest.validate();
  } catch (const std::logic_error&) {
    return false;  // candidate not comprehensive -> mapping changed
  }
  CompareOptions compare;
  compare.run.context = context;
  return discrepancies(policy, candidate, compare).empty();
}

std::vector<std::size_t> redundant_rules(const Policy& policy) {
  return redundant_rules(policy, nullptr);
}

std::vector<std::size_t> redundant_rules(const Policy& policy,
                                         RunContext* context) {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < policy.size(); ++i) {
    if (is_redundant(policy, i, context)) {
      result.push_back(i);
    }
  }
  return result;
}

Policy remove_redundant(const Policy& policy) {
  Policy current = policy;
  bool removed = true;
  while (removed) {
    removed = false;
    for (std::size_t i = current.size(); i-- > 0;) {
      if (current.size() >= 2 && is_redundant(current, i)) {
        current = without_rule(current, i);
        removed = true;
      }
    }
  }
  return current;
}

}  // namespace dfw
