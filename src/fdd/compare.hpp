// Comparison algorithm (paper, Section 5).
//
// Two semi-isomorphic FDDs define companion rules: corresponding decision
// paths share the same predicate and may differ only in decision. A
// discrepancy is one companion pair with different decisions; the set of
// all of them manifests every functional difference between the two
// firewalls. We also provide the N-way generalisation (one record per
// predicate whose decisions across the N diagrams are not all equal) and a
// whole-pipeline convenience that goes from two rule sequences to
// discrepancies (construct -> shape -> compare).

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "fdd/fdd.hpp"
#include "fw/policy.hpp"
#include "obs/obs.hpp"
#include "rt/govern.hpp"
#include "rt/run_options.hpp"

namespace dfw {

class Executor;

/// One functional discrepancy: a predicate (one value set per schema
/// field) plus the decision each compared firewall assigns to packets
/// matching it. decisions.size() equals the number of compared firewalls,
/// in input order, and the decisions are not all equal.
struct Discrepancy {
  std::vector<IntervalSet> conjuncts;
  std::vector<Decision> decisions;

  friend bool operator==(const Discrepancy&, const Discrepancy&) = default;
};

/// Options threaded through the comparison pipeline.
struct CompareOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.executor`: with a
  /// pool, the constructions run concurrently and the comparison walk
  /// forks; results are identical for every executor. `run.context`:
  /// cancellation, deadline, and resource budgets observed throughout the
  /// pipeline — construction charges nodes, shaping charges
  /// inserted/cloned nodes, and the comparison walk takes amortized
  /// checkpoints. The vector-returning entry points let a breach propagate
  /// as dfw::Error; the *_governed entry points catch it and return the
  /// discrepancies found so far with complete=false. `run.obs`: the
  /// pipelines emit phase spans — "construct", "validate", "shape",
  /// "compare" — plus per-policy "build_reduced_fdd" spans and per-chunk
  /// "chunk" spans under a pool executor, and record phase durations into
  /// the registry ("phase.<name>_ns"); arena pipelines absorb their
  /// ArenaStats into the registry on completion.
  RunOptions run = {};
  /// Minimum outgoing edges at an FDD root before the comparison walk
  /// forks its top-level subtrees as independent pool tasks.
  std::size_t fork_threshold = 4;
  /// Run the discrepancies pipelines arena-native (fdd/arena.hpp):
  /// construct, shape, and compare on hash-consed node ids, with memoised
  /// shaping and identical-subdiagram pruning, never expanding a tree.
  /// Output is identical either way. An arena is single-threaded, so a
  /// pool executor always takes the tree path regardless of this flag.
  bool use_arena = true;
};

/// Result of a governed comparison. When `complete` is false the pipeline
/// was cut short by `status` (cancellation, deadline, or a budget breach)
/// and `discrepancies` holds only what was found before the cut — a
/// partial, clearly-marked report rather than a silent truncation.
struct CompareOutcome {
  std::vector<Discrepancy> discrepancies;
  bool complete = true;
  ErrorCode status = ErrorCode::kOk;
  std::string message;  ///< empty when complete; Error::what() otherwise
};

/// Compares two semi-isomorphic FDDs; requires semi_isomorphic(a, b).
/// Returns one Discrepancy per differing companion-rule pair, in decision-
/// path (depth-first) order.
std::vector<Discrepancy> compare_fdds(const Fdd& a, const Fdd& b,
                                      const CompareOptions& options = {});

/// N-way comparison of pairwise semi-isomorphic FDDs (e.g. from
/// shape_all). A path is reported when not all N decisions agree.
std::vector<Discrepancy> compare_fdds_many(const std::vector<Fdd>& fdds,
                                           const CompareOptions& options = {});

/// Full pipeline on policies: construct, shape, compare. Policies must be
/// comprehensive and share a schema. With a pool executor the two FDDs
/// are constructed concurrently and the comparison walk forks.
std::vector<Discrepancy> discrepancies(const Policy& a, const Policy& b,
                                       const CompareOptions& options = {});

/// N-way full pipeline using direct comparison (Section 7.3). With a pool
/// executor the N constructions run as independent pool tasks.
std::vector<Discrepancy> discrepancies_many(
    const std::vector<Policy>& policies, const CompareOptions& options = {});

/// Governed full pipeline: like discrepancies(), but a breach of
/// options.run.context (cancellation, deadline, node/label/rule budget) is
/// caught and reported as a partial CompareOutcome instead of propagating.
/// Non-governance errors (invalid inputs, internal faults) still throw.
CompareOutcome discrepancies_governed(const Policy& a, const Policy& b,
                                      const CompareOptions& options);

/// Governed N-way pipeline; see discrepancies_governed.
CompareOutcome discrepancies_many_governed(
    const std::vector<Policy>& policies, const CompareOptions& options);

/// Two firewalls are equivalent iff they have no functional discrepancy
/// (Section 3.1's f1 == f2 mapping equality).
bool equivalent(const Policy& a, const Policy& b);

/// The number of *packets* covered by a discrepancy's predicate
/// (saturating): useful for ranking discrepancies by blast radius in
/// change-impact reports.
Value discrepancy_packet_count(const Discrepancy& d);

}  // namespace dfw
