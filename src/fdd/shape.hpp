// Shaping algorithm (paper, Section 4, Figs. 10-11).
//
// Transforms ordered FDDs into pairwise semi-isomorphic FDDs without
// changing their semantics, using only the three semantics-preserving
// operations: node insertion, edge splitting, and subgraph replication.
// After shaping, corresponding decision paths have identical predicates, so
// the comparison algorithm can read off discrepancies terminal by terminal.
//
// We implement Fig. 11's worklist of shapable node pairs as structural
// recursion over the two trees (each node participates in exactly one
// shapable pair, so the order of processing is irrelevant), and extend the
// pairwise algorithm to N diagrams by iterated alignment (Section 7.3).

#pragma once

#include <vector>

#include "fdd/fdd.hpp"

namespace dfw {

class RunContext;

/// Makes two FDDs semi-isomorphic in place. Both must be valid, complete,
/// ordered FDDs over the same schema (they need not be simple yet; shaping
/// simplifies them first). Postcondition: semi_isomorphic(a, b).
void shape_pair(Fdd& a, Fdd& b);

/// Governed shape_pair: inserted nodes and subgraph-replication clones are
/// charged against `context`'s node budget (null = ungoverned) and the
/// recursion takes amortized cancellation/deadline checkpoints. A breach
/// throws dfw::Error; the diagrams are left valid but possibly partially
/// shaped — rebuild them before reuse.
void shape_pair(Fdd& a, Fdd& b, RunContext* context);

/// The paper-literal variant of shape_pair: first makes both diagrams
/// simple (single-interval edges, every field on every path), then runs
/// Fig. 10's edge-splitting sweep. Produces simple semi-isomorphic FDDs —
/// exactly the paper's Figs. 4-5 pipeline — at the cost of tearing shared
/// regions into per-interval edges. Kept for cross-validation and for the
/// shaping ablation benchmark; shape_pair is the production path.
void shape_pair_simple(Fdd& a, Fdd& b);

/// Direct N-way extension (Section 7.3): makes every diagram in `fdds`
/// semi-isomorphic to every other. Requires fdds.size() >= 1.
///
/// Implementation: align fdds[0] with each other diagram in turn; aligning
/// with fdds[i] only ever *refines* fdds[0] (splits its edges / inserts
/// nodes), so re-aligning already-shaped diagrams against the final
/// fdds[0] converges after a second pass.
void shape_all(std::vector<Fdd>& fdds);

/// Governed shape_all; see the governed shape_pair for semantics.
void shape_all(std::vector<Fdd>& fdds, RunContext* context);

}  // namespace dfw
