#include "fdd/dot.hpp"

#include "fw/format.hpp"

namespace dfw {
namespace {

void emit(const Schema& schema, const DecisionSet& decisions,
          const FddNode& node, std::size_t& next_id, std::string& out) {
  const std::size_t id = next_id++;
  if (node.is_terminal()) {
    out += "  n" + std::to_string(id) + " [shape=box, label=\"" +
           decisions.name(node.decision) + "\"];\n";
    return;
  }
  out += "  n" + std::to_string(id) + " [shape=circle, label=\"" +
         schema.field(node.field).name + "\"];\n";
  for (const FddEdge& e : node.edges) {
    const std::size_t child_id = next_id;
    emit(schema, decisions, *e.target, next_id, out);
    out += "  n" + std::to_string(id) + " -> n" + std::to_string(child_id) +
           " [label=\"" + format_spec(schema.field(node.field), e.label) +
           "\"];\n";
  }
}

}  // namespace

std::string to_dot(const Fdd& fdd, const DecisionSet& decisions) {
  std::string out = "digraph fdd {\n";
  std::size_t next_id = 0;
  emit(fdd.schema(), decisions, fdd.root(), next_id, out);
  out += "}\n";
  return out;
}

}  // namespace dfw
