// Diagram statistics: size measures used by Theorem 1's bound checks, the
// benchmarks, and the examples' progress reports.

#pragma once

#include <cstddef>
#include <string>

#include "fdd/fdd.hpp"

namespace dfw {

struct FddStats {
  std::size_t nodes = 0;      ///< total node count, root included
  std::size_t terminals = 0;  ///< terminal-node count
  std::size_t edges = 0;      ///< total edge count
  std::size_t paths = 0;      ///< decision-path count (f.rules size)
  std::size_t depth = 0;      ///< longest root-to-terminal node count
};

FddStats compute_stats(const Fdd& fdd);

/// Theorem 1's bound on the path count of an FDD constructed from n simple
/// rules over d fields: (2n-1)^d, saturating at SIZE_MAX.
std::size_t theorem1_path_bound(std::size_t n_rules, std::size_t d_fields);

std::string to_string(const FddStats& s);

}  // namespace dfw
