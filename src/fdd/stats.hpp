// Diagram statistics: size measures used by Theorem 1's bound checks, the
// benchmarks, and the examples' progress reports.

#pragma once

#include <cstddef>
#include <string>

#include "fdd/fdd.hpp"

namespace dfw {

struct FddStats {
  std::size_t nodes = 0;      ///< total node count, root included
  std::size_t terminals = 0;  ///< terminal-node count
  std::size_t edges = 0;      ///< total edge count
  std::size_t paths = 0;      ///< decision-path count (f.rules size)
  std::size_t depth = 0;      ///< longest root-to-terminal node count
};

FddStats compute_stats(const Fdd& fdd);

/// Theorem 1's bound on the path count of an FDD constructed from n simple
/// rules over d fields: (2n-1)^d, saturating at SIZE_MAX.
std::size_t theorem1_path_bound(std::size_t n_rules, std::size_t d_fields);

std::string to_string(const FddStats& s);

/// Counters an FddArena keeps over its lifetime: unique-table and label-
/// table sizes and hit rates, plus per-operation memo-cache hit rates.
/// Deterministic for a fixed operation sequence, so benchmarks can report
/// sharing factors and tests can assert reproducibility.
struct ArenaStats {
  std::size_t unique_nodes = 0;    ///< nodes the arena materialised
  std::size_t unique_labels = 0;   ///< interned edge labels
  std::size_t node_queries = 0;    ///< unique-table lookups
  std::size_t node_hits = 0;       ///< lookups resolved to an existing node
  std::size_t label_queries = 0;   ///< label-table lookups
  std::size_t label_hits = 0;      ///< lookups resolved to an existing label
  std::size_t append_cache_hits = 0;    ///< COW-append memo hits
  std::size_t append_cache_misses = 0;
  std::size_t shape_cache_hits = 0;     ///< shaping-pair memo hits
  std::size_t shape_cache_misses = 0;
  std::size_t compare_cache_hits = 0;   ///< comparison-walk prune hits
  std::size_t compare_cache_misses = 0;
  std::size_t equiv_cache_hits = 0;     ///< semi-isomorphism memo hits
  std::size_t equiv_cache_misses = 0;

  friend bool operator==(const ArenaStats&, const ArenaStats&) = default;
};

std::string to_string(const ArenaStats& s);

}  // namespace dfw
