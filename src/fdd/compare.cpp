#include "fdd/compare.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include "fdd/arena.hpp"
#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "rt/executor.hpp"
#include "rt/parallel.hpp"

namespace dfw {
namespace {

Executor& resolve_executor(const CompareOptions& options) {
  return executor_or_inline(options.run);
}

// Lockstep walk over N semi-isomorphic subtrees accumulating the common
// path predicate; emits a record at terminals with disagreeing decisions.
// Governed walks checkpoint here; unwinding leaves the discrepancies found
// so far in `out` (caller-owned), which is what partial reports surface.
void walk(const Schema& schema, const std::vector<const FddNode*>& nodes,
          std::vector<IntervalSet>& conjuncts, std::vector<Discrepancy>& out,
          RunContext* ctx) {
  govern::checkpoint(ctx);
  const FddNode* first = nodes.front();
  if (first->is_terminal()) {
    const bool all_equal =
        std::all_of(nodes.begin(), nodes.end(), [&](const FddNode* n) {
          return n->decision == first->decision;
        });
    if (!all_equal) {
      Discrepancy d;
      d.conjuncts = conjuncts;
      d.decisions.reserve(nodes.size());
      for (const FddNode* n : nodes) {
        d.decisions.push_back(n->decision);
      }
      out.push_back(std::move(d));
    }
    return;
  }
  for (std::size_t e = 0; e < first->edges.size(); ++e) {
    conjuncts[first->field] = first->edges[e].label;
    std::vector<const FddNode*> children;
    children.reserve(nodes.size());
    for (const FddNode* n : nodes) {
      children.push_back(n->edges[e].target.get());
    }
    walk(schema, children, conjuncts, out, ctx);
  }
  conjuncts[first->field] = IntervalSet(schema.domain(first->field));
}

void compare_impl(const Schema& schema, std::vector<const FddNode*> roots,
                  const CompareOptions& options,
                  std::vector<Discrepancy>& out) {
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema.field_count());
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    conjuncts.emplace_back(schema.domain(i));
  }
  Executor& ex = resolve_executor(options);
  const FddNode* first = roots.front();
  if (!ex.is_inline() && !first->is_terminal() &&
      first->edges.size() >= std::max<std::size_t>(1, options.fork_threshold)) {
    // Fork the root's subtree recursions as independent tasks. Each task
    // walks with its own conjunct stack; concatenating the per-edge output
    // in edge order reproduces the serial depth-first order exactly. The
    // staging vector lives here, not in parallel_map, so a governed abort
    // can still flush every completed task's findings into `out`.
    std::vector<std::vector<Discrepancy>> parts(first->edges.size());
    const auto flush = [&] {
      for (std::vector<Discrepancy>& part : parts) {
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
    };
    try {
      ex.parallel_for(
          first->edges.size(),
          [&](std::size_t e) {
            std::vector<IntervalSet> local = conjuncts;
            local[first->field] = first->edges[e].label;
            std::vector<const FddNode*> children;
            children.reserve(roots.size());
            for (const FddNode* n : roots) {
              children.push_back(n->edges[e].target.get());
            }
            walk(schema, children, local, parts[e], options.run.context);
          },
          options.run.context, options.run.obs);
    } catch (...) {
      flush();
      throw;
    }
    flush();
    return;
  }
  walk(schema, roots, conjuncts, out, options.run.context);
}

// Whole pipeline on ids: build canonical diagrams, validate, shape, and
// compare without ever expanding a tree. Canonical construction makes the
// diagrams reduced; shaping and comparison memoise inside the arena. The
// obs sink sees the four phases plus one "build_reduced_fdd" span per
// policy; the arena's lifetime stats land in the registry even when a
// governance breach unwinds mid-phase.
void arena_discrepancies(const std::vector<const Policy*>& policies,
                         RunContext* ctx, const ObsOptions& obs,
                         std::vector<Discrepancy>& out) {
  FddArena arena(policies.front()->schema());
  arena.set_context(ctx);
  struct StatsFlush {
    const FddArena& arena;
    MetricsRegistry* metrics;
    ~StatsFlush() {
      if (metrics != nullptr) {
        absorb(*metrics, arena.stats());
      }
    }
  } flush{arena, obs.metrics};
  std::vector<ArenaNodeId> roots;
  roots.reserve(policies.size());
  {
    PhaseSpan phase(obs, "construct");
    for (std::size_t i = 0; i < policies.size(); ++i) {
      ScopedSpan span(obs.tracer, "build_reduced_fdd", "rules",
                      policies[i]->size(), "policy", i);
      roots.push_back(arena.build_reduced(*policies[i]));
    }
  }
  {
    PhaseSpan phase(obs, "validate");
    for (const ArenaNodeId root : roots) {
      arena.validate(root);  // rejects non-comprehensive inputs up front
    }
  }
  {
    PhaseSpan phase(obs, "shape");
    arena.shape_all(roots);
  }
  PhaseSpan phase(obs, "compare");
  arena.compare_into(roots, out);
}

}  // namespace

std::vector<Discrepancy> compare_fdds(const Fdd& a, const Fdd& b,
                                      const CompareOptions& options) {
  if (!semi_isomorphic(a, b)) {
    throw std::invalid_argument("compare_fdds: FDDs are not semi-isomorphic");
  }
  std::vector<Discrepancy> out;
  compare_impl(a.schema(), {&a.root(), &b.root()}, options, out);
  return out;
}

std::vector<Discrepancy> compare_fdds_many(const std::vector<Fdd>& fdds,
                                           const CompareOptions& options) {
  if (fdds.empty()) {
    throw std::invalid_argument("compare_fdds_many: no FDDs");
  }
  std::vector<const FddNode*> roots;
  roots.reserve(fdds.size());
  for (std::size_t i = 1; i < fdds.size(); ++i) {
    if (!semi_isomorphic(fdds[0], fdds[i])) {
      throw std::invalid_argument(
          "compare_fdds_many: FDDs are not pairwise semi-isomorphic");
    }
  }
  for (const Fdd& f : fdds) {
    roots.push_back(&f.root());
  }
  std::vector<Discrepancy> out;
  compare_impl(fdds[0].schema(), std::move(roots), options, out);
  return out;
}

namespace {

void discrepancies_pair_into(const Policy& a, const Policy& b,
                             const CompareOptions& options,
                             std::vector<Discrepancy>& out) {
  if (options.use_arena && resolve_executor(options).is_inline()) {
    arena_discrepancies({&a, &b}, options.run.context, options.run.obs, out);
    return;
  }
  // Construction dominates the pipeline (Fig. 13) and the two diagrams
  // are independent until shaping — with a pool executor they build as
  // two concurrent tasks. use_arena still applies to construction here:
  // each task builds through its own task-local arena and expands the
  // result, which threads fine; only shaping/comparison need the tree.
  ConstructOptions construct;
  construct.run.context = options.run.context;
  construct.run.obs = options.run.obs;
  construct.use_arena = options.use_arena;
  const Policy* inputs[2] = {&a, &b};
  std::vector<Fdd> fdds;
  {
    PhaseSpan phase(options.run.obs, "construct");
    fdds = parallel_map<Fdd>(
        resolve_executor(options), 2,
        [&](std::size_t i) {
          return build_reduced_fdd(*inputs[i], construct);
        },
        options.run.context, options.run.obs);
  }
  {
    PhaseSpan phase(options.run.obs, "validate");
    fdds[0].validate();  // rejects non-comprehensive inputs up front
    fdds[1].validate();
  }
  {
    PhaseSpan phase(options.run.obs, "shape");
    shape_pair(fdds[0], fdds[1], options.run.context);
    if (!semi_isomorphic(fdds[0], fdds[1])) {
      throw std::invalid_argument(
          "compare_fdds: FDDs are not semi-isomorphic");
    }
  }
  PhaseSpan phase(options.run.obs, "compare");
  compare_impl(fdds[0].schema(), {&fdds[0].root(), &fdds[1].root()}, options,
               out);
}

void discrepancies_many_into(const std::vector<Policy>& policies,
                             const CompareOptions& options,
                             std::vector<Discrepancy>& out) {
  if (policies.empty()) {
    throw std::invalid_argument("discrepancies_many: no policies");
  }
  if (options.use_arena && resolve_executor(options).is_inline()) {
    std::vector<const Policy*> inputs;
    inputs.reserve(policies.size());
    for (const Policy& p : policies) {
      inputs.push_back(&p);
    }
    arena_discrepancies(inputs, options.run.context, options.run.obs, out);
    return;
  }
  ConstructOptions construct;
  construct.run.context = options.run.context;
  construct.run.obs = options.run.obs;
  construct.use_arena = options.use_arena;
  std::vector<Fdd> fdds;
  {
    PhaseSpan phase(options.run.obs, "construct");
    fdds = parallel_map<Fdd>(
        resolve_executor(options), policies.size(),
        [&](std::size_t i) {
          return build_reduced_fdd(policies[i], construct);
        },
        options.run.context, options.run.obs);
  }
  {
    PhaseSpan phase(options.run.obs, "validate");
    for (Fdd& f : fdds) {
      f.validate();
    }
  }
  {
    PhaseSpan phase(options.run.obs, "shape");
    shape_all(fdds, options.run.context);
  }
  std::vector<const FddNode*> roots;
  roots.reserve(fdds.size());
  for (std::size_t i = 1; i < fdds.size(); ++i) {
    if (!semi_isomorphic(fdds[0], fdds[i])) {
      throw std::invalid_argument(
          "compare_fdds_many: FDDs are not pairwise semi-isomorphic");
    }
  }
  for (const Fdd& f : fdds) {
    roots.push_back(&f.root());
  }
  PhaseSpan phase(options.run.obs, "compare");
  compare_impl(fdds[0].schema(), std::move(roots), options, out);
}

CompareOutcome run_governed(
    const std::function<void(std::vector<Discrepancy>&)>& pipeline) {
  CompareOutcome outcome;
  try {
    pipeline(outcome.discrepancies);
  } catch (const Error& e) {
    // Governance cuts (cancel/deadline/budget) become a partial report;
    // anything else — bad inputs, internal faults — is a real error and
    // keeps propagating.
    outcome.complete = false;
    outcome.status = e.code();
    outcome.message = e.what();
  }
  return outcome;
}

}  // namespace

std::vector<Discrepancy> discrepancies(const Policy& a, const Policy& b,
                                       const CompareOptions& options) {
  std::vector<Discrepancy> out;
  discrepancies_pair_into(a, b, options, out);
  return out;
}

std::vector<Discrepancy> discrepancies_many(
    const std::vector<Policy>& policies, const CompareOptions& options) {
  std::vector<Discrepancy> out;
  discrepancies_many_into(policies, options, out);
  return out;
}

CompareOutcome discrepancies_governed(const Policy& a, const Policy& b,
                                      const CompareOptions& options) {
  return run_governed([&](std::vector<Discrepancy>& out) {
    discrepancies_pair_into(a, b, options, out);
  });
}

CompareOutcome discrepancies_many_governed(
    const std::vector<Policy>& policies, const CompareOptions& options) {
  return run_governed([&](std::vector<Discrepancy>& out) {
    discrepancies_many_into(policies, options, out);
  });
}

bool equivalent(const Policy& a, const Policy& b) {
  return discrepancies(a, b).empty();
}

Value discrepancy_packet_count(const Discrepancy& d) {
  Value total = 1;
  for (const IntervalSet& s : d.conjuncts) {
    const Value n = s.size();
    if (n != 0 && total > UINT64_MAX / n) {
      return UINT64_MAX;
    }
    total *= n;
  }
  return total;
}

}  // namespace dfw
