#include "fdd/compare.hpp"

#include <algorithm>
#include <future>
#include <stdexcept>

#include "fdd/construct.hpp"
#include "fdd/shape.hpp"

namespace dfw {
namespace {

// Lockstep walk over N semi-isomorphic subtrees accumulating the common
// path predicate; emits a record at terminals with disagreeing decisions.
void walk(const Schema& schema, const std::vector<const FddNode*>& nodes,
          std::vector<IntervalSet>& conjuncts,
          std::vector<Discrepancy>& out) {
  const FddNode* first = nodes.front();
  if (first->is_terminal()) {
    const bool all_equal =
        std::all_of(nodes.begin(), nodes.end(), [&](const FddNode* n) {
          return n->decision == first->decision;
        });
    if (!all_equal) {
      Discrepancy d;
      d.conjuncts = conjuncts;
      d.decisions.reserve(nodes.size());
      for (const FddNode* n : nodes) {
        d.decisions.push_back(n->decision);
      }
      out.push_back(std::move(d));
    }
    return;
  }
  for (std::size_t e = 0; e < first->edges.size(); ++e) {
    conjuncts[first->field] = first->edges[e].label;
    std::vector<const FddNode*> children;
    children.reserve(nodes.size());
    for (const FddNode* n : nodes) {
      children.push_back(n->edges[e].target.get());
    }
    walk(schema, children, conjuncts, out);
  }
  conjuncts[first->field] = IntervalSet(schema.domain(first->field));
}

std::vector<Discrepancy> compare_impl(const Schema& schema,
                                      std::vector<const FddNode*> roots) {
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema.field_count());
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    conjuncts.emplace_back(schema.domain(i));
  }
  std::vector<Discrepancy> out;
  walk(schema, roots, conjuncts, out);
  return out;
}

}  // namespace

std::vector<Discrepancy> compare_fdds(const Fdd& a, const Fdd& b) {
  if (!semi_isomorphic(a, b)) {
    throw std::invalid_argument("compare_fdds: FDDs are not semi-isomorphic");
  }
  return compare_impl(a.schema(), {&a.root(), &b.root()});
}

std::vector<Discrepancy> compare_fdds_many(const std::vector<Fdd>& fdds) {
  if (fdds.empty()) {
    throw std::invalid_argument("compare_fdds_many: no FDDs");
  }
  std::vector<const FddNode*> roots;
  roots.reserve(fdds.size());
  for (std::size_t i = 1; i < fdds.size(); ++i) {
    if (!semi_isomorphic(fdds[0], fdds[i])) {
      throw std::invalid_argument(
          "compare_fdds_many: FDDs are not pairwise semi-isomorphic");
    }
  }
  for (const Fdd& f : fdds) {
    roots.push_back(&f.root());
  }
  return compare_impl(fdds[0].schema(), std::move(roots));
}

std::vector<Discrepancy> discrepancies(const Policy& a, const Policy& b) {
  // Construction dominates the pipeline (Fig. 13) and the two diagrams
  // are independent until shaping — build them concurrently.
  std::future<Fdd> fb_future = std::async(
      std::launch::async, [&b] { return build_reduced_fdd(b); });
  Fdd fa = build_reduced_fdd(a);
  Fdd fb = fb_future.get();
  fa.validate();  // rejects non-comprehensive inputs up front
  fb.validate();
  shape_pair(fa, fb);
  return compare_fdds(fa, fb);
}

std::vector<Discrepancy> discrepancies_many(
    const std::vector<Policy>& policies) {
  if (policies.empty()) {
    throw std::invalid_argument("discrepancies_many: no policies");
  }
  std::vector<std::future<Fdd>> futures;
  futures.reserve(policies.size());
  for (const Policy& p : policies) {
    futures.push_back(std::async(std::launch::async,
                                 [&p] { return build_reduced_fdd(p); }));
  }
  std::vector<Fdd> fdds;
  fdds.reserve(policies.size());
  for (std::future<Fdd>& f : futures) {
    fdds.push_back(f.get());
    fdds.back().validate();
  }
  shape_all(fdds);
  return compare_fdds_many(fdds);
}

bool equivalent(const Policy& a, const Policy& b) {
  return discrepancies(a, b).empty();
}

Value discrepancy_packet_count(const Discrepancy& d) {
  Value total = 1;
  for (const IntervalSet& s : d.conjuncts) {
    const Value n = s.size();
    if (n != 0 && total > UINT64_MAX / n) {
      return UINT64_MAX;
    }
    total *= n;
  }
  return total;
}

}  // namespace dfw
