// FddBuilder: designing a firewall directly as an FDD.
//
// Section 7.2: "a team can use the structured firewall design method in
// [12] to design the firewall by using an FDD". The builder is that
// method's API: start from a single undecided region, repeatedly *split*
// a region on a field into labeled subregions, *decide* the finished
// regions, and finish() into a validated FDD (from which generate_policy
// emits deployable rules). The builder enforces the invariants as you go —
// splits must be disjoint and within the domain, fields must increase
// along every path — so a design cannot leave the FDD well-formedness
// envelope, which is precisely why the paper advocates designing in FDDs.

#pragma once

#include <cstddef>
#include <vector>

#include "fdd/fdd.hpp"

namespace dfw {

class FddBuilder {
 public:
  /// Opaque handle to a region (a leaf of the diagram under construction).
  using Region = std::size_t;

  explicit FddBuilder(Schema schema);

  /// The initial region covering the whole packet space.
  Region root() const { return 0; }

  /// Splits an undecided region on `field` into one subregion per entry of
  /// `partitions` (disjoint, nonempty, within the field's domain; the
  /// field must be strictly greater than every field already split on the
  /// path to this region). If the partitions do not cover the whole
  /// domain, a final subregion for the remainder is added automatically.
  /// Returns the subregion handles in partition order (the remainder, if
  /// any, last).
  std::vector<Region> split(Region region, std::size_t field,
                            const std::vector<IntervalSet>& partitions);

  /// Assigns a decision to an undecided region, closing it.
  void decide(Region region, Decision decision);

  /// True when the region has been split or decided.
  bool closed(Region region) const;

  /// Number of regions still awaiting decide()/split().
  std::size_t open_regions() const;

  /// Materialises the FDD. Every region must be closed; the result is a
  /// valid, complete, ordered FDD. The builder is left empty.
  Fdd finish();

 private:
  enum class State { kOpen, kSplit, kDecided };

  struct Node {
    State state = State::kOpen;
    std::size_t field = kTerminalField;  // split field
    Decision decision = kAccept;         // when decided
    std::size_t min_field = 0;           // smallest field allowed here
    std::vector<std::pair<IntervalSet, std::size_t>> children;
  };

  const Node& at(Region region) const;
  std::unique_ptr<FddNode> materialise(std::size_t index) const;

  Schema schema_;
  std::vector<Node> nodes_;
  std::size_t open_count_ = 1;
};

}  // namespace dfw
