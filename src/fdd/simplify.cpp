#include "fdd/simplify.hpp"

namespace dfw {
namespace {

void simplify_node(const Schema& schema, std::unique_ptr<FddNode>& slot,
                   std::size_t expected_field) {
  // Node insertion: give skipped fields an explicit full-domain node so
  // that every path mentions every field in order.
  if (slot->field != expected_field) {
    // Either terminal reached early or a label further down the order.
    if (expected_field < schema.field_count()) {
      auto inserted = FddNode::make_internal(expected_field);
      inserted->edges.emplace_back(IntervalSet(schema.domain(expected_field)),
                                   std::move(slot));
      slot = std::move(inserted);
    }
  }
  if (slot->is_terminal()) {
    return;
  }
  // Edge splitting: one edge per interval run.
  std::vector<FddEdge> split;
  split.reserve(slot->edges.size());
  for (FddEdge& e : slot->edges) {
    const std::vector<Interval>& runs = e.label.intervals();
    for (std::size_t i = 0; i + 1 < runs.size(); ++i) {
      split.emplace_back(IntervalSet(runs[i]), e.target->clone());
    }
    // The last run keeps the original subtree (no clone needed).
    split.emplace_back(IntervalSet(runs.back()), std::move(e.target));
  }
  slot->edges = std::move(split);
  slot->sort_edges();
  for (FddEdge& e : slot->edges) {
    simplify_node(schema, e.target, expected_field + 1);
  }
}

}  // namespace

void make_simple(Fdd& fdd) {
  simplify_node(fdd.schema(), fdd.root_slot(), 0);
}

}  // namespace dfw
