#include "fdd/arena.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "rt/fault.hpp"
#include "rt/govern.hpp"

namespace dfw {
namespace {

constexpr ArenaNodeId kNoNode = static_cast<ArenaNodeId>(-1);

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_label(const IntervalSet& s) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (const Interval& iv : s.intervals()) {
    h = mix(h, iv.lo());
    h = mix(h, iv.hi());
  }
  return h;
}

std::uint64_t pack_pair(ArenaNodeId a, ArenaNodeId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

struct IdVectorHash {
  std::size_t operator()(const std::vector<ArenaNodeId>& v) const {
    std::uint64_t h = 0xb7e151628aed2a6bull;
    for (const ArenaNodeId id : v) {
      h = mix(h, id);
    }
    return static_cast<std::size_t>(h);
  }
};

bool wildcard(const Schema& schema, const Rule& rule, std::size_t field) {
  return rule.conjunct(field) == schema.domain_set(field);
}

}  // namespace

FddArena::FddArena(Schema schema) : schema_(std::move(schema)) {}

ArenaLabelId FddArena::intern(const IntervalSet& label) {
  ++stats_.label_queries;
  const std::uint64_t h = hash_label(label);
  std::vector<ArenaLabelId>& bucket = label_buckets_[h];
  for (const ArenaLabelId id : bucket) {
    if (labels_[id] == label) {
      ++stats_.label_hits;
      return id;
    }
  }
  // Charge before materialising: a breach leaves the tables untouched.
  govern::charge_label_bytes(
      govern_, label.intervals().size() * sizeof(Interval) + sizeof(label));
  const ArenaLabelId id = static_cast<ArenaLabelId>(labels_.size());
  labels_.push_back(label);
  bucket.push_back(id);
  stats_.unique_labels = labels_.size();
  return id;
}

bool FddArena::record_equals(const NodeRecord& r, std::uint32_t field,
                             Decision decision,
                             const std::vector<ArenaEdge>& edges) const {
  if (r.field != field || r.decision != decision ||
      r.edge_count != edges.size()) {
    return false;
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!(edge_pool_[r.edge_begin + i] == edges[i])) {
      return false;
    }
  }
  return true;
}

ArenaNodeId FddArena::intern_node(std::uint32_t field, Decision decision,
                                  std::vector<ArenaEdge> edges) {
  ++stats_.node_queries;
  std::uint64_t h = mix(0x13198a2e03707344ull, field);
  h = mix(h, decision);
  for (const ArenaEdge& e : edges) {
    h = mix(h, e.label);
    h = mix(h, e.target);
  }
  std::vector<ArenaNodeId>& bucket = node_buckets_[h];
  for (const ArenaNodeId id : bucket) {
    if (record_equals(nodes_[id], field, decision, edges)) {
      ++stats_.node_hits;
      return id;
    }
  }
  // Node creation is the arena's unit of memory growth and of forward
  // progress: charge the node budget and take the amortized cancellation/
  // deadline checkpoint here, before the tables are touched. The fault
  // site sits at the same point — an injected allocation failure unwinds
  // exactly where a real budget breach (or bad_alloc) would.
  govern::charge_nodes(govern_);
  govern::checkpoint(govern_);
  fault::hit(faults_, fault::sites::kArenaAlloc);
  const ArenaNodeId id = static_cast<ArenaNodeId>(nodes_.size());
  NodeRecord record;
  record.field = field;
  record.decision = decision;
  record.edge_begin = static_cast<std::uint32_t>(edge_pool_.size());
  record.edge_count = static_cast<std::uint32_t>(edges.size());
  edge_pool_.insert(edge_pool_.end(), edges.begin(), edges.end());
  nodes_.push_back(record);
  bucket.push_back(id);
  stats_.unique_nodes = nodes_.size();
  return id;
}

ArenaNodeId FddArena::terminal(Decision d) {
  return intern_node(kArenaTerminalField, d, {});
}

ArenaNodeId FddArena::internal(std::size_t field,
                               std::vector<ArenaEdge> edges) {
  if (field >= schema_.field_count()) {
    throw std::invalid_argument("FddArena::internal: unknown field index");
  }
  if (edges.empty()) {
    throw std::invalid_argument("FddArena::internal: node needs an edge");
  }
  std::sort(edges.begin(), edges.end(),
            [this](const ArenaEdge& a, const ArenaEdge& b) {
              return labels_[a.label].min() < labels_[b.label].min();
            });
  return intern_node(static_cast<std::uint32_t>(field), kAccept,
                     std::move(edges));
}

ArenaNodeId FddArena::canonical(std::size_t field,
                                std::vector<ArenaEdge> edges) {
  // Sibling merge: children are canonical, so id equality is semantic
  // equality, and edges pointing at the same child unite their labels.
  bool any_shared = false;
  for (std::size_t i = 1; i < edges.size() && !any_shared; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      if (edges[i].target == edges[j].target) {
        any_shared = true;
        break;
      }
    }
  }
  if (any_shared) {
    std::vector<ArenaNodeId> targets;
    std::vector<IntervalSet> merged;
    for (const ArenaEdge& e : edges) {
      const auto it = std::find(targets.begin(), targets.end(), e.target);
      if (it == targets.end()) {
        targets.push_back(e.target);
        merged.push_back(labels_[e.label]);
      } else {
        const std::size_t k =
            static_cast<std::size_t>(it - targets.begin());
        merged[k] = merged[k].unite(labels_[e.label]);
      }
    }
    edges.clear();
    for (std::size_t k = 0; k < targets.size(); ++k) {
      edges.push_back({intern(merged[k]), targets[k]});
    }
  }
  // Splice: a single edge spanning the whole domain decides nothing.
  if (edges.size() == 1 &&
      labels_[edges[0].label] == schema_.domain_set(field)) {
    return edges[0].target;
  }
  return internal(field, std::move(edges));
}

std::size_t FddArena::reachable_node_count(ArenaNodeId root) const {
  std::vector<ArenaNodeId> stack{root};
  std::unordered_map<ArenaNodeId, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const ArenaNodeId id = stack.back();
    stack.pop_back();
    if (seen[id]) {
      continue;
    }
    seen[id] = true;
    ++count;
    for (const ArenaEdge& e : edges(id)) {
      stack.push_back(e.target);
    }
  }
  return count;
}

std::size_t FddArena::expanded_node_count(ArenaNodeId root) const {
  std::unordered_map<ArenaNodeId, std::size_t> memo;
  const auto visit = [&](auto&& self, ArenaNodeId id) -> std::size_t {
    const auto it = memo.find(id);
    if (it != memo.end()) {
      return it->second;
    }
    std::size_t total = 1;
    for (const ArenaEdge& e : edges(id)) {
      const std::size_t sub = self(self, e.target);
      total = (total > SIZE_MAX - sub) ? SIZE_MAX : total + sub;
    }
    memo.emplace(id, total);
    return total;
  };
  return visit(visit, root);
}

ArenaNodeId FddArena::from_tree_impl(const FddNode& node, bool canonicalize) {
  if (node.is_terminal()) {
    return terminal(node.decision);
  }
  std::vector<ArenaEdge> out;
  out.reserve(node.edges.size());
  for (const FddEdge& e : node.edges) {
    const ArenaNodeId child = from_tree_impl(*e.target, canonicalize);
    out.push_back({intern(e.label), child});
  }
  return canonicalize ? canonical(node.field, std::move(out))
                      : internal(node.field, std::move(out));
}

ArenaNodeId FddArena::from_tree(const FddNode& node) {
  return from_tree_impl(node, false);
}

ArenaNodeId FddArena::from_tree_canonical(const FddNode& node) {
  return from_tree_impl(node, true);
}

std::unique_ptr<FddNode> FddArena::to_tree(ArenaNodeId root) const {
  // Expansion un-shares the DAG, so a compact diagram can still explode
  // here: every tree node built is charged, shared subdiagrams once per
  // reference.
  govern::charge_nodes(govern_);
  govern::checkpoint(govern_);
  if (is_terminal(root)) {
    return FddNode::make_terminal(decision(root));
  }
  auto node = FddNode::make_internal(field(root));
  const std::span<const ArenaEdge> out = edges(root);
  node->edges.reserve(out.size());
  for (const ArenaEdge& e : out) {
    node->edges.emplace_back(labels_[e.label], to_tree(e.target));
  }
  return node;
}

Fdd FddArena::to_fdd(ArenaNodeId root) const {
  return Fdd(schema_, to_tree(root));
}

// ---------------------------------------------------------------------------
// Construction (Fig. 7) with copy-on-write appends.

namespace {

/// Per-rule state for one append pass: the memo makes appending the same
/// rule to a shared subdiagram an O(1) lookup, and the path cache builds
/// the rule's decision path once per suffix instead of once per branch.
struct AppendCtx {
  const Rule& rule;
  std::unordered_map<std::uint64_t, ArenaNodeId> memo;  // (node, field) keys
  std::vector<ArenaNodeId> path;                        // per-field suffix
};

}  // namespace

ArenaNodeId FddArena::append_rule(ArenaNodeId root, const Rule& rule) {
  if (rule.conjuncts().size() != schema_.field_count()) {
    throw std::invalid_argument("append_rule: rule arity mismatch");
  }
  AppendCtx ctx{rule, {}, std::vector<ArenaNodeId>(
                              schema_.field_count() + 1, kNoNode)};

  // Decision path for conjuncts[field..d-1] -> decision, wildcards skipped
  // (the canonical form would splice them out anyway).
  const auto build_path = [&](auto&& self, std::size_t f) -> ArenaNodeId {
    if (ctx.path[f] != kNoNode) {
      return ctx.path[f];
    }
    ArenaNodeId result;
    if (f == schema_.field_count()) {
      result = terminal(rule.decision());
    } else if (wildcard(schema_, rule, f)) {
      result = self(self, f + 1);
    } else {
      const ArenaNodeId child = self(self, f + 1);
      result = canonical(f, {{intern(rule.conjunct(f)), child}});
    }
    ctx.path[f] = result;
    return result;
  };

  // APPEND(v, rule) of Fig. 7 on ids: instead of cloning the subdiagram a
  // case-3 split copies, both halves reference it by id and only the half
  // the rule reaches is rebuilt (copy-on-write).
  const auto append = [&](auto&& self, ArenaNodeId v,
                          std::size_t from) -> ArenaNodeId {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(v) << 32) | from;
    if (const auto it = ctx.memo.find(key); it != ctx.memo.end()) {
      ++stats_.append_cache_hits;
      return it->second;
    }
    ++stats_.append_cache_misses;
    govern::checkpoint(govern_);
    const std::size_t rank =
        is_terminal(v) ? schema_.field_count() : field(v);
    std::size_t g = from;
    while (g < rank && wildcard(schema_, rule, g)) {
      ++g;
    }
    ArenaNodeId result;
    if (g < rank) {
      // Node insertion: the diagram skipped field g but the rule
      // constrains it. A full-domain node is materialised and immediately
      // split against the conjunct; the off-conjunct half keeps `v` by
      // reference.
      const ArenaNodeId tail = self(self, v, g + 1);
      const IntervalSet& s = rule.conjunct(g);
      const IntervalSet outside = schema_.domain_set(g).subtract(s);
      result = canonical(
          g, {{intern(s), tail}, {intern(outside), v}});
    } else if (is_terminal(v)) {
      // A packet reaching a terminal was decided by an earlier (higher
      // priority) rule; the appended rule never applies there.
      result = v;
    } else {
      const std::size_t f = field(v);
      const IntervalSet& s = rule.conjunct(f);
      const std::span<const ArenaEdge> view = edges(v);
      const std::vector<ArenaEdge> old(view.begin(), view.end());
      IntervalSet covered;
      for (const ArenaEdge& e : old) {
        covered = covered.unite(labels_[e.label]);
      }
      const IntervalSet uncovered = s.subtract(covered);
      std::vector<ArenaEdge> out;
      out.reserve(old.size() + 2);
      for (const ArenaEdge& e : old) {
        const IntervalSet lab = labels_[e.label];
        const IntervalSet common = lab.intersect(s);
        if (common.empty()) {
          out.push_back(e);  // case (1): untouched branch, shared by id
        } else if (common == lab) {
          // case (2): edge fully inside S — recurse.
          out.push_back({e.label, self(self, e.target, f + 1)});
        } else {
          // case (3): split; the outside half shares the old subdiagram.
          out.push_back({intern(lab.subtract(common)), e.target});
          out.push_back({intern(common), self(self, e.target, f + 1)});
        }
      }
      if (!uncovered.empty()) {
        out.push_back({intern(uncovered), build_path(build_path, f + 1)});
      }
      result = canonical(f, std::move(out));
    }
    ctx.memo.emplace(key, result);
    return result;
  };

  return append(append, root, 0);
}

ArenaNodeId FddArena::build_reduced(const Policy& policy) {
  if (!(policy.schema() == schema_)) {
    throw std::invalid_argument("FddArena::build_reduced: schema mismatch");
  }
  // The partial FDD of the first rule is its lone decision path (Fig. 6),
  // built bottom-up with wildcard fields skipped; every further rule is
  // appended at the root. Canonical node creation keeps each intermediate
  // maximally reduced, so no interleaved reduce passes (and none of their
  // re-hashing) are needed.
  const Rule& r0 = policy.rule(0);
  ArenaNodeId root = terminal(r0.decision());
  for (std::size_t f = schema_.field_count(); f-- > 0;) {
    if (!wildcard(schema_, r0, f)) {
      root = canonical(f, {{intern(r0.conjunct(f)), root}});
    }
  }
  for (std::size_t i = 1; i < policy.size(); ++i) {
    root = append_rule(root, policy.rule(i));
  }
  return root;
}

// ---------------------------------------------------------------------------
// Shaping (Fig. 10) memoised on node-id pairs.

std::pair<ArenaNodeId, ArenaNodeId> FddArena::shape_pair(ArenaNodeId a,
                                                         ArenaNodeId b) {
  if (a == b) {
    // Identical subdiagrams are already semi-isomorphic and aligned.
    return {a, b};
  }
  const std::uint64_t key = pack_pair(a, b);
  if (const auto it = shape_cache_.find(key); it != shape_cache_.end()) {
    ++stats_.shape_cache_hits;
    return it->second;
  }
  ++stats_.shape_cache_misses;
  govern::checkpoint(govern_);
  // Step 1 (label alignment by node insertion): terminals rank after every
  // field, the earlier label absorbs the other under a full-domain edge.
  const auto rank = [this](ArenaNodeId n) {
    return is_terminal(n) ? std::numeric_limits<std::uint64_t>::max()
                          : static_cast<std::uint64_t>(field(n));
  };
  ArenaNodeId x = a;
  ArenaNodeId y = b;
  while (rank(x) != rank(y)) {
    if (rank(x) < rank(y)) {
      const std::size_t f = field(x);
      y = internal(f, {{intern(schema_.domain_set(f)), y}});
    } else {
      const std::size_t f = field(y);
      x = internal(f, {{intern(schema_.domain_set(f)), x}});
    }
  }
  std::pair<ArenaNodeId, ArenaNodeId> result;
  if (is_terminal(x)) {
    result = {x, y};
  } else {
    // Step 2: common refinement of the two edge partitions, fragments of
    // one edge *pair* kept merged (same optimisation as the tree path).
    // Where the tree version clones the source subtree for every fragment
    // but the last, ids are simply referenced again.
    struct Fragment {
      IntervalSet label;
      ArenaNodeId a_child;
      ArenaNodeId b_child;
    };
    const std::span<const ArenaEdge> xv = edges(x);
    const std::span<const ArenaEdge> yv = edges(y);
    const std::vector<ArenaEdge> xe(xv.begin(), xv.end());
    const std::vector<ArenaEdge> ye(yv.begin(), yv.end());
    std::vector<Fragment> fragments;
    for (const ArenaEdge& ea : xe) {
      for (const ArenaEdge& eb : ye) {
        IntervalSet common = labels_[ea.label].intersect(labels_[eb.label]);
        if (!common.empty()) {
          fragments.push_back({std::move(common), ea.target, eb.target});
        }
      }
    }
    std::sort(fragments.begin(), fragments.end(),
              [](const Fragment& p, const Fragment& q) {
                return p.label.min() < q.label.min();
              });
    std::vector<ArenaEdge> a_edges;
    std::vector<ArenaEdge> b_edges;
    a_edges.reserve(fragments.size());
    b_edges.reserve(fragments.size());
    const std::size_t f = field(x);
    for (const Fragment& frag : fragments) {
      const auto [ca, cb] = shape_pair(frag.a_child, frag.b_child);
      const ArenaLabelId lid = intern(frag.label);
      a_edges.push_back({lid, ca});
      b_edges.push_back({lid, cb});
    }
    result = {internal(f, std::move(a_edges)),
              internal(f, std::move(b_edges))};
  }
  shape_cache_.emplace(key, result);
  return result;
}

void FddArena::shape_all(std::vector<ArenaNodeId>& roots) {
  if (roots.empty()) {
    throw std::invalid_argument("shape_all: no FDDs");
  }
  // Pass 1: funnel every refinement into roots[0]. Pass 2: roots[0] is now
  // the common refinement; re-aligning the others splits only their edges.
  for (std::size_t i = 1; i < roots.size(); ++i) {
    std::tie(roots[0], roots[i]) = shape_pair(roots[0], roots[i]);
  }
  for (std::size_t i = 1; i + 1 < roots.size(); ++i) {
    std::tie(roots[0], roots[i]) = shape_pair(roots[0], roots[i]);
  }
}

bool FddArena::semi_isomorphic(ArenaNodeId a, ArenaNodeId b) {
  if (a == b) {
    return true;
  }
  const std::uint64_t key = pack_pair(a, b);
  if (const auto it = equiv_cache_.find(key); it != equiv_cache_.end()) {
    ++stats_.equiv_cache_hits;
    return it->second;
  }
  ++stats_.equiv_cache_misses;
  govern::checkpoint(govern_);
  bool result = true;
  if (is_terminal(a) != is_terminal(b)) {
    result = false;
  } else if (is_terminal(a)) {
    result = true;  // decisions may differ
  } else if (field(a) != field(b) ||
             edges(a).size() != edges(b).size()) {
    result = false;
  } else {
    const std::span<const ArenaEdge> ea = edges(a);
    const std::span<const ArenaEdge> eb = edges(b);
    for (std::size_t i = 0; i < ea.size() && result; ++i) {
      // Interned labels: id equality is set equality.
      result = ea[i].label == eb[i].label &&
               semi_isomorphic(ea[i].target, eb[i].target);
    }
  }
  equiv_cache_.emplace(key, result);
  return result;
}

// ---------------------------------------------------------------------------
// Comparison (Section 5) with identical-subdiagram pruning.

std::vector<Discrepancy> FddArena::compare(
    const std::vector<ArenaNodeId>& roots) {
  std::vector<Discrepancy> out;
  compare_into(roots, out);
  return out;
}

void FddArena::compare_into(const std::vector<ArenaNodeId>& roots,
                            std::vector<Discrepancy>& out) {
  if (roots.empty()) {
    throw std::invalid_argument("FddArena::compare: no roots");
  }
  for (std::size_t i = 1; i < roots.size(); ++i) {
    if (!semi_isomorphic(roots[0], roots[i])) {
      throw std::invalid_argument(
          "FddArena::compare: diagrams are not pairwise semi-isomorphic");
    }
  }
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema_.field_count());
  for (std::size_t i = 0; i < schema_.field_count(); ++i) {
    conjuncts.emplace_back(schema_.domain(i));
  }
  // Memo: an id tuple whose subdiagrams agree everywhere contributes no
  // discrepancy from any path prefix, so it is walked once and pruned on
  // every later encounter. Tuples that do disagree must be re-walked (the
  // records carry the path predicate), but those are exactly the regions
  // the output has to spell out anyway.
  std::unordered_map<std::vector<ArenaNodeId>, bool, IdVectorHash> memo;
  const auto walk = [&](auto&& self,
                        const std::vector<ArenaNodeId>& nodes) -> bool {
    // The walk materialises no nodes, so it carries its own checkpoint;
    // unwinding mid-walk leaves the discrepancies found so far in `out`.
    govern::checkpoint(govern_);
    const ArenaNodeId first = nodes.front();
    if (std::all_of(nodes.begin(), nodes.end(),
                    [&](ArenaNodeId n) { return n == first; })) {
      return false;  // one shared subdiagram: trivially no disagreement
    }
    if (is_terminal(first)) {
      // Terminals are hash-consed per decision, so unequal ids mean the
      // decisions are not all equal.
      Discrepancy d;
      d.conjuncts = conjuncts;
      d.decisions.reserve(nodes.size());
      for (const ArenaNodeId n : nodes) {
        d.decisions.push_back(decision(n));
      }
      out.push_back(std::move(d));
      return true;
    }
    if (const auto it = memo.find(nodes); it != memo.end()) {
      ++stats_.compare_cache_hits;
      if (!it->second) {
        return false;
      }
    } else {
      ++stats_.compare_cache_misses;
    }
    const std::size_t f = field(first);
    const std::size_t edge_count = edges(first).size();
    bool found = false;
    std::vector<ArenaNodeId> children(nodes.size());
    for (std::size_t e = 0; e < edge_count; ++e) {
      conjuncts[f] = labels_[edges(first)[e].label];
      for (std::size_t k = 0; k < nodes.size(); ++k) {
        children[k] = edges(nodes[k])[e].target;
      }
      found |= self(self, children);
    }
    conjuncts[f] = schema_.domain_set(f);
    memo.insert_or_assign(nodes, found);
    return found;
  };
  walk(walk, roots);
}

Decision FddArena::evaluate(ArenaNodeId root, const Packet& p) const {
  if (p.size() != schema_.field_count()) {
    throw std::invalid_argument("FddArena::evaluate: packet arity mismatch");
  }
  ArenaNodeId node = root;
  while (!is_terminal(node)) {
    ArenaNodeId next = kNoNode;
    for (const ArenaEdge& e : edges(node)) {
      if (labels_[e.label].contains(p[field(node)])) {
        next = e.target;
        break;
      }
    }
    if (next == kNoNode) {
      throw std::logic_error(
          "FddArena::evaluate: packet falls off a partial FDD");
    }
    node = next;
  }
  return decision(node);
}

void FddArena::validate(ArenaNodeId root, bool require_complete) const {
  // Consistency, completeness, domain, and emptiness are per-node facts;
  // ordering reduces to the per-edge check field(target) > field(node).
  // All are checked once per unique reachable node.
  std::unordered_map<ArenaNodeId, bool> seen;
  const auto visit = [&](auto&& self, ArenaNodeId id) -> void {
    if (seen[id]) {
      return;
    }
    seen[id] = true;
    govern::checkpoint(govern_);
    if (is_terminal(id)) {
      return;
    }
    const std::size_t f = field(id);
    const IntervalSet& domain = schema_.domain_set(f);
    IntervalSet covered;
    for (const ArenaEdge& e : edges(id)) {
      const IntervalSet& lab = labels_[e.label];
      if (lab.empty()) {
        throw std::logic_error("FDD: empty edge label");
      }
      if (!domain.contains(lab)) {
        throw std::logic_error("FDD: edge label exceeds domain of field " +
                               schema_.field(f).name);
      }
      if (covered.overlaps(lab)) {
        throw std::logic_error("FDD: consistency violated at field " +
                               schema_.field(f).name);
      }
      covered = covered.unite(lab);
      if (!is_terminal(e.target) && field(e.target) <= f) {
        throw std::logic_error(
            "FDD: field order violated on a path (field " +
            schema_.field(field(e.target)).name + ")");
      }
      self(self, e.target);
    }
    if (require_complete && !(covered == domain)) {
      throw std::logic_error("FDD: completeness violated at field " +
                             schema_.field(f).name);
    }
  };
  visit(visit, root);
}

void FddArena::for_each_path(
    ArenaNodeId root,
    const std::function<void(const std::vector<IntervalSet>&, Decision)>& fn)
    const {
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema_.field_count());
  for (std::size_t i = 0; i < schema_.field_count(); ++i) {
    conjuncts.emplace_back(schema_.domain(i));
  }
  const auto visit = [&](auto&& self, ArenaNodeId id) -> void {
    govern::checkpoint(govern_);
    if (is_terminal(id)) {
      fn(conjuncts, decision(id));
      return;
    }
    const std::size_t f = field(id);
    for (const ArenaEdge& e : edges(id)) {
      conjuncts[f] = labels_[e.label];
      self(self, e.target);
    }
    conjuncts[f] = schema_.domain_set(f);
  };
  visit(visit, root);
}

// ---------------------------------------------------------------------------
// Generation (gen/generate.hpp semantics) off the DAG.

Policy FddArena::generate(ArenaNodeId root) {
  // Number of rules gen would emit for a subdiagram — the election metric.
  // On trees this recomputation is O(nodes * depth); memoised by id it is
  // O(unique nodes) for the whole walk.
  const auto rule_cost = [&](auto&& self, ArenaNodeId id) -> std::size_t {
    if (is_terminal(id)) {
      return 1;
    }
    if (const auto it = rule_cost_cache_.find(id);
        it != rule_cost_cache_.end()) {
      return it->second;
    }
    std::size_t total = 0;
    for (const ArenaEdge& e : edges(id)) {
      total += self(self, e.target);
    }
    rule_cost_cache_.emplace(id, total);
    return total;
  };

  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema_.field_count());
  for (std::size_t i = 0; i < schema_.field_count(); ++i) {
    conjuncts.emplace_back(schema_.domain(i));
  }
  std::vector<Rule> rules;
  const auto gen = [&](auto&& self, ArenaNodeId id) -> void {
    govern::checkpoint(govern_);
    if (is_terminal(id)) {
      // Every emitted rule is a unit of output growth: charge it so a
      // rule-blowup budget caps generation from a pathological diagram.
      govern::charge_rules(govern_);
      rules.emplace_back(schema_, conjuncts, decision(id));
      return;
    }
    // Elect the default branch: highest rule cost, ties broken toward the
    // larger value region (mirrors the tree generator exactly).
    const std::span<const ArenaEdge> out = edges(id);
    std::size_t default_edge = 0;
    std::size_t best_cost = 0;
    Value best_width = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::size_t cost = rule_cost(rule_cost, out[i].target);
      const Value width = labels_[out[i].label].size();
      if (cost > best_cost || (cost == best_cost && width > best_width)) {
        best_cost = cost;
        best_width = width;
        default_edge = i;
      }
    }
    const std::size_t f = field(id);
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (i == default_edge) {
        continue;
      }
      conjuncts[f] = labels_[out[i].label];
      self(self, out[i].target);
    }
    conjuncts[f] = schema_.domain_set(f);
    self(self, out[default_edge].target);
  };
  gen(gen, root);
  return Policy(schema_, std::move(rules));
}

}  // namespace dfw
