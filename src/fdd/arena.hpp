// FddArena: hash-consed FDD storage with structural sharing.
//
// The tree representation (fdd/node.hpp) owns every child through a
// unique_ptr, so the construction algorithm's "subgraph replication"
// (Section 4, operation 3) is a literal deep copy and structurally
// identical subtrees exist once per occurrence. The arena instead interns
// every node in a unique table — keyed on (field, decision, edge list) and
// collision-checked with full equality, never trusted blindly — and interns
// every edge label in a side table, so nodes are referenced by 32-bit ids
// and an identical subdiagram exists exactly once. Two consequences drive
// the whole design (the classic BDD recipe, cf. Hazelhurst's firewall-BDD
// work):
//
//   * id equality IS semantic equality for canonically built diagrams, so
//     "clone subtree" becomes "copy an id" (copy-on-write appends) and
//     sibling-merge reduction happens at node-creation time — a diagram
//     built through canonical() is reduced by construction, no post-pass.
//   * operations on ids are pure functions of their arguments, so shaping,
//     comparison pruning, and semi-isomorphism memoise on node-id pairs.
//
// The tree Fdd remains the public/serialization format; to_tree/from_tree
// are the lossless bridges. An arena is single-threaded and append-only:
// ids stay valid for the arena's lifetime and memo caches never need
// invalidation.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fdd/compare.hpp"
#include "fdd/fdd.hpp"
#include "fdd/stats.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// Index of a node in an FddArena. Stable for the arena's lifetime.
using ArenaNodeId = std::uint32_t;
/// Index of an interned edge label in an FddArena.
using ArenaLabelId = std::uint32_t;

/// Sentinel field value marking arena terminal nodes.
inline constexpr std::uint32_t kArenaTerminalField =
    static_cast<std::uint32_t>(-1);

/// One outgoing edge: an interned label and a target node id.
struct ArenaEdge {
  ArenaLabelId label;
  ArenaNodeId target;

  friend bool operator==(const ArenaEdge&, const ArenaEdge&) = default;
};

class RunContext;
class FaultPlan;

class FddArena {
 public:
  explicit FddArena(Schema schema);

  FddArena(const FddArena&) = delete;
  FddArena& operator=(const FddArena&) = delete;

  const Schema& schema() const { return schema_; }

  /// Attaches a governance context (borrowed, nullable): every node the
  /// arena materialises is charged against its node budget, interned label
  /// storage against its label budget, and the recursive operations call
  /// amortized cancellation/deadline checkpoints. A breach throws
  /// dfw::Error mid-operation; the arena stays valid (ids created before
  /// the breach remain usable). Null detaches.
  void set_context(RunContext* context) { govern_ = context; }
  RunContext* context() const { return govern_; }

  /// Attaches a fault plan (borrowed, nullable, rt/fault.hpp): node
  /// materialisation hits the fdd.arena.alloc site, so a seeded schedule
  /// can simulate an allocation failure mid-build. A fire throws
  /// dfw::Error mid-operation with the same arena-stays-valid contract as
  /// a governance breach. Null detaches (the default, zero-cost path).
  void set_faults(FaultPlan* faults) { faults_ = faults; }
  FaultPlan* faults() const { return faults_; }

  // -- Node interning ------------------------------------------------------

  /// The unique terminal deciding `d`.
  ArenaNodeId terminal(Decision d);

  /// Interns a nonterminal exactly as given (edges are sorted by label
  /// minimum; labels must be disjoint and nonempty). No sibling merging or
  /// splicing — shaping needs to represent aligned, non-canonical
  /// partitions faithfully.
  ArenaNodeId internal(std::size_t field, std::vector<ArenaEdge> edges);

  /// Interns a nonterminal in *canonical* (reduced) form: edges whose
  /// targets are identical are merged (their labels united), and a node
  /// whose single edge spans the field's whole domain is spliced — the
  /// target id is returned instead. Equivalent to running reduce() at every
  /// node, made O(1) amortised by children already being canonical.
  ArenaNodeId canonical(std::size_t field, std::vector<ArenaEdge> edges);

  /// Interns an edge label, returning the shared id for equal sets.
  ArenaLabelId intern(const IntervalSet& label);

  // -- Accessors -----------------------------------------------------------

  const IntervalSet& label(ArenaLabelId id) const { return labels_[id]; }
  bool is_terminal(ArenaNodeId id) const {
    return nodes_[id].field == kArenaTerminalField;
  }
  /// Field index of a nonterminal, or kArenaTerminalField.
  std::uint32_t field(ArenaNodeId id) const { return nodes_[id].field; }
  Decision decision(ArenaNodeId id) const { return nodes_[id].decision; }
  std::span<const ArenaEdge> edges(ArenaNodeId id) const {
    const NodeRecord& n = nodes_[id];
    return {edge_pool_.data() + n.edge_begin, n.edge_count};
  }

  std::size_t unique_node_count() const { return nodes_.size(); }

  /// Number of distinct nodes reachable from `root` (DAG size).
  std::size_t reachable_node_count(ArenaNodeId root) const;

  /// Size of the tree to_tree(root) would build (shared subdiagrams counted
  /// once per reference), saturating at SIZE_MAX.
  std::size_t expanded_node_count(ArenaNodeId root) const;

  // -- Bridges to the tree representation ----------------------------------

  /// Interns a tree verbatim (structure-preserving; to_tree(from_tree(n))
  /// reproduces n exactly up to edge order, which both keep sorted).
  ArenaNodeId from_tree(const FddNode& node);

  /// Interns a tree through canonical(), i.e. the arena image of
  /// reduce()-ing the tree.
  ArenaNodeId from_tree_canonical(const FddNode& node);

  /// Expands the diagram under `root` into an owning tree.
  std::unique_ptr<FddNode> to_tree(ArenaNodeId root) const;
  /// Same, wrapped in an Fdd over this arena's schema.
  Fdd to_fdd(ArenaNodeId root) const;

  // -- Semantic operations (all memoised inside the arena) -----------------

  /// Fig. 7 construction with copy-on-write appends: case-3 splits share
  /// the untouched subdiagram by id instead of cloning it. The result is
  /// canonical (reduced) by construction. Throws std::invalid_argument on
  /// an arity mismatch and std::logic_error via validate() misuse, exactly
  /// like the tree path.
  ArenaNodeId build_reduced(const Policy& policy);

  /// Appends one rule (lowest priority) to a diagram, returning the new
  /// root. The input diagram is unchanged (ids are immutable).
  ArenaNodeId append_rule(ArenaNodeId root, const Rule& rule);

  /// NODE_SHAPING (Fig. 10) over ids: returns the semi-isomorphic pair.
  /// Memoised on (a, b); shape_pair(x, x) is O(1).
  std::pair<ArenaNodeId, ArenaNodeId> shape_pair(ArenaNodeId a,
                                                 ArenaNodeId b);

  /// N-way shaping mirroring the tree shape_all: funnel every refinement
  /// into roots[0], then re-align the others against it.
  void shape_all(std::vector<ArenaNodeId>& roots);

  /// Semi-isomorphism (Definition 4.2), memoised on (a, b).
  bool semi_isomorphic(ArenaNodeId a, ArenaNodeId b);

  /// Lockstep N-way comparison of pairwise semi-isomorphic diagrams.
  /// Identical-id subdiagrams are pruned in O(1); subdiagram tuples proven
  /// discrepancy-free are pruned via a memo keyed on the id tuple. Output
  /// order and contents match the tree compare exactly.
  std::vector<Discrepancy> compare(const std::vector<ArenaNodeId>& roots);

  /// Same walk, appending into a caller-owned vector: when a governance
  /// breach unwinds the walk, the discrepancies found before the breach
  /// survive in `out` — the substrate of partial comparison reports.
  void compare_into(const std::vector<ArenaNodeId>& roots,
                    std::vector<Discrepancy>& out);

  /// The decision assigned to packet p; throws std::logic_error if p falls
  /// off a partial diagram.
  Decision evaluate(ArenaNodeId root, const Packet& p) const;

  /// Tree-validate() semantics on the DAG: consistency, completeness,
  /// ordering, and domain containment, checked once per unique node.
  void validate(ArenaNodeId root, bool require_complete = true) const;

  /// Calls `fn(conjuncts, decision)` once per decision path, in the same
  /// order as Fdd::for_each_path on the expanded tree.
  void for_each_path(
      ArenaNodeId root,
      const std::function<void(const std::vector<IntervalSet>&, Decision)>&
          fn) const;

  /// Firewall generation (gen/generate.hpp semantics) straight off the
  /// DAG, with the per-subtree rule-cost election memoised by node id.
  Policy generate(ArenaNodeId root);

  /// The arena's lifetime counters. An arena is single-threaded, so any
  /// read between operations is consistent; mirroring
  /// Executor::metrics()/reset_metrics(), stats_snapshot() is the
  /// by-value point-in-time read and reset_stats() rebases the counters
  /// (call it only between operations — mid-operation the partial
  /// operation's counts would be torn in half, exactly the hazard the
  /// executor's reset guards against).
  const ArenaStats& stats() const { return stats_; }
  ArenaStats stats_snapshot() const { return stats_; }
  void reset_stats() { stats_ = ArenaStats{}; }

 private:
  struct NodeRecord {
    std::uint32_t field;       // kArenaTerminalField for terminals
    Decision decision;         // meaningful for terminals only
    std::uint32_t edge_begin;  // span into edge_pool_
    std::uint32_t edge_count;
  };

  ArenaNodeId intern_node(std::uint32_t field, Decision decision,
                          std::vector<ArenaEdge> edges);
  bool record_equals(const NodeRecord& r, std::uint32_t field,
                     Decision decision,
                     const std::vector<ArenaEdge>& edges) const;
  ArenaNodeId from_tree_impl(const FddNode& node, bool canonicalize);

  Schema schema_;
  std::vector<NodeRecord> nodes_;
  std::vector<ArenaEdge> edge_pool_;
  std::vector<IntervalSet> labels_;
  // Hash buckets for the unique/label tables; hashes bucket candidates,
  // full equality decides.
  std::unordered_map<std::uint64_t, std::vector<ArenaNodeId>> node_buckets_;
  std::unordered_map<std::uint64_t, std::vector<ArenaLabelId>> label_buckets_;
  // Memo caches, keyed on packed id pairs / id tuples. Ids are immutable,
  // so entries stay valid for the arena's lifetime.
  std::unordered_map<std::uint64_t, std::pair<ArenaNodeId, ArenaNodeId>>
      shape_cache_;
  std::unordered_map<std::uint64_t, bool> equiv_cache_;
  std::unordered_map<ArenaNodeId, std::size_t> rule_cost_cache_;
  ArenaStats stats_;
  RunContext* govern_ = nullptr;  // borrowed; null = ungoverned
  FaultPlan* faults_ = nullptr;   // borrowed; null = no injection
};

}  // namespace dfw
