// FDD reduction.
//
// The structured-firewall-design pipeline the paper builds on (its ref
// [12]) reduces an FDD before generating rules from it: sibling edges whose
// subtrees are functionally identical merge into one edge with the union
// label, and a node whose lone edge spans its whole domain is spliced out.
// Reduction shrinks the diagram (fewer paths -> fewer generated rules)
// without changing its semantics, and is the inverse direction of the
// shaping operations.

#pragma once

#include "fdd/fdd.hpp"

namespace dfw {

/// Reduces the FDD in place (bottom-up). Semantics preserving; the result
/// remains a valid ordered FDD, though not necessarily simple.
void reduce(Fdd& fdd);

}  // namespace dfw
