#include "fdd/shape.hpp"

#include <algorithm>
#include <stdexcept>

#include "fdd/node.hpp"
#include "fdd/simplify.hpp"
#include "rt/govern.hpp"

namespace dfw {
namespace {

// Orders nodes for step 1 of NODE_SHAPING (Fig. 10): the node whose label
// comes earlier in the field order absorbs the other via node insertion;
// terminals sort after every field.
std::size_t label_rank(const FddNode& n) {
  return n.is_terminal() ? kTerminalField : n.field;
}

// Node insertion (Section 4, operation 1): hoist `slot` under a fresh
// node labeled `field` whose single edge spans the whole domain.
void insert_above(const Schema& schema, std::unique_ptr<FddNode>& slot,
                  std::size_t field, RunContext* ctx = nullptr) {
  govern::charge_nodes(ctx);
  auto inserted = FddNode::make_internal(field);
  inserted->edges.emplace_back(IntervalSet(schema.domain(field)),
                               std::move(slot));
  slot = std::move(inserted);
}

// NODE_SHAPING (Fig. 10) on a pair of owning slots.
//
// Step 1 aligns the two labels by node insertion. Step 2 aligns the edge
// partitions: the paper splits simple (single-interval) edges at each
// other's cut points; we compute the same common refinement directly as
// the nonempty pairwise intersections of the two label partitions, and —
// as an optimisation the paper's tree semantics permits — keep the
// fragments of one edge *pair* merged in a single edge, so identical
// regions of the two diagrams are never torn apart. Fragment edges from
// the same source edge share that edge's subtree via cloning (subgraph
// replication, operation 3). Recurses on each aligned child pair.
void shape_nodes(const Schema& schema, std::unique_ptr<FddNode>& a_slot,
                 std::unique_ptr<FddNode>& b_slot,
                 RunContext* ctx = nullptr) {
  govern::checkpoint(ctx);
  // Step 1: make both labels equal.
  while (label_rank(*a_slot) != label_rank(*b_slot)) {
    if (label_rank(*a_slot) < label_rank(*b_slot)) {
      insert_above(schema, b_slot, a_slot->field, ctx);
    } else {
      insert_above(schema, a_slot, b_slot->field, ctx);
    }
  }
  FddNode& a = *a_slot;
  FddNode& b = *b_slot;
  if (a.is_terminal()) {
    return;
  }

  // Step 2: common refinement of the two edge partitions.
  struct Fragment {
    IntervalSet label;
    std::size_t a_edge;
    std::size_t b_edge;
  };
  std::vector<Fragment> fragments;
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    for (std::size_t j = 0; j < b.edges.size(); ++j) {
      IntervalSet common = a.edges[i].label.intersect(b.edges[j].label);
      if (!common.empty()) {
        fragments.push_back({std::move(common), i, j});
      }
    }
  }
  // Canonical edge order so both nodes list fragments identically.
  std::sort(fragments.begin(), fragments.end(),
            [](const Fragment& x, const Fragment& y) {
              return x.label.min() < y.label.min();
            });

  // Fast path: partitions already identical — no rebuilding, no clones.
  const bool aligned =
      fragments.size() == a.edges.size() &&
      fragments.size() == b.edges.size() &&
      [&] {
        for (std::size_t k = 0; k < fragments.size(); ++k) {
          if (fragments[k].label != a.edges[fragments[k].a_edge].label) {
            return false;
          }
        }
        return true;
      }();
  if (aligned) {
    // Reorder in canonical order and recurse pairwise.
    std::vector<FddEdge> a_new;
    std::vector<FddEdge> b_new;
    a_new.reserve(fragments.size());
    b_new.reserve(fragments.size());
    for (const Fragment& f : fragments) {
      a_new.push_back(std::move(a.edges[f.a_edge]));
      b_new.push_back(std::move(b.edges[f.b_edge]));
    }
    a.edges = std::move(a_new);
    b.edges = std::move(b_new);
    for (std::size_t k = 0; k < a.edges.size(); ++k) {
      shape_nodes(schema, a.edges[k].target, b.edges[k].target, ctx);
    }
    return;
  }

  // General path: rebuild both edge lists from the fragments. The last
  // fragment referencing a source edge steals its subtree; earlier ones
  // clone it.
  std::vector<std::size_t> a_remaining(a.edges.size(), 0);
  std::vector<std::size_t> b_remaining(b.edges.size(), 0);
  for (const Fragment& f : fragments) {
    ++a_remaining[f.a_edge];
    ++b_remaining[f.b_edge];
  }
  std::vector<FddEdge> a_new;
  std::vector<FddEdge> b_new;
  a_new.reserve(fragments.size());
  b_new.reserve(fragments.size());
  for (const Fragment& f : fragments) {
    // Subgraph replication is shaping's unit of blowup: charge every clone
    // by its full subtree size before building it.
    if (ctx != nullptr && a_remaining[f.a_edge] > 1) {
      ctx->charge_nodes(subtree_node_count(*a.edges[f.a_edge].target));
    }
    std::unique_ptr<FddNode> a_child =
        (--a_remaining[f.a_edge] == 0)
            ? std::move(a.edges[f.a_edge].target)
            : a.edges[f.a_edge].target->clone();
    if (ctx != nullptr && b_remaining[f.b_edge] > 1) {
      ctx->charge_nodes(subtree_node_count(*b.edges[f.b_edge].target));
    }
    std::unique_ptr<FddNode> b_child =
        (--b_remaining[f.b_edge] == 0)
            ? std::move(b.edges[f.b_edge].target)
            : b.edges[f.b_edge].target->clone();
    a_new.emplace_back(f.label, std::move(a_child));
    b_new.emplace_back(f.label, std::move(b_child));
  }
  a.edges = std::move(a_new);
  b.edges = std::move(b_new);
  for (std::size_t k = 0; k < a.edges.size(); ++k) {
    shape_nodes(schema, a.edges[k].target, b.edges[k].target, ctx);
  }
}

// Fig. 10's step 2 on *simple* FDDs: a merge sweep over two sorted runs
// of single-interval edges partitioning the same domain. Splitting the
// longer edge at the shorter's endpoint clones its subtree (subgraph
// replication). Both inputs come from make_simple, so step 1 (label
// alignment) has already happened.
void shape_nodes_simple(FddNode& a, FddNode& b) {
  if (a.is_terminal() && b.is_terminal()) {
    return;
  }
  if (a.is_terminal() || b.is_terminal() || a.field != b.field) {
    throw std::logic_error(
        "shape_nodes_simple: inputs are not simple FDDs over one schema");
  }
  std::size_t i = 0;
  std::size_t j = 0;
  // Invariant: on entry to each iteration the two current edges' intervals
  // begin at the same value (both partitions started at the domain min).
  while (i < a.edges.size() && j < b.edges.size()) {
    const Interval ia = a.edges[i].label.intervals().front();
    const Interval ib = b.edges[j].label.intervals().front();
    if (ia.hi() == ib.hi()) {
      shape_nodes_simple(*a.edges[i].target, *b.edges[j].target);
      ++i;
      ++j;
      continue;
    }
    if (ia.hi() < ib.hi()) {
      FddEdge& eb = b.edges[j];
      std::unique_ptr<FddNode> upper_copy = eb.target->clone();
      eb.label = IntervalSet(Interval(ib.lo(), ia.hi()));
      b.edges.emplace(b.edges.begin() + static_cast<std::ptrdiff_t>(j) + 1,
                      IntervalSet(Interval(ia.hi() + 1, ib.hi())),
                      std::move(upper_copy));
    } else {
      FddEdge& ea = a.edges[i];
      std::unique_ptr<FddNode> upper_copy = ea.target->clone();
      ea.label = IntervalSet(Interval(ia.lo(), ib.hi()));
      a.edges.emplace(a.edges.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                      IntervalSet(Interval(ib.hi() + 1, ia.hi())),
                      std::move(upper_copy));
    }
  }
  if (i != a.edges.size() || j != b.edges.size()) {
    throw std::logic_error(
        "shape_nodes_simple: edge partitions cover different domains");
  }
}

}  // namespace

void shape_pair_simple(Fdd& a, Fdd& b) {
  if (!(a.schema() == b.schema())) {
    throw std::invalid_argument("shape_pair_simple: schemas differ");
  }
  make_simple(a);
  make_simple(b);
  shape_nodes_simple(a.mutable_root(), b.mutable_root());
}

void shape_pair(Fdd& a, Fdd& b) { shape_pair(a, b, nullptr); }

void shape_pair(Fdd& a, Fdd& b, RunContext* context) {
  if (!(a.schema() == b.schema())) {
    throw std::invalid_argument("shape_pair: schemas differ");
  }
  shape_nodes(a.schema(), a.root_slot(), b.root_slot(), context);
}

void shape_all(std::vector<Fdd>& fdds) { shape_all(fdds, nullptr); }

void shape_all(std::vector<Fdd>& fdds, RunContext* context) {
  if (fdds.empty()) {
    throw std::invalid_argument("shape_all: no FDDs");
  }
  if (fdds.size() == 1) {
    make_simple(fdds[0]);
    return;
  }
  // Pass 1: funnel every refinement into fdds[0].
  for (std::size_t i = 1; i < fdds.size(); ++i) {
    shape_pair(fdds[0], fdds[i], context);
  }
  // Pass 2: fdds[0] is now the common refinement; aligning the others
  // against it splits only *their* edges (fdds[0] is already at least as
  // fine), leaving fdds[0] untouched and making all pairs semi-isomorphic.
  for (std::size_t i = 1; i + 1 < fdds.size(); ++i) {
    shape_pair(fdds[0], fdds[i], context);
  }
}

}  // namespace dfw
