// Simplification: turning an ordered FDD into a simple FDD.
//
// A simple FDD (Definition 4.3) has single-interval edge labels and no
// shared nodes — an outgoing directed tree. Our FDDs are already trees, so
// simplification is repeated *edge splitting* (Section 4, basic operation
// 2): an edge labeled {[a,b], [c,d]} becomes two edges over cloned
// subtrees. We additionally insert full-domain nodes for fields a path
// skips (basic operation 1, *node insertion*) and sort sibling edges, so
// the output satisfies the exact precondition of the shaping algorithm.

#pragma once

#include "fdd/fdd.hpp"

namespace dfw {

/// In-place transformation to a simple FDD. Semantics preserving; after the
/// call fdd.is_simple() holds. Requires a complete, valid FDD.
void make_simple(Fdd& fdd);

}  // namespace dfw
