// The Fdd class: a schema-typed, tree-shaped Firewall Decision Diagram.
//
// Invariants an Fdd promises (checkable with validate()):
//   consistency   — sibling edge labels are pairwise disjoint
//   completeness  — sibling edge labels union to the field's whole domain
//   ordering      — field indices strictly increase along every path
//   domain        — every edge label is within its field's domain
// These are exactly the FDD properties of Section 2 plus the "ordered FDD"
// property of Definition 4.1 (with the schema's field order as the total
// order).

#pragma once

#include <functional>
#include <memory>
#include <string>

#include "fdd/node.hpp"
#include "fw/packet.hpp"
#include "fw/rule.hpp"
#include "fw/schema.hpp"

namespace dfw {

/// A (partial or complete) ordered FDD over a schema. Move-only; use
/// clone() for deep copies.
class Fdd {
 public:
  /// Adopts a root; the root may be terminal (a constant firewall).
  Fdd(Schema schema, std::unique_ptr<FddNode> root);

  /// The trivial FDD mapping every packet to `decision`.
  static Fdd constant(Schema schema, Decision decision);

  Fdd(Fdd&&) noexcept = default;
  Fdd& operator=(Fdd&&) noexcept = default;

  Fdd clone() const;

  const Schema& schema() const { return schema_; }
  const FddNode& root() const { return *root_; }
  FddNode& mutable_root() { return *root_; }
  std::unique_ptr<FddNode>& root_slot() { return root_; }

  /// The decision the diagram assigns to packet p. Throws std::logic_error
  /// if p falls off the diagram (only possible for a *partial* FDD).
  Decision evaluate(const Packet& p) const;

  /// Verifies all four invariants; throws std::logic_error with a
  /// description of the first violation. `require_complete` may be turned
  /// off to validate partial FDDs (construction intermediates).
  void validate(bool require_complete = true) const;

  /// True when every decision path contains every schema field, every edge
  /// label is a single interval, and edges are sorted — the precondition of
  /// the shaping algorithm (Definition 4.3; trees are always share-free).
  bool is_simple() const;

  std::size_t node_count() const { return subtree_node_count(*root_); }
  std::size_t path_count() const { return subtree_path_count(*root_); }

  /// Calls `fn(conjuncts, decision)` once per decision path, where
  /// `conjuncts` has one IntervalSet per schema field (full domain for
  /// fields the path skips). This enumerates f.rules (Section 2).
  void for_each_path(
      const std::function<void(const std::vector<IntervalSet>&, Decision)>&
          fn) const;

 private:
  Schema schema_;
  std::unique_ptr<FddNode> root_;
};

/// Deep structural equality of two FDDs (same schema, nodes_equal roots).
bool structurally_equal(const Fdd& a, const Fdd& b);

/// Semi-isomorphism (Definition 4.2): equal shape and labels everywhere
/// except terminal decisions.
bool semi_isomorphic(const Fdd& a, const Fdd& b);

}  // namespace dfw
