#include "fdd/builder.hpp"

#include <stdexcept>

namespace dfw {

FddBuilder::FddBuilder(Schema schema) : schema_(std::move(schema)) {
  nodes_.push_back(Node{});
}

const FddBuilder::Node& FddBuilder::at(Region region) const {
  if (region >= nodes_.size()) {
    throw std::out_of_range("FddBuilder: unknown region");
  }
  return nodes_[region];
}

std::vector<FddBuilder::Region> FddBuilder::split(
    Region region, std::size_t field,
    const std::vector<IntervalSet>& partitions) {
  const Node& current = at(region);
  if (current.state != State::kOpen) {
    throw std::logic_error("FddBuilder::split: region already closed");
  }
  if (field >= schema_.field_count()) {
    throw std::invalid_argument("FddBuilder::split: unknown field");
  }
  if (field < current.min_field) {
    throw std::logic_error(
        "FddBuilder::split: field order violated (field already used or "
        "skipped backwards on this path)");
  }
  if (partitions.empty()) {
    throw std::invalid_argument("FddBuilder::split: no partitions");
  }
  const IntervalSet domain{schema_.domain(field)};
  IntervalSet covered;
  for (const IntervalSet& part : partitions) {
    if (part.empty()) {
      throw std::invalid_argument("FddBuilder::split: empty partition");
    }
    if (!domain.contains(part)) {
      throw std::invalid_argument(
          "FddBuilder::split: partition exceeds the field's domain");
    }
    if (covered.overlaps(part)) {
      throw std::invalid_argument(
          "FddBuilder::split: partitions overlap (consistency)");
    }
    covered = covered.unite(part);
  }

  std::vector<IntervalSet> labels = partitions;
  const IntervalSet rest = domain.subtract(covered);
  if (!rest.empty()) {
    labels.push_back(rest);  // completeness, without designer busywork
  }

  std::vector<Region> children;
  children.reserve(labels.size());
  Node updated = current;
  updated.state = State::kSplit;
  updated.field = field;
  for (IntervalSet& label : labels) {
    const Region child = nodes_.size();
    Node child_node;
    child_node.min_field = field + 1;
    nodes_.push_back(std::move(child_node));
    updated.children.emplace_back(std::move(label), child);
    children.push_back(child);
  }
  nodes_[region] = std::move(updated);
  // The split region closes; its children open.
  open_count_ += children.size() - 1;
  return children;
}

void FddBuilder::decide(Region region, Decision decision) {
  const Node& current = at(region);
  if (current.state != State::kOpen) {
    throw std::logic_error("FddBuilder::decide: region already closed");
  }
  nodes_[region].state = State::kDecided;
  nodes_[region].decision = decision;
  --open_count_;
}

bool FddBuilder::closed(Region region) const {
  return at(region).state != State::kOpen;
}

std::size_t FddBuilder::open_regions() const { return open_count_; }

std::unique_ptr<FddNode> FddBuilder::materialise(std::size_t index) const {
  const Node& node = nodes_[index];
  if (node.state == State::kDecided) {
    return FddNode::make_terminal(node.decision);
  }
  auto out = FddNode::make_internal(node.field);
  out->edges.reserve(node.children.size());
  for (const auto& [label, child] : node.children) {
    out->edges.emplace_back(label, materialise(child));
  }
  out->sort_edges();
  return out;
}

Fdd FddBuilder::finish() {
  if (open_count_ != 0) {
    throw std::logic_error("FddBuilder::finish: " +
                           std::to_string(open_count_) +
                           " region(s) still undecided");
  }
  Fdd fdd(schema_, materialise(0));
  nodes_.clear();
  nodes_.push_back(Node{});
  open_count_ = 1;
  fdd.validate();
  return fdd;
}

}  // namespace dfw
