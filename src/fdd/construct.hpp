// Construction algorithm (paper, Section 3.2, Fig. 7).
//
// Builds an ordered FDD equivalent to a first-match rule sequence by
// appending the rules one at a time to a partial FDD. Appending rule r at a
// node v labeled F splits v's outgoing edges against r's F-conjunct:
// values no existing edge covers get a fresh branch deciding r; values an
// edge fully covers recurse into the edge's subtree; values an edge partly
// covers split the edge (cloning the subtree) and recurse into one half.
// Earlier rules always win, which is exactly first-match semantics.

#pragma once

#include "fdd/fdd.hpp"
#include "fw/policy.hpp"
#include "obs/obs.hpp"
#include "rt/run_options.hpp"

namespace dfw {

class RunContext;

/// Constructs an FDD equivalent to the policy. The result is ordered in
/// schema field order, consistent, and complete iff the policy is
/// comprehensive; validate() is the caller's tool for asserting that.
/// Complexity: O(n^d) paths worst case (Theorem 1), near-linear on
/// practically shaped rule sets (Section 7.4).
Fdd build_fdd(const Policy& policy);

/// Appends one more rule (lowest priority) to an existing partial FDD,
/// exposing the incremental step for construction traces and tests. The
/// governed variant charges every materialised node (including case-3
/// subtree clones) against `context` (borrowed, nullable) and takes
/// amortized cancellation/deadline checkpoints.
void append_rule(Fdd& fdd, const Rule& rule);
void append_rule(Fdd& fdd, const Rule& rule, RunContext* context);

/// Builds a *partial* FDD from the first `count` rules only (Fig. 6's
/// intermediate diagrams). count >= 1. Same governed variant contract as
/// append_rule.
Fdd build_partial_fdd(const Policy& policy, std::size_t count);
Fdd build_partial_fdd(const Policy& policy, std::size_t count,
                      RunContext* context);

/// Knobs for the production construction entry point.
struct ConstructOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.context` governs
  /// the build: every node the construction materialises — arena or tree,
  /// including case-3 subtree clones — is charged against the node budget,
  /// and the recursion takes amortized cancellation/deadline checkpoints.
  /// A breach throws dfw::Error; construction cannot return a partial
  /// diagram (a half-appended rule has no policy semantics), so callers
  /// wanting partial *reports* catch at the workflow layer. `run.obs`
  /// observes it: each build emits a "build_reduced_fdd" trace span, and
  /// the tree path traces its interleaved "reduce" passes. `run.executor`
  /// is accepted for uniformity but unused — one diagram builds serially.
  RunOptions run = {};

  /// Build through the hash-consed FddArena (fdd/arena.hpp): canonical by
  /// construction, with copy-on-write appends instead of subtree clones.
  /// The result, expanded back into the tree representation, is
  /// structurally identical to the tree path's reduced output — the
  /// reduced ordered FDD of a policy is unique. Off restores the pure
  /// tree pipeline (append + interleaved reduce).
  bool use_arena = true;
};

/// Construction with interleaved reduction: equivalent to
/// reduce(build_fdd(policy)) but never materialises the unreduced
/// intermediate tree, whose size — not the reduced result's — is what
/// blows up on large rule sets. This is the production entry point the
/// comparison pipeline uses; build_fdd remains the paper-faithful
/// reference implementation of Fig. 7.
Fdd build_reduced_fdd(const Policy& policy,
                      const ConstructOptions& options = {});

}  // namespace dfw
