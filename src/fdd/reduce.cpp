#include "fdd/reduce.hpp"

#include <unordered_map>

namespace dfw {
namespace {

// 64-bit FNV-1a style combiner for structural subtree hashing.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_set(const IntervalSet& s) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (const Interval& iv : s.intervals()) {
    h = mix(h, iv.lo());
    h = mix(h, iv.hi());
  }
  return h;
}

// Reduces the subtree in place and returns its structural hash. Hashes let
// sibling merging bucket candidates instead of comparing all pairs; equal
// hashes are confirmed with nodes_equal, so collisions cost time, never
// correctness.
std::uint64_t reduce_node(const Schema& schema,
                          std::unique_ptr<FddNode>& slot) {
  FddNode& node = *slot;
  if (node.is_terminal()) {
    return mix(0x452821e638d01377ull, node.decision);
  }
  std::vector<std::uint64_t> child_hashes;
  child_hashes.reserve(node.edges.size());
  for (FddEdge& e : node.edges) {
    child_hashes.push_back(reduce_node(schema, e.target));
  }
  // Merge sibling edges with structurally identical subtrees. Children are
  // already reduced (hence canonical), so structural equality coincides
  // with functional equality.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::vector<bool> dead(node.edges.size(), false);
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    std::vector<std::size_t>& bucket = buckets[child_hashes[i]];
    bool merged = false;
    for (const std::size_t j : bucket) {
      if (nodes_equal(*node.edges[j].target, *node.edges[i].target)) {
        node.edges[j].label = node.edges[j].label.unite(node.edges[i].label);
        dead[i] = true;
        merged = true;
        break;
      }
    }
    if (!merged) {
      bucket.push_back(i);
    }
  }
  std::vector<FddEdge> kept;
  std::vector<std::uint64_t> kept_hashes;
  kept.reserve(node.edges.size());
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    if (!dead[i]) {
      kept.push_back(std::move(node.edges[i]));
      kept_hashes.push_back(child_hashes[i]);
    }
  }
  node.edges = std::move(kept);
  node.sort_edges();
  // Splice out a node whose single edge covers the entire domain: every
  // packet passes through it unconditionally.
  if (node.edges.size() == 1 &&
      node.edges[0].label == IntervalSet(schema.domain(node.field))) {
    const std::uint64_t child_hash = kept_hashes.front();
    slot = std::move(node.edges[0].target);
    return child_hash;
  }
  // Hash after sorting so structurally equal nodes hash equally. Labels
  // and child hashes together determine the subtree.
  std::uint64_t h = mix(0x13198a2e03707344ull, node.field);
  for (const FddEdge& e : slot->edges) {
    h = mix(h, hash_set(e.label));
  }
  // kept_hashes is aligned with pre-sort order; recompute child hashes in
  // sorted order by pairing through the edge vector. Sorting permuted the
  // edges, so rebuild the aligned list.
  // (Cheap: hashes were already computed; find by pointer identity.)
  // Simpler and still collision-safe: mix child hashes unordered.
  for (const std::uint64_t ch : kept_hashes) {
    h += ch * 0x9e3779b97f4a7c15ull;  // order-insensitive accumulation
  }
  return h;
}

}  // namespace

void reduce(Fdd& fdd) { reduce_node(fdd.schema(), fdd.root_slot()); }

}  // namespace dfw
