#include "fdd/reduce.hpp"

#include <unordered_map>

namespace dfw {
namespace {

// 64-bit FNV-1a style combiner for structural subtree hashing.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t hash_set(const IntervalSet& s) {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  for (const Interval& iv : s.intervals()) {
    h = mix(h, iv.lo());
    h = mix(h, iv.hi());
  }
  return h;
}

// Reduces the subtree in place and returns its structural hash. Hashes let
// sibling merging bucket candidates instead of comparing all pairs; equal
// hashes are confirmed with nodes_equal, so collisions cost time, never
// correctness.
std::uint64_t reduce_node(const Schema& schema,
                          std::unique_ptr<FddNode>& slot) {
  FddNode& node = *slot;
  if (node.is_terminal()) {
    return mix(0x452821e638d01377ull, node.decision);
  }
  std::vector<std::uint64_t> child_hashes;
  child_hashes.reserve(node.edges.size());
  for (FddEdge& e : node.edges) {
    child_hashes.push_back(reduce_node(schema, e.target));
  }
  // Merge sibling edges with structurally identical subtrees. Children are
  // already reduced (hence canonical), so structural equality coincides
  // with functional equality.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::vector<bool> dead(node.edges.size(), false);
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    std::vector<std::size_t>& bucket = buckets[child_hashes[i]];
    bool merged = false;
    for (const std::size_t j : bucket) {
      if (nodes_equal(*node.edges[j].target, *node.edges[i].target)) {
        node.edges[j].label = node.edges[j].label.unite(node.edges[i].label);
        dead[i] = true;
        merged = true;
        break;
      }
    }
    if (!merged) {
      bucket.push_back(i);
    }
  }
  std::vector<FddEdge> kept;
  std::unordered_map<const FddNode*, std::uint64_t> hash_of;
  kept.reserve(node.edges.size());
  for (std::size_t i = 0; i < node.edges.size(); ++i) {
    if (!dead[i]) {
      hash_of.emplace(node.edges[i].target.get(), child_hashes[i]);
      kept.push_back(std::move(node.edges[i]));
    }
  }
  node.edges = std::move(kept);
  node.sort_edges();
  // Splice out a node whose single edge covers the entire domain: every
  // packet passes through it unconditionally.
  if (node.edges.size() == 1 &&
      node.edges[0].label == schema.domain_set(node.field)) {
    const std::uint64_t child_hash = hash_of.begin()->second;
    slot = std::move(node.edges[0].target);
    return child_hash;
  }
  // Hash after sorting so structurally equal nodes hash equally: labels and
  // child hashes interleaved in sorted edge order determine the subtree.
  // sort_edges permuted the edges, so pair each edge with its child hash
  // through pointer identity.
  std::uint64_t h = mix(0x13198a2e03707344ull, node.field);
  for (const FddEdge& e : slot->edges) {
    h = mix(h, hash_set(e.label));
    h = mix(h, hash_of.at(e.target.get()));
  }
  return h;
}

}  // namespace

void reduce(Fdd& fdd) { reduce_node(fdd.schema(), fdd.root_slot()); }

}  // namespace dfw
