#include "fdd/construct.hpp"

#include <stdexcept>

#include "fdd/arena.hpp"
#include "fdd/node.hpp"
#include "fdd/reduce.hpp"
#include "rt/fault.hpp"
#include "rt/govern.hpp"

namespace dfw {
namespace {

bool is_wildcard(const Schema& schema, const Rule& rule, std::size_t field) {
  return rule.conjunct(field) == schema.domain_set(field);
}

// Builds the decision path for conjuncts[field..d-1] -> decision: a chain
// of single-edge nodes ending in a terminal (the partial FDD of one rule).
// Wildcard fields are skipped; reduction would splice them out anyway.
std::unique_ptr<FddNode> build_path(const Schema& schema, const Rule& rule,
                                    std::size_t field,
                                    RunContext* ctx = nullptr) {
  if (field == schema.field_count()) {
    govern::charge_nodes(ctx);
    return FddNode::make_terminal(rule.decision());
  }
  if (is_wildcard(schema, rule, field)) {
    return build_path(schema, rule, field + 1, ctx);
  }
  govern::charge_nodes(ctx);
  auto node = FddNode::make_internal(field);
  node->edges.emplace_back(rule.conjunct(field),
                           build_path(schema, rule, field + 1, ctx));
  return node;
}

// Node insertion: hoist `slot` under a full-domain node labeled `field`,
// so that a rule constraining a spliced-out (or never-materialised) field
// has a node to split. Semantics preserving.
void materialize(const Schema& schema, std::unique_ptr<FddNode>& slot,
                 std::size_t field, RunContext* ctx = nullptr) {
  govern::charge_nodes(ctx);
  auto inserted = FddNode::make_internal(field);
  inserted->edges.emplace_back(IntervalSet(schema.domain(field)),
                               std::move(slot));
  slot = std::move(inserted);
}

// APPEND(v, (F_from in S_from ^ ... ^ F_d in S_d) -> <decision>) of Fig. 7,
// generalised to diagrams whose paths may skip fields: a skipped field the
// rule constrains is first re-inserted with a full-domain edge.
void append(const Schema& schema, std::unique_ptr<FddNode>& slot,
            const Rule& rule, std::size_t from_field,
            RunContext* ctx = nullptr) {
  govern::checkpoint(ctx);
  // A packet reaching a terminal was decided by an earlier (higher
  // priority) rule; under first-match the appended rule never applies
  // there, whatever its remaining conjuncts say.
  const std::size_t label = slot->is_terminal() ? schema.field_count()
                                                : slot->field;
  for (std::size_t g = from_field; g < label; ++g) {
    if (!is_wildcard(schema, rule, g)) {
      materialize(schema, slot, g, ctx);
      break;
    }
  }
  FddNode& v = *slot;
  if (v.is_terminal()) {
    return;
  }
  const IntervalSet& s = rule.conjunct(v.field);

  // Values of S not covered by any existing edge get a brand-new branch
  // that decides the new rule.
  const IntervalSet uncovered = s.subtract(v.edge_label_union());
  if (!uncovered.empty()) {
    v.edges.emplace_back(uncovered,
                         build_path(schema, rule, v.field + 1, ctx));
  }

  // Fold S into each pre-existing edge. The new edge added above is
  // disjoint from the remainder of S and must not be revisited.
  const std::size_t original_edges =
      v.edges.size() - (uncovered.empty() ? 0 : 1);
  for (std::size_t i = 0; i < original_edges; ++i) {
    const IntervalSet common = v.edges[i].label.intersect(s);
    if (common.empty()) {
      continue;  // case (1): the rule does not constrain this branch
    }
    if (common == v.edges[i].label) {
      // case (2): edge fully inside S — recurse.
      append(schema, v.edges[i].target, rule, v.field + 1, ctx);
      continue;
    }
    // case (3): split e into e' (outside S, keeps the old subtree) and
    // e'' (inside S, gets a copy that the rule is appended to). The clone
    // is the tree path's unit of blowup — charge its full size up front.
    if (ctx != nullptr) {
      ctx->charge_nodes(subtree_node_count(*v.edges[i].target));
    }
    const IntervalSet outside = v.edges[i].label.subtract(common);
    std::unique_ptr<FddNode> copy = v.edges[i].target->clone();
    v.edges[i].label = outside;
    v.edges.emplace_back(common, std::move(copy));
    append(schema, v.edges.back().target, rule, v.field + 1, ctx);
  }
}

}  // namespace

void append_rule(Fdd& fdd, const Rule& rule) {
  append_rule(fdd, rule, nullptr);
}

void append_rule(Fdd& fdd, const Rule& rule, RunContext* context) {
  if (rule.conjuncts().size() != fdd.schema().field_count()) {
    throw std::invalid_argument("append_rule: rule arity mismatch");
  }
  append(fdd.schema(), fdd.root_slot(), rule, 0, context);
}

Fdd build_partial_fdd(const Policy& policy, std::size_t count) {
  return build_partial_fdd(policy, count, nullptr);
}

Fdd build_partial_fdd(const Policy& policy, std::size_t count,
                      RunContext* context) {
  if (count == 0 || count > policy.size()) {
    throw std::invalid_argument("build_partial_fdd: count out of range");
  }
  // The partial FDD of the first rule is its lone decision path (Fig. 6);
  // each further rule is appended at the root.
  Fdd fdd(policy.schema(),
          build_path(policy.schema(), policy.rule(0), 0, context));
  for (std::size_t i = 1; i < count; ++i) {
    append(policy.schema(), fdd.root_slot(), policy.rule(i), 0, context);
  }
  return fdd;
}

Fdd build_fdd(const Policy& policy) {
  return build_partial_fdd(policy, policy.size());
}

Fdd build_reduced_fdd(const Policy& policy,
                      const ConstructOptions& options) {
  ScopedSpan span(options.run.obs.tracer, "build_reduced_fdd", "rules",
                  policy.size());
  // Phase-boundary fault site: fires before any construction state
  // exists, modelling a failure at the hand-off into this phase.
  fault::hit(options.run.faults, fault::sites::kConstructPhase);
  if (options.use_arena) {
    FddArena arena(policy.schema());
    arena.set_context(options.run.context);
    arena.set_faults(options.run.faults);
    Fdd fdd = arena.to_fdd(arena.build_reduced(policy));
    if (options.run.obs.metrics != nullptr) {
      absorb(*options.run.obs.metrics, arena.stats());
    }
    return fdd;
  }
  Fdd fdd(policy.schema(),
          build_path(policy.schema(), policy.rule(0), 0, options.run.context));
  // Reduce whenever the diagram outgrows a budget proportional to the
  // rules consumed: appends then always run against a near-minimal tree,
  // which is what keeps million-path intermediates from ever existing.
  std::size_t budget = 256;
  for (std::size_t i = 1; i < policy.size(); ++i) {
    append(policy.schema(), fdd.root_slot(), policy.rule(i), 0,
           options.run.context);
    if (fdd.node_count() > budget) {
      ScopedSpan reduce_span(options.run.obs.tracer, "reduce", "nodes",
                             fdd.node_count());
      reduce(fdd);
      budget = fdd.node_count() * 2 + 256;
    }
  }
  {
    ScopedSpan reduce_span(options.run.obs.tracer, "reduce", "nodes",
                           fdd.node_count());
    fault::hit(options.run.faults, fault::sites::kReducePhase);
    reduce(fdd);
  }
  return fdd;
}

}  // namespace dfw
