// FDD serialization.
//
// Two line-based text formats for saving shaped or reduced diagrams and
// shipping them between tools (the comparison phase's artifacts — shaped
// FDDs and corrected FDDs — are worth persisting across the resolution
// phase).
//
// Version 1, preorder tree (one subtree per edge, shared subdiagrams
// duplicated):
//
//   dfdd 1                      header: magic + version
//   schema <d>                  field count (domains come from the caller)
//   N <field> <edge-count>      nonterminal node
//   E <lo>:<hi>[,<lo>:<hi>...]  one edge label; its subtree follows
//   T <decision>                terminal node
//
// Version 2, explicit-id DAG (shared subdiagrams written once, bottom-up):
//
//   dfdd 2
//   schema <d>
//   nodes <count>               node records follow, children first
//   T <id> <decision>           terminal record
//   N <id> <field> <edge-count> nonterminal record; its E lines follow
//   E <target-id> <lo>:<hi>[,...]
//   root <id>
//
// The caller supplies the Schema on load; the formats store only the
// structure, and load validates it against the schema. Both parsers are
// hardened for untrusted input: every read is bounds-checked, recursion
// depth is bounded by parse-time field-order enforcement, edge/node
// counts are bounded by the input size (no reserve bombs), and the v2
// loader rejects duplicate node ids and dangling (or forward, or cyclic)
// child references with precise per-line errors.

#pragma once

#include <string>
#include <string_view>

#include "fdd/fdd.hpp"

namespace dfw {

class RunContext;

/// Serializes the diagram in the v1 tree format. Deterministic: equal
/// FDDs produce equal text.
std::string serialize_fdd(const Fdd& fdd);

/// Serializes the diagram in the v2 DAG format: structurally identical
/// subtrees are interned and written once, so the output is at most — and
/// often exponentially smaller than — the v1 text. Deterministic.
std::string serialize_fdd_dag(const Fdd& fdd);

/// Parses a serialized diagram (either version, dispatched on the header)
/// and re-attaches the schema. Throws std::invalid_argument on syntax and
/// structural errors (including id violations in v2) and std::logic_error
/// when the parsed structure violates the FDD invariants for this schema.
Fdd deserialize_fdd(const Schema& schema, std::string_view text);

/// Governed deserialization: expanding a v2 DAG un-shares every node, so a
/// few kilobytes of hostile text can describe an exponentially large tree
/// (a decompression bomb). With a context, every materialised tree node is
/// charged against its node budget and a breach throws dfw::Error; with a
/// null context a built-in expansion cap applies instead.
Fdd deserialize_fdd(const Schema& schema, std::string_view text,
                    RunContext* context);

}  // namespace dfw
