// FDD serialization.
//
// A compact, line-based text format for saving shaped or reduced diagrams
// and shipping them between tools (the comparison phase's artifacts —
// shaped FDDs and corrected FDDs — are worth persisting across the
// resolution phase). Format, preorder:
//
//   dfdd 1                      header: magic + version
//   schema <d>                  field count (domains come from the caller)
//   N <field> <edge-count>      nonterminal node
//   E <lo>:<hi>[,<lo>:<hi>...]  one edge label; its subtree follows
//   T <decision>                terminal node
//
// The caller supplies the Schema on load; the format stores only the
// structure, and load validates it against the schema (field indices,
// domain containment, consistency, completeness when requested).

#pragma once

#include <string>
#include <string_view>

#include "fdd/fdd.hpp"

namespace dfw {

/// Serializes the diagram. Deterministic: equal FDDs produce equal text.
std::string serialize_fdd(const Fdd& fdd);

/// Parses a serialized diagram and re-attaches the schema. Throws
/// std::invalid_argument on syntax errors and std::logic_error when the
/// structure violates the FDD invariants for this schema.
Fdd deserialize_fdd(const Schema& schema, std::string_view text);

}  // namespace dfw
