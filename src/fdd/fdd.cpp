#include "fdd/fdd.hpp"

#include <stdexcept>

namespace dfw {
namespace {

void validate_node(const Schema& schema, const FddNode& node,
                   std::size_t min_field, bool require_complete) {
  if (node.is_terminal()) {
    if (!node.edges.empty()) {
      throw std::logic_error("FDD: terminal node has outgoing edges");
    }
    return;
  }
  if (node.field >= schema.field_count()) {
    throw std::logic_error("FDD: node labeled with unknown field index");
  }
  if (node.field < min_field) {
    throw std::logic_error("FDD: field order violated on a path (field " +
                           schema.field(node.field).name + ")");
  }
  if (node.edges.empty()) {
    throw std::logic_error("FDD: nonterminal node has no outgoing edges");
  }
  const IntervalSet domain{schema.domain(node.field)};
  IntervalSet seen;
  for (const FddEdge& e : node.edges) {
    if (e.label.empty()) {
      throw std::logic_error("FDD: empty edge label");
    }
    if (!domain.contains(e.label)) {
      throw std::logic_error("FDD: edge label exceeds domain of field " +
                             schema.field(node.field).name);
    }
    if (seen.overlaps(e.label)) {
      throw std::logic_error("FDD: consistency violated at field " +
                             schema.field(node.field).name);
    }
    seen = seen.unite(e.label);
    if (e.target == nullptr) {
      throw std::logic_error("FDD: edge with null target");
    }
    validate_node(schema, *e.target, node.field + 1, require_complete);
  }
  if (require_complete && seen != domain) {
    throw std::logic_error("FDD: completeness violated at field " +
                           schema.field(node.field).name);
  }
}

bool node_is_simple(const Schema& schema, const FddNode& node,
                    std::size_t expected_field) {
  if (node.is_terminal()) {
    // Simple + shaping require every path to mention every field so that
    // lockstep edge alignment never has to invent nodes mid-walk.
    return expected_field == schema.field_count();
  }
  if (node.field != expected_field) {
    return false;
  }
  Value prev_hi = 0;
  bool first = true;
  for (const FddEdge& e : node.edges) {
    if (e.label.run_count() != 1) {
      return false;
    }
    if (!first && e.label.min() <= prev_hi) {
      return false;  // unsorted (or overlapping) edges
    }
    first = false;
    prev_hi = e.label.max();
    if (!node_is_simple(schema, *e.target, expected_field + 1)) {
      return false;
    }
  }
  return true;
}

bool nodes_semi_isomorphic(const FddNode& a, const FddNode& b) {
  if (a.is_terminal() != b.is_terminal()) {
    return false;
  }
  if (a.is_terminal()) {
    return true;  // decisions may differ
  }
  if (a.field != b.field || a.edges.size() != b.edges.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].label != b.edges[i].label) {
      return false;
    }
    if (!nodes_semi_isomorphic(*a.edges[i].target, *b.edges[i].target)) {
      return false;
    }
  }
  return true;
}

void for_each_path_impl(
    const Schema& schema, const FddNode& node,
    std::vector<IntervalSet>& conjuncts,
    const std::function<void(const std::vector<IntervalSet>&, Decision)>&
        fn) {
  if (node.is_terminal()) {
    fn(conjuncts, node.decision);
    return;
  }
  for (const FddEdge& e : node.edges) {
    conjuncts[node.field] = e.label;
    for_each_path_impl(schema, *e.target, conjuncts, fn);
  }
  conjuncts[node.field] = IntervalSet(schema.domain(node.field));
}

}  // namespace

Fdd::Fdd(Schema schema, std::unique_ptr<FddNode> root)
    : schema_(std::move(schema)), root_(std::move(root)) {
  if (root_ == nullptr) {
    throw std::invalid_argument("Fdd: null root");
  }
}

Fdd Fdd::constant(Schema schema, Decision decision) {
  return Fdd(std::move(schema), FddNode::make_terminal(decision));
}

Fdd Fdd::clone() const { return Fdd(schema_, root_->clone()); }

Decision Fdd::evaluate(const Packet& p) const {
  if (p.size() != schema_.field_count()) {
    throw std::invalid_argument("Fdd::evaluate: packet arity mismatch");
  }
  const FddNode* node = root_.get();
  while (!node->is_terminal()) {
    const FddNode* next = nullptr;
    for (const FddEdge& e : node->edges) {
      if (e.label.contains(p[node->field])) {
        next = e.target.get();
        break;
      }
    }
    if (next == nullptr) {
      throw std::logic_error("Fdd::evaluate: packet falls off a partial FDD");
    }
    node = next;
  }
  return node->decision;
}

void Fdd::validate(bool require_complete) const {
  validate_node(schema_, *root_, 0, require_complete);
}

bool Fdd::is_simple() const {
  // A terminal-only FDD (constant firewall) is trivially not simple unless
  // the schema has zero fields, which Schema forbids; the shaping driver
  // first expands such roots via node insertion.
  return node_is_simple(schema_, *root_, 0);
}

void Fdd::for_each_path(
    const std::function<void(const std::vector<IntervalSet>&, Decision)>& fn)
    const {
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema_.field_count());
  for (std::size_t i = 0; i < schema_.field_count(); ++i) {
    conjuncts.emplace_back(schema_.domain(i));
  }
  for_each_path_impl(schema_, *root_, conjuncts, fn);
}

bool structurally_equal(const Fdd& a, const Fdd& b) {
  return a.schema() == b.schema() && nodes_equal(a.root(), b.root());
}

bool semi_isomorphic(const Fdd& a, const Fdd& b) {
  return a.schema() == b.schema() &&
         nodes_semi_isomorphic(a.root(), b.root());
}

}  // namespace dfw
