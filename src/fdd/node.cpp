#include "fdd/node.hpp"

#include <algorithm>
#include <atomic>

namespace dfw {
namespace {

std::atomic<std::size_t> g_node_allocations{0};

std::unique_ptr<FddNode> allocate_node() {
  g_node_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::make_unique<FddNode>();
}

}  // namespace

std::size_t fdd_node_allocations() {
  return g_node_allocations.load(std::memory_order_relaxed);
}

std::unique_ptr<FddNode> FddNode::make_terminal(Decision d) {
  auto node = allocate_node();
  node->field = kTerminalField;
  node->decision = d;
  return node;
}

std::unique_ptr<FddNode> FddNode::make_internal(std::size_t field) {
  auto node = allocate_node();
  node->field = field;
  return node;
}

std::unique_ptr<FddNode> FddNode::clone() const {
  auto copy = allocate_node();
  copy->field = field;
  copy->decision = decision;
  copy->edges.reserve(edges.size());
  for (const FddEdge& e : edges) {
    copy->edges.emplace_back(e.label, e.target->clone());
  }
  return copy;
}

IntervalSet FddNode::edge_label_union() const {
  IntervalSet all;
  for (const FddEdge& e : edges) {
    all = all.unite(e.label);
  }
  return all;
}

void FddNode::sort_edges() {
  std::sort(edges.begin(), edges.end(),
            [](const FddEdge& a, const FddEdge& b) {
              return a.label.min() < b.label.min();
            });
}

bool nodes_equal(const FddNode& a, const FddNode& b) {
  if (a.field != b.field) {
    return false;
  }
  if (a.is_terminal()) {
    return a.decision == b.decision;
  }
  if (a.edges.size() != b.edges.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    if (a.edges[i].label != b.edges[i].label) {
      return false;
    }
    if (!nodes_equal(*a.edges[i].target, *b.edges[i].target)) {
      return false;
    }
  }
  return true;
}

std::size_t subtree_node_count(const FddNode& n) {
  std::size_t count = 1;
  for (const FddEdge& e : n.edges) {
    count += subtree_node_count(*e.target);
  }
  return count;
}

std::size_t subtree_path_count(const FddNode& n) {
  if (n.is_terminal()) {
    return 1;
  }
  std::size_t count = 0;
  for (const FddEdge& e : n.edges) {
    count += subtree_path_count(*e.target);
  }
  return count;
}

}  // namespace dfw
