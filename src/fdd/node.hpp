// FDD nodes and edges.
//
// A Firewall Decision Diagram (paper, Section 2) is an acyclic diagram whose
// nonterminal nodes are labeled with packet fields, whose edges are labeled
// with nonempty value sets, and whose terminal nodes are labeled with
// decisions. We represent FDDs as trees — the paper's own examples are
// trees, its simple FDDs are "outgoing directed trees", and the construction
// algorithm's subgraph copies keep diagrams tree-shaped — with each edge
// owning its target node.

#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "fw/decision.hpp"
#include "net/interval_set.hpp"

namespace dfw {

struct FddNode;

/// A labeled edge e : u -> v with label I(e), owning its target e.t.
struct FddEdge {
  IntervalSet label;
  std::unique_ptr<FddNode> target;

  FddEdge(IntervalSet l, std::unique_ptr<FddNode> t)
      : label(std::move(l)), target(std::move(t)) {}
};

/// Sentinel field index marking terminal nodes.
inline constexpr std::size_t kTerminalField = static_cast<std::size_t>(-1);

/// One FDD node. A nonterminal carries a schema field index and outgoing
/// edges; a terminal carries a decision and no edges.
struct FddNode {
  std::size_t field = kTerminalField;  ///< F(v): field index, or terminal
  Decision decision = kAccept;         ///< label of a terminal node
  std::vector<FddEdge> edges;          ///< E(v); empty for terminals

  bool is_terminal() const { return field == kTerminalField; }

  /// Makes a terminal node.
  static std::unique_ptr<FddNode> make_terminal(Decision d);
  /// Makes a nonterminal node labeled with `field` and no edges yet.
  static std::unique_ptr<FddNode> make_internal(std::size_t field);

  /// Deep copy (the "subgraph replication" operation, Section 4).
  std::unique_ptr<FddNode> clone() const;

  /// Union of all outgoing edge labels.
  IntervalSet edge_label_union() const;

  /// Sorts edges by the smallest value of their label. Labels of a valid
  /// node are disjoint, so this is a total order.
  void sort_edges();
};

/// Deep structural equality: same labels, same decisions, edges compared
/// in order. Callers normalise edge order first (sort_edges) when order
/// should not matter.
bool nodes_equal(const FddNode& a, const FddNode& b);

/// Number of nodes in the subtree rooted at `n` (including `n`).
std::size_t subtree_node_count(const FddNode& n);

/// Number of root-to-terminal paths in the subtree rooted at `n`.
std::size_t subtree_path_count(const FddNode& n);

/// Process-wide, monotonic count of tree nodes created through the FddNode
/// factories (make_terminal, make_internal, clone). Benchmarks take deltas
/// around a pipeline to report how many nodes the tree representation
/// allocates versus the arena's unique-node count (the sharing factor).
std::size_t fdd_node_allocations();

}  // namespace dfw
