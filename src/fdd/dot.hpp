// Graphviz export: renders an FDD the way the paper draws Figs. 2-5, for
// inspection and documentation.

#pragma once

#include <string>

#include "fdd/fdd.hpp"
#include "fw/decision.hpp"

namespace dfw {

/// Emits the FDD in Graphviz dot syntax. Edge labels use the field-aware
/// formatter (CIDR for IPv4 fields, mnemonics for protocols).
std::string to_dot(const Fdd& fdd, const DecisionSet& decisions);

}  // namespace dfw
