#include "fdd/stats.hpp"

#include <algorithm>

namespace dfw {
namespace {

void visit(const FddNode& n, std::size_t depth, FddStats& s) {
  s.nodes += 1;
  s.depth = std::max(s.depth, depth + 1);
  if (n.is_terminal()) {
    s.terminals += 1;
    s.paths += 1;
    return;
  }
  s.edges += n.edges.size();
  for (const FddEdge& e : n.edges) {
    visit(*e.target, depth + 1, s);
  }
}

}  // namespace

FddStats compute_stats(const Fdd& fdd) {
  FddStats s;
  visit(fdd.root(), 0, s);
  return s;
}

std::size_t theorem1_path_bound(std::size_t n_rules, std::size_t d_fields) {
  const std::size_t base = 2 * n_rules - 1;
  std::size_t bound = 1;
  for (std::size_t i = 0; i < d_fields; ++i) {
    if (bound > SIZE_MAX / base) {
      return SIZE_MAX;
    }
    bound *= base;
  }
  return bound;
}

std::string to_string(const FddStats& s) {
  return "nodes=" + std::to_string(s.nodes) +
         " terminals=" + std::to_string(s.terminals) +
         " edges=" + std::to_string(s.edges) +
         " paths=" + std::to_string(s.paths) +
         " depth=" + std::to_string(s.depth);
}

namespace {

std::string rate(std::size_t hits, std::size_t queries) {
  if (queries == 0) {
    return "-";
  }
  return std::to_string(hits * 100 / queries) + "%";
}

}  // namespace

std::string to_string(const ArenaStats& s) {
  return "unique_nodes=" + std::to_string(s.unique_nodes) +
         " unique_labels=" + std::to_string(s.unique_labels) +
         " node_hit=" + rate(s.node_hits, s.node_queries) +
         " label_hit=" + rate(s.label_hits, s.label_queries) +
         " append_hit=" +
         rate(s.append_cache_hits,
              s.append_cache_hits + s.append_cache_misses) +
         " shape_hit=" +
         rate(s.shape_cache_hits, s.shape_cache_hits + s.shape_cache_misses) +
         " compare_hit=" +
         rate(s.compare_cache_hits,
              s.compare_cache_hits + s.compare_cache_misses) +
         " equiv_hit=" +
         rate(s.equiv_cache_hits, s.equiv_cache_hits + s.equiv_cache_misses);
}

}  // namespace dfw
