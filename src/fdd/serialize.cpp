#include "fdd/serialize.hpp"

#include <charconv>
#include <stdexcept>
#include <unordered_map>
#include <utility>
#include <vector>

#include "fdd/arena.hpp"
#include "rt/govern.hpp"

namespace dfw {
namespace {

// Expansion ceiling for ungoverned v2 loads: a DAG of a few hundred bytes
// can describe a tree of 2^64 nodes, so expansion must be bounded even
// when the caller did not pass a RunContext.
constexpr std::size_t kDefaultExpansionCap = 1u << 22;  // ~4M nodes

void emit(const FddNode& node, std::string& out) {
  if (node.is_terminal()) {
    out += "T " + std::to_string(node.decision) + "\n";
    return;
  }
  out += "N " + std::to_string(node.field) + " " +
         std::to_string(node.edges.size()) + "\n";
  for (const FddEdge& e : node.edges) {
    out += "E ";
    const std::vector<Interval>& runs = e.label.intervals();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += std::to_string(runs[i].lo()) + ":" +
             std::to_string(runs[i].hi());
    }
    out += "\n";
    emit(*e.target, out);
  }
}

void emit_label(const IntervalSet& label, std::string& out) {
  const std::vector<Interval>& runs = label.intervals();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += std::to_string(runs[i].lo()) + ":" + std::to_string(runs[i].hi());
  }
}

// Line-cursor over the serialized text.
struct Reader {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no = 0;

  std::size_t remaining() const {
    return pos >= text.size() ? 0 : text.size() - pos;
  }

  std::string_view next_line() {
    if (pos > text.size()) {
      throw std::invalid_argument("deserialize_fdd: unexpected end of input");
    }
    const std::size_t nl = text.find('\n', pos);
    std::string_view line;
    if (nl == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size() + 1;
    } else {
      line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    ++line_no;
    return line;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("deserialize_fdd: line " +
                                std::to_string(line_no) + ": " + message);
  }
};

std::uint64_t parse_number(Reader& r, std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    r.fail("bad number '" + std::string(s) + "'");
  }
  return v;
}

IntervalSet parse_label(Reader& r, std::string_view s) {
  IntervalSet set;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string_view item =
        s.substr(start, comma == std::string_view::npos
                            ? std::string_view::npos
                            : comma - start);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      r.fail("edge label item without ':'");
    }
    const std::uint64_t lo = parse_number(r, item.substr(0, colon));
    const std::uint64_t hi = parse_number(r, item.substr(colon + 1));
    if (lo > hi) {
      r.fail("inverted interval in edge label");
    }
    set.add(Interval(lo, hi));
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  if (set.empty()) {
    r.fail("empty edge label");
  }
  return set;
}

// v1 recursive-descent node parser. `min_field` enforces the FDD field
// order *at parse time* — a nonterminal's field must be at least the
// parent's field + 1 — which both reports violations with a line number
// and bounds the recursion depth by the schema's field count, so hostile
// deeply-nested input cannot overflow the stack before validate() runs.
std::unique_ptr<FddNode> parse_node(Reader& r, const Schema& schema,
                                    std::size_t min_field) {
  const std::string_view line = r.next_line();
  if (line.size() < 2 || line[1] != ' ') {
    r.fail("expected node line, got '" + std::string(line) + "'");
  }
  const std::string_view body = line.substr(2);
  if (line[0] == 'T') {
    const std::uint64_t decision = parse_number(r, body);
    if (decision > UINT16_MAX) {
      r.fail("decision id out of range");
    }
    return FddNode::make_terminal(static_cast<Decision>(decision));
  }
  if (line[0] != 'N') {
    r.fail("expected 'N' or 'T' line");
  }
  const std::size_t space = body.find(' ');
  if (space == std::string_view::npos) {
    r.fail("node line needs field and edge count");
  }
  const std::uint64_t field = parse_number(r, body.substr(0, space));
  const std::uint64_t edge_count = parse_number(r, body.substr(space + 1));
  if (field >= schema.field_count()) {
    r.fail("field index " + std::to_string(field) + " out of range (schema "
           "has " + std::to_string(schema.field_count()) + " fields)");
  }
  if (field < min_field) {
    r.fail("field order violated: field " + std::to_string(field) +
           " under an ancestor with field >= " + std::to_string(min_field));
  }
  if (edge_count == 0) {
    r.fail("nonterminal node with zero edges");
  }
  // Every edge needs at least an 'E' line and a node line; bounding the
  // count by the remaining input defuses reserve bombs ("N 0 9999999999").
  if (edge_count > r.remaining()) {
    r.fail("edge count " + std::to_string(edge_count) +
           " exceeds the remaining input");
  }
  auto node = FddNode::make_internal(static_cast<std::size_t>(field));
  node->edges.reserve(static_cast<std::size_t>(edge_count));
  for (std::uint64_t e = 0; e < edge_count; ++e) {
    const std::string_view edge_line = r.next_line();
    if (edge_line.size() < 2 || edge_line[0] != 'E' || edge_line[1] != ' ') {
      r.fail("expected edge line");
    }
    IntervalSet label = parse_label(r, edge_line.substr(2));
    node->edges.emplace_back(
        std::move(label),
        parse_node(r, schema, static_cast<std::size_t>(field) + 1));
  }
  return node;
}

// ---------------------------------------------------------------------------
// v2: explicit-id DAG records.

struct DagEdge {
  std::uint32_t target;  // index into the record table
  IntervalSet label;
};

struct DagRecord {
  bool terminal = false;
  Decision decision = 0;
  std::uint32_t field = 0;
  std::vector<DagEdge> edges;
};

// Expands one record into an owning tree, duplicating shared subdiagrams
// (the tree representation owns every child). `created` counts every tree
// node materialised; governed loads charge the context instead, making a
// decompression bomb a NodeBudgetExceeded error rather than an OOM.
std::unique_ptr<FddNode> expand_record(
    const std::vector<DagRecord>& records, std::uint32_t index,
    RunContext* ctx, std::size_t& created) {
  if (ctx != nullptr) {
    ctx->charge_nodes();
    ctx->checkpoint();
  } else if (++created > kDefaultExpansionCap) {
    throw std::invalid_argument(
        "deserialize_fdd: DAG expansion exceeds " +
        std::to_string(kDefaultExpansionCap) +
        " tree nodes; pass a RunContext to raise the limit");
  }
  const DagRecord& record = records[index];
  if (record.terminal) {
    return FddNode::make_terminal(record.decision);
  }
  auto node = FddNode::make_internal(record.field);
  node->edges.reserve(record.edges.size());
  for (const DagEdge& e : record.edges) {
    node->edges.emplace_back(e.label,
                             expand_record(records, e.target, ctx, created));
  }
  return node;
}

Fdd deserialize_dag(const Schema& schema, Reader& r, RunContext* ctx) {
  const std::string_view nodes_line = r.next_line();
  if (nodes_line.substr(0, 6) != "nodes ") {
    r.fail("missing 'nodes' line");
  }
  const std::uint64_t count = parse_number(r, nodes_line.substr(6));
  if (count == 0) {
    r.fail("node count must be positive");
  }
  // Every record needs at least one line of input.
  if (count > r.remaining()) {
    r.fail("node count " + std::to_string(count) +
           " exceeds the remaining input");
  }

  std::vector<DagRecord> records;
  records.reserve(static_cast<std::size_t>(count));
  std::unordered_map<std::uint64_t, std::uint32_t> index_of_id;
  index_of_id.reserve(static_cast<std::size_t>(count));

  // A target must name an id defined on an *earlier* line: that one rule
  // rejects dangling ids, forward references, and cycles, and it proves
  // the records arrive children-first, so the field-order check below can
  // consult the target's already-parsed record.
  const auto resolve_target = [&](Reader& reader,
                                  std::uint64_t id) -> std::uint32_t {
    const auto it = index_of_id.find(id);
    if (it == index_of_id.end()) {
      reader.fail("edge references undefined node id " + std::to_string(id) +
                  " (dangling, forward, or cyclic)");
    }
    return it->second;
  };

  for (std::uint64_t n = 0; n < count; ++n) {
    const std::string_view line = r.next_line();
    if (line.size() < 2 || line[1] != ' ') {
      r.fail("expected node record, got '" + std::string(line) + "'");
    }
    const std::string_view body = line.substr(2);
    DagRecord record;
    std::uint64_t id = 0;
    if (line[0] == 'T') {
      const std::size_t space = body.find(' ');
      if (space == std::string_view::npos) {
        r.fail("terminal record needs id and decision");
      }
      id = parse_number(r, body.substr(0, space));
      const std::uint64_t decision = parse_number(r, body.substr(space + 1));
      if (decision > UINT16_MAX) {
        r.fail("decision id out of range");
      }
      record.terminal = true;
      record.decision = static_cast<Decision>(decision);
    } else if (line[0] == 'N') {
      const std::size_t s1 = body.find(' ');
      const std::size_t s2 =
          s1 == std::string_view::npos ? s1 : body.find(' ', s1 + 1);
      if (s1 == std::string_view::npos || s2 == std::string_view::npos) {
        r.fail("nonterminal record needs id, field, and edge count");
      }
      id = parse_number(r, body.substr(0, s1));
      const std::uint64_t field =
          parse_number(r, body.substr(s1 + 1, s2 - s1 - 1));
      const std::uint64_t edge_count = parse_number(r, body.substr(s2 + 1));
      if (field >= schema.field_count()) {
        r.fail("field index " + std::to_string(field) +
               " out of range (schema has " +
               std::to_string(schema.field_count()) + " fields)");
      }
      if (edge_count == 0) {
        r.fail("nonterminal node with zero edges");
      }
      if (edge_count > r.remaining()) {
        r.fail("edge count " + std::to_string(edge_count) +
               " exceeds the remaining input");
      }
      record.field = static_cast<std::uint32_t>(field);
      record.edges.reserve(static_cast<std::size_t>(edge_count));
      for (std::uint64_t e = 0; e < edge_count; ++e) {
        const std::string_view edge_line = r.next_line();
        if (edge_line.size() < 2 || edge_line[0] != 'E' ||
            edge_line[1] != ' ') {
          r.fail("expected edge line");
        }
        const std::string_view edge_body = edge_line.substr(2);
        const std::size_t space = edge_body.find(' ');
        if (space == std::string_view::npos) {
          r.fail("edge line needs target id and label");
        }
        const std::uint64_t target_id =
            parse_number(r, edge_body.substr(0, space));
        const std::uint32_t target = resolve_target(r, target_id);
        const DagRecord& child = records[target];
        // Parse-time field-order enforcement: bounds the later expansion
        // recursion by the schema depth, exactly like the v1 parser.
        if (!child.terminal && child.field <= record.field) {
          r.fail("field order violated: child node id " +
                 std::to_string(target_id) + " has field " +
                 std::to_string(child.field) + " <= parent field " +
                 std::to_string(record.field));
        }
        record.edges.push_back(
            {target, parse_label(r, edge_body.substr(space + 1))});
      }
    } else {
      r.fail("expected 'N' or 'T' record");
    }
    if (!index_of_id.emplace(id, static_cast<std::uint32_t>(records.size()))
             .second) {
      r.fail("duplicate node id " + std::to_string(id));
    }
    records.push_back(std::move(record));
  }

  const std::string_view root_line = r.next_line();
  if (root_line.substr(0, 5) != "root ") {
    r.fail("missing 'root' line");
  }
  const std::uint32_t root =
      resolve_target(r, parse_number(r, root_line.substr(5)));

  std::size_t created = 0;
  return Fdd(schema, expand_record(records, root, ctx, created));
}

void emit_dag(const FddArena& arena, std::string& out) {
  for (ArenaNodeId id = 0; id < arena.unique_node_count(); ++id) {
    if (arena.is_terminal(id)) {
      out += "T " + std::to_string(id) + " " +
             std::to_string(arena.decision(id)) + "\n";
      continue;
    }
    const auto edges = arena.edges(id);
    out += "N " + std::to_string(id) + " " +
           std::to_string(arena.field(id)) + " " +
           std::to_string(edges.size()) + "\n";
    for (const ArenaEdge& e : edges) {
      out += "E " + std::to_string(e.target) + " ";
      emit_label(arena.label(e.label), out);
      out += "\n";
    }
  }
}

}  // namespace

std::string serialize_fdd(const Fdd& fdd) {
  std::string out = "dfdd 1\n";
  out += "schema " + std::to_string(fdd.schema().field_count()) + "\n";
  emit(fdd.root(), out);
  return out;
}

std::string serialize_fdd_dag(const Fdd& fdd) {
  // Interning through a fresh arena assigns ids bottom-up (children are
  // interned before their parents), so emitting the records in id order
  // satisfies the loader's children-first rule by construction.
  FddArena arena(fdd.schema());
  const ArenaNodeId root = arena.from_tree(fdd.root());
  std::string out = "dfdd 2\n";
  out += "schema " + std::to_string(fdd.schema().field_count()) + "\n";
  out += "nodes " + std::to_string(arena.unique_node_count()) + "\n";
  emit_dag(arena, out);
  out += "root " + std::to_string(root) + "\n";
  return out;
}

Fdd deserialize_fdd(const Schema& schema, std::string_view text) {
  return deserialize_fdd(schema, text, nullptr);
}

Fdd deserialize_fdd(const Schema& schema, std::string_view text,
                    RunContext* context) {
  Reader r{text};
  const std::string_view header = r.next_line();
  int version = 0;
  if (header == "dfdd 1") {
    version = 1;
  } else if (header == "dfdd 2") {
    version = 2;
  } else {
    r.fail("missing 'dfdd 1' or 'dfdd 2' header");
  }
  const std::string_view schema_line = r.next_line();
  if (schema_line.substr(0, 7) != "schema ") {
    r.fail("missing schema line");
  }
  const std::uint64_t d = parse_number(r, schema_line.substr(7));
  if (d != schema.field_count()) {
    r.fail("schema field count mismatch");
  }
  Fdd fdd = version == 1 ? Fdd(schema, parse_node(r, schema, 0))
                         : deserialize_dag(schema, r, context);
  // Trailing garbage (beyond a final newline) is an error.
  while (r.pos <= text.size()) {
    const std::string_view line = r.next_line();
    if (!line.empty()) {
      r.fail("trailing content after the diagram");
    }
  }
  // Structure checks: ordering, domains, consistency. Completeness is not
  // required here (partial diagrams are legitimate artifacts).
  fdd.validate(/*require_complete=*/false);
  return fdd;
}

}  // namespace dfw
