#include "fdd/serialize.hpp"

#include <charconv>
#include <stdexcept>

namespace dfw {
namespace {

void emit(const FddNode& node, std::string& out) {
  if (node.is_terminal()) {
    out += "T " + std::to_string(node.decision) + "\n";
    return;
  }
  out += "N " + std::to_string(node.field) + " " +
         std::to_string(node.edges.size()) + "\n";
  for (const FddEdge& e : node.edges) {
    out += "E ";
    const std::vector<Interval>& runs = e.label.intervals();
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (i != 0) {
        out += ",";
      }
      out += std::to_string(runs[i].lo()) + ":" +
             std::to_string(runs[i].hi());
    }
    out += "\n";
    emit(*e.target, out);
  }
}

// Line-cursor over the serialized text.
struct Reader {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t line_no = 0;

  std::string_view next_line() {
    if (pos > text.size()) {
      throw std::invalid_argument("deserialize_fdd: unexpected end of input");
    }
    const std::size_t nl = text.find('\n', pos);
    std::string_view line;
    if (nl == std::string_view::npos) {
      line = text.substr(pos);
      pos = text.size() + 1;
    } else {
      line = text.substr(pos, nl - pos);
      pos = nl + 1;
    }
    ++line_no;
    return line;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("deserialize_fdd: line " +
                                std::to_string(line_no) + ": " + message);
  }
};

std::uint64_t parse_number(Reader& r, std::string_view s) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    r.fail("bad number '" + std::string(s) + "'");
  }
  return v;
}

IntervalSet parse_label(Reader& r, std::string_view s) {
  IntervalSet set;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string_view item =
        s.substr(start, comma == std::string_view::npos
                            ? std::string_view::npos
                            : comma - start);
    const std::size_t colon = item.find(':');
    if (colon == std::string_view::npos) {
      r.fail("edge label item without ':'");
    }
    const std::uint64_t lo = parse_number(r, item.substr(0, colon));
    const std::uint64_t hi = parse_number(r, item.substr(colon + 1));
    if (lo > hi) {
      r.fail("inverted interval in edge label");
    }
    set.add(Interval(lo, hi));
    if (comma == std::string_view::npos) {
      break;
    }
    start = comma + 1;
  }
  if (set.empty()) {
    r.fail("empty edge label");
  }
  return set;
}

std::unique_ptr<FddNode> parse_node(Reader& r) {
  const std::string_view line = r.next_line();
  if (line.size() < 2 || line[1] != ' ') {
    r.fail("expected node line, got '" + std::string(line) + "'");
  }
  const std::string_view body = line.substr(2);
  if (line[0] == 'T') {
    const std::uint64_t decision = parse_number(r, body);
    if (decision > UINT16_MAX) {
      r.fail("decision id out of range");
    }
    return FddNode::make_terminal(static_cast<Decision>(decision));
  }
  if (line[0] != 'N') {
    r.fail("expected 'N' or 'T' line");
  }
  const std::size_t space = body.find(' ');
  if (space == std::string_view::npos) {
    r.fail("node line needs field and edge count");
  }
  const std::uint64_t field = parse_number(r, body.substr(0, space));
  const std::uint64_t edge_count = parse_number(r, body.substr(space + 1));
  if (edge_count == 0) {
    r.fail("nonterminal node with zero edges");
  }
  auto node = FddNode::make_internal(static_cast<std::size_t>(field));
  node->edges.reserve(edge_count);
  for (std::uint64_t e = 0; e < edge_count; ++e) {
    const std::string_view edge_line = r.next_line();
    if (edge_line.size() < 2 || edge_line[0] != 'E' || edge_line[1] != ' ') {
      r.fail("expected edge line");
    }
    IntervalSet label = parse_label(r, edge_line.substr(2));
    node->edges.emplace_back(std::move(label), parse_node(r));
  }
  return node;
}

}  // namespace

std::string serialize_fdd(const Fdd& fdd) {
  std::string out = "dfdd 1\n";
  out += "schema " + std::to_string(fdd.schema().field_count()) + "\n";
  emit(fdd.root(), out);
  return out;
}

Fdd deserialize_fdd(const Schema& schema, std::string_view text) {
  Reader r{text};
  if (r.next_line() != "dfdd 1") {
    r.fail("missing 'dfdd 1' header");
  }
  const std::string_view schema_line = r.next_line();
  if (schema_line.substr(0, 7) != "schema ") {
    r.fail("missing schema line");
  }
  const std::uint64_t d = parse_number(r, schema_line.substr(7));
  if (d != schema.field_count()) {
    r.fail("schema field count mismatch");
  }
  Fdd fdd(schema, parse_node(r));
  // Trailing garbage (beyond a final newline) is an error.
  while (r.pos <= text.size()) {
    const std::string_view line = r.next_line();
    if (!line.empty()) {
      r.fail("trailing content after the diagram");
    }
  }
  // Structure checks: ordering, domains, consistency. Completeness is not
  // required here (partial diagrams are legitimate artifacts).
  fdd.validate(/*require_complete=*/false);
  return fdd;
}

}  // namespace dfw
