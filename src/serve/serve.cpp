#include "serve/serve.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "obs/names.hpp"
#include "obs/obs.hpp"

namespace dfw::serve {
namespace {

std::unique_ptr<PolicyVersion> compile_version(Policy policy,
                                               std::uint64_t sequence,
                                               RunContext* context,
                                               const ServeOptions& options) {
  CompileOptions compile;
  compile.run.executor = options.run.executor;
  compile.run.context = context;
  compile.run.obs = options.run.obs;
  compile.batch_grain = options.batch_grain;
  compile.backend = options.backend;
  Classifier classifier = Classifier::compile(policy, compile);
  if (options.run.obs.metrics != nullptr) {
    options.run.obs.metrics
        ->counter(serve_backend_counter_name(options.backend))
        .add();
  }
  return std::make_unique<PolicyVersion>(sequence, std::move(policy),
                                         std::move(classifier));
}

std::unique_ptr<PolicyVersion> boot_version(Policy initial,
                                            const ServeOptions& options) {
  return compile_version(std::move(initial), 1, nullptr, options);
}

}  // namespace

ServeCore::ServeCore(Policy initial, ServeOptions options)
    : options_(std::move(options)),
      handle_(domain_, boot_version(std::move(initial), options_)) {}

ServeCore::~ServeCore() {
  // Readers are gone (Shards must not outlive the core); drain limbo so
  // retire/reclaim bookkeeping balances before the handle frees current.
  handle_.reclaim();
}

ServeCore::Shard::Shard(ServeCore& core)
    : core_(&core), registration_(core.domain_) {
  if (!registration_.valid()) {
    throw std::runtime_error("ServeCore: epoch domain out of reader slots");
  }
}

BatchResult ServeCore::Shard::classify(std::span<const Packet> packets) {
  return core_->classify_pinned(packets, registration_.slot());
}

BatchResult ServeCore::classify_batch(std::span<const Packet> packets) {
  Shard temporary(*this);
  return temporary.classify(packets);
}

BatchResult ServeCore::classify_pinned(std::span<const Packet> packets,
                                       std::size_t slot) {
  BatchResult result;
  // Admission first: a refused batch never pins a version, so overload
  // cannot extend any retired version's lifetime.
  const std::uint64_t admitted =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.max_inflight_batches != 0 &&
      admitted > options_.max_inflight_batches) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    batches_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (options_.run.obs.metrics != nullptr) {
      options_.run.obs.metrics->counter(names::kServeBatchRejected).add();
    }
    result.status = ErrorCode::kOverloaded;
    return result;
  }
  {
    PhaseSpan span(options_.run.obs, "serve.batch");
    const auto start = std::chrono::steady_clock::now();
    // The pin is held across the whole batch, parallel_for join
    // included: pool workers classify under the submitting thread's
    // epoch slot and need none of their own.
    PolicyHandle::Pin pin = handle_.pin(slot);
    result.version = pin.version().sequence;
    RunOptions batch_run;
    batch_run.executor = options_.run.executor;
    batch_run.obs = options_.run.obs;
    result.decisions = pin.version().classifier.classify_batch(packets,
                                                               batch_run);
    if (options_.run.obs.metrics != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start;
      options_.run.obs.metrics->histogram(names::kServeBatchNs)
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
      options_.run.obs.metrics->counter(names::kServeBatchCount).add();
      options_.run.obs.metrics->counter(names::kServeLookupCount)
          .add(packets.size());
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  lookups_.fetch_add(packets.size(), std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

Result<std::uint64_t> ServeCore::swap(Policy next) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  PhaseSpan span(options_.run.obs, "serve.swap");
  RunContext::Config config;
  config.budgets = options_.swap_budgets;
  if (options_.swap_deadline_ms > 0) {
    config.deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(options_.swap_deadline_ms);
  }
  RunContext context(std::move(config));
  const auto start = std::chrono::steady_clock::now();
  std::unique_ptr<PolicyVersion> version;
  try {
    version = compile_version(std::move(next), next_sequence_, &context,
                              options_);
  } catch (const Error& error) {
    swaps_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (options_.run.obs.metrics != nullptr) {
      options_.run.obs.metrics->counter(names::kServeSwapRejected).add();
    }
    return Result<std::uint64_t>::failure(error);
  } catch (const std::logic_error& error) {
    // validate() rejects a non-comprehensive replacement; keep serving.
    swaps_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (options_.run.obs.metrics != nullptr) {
      options_.run.obs.metrics->counter(names::kServeSwapRejected).add();
    }
    return Result<std::uint64_t>::failure(
        Error(ErrorCode::kInvalidInput, error.what()));
  }
  if (options_.run.obs.metrics != nullptr) {
    const auto elapsed = std::chrono::steady_clock::now() - start;
    options_.run.obs.metrics->histogram(names::kServeSwapCompileNs)
        .record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }
  const std::uint64_t sequence = next_sequence_++;
  handle_.publish(std::move(version));
  swaps_.fetch_add(1, std::memory_order_relaxed);
  if (options_.run.obs.metrics != nullptr) {
    options_.run.obs.metrics->counter(names::kServeSwapCount).add();
    options_.run.obs.metrics->counter(names::kServeRetireCount).add();
  }
  const std::size_t freed = handle_.reclaim();
  if (freed != 0 && options_.run.obs.metrics != nullptr) {
    options_.run.obs.metrics->counter(names::kServeReclaimCount).add(freed);
  }
  return Result<std::uint64_t>::success(sequence);
}

std::size_t ServeCore::reclaim() {
  const std::size_t freed = handle_.reclaim();
  if (freed != 0 && options_.run.obs.metrics != nullptr) {
    options_.run.obs.metrics->counter(names::kServeReclaimCount).add(freed);
  }
  return freed;
}

ServeStats ServeCore::stats() const {
  ServeStats s;
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.swaps_rejected = swaps_rejected_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.retired = handle_.retired_total();
  s.reclaimed = handle_.reclaimed_total();
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.limbo = handle_.limbo_size();
  return s;
}

}  // namespace dfw::serve
