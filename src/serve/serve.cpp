#include "serve/serve.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "fdd/construct.hpp"
#include "fw/decision.hpp"
#include "obs/names.hpp"
#include "obs/obs.hpp"
#include "rt/fault.hpp"
#include "serve/snapshot.hpp"

namespace dfw::serve {
namespace {

/// Same mix as rt/fault.cpp's trigger stream — good avalanche from a
/// cheap constant footprint; here it decorrelates retry backoff jitter.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::unique_ptr<PolicyVersion> compile_version(
    Policy policy, std::uint64_t sequence, RunContext* context,
    const ServeOptions& options, ClassifierBackendKind backend) {
  // The FDD is built once and kept on the version: the classifier
  // compiles from it here, and snapshot_text() serializes it later
  // without recompute.
  ConstructOptions construct;
  construct.run.context = context;
  construct.run.obs = options.run.obs;
  construct.run.faults = options.run.faults;
  Fdd fdd = build_reduced_fdd(policy, construct);
  CompileOptions compile;
  compile.run.executor = options.run.executor;
  compile.run.context = context;
  compile.run.obs = options.run.obs;
  compile.run.faults = options.run.faults;
  compile.batch_grain = options.batch_grain;
  compile.backend = backend;
  compile.bit_parallel_max_paths = options.bit_parallel_max_paths;
  Classifier classifier = Classifier::compile(fdd, compile);
  if (options.run.obs.metrics != nullptr) {
    options.run.obs.metrics->counter(serve_backend_counter_name(backend))
        .add();
  }
  return std::make_unique<PolicyVersion>(sequence, std::move(policy),
                                         std::move(fdd),
                                         std::move(classifier));
}

std::unique_ptr<PolicyVersion> boot_version(Policy initial,
                                            const ServeOptions& options) {
  return compile_version(std::move(initial), 1, nullptr, options,
                         options.backend);
}

std::unique_ptr<PolicyVersion> restored_version(
    snapshot::SnapshotData restored, const ServeOptions& options) {
  // The snapshot carries the reduced FDD; compiling from it (not from
  // the policy text) skips reconstruction and reproduces the pre-crash
  // classifier exactly.
  CompileOptions compile;
  compile.run.executor = options.run.executor;
  compile.run.obs = options.run.obs;
  compile.run.faults = options.run.faults;
  compile.batch_grain = options.batch_grain;
  compile.backend = restored.backend;
  compile.bit_parallel_max_paths = options.bit_parallel_max_paths;
  Classifier classifier = Classifier::compile(restored.fdd, compile);
  if (options.run.obs.metrics != nullptr) {
    options.run.obs.metrics
        ->counter(serve_backend_counter_name(restored.backend))
        .add();
  }
  return std::make_unique<PolicyVersion>(
      restored.sequence, std::move(restored.policy),
      std::move(restored.fdd), std::move(classifier));
}

/// Worth another attempt: the cause can vanish on retry. Budget breaches
/// and validation errors are deterministic — retrying them burns the
/// backoff schedule for nothing.
bool is_transient(ErrorCode code) {
  return code == ErrorCode::kFaultInjected ||
         code == ErrorCode::kDeadlineExceeded;
}

}  // namespace

ServeCore::ServeCore(Policy initial, ServeOptions options)
    : options_(std::move(options)),
      handle_(domain_, boot_version(std::move(initial), options_)) {
  served_backend_.store(options_.backend, std::memory_order_relaxed);
  start_reporter();
}

ServeCore::ServeCore(snapshot::SnapshotData restored, ServeOptions options)
    : options_(std::move(options)),
      handle_(domain_, restored_version(std::move(restored), options_)) {
  next_sequence_ = handle_.current_sequence() + 1;
  served_backend_.store(handle_.current_unpinned().classifier.backend(),
                        std::memory_order_relaxed);
  start_reporter();
}

ServeCore::~ServeCore() {
  // The reporter quiesces first: once joined, no tick can touch the
  // handle or the window while teardown proceeds.
  stop_reporter();
  // Readers are gone (Shards must not outlive the core); drain limbo so
  // retire/reclaim bookkeeping balances before the handle frees current.
  handle_.reclaim();
}

ServeCore::Shard::Shard(ServeCore& core)
    : core_(&core), registration_(core.domain_) {
  if (!registration_.valid()) {
    throw std::runtime_error("ServeCore: epoch domain out of reader slots");
  }
}

BatchResult ServeCore::Shard::classify(std::span<const Packet> packets) {
  return core_->classify_pinned(packets, registration_.slot());
}

BatchResult ServeCore::classify_batch(std::span<const Packet> packets) {
  Shard temporary(*this);
  return temporary.classify(packets);
}

BatchResult ServeCore::classify_pinned(std::span<const Packet> packets,
                                       std::size_t slot) {
  BatchResult result;
  // Admission first: a refused batch never pins a version, so overload
  // cannot extend any retired version's lifetime.
  const std::uint64_t admitted =
      inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options_.max_inflight_batches != 0 &&
      admitted > options_.max_inflight_batches) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    batches_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (options_.run.obs.metrics != nullptr) {
      options_.run.obs.metrics->counter(names::kServeBatchRejected).add();
    }
    result.status = ErrorCode::kOverloaded;
    return result;
  }
  {
    // Trace span only: the duration histogram is the canonical
    // kServeBatchNs recorded below — a PhaseSpan here would duplicate
    // the same samples as phase.serve.batch_ns.
    ScopedSpan span(options_.run.obs.tracer, names::kSpanServeBatch);
    const auto start = std::chrono::steady_clock::now();
    // The pin is held across the whole batch, parallel_for join
    // included: pool workers classify under the submitting thread's
    // epoch slot and need none of their own.
    PolicyHandle::Pin pin = handle_.pin(slot);
    result.version = pin.version().sequence;
    RunOptions batch_run;
    batch_run.executor = options_.run.executor;
    batch_run.obs = options_.run.obs;
    result.decisions = pin.version().classifier.classify_batch(packets,
                                                               batch_run);
    if (options_.run.obs.metrics != nullptr) {
      const auto elapsed = std::chrono::steady_clock::now() - start;
      options_.run.obs.metrics->histogram(names::kServeBatchNs)
          .record(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()));
      options_.run.obs.metrics->counter(names::kServeBatchCount).add();
      options_.run.obs.metrics->counter(names::kServeLookupCount)
          .add(packets.size());
    }
  }
  batches_.fetch_add(1, std::memory_order_relaxed);
  lookups_.fetch_add(packets.size(), std::memory_order_relaxed);
  inflight_.fetch_sub(1, std::memory_order_relaxed);
  return result;
}

Result<std::uint64_t> ServeCore::swap(const Policy& next) {
  std::lock_guard<std::mutex> lock(swap_mu_);
  PhaseSpan span(options_.run.obs, names::kSpanServeSwap);
  MetricsRegistry* metrics = options_.run.obs.metrics;
  ClassifierBackendKind backend = options_.backend;
  std::size_t retries = 0;
  bool degraded = false;

  const auto fail = [&](const Error& error) {
    swaps_rejected_.fetch_add(1, std::memory_order_relaxed);
    swap_failed_.fetch_add(1, std::memory_order_relaxed);
    last_swap_ok_.store(false, std::memory_order_relaxed);
    if (metrics != nullptr) {
      metrics->counter(names::kServeSwapRejected).add();
      metrics->counter(names::kServeSwapFailed).add();
    }
    return Result<std::uint64_t>::failure(error);
  };

  const auto backoff = [&](std::size_t attempt) {
    std::uint64_t delay = options_.swap_backoff_initial_ms;
    for (std::size_t i = 1;
         i < attempt && delay < options_.swap_backoff_max_ms; ++i) {
      delay <<= 1;
    }
    delay = std::min(delay, options_.swap_backoff_max_ms);
    // Deterministic jitter in [0, delay/2]: reproducible in tests,
    // decorrelated across daemons seeded differently.
    const std::uint64_t jitter =
        delay == 0
            ? 0
            : splitmix64(options_.swap_jitter_seed ^ attempt) %
                  (delay / 2 + 1);
    if (delay + jitter != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay + jitter));
    }
  };

  for (;;) {
    // Governance is re-armed per attempt: a deadline that lapsed during
    // a faulted attempt must not doom its retry.
    RunContext::Config config;
    config.budgets = options_.swap_budgets;
    if (options_.swap_deadline_ms > 0) {
      config.deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.swap_deadline_ms);
    }
    RunContext context(std::move(config));
    const auto start = std::chrono::steady_clock::now();
    std::unique_ptr<PolicyVersion> version;
    try {
      fault::hit(options_.run.faults, fault::sites::kSwapCompile);
      version =
          compile_version(next, next_sequence_, &context, options_, backend);
      if (metrics != nullptr) {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        metrics->histogram(names::kServeSwapCompileNs)
            .record(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()));
      }
      fault::hit(options_.run.faults, fault::sites::kSwapPublish);
    } catch (const Error& error) {
      // Last-good guarantee, eagerly: whatever this attempt compiled is
      // freed right here — before any backoff sleep, never parked in
      // limbo — and the served version is untouched.
      version.reset();
      if (error.code() == ErrorCode::kCapacityExceeded &&
          options_.degrade_on_capacity && !degraded &&
          backend != ClassifierBackendKind::kFlatSlab) {
        // The flat-slab layout has no path cap; retry there immediately
        // (a different compile, not another roll of the same dice).
        degraded = true;
        backend = ClassifierBackendKind::kFlatSlab;
        swap_degraded_.fetch_add(1, std::memory_order_relaxed);
        if (metrics != nullptr) {
          metrics->counter(names::kServeSwapDegraded).add();
        }
        continue;
      }
      if (is_transient(error.code()) &&
          retries < options_.swap_max_retries) {
        ++retries;
        swap_retries_.fetch_add(1, std::memory_order_relaxed);
        if (metrics != nullptr) {
          metrics->counter(names::kServeSwapRetries).add();
        }
        backoff(retries);
        continue;
      }
      return fail(error);
    } catch (const std::bad_alloc&) {
      version.reset();
      if (retries < options_.swap_max_retries) {
        ++retries;
        swap_retries_.fetch_add(1, std::memory_order_relaxed);
        if (metrics != nullptr) {
          metrics->counter(names::kServeSwapRetries).add();
        }
        backoff(retries);
        continue;
      }
      return fail(
          Error(ErrorCode::kInternal, "allocation failed compiling swap"));
    } catch (const std::logic_error& error) {
      // validate() rejects a non-comprehensive replacement —
      // deterministic, so no retry; keep serving.
      version.reset();
      return fail(Error(ErrorCode::kInvalidInput, error.what()));
    }

    const std::uint64_t sequence = next_sequence_++;
    handle_.publish(std::move(version));
    swaps_.fetch_add(1, std::memory_order_relaxed);
    served_backend_.store(backend, std::memory_order_relaxed);
    last_swap_ok_.store(true, std::memory_order_relaxed);
    if (metrics != nullptr) {
      metrics->counter(names::kServeSwapCount).add();
      metrics->counter(names::kServeRetireCount).add();
    }
    const std::size_t freed = handle_.reclaim();
    if (freed != 0 && metrics != nullptr) {
      metrics->counter(names::kServeReclaimCount).add(freed);
    }
    return Result<std::uint64_t>::success(sequence);
  }
}

std::size_t ServeCore::reclaim() {
  const std::size_t freed = handle_.reclaim();
  if (freed != 0 && options_.run.obs.metrics != nullptr) {
    options_.run.obs.metrics->counter(names::kServeReclaimCount).add(freed);
  }
  return freed;
}

ServeStats ServeCore::stats() const {
  ServeStats s;
  s.swaps = swaps_.load(std::memory_order_relaxed);
  s.swaps_rejected = swaps_rejected_.load(std::memory_order_relaxed);
  s.swap_retries = swap_retries_.load(std::memory_order_relaxed);
  s.swap_degraded = swap_degraded_.load(std::memory_order_relaxed);
  s.swap_failed = swap_failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batches_rejected = batches_rejected_.load(std::memory_order_relaxed);
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.retired = handle_.retired_total();
  s.reclaimed = handle_.reclaimed_total();
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.limbo = handle_.limbo_size();
  s.limbo_peak = handle_.limbo_peak();
  return s;
}

ServeHealth ServeCore::health() const {
  ServeHealth h;
  h.sequence = handle_.current_sequence();
  h.backend = served_backend_.load(std::memory_order_relaxed);
  h.last_swap_ok = last_swap_ok_.load(std::memory_order_relaxed);
  h.stats = stats();
  return h;
}

TelemetryRecord ServeCore::telemetry_now() const {
  TelemetryRecord record;
  record.tick = telemetry_ticks_.load(std::memory_order_relaxed);
  record.uptime_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - boot_time_)
          .count());
  if (options_.run.obs.metrics != nullptr) {
    record.metrics = options_.run.obs.metrics->snapshot();
  }
  if (options_.run.faults != nullptr) {
    // Overlay, not absorb: telemetry is point-in-time, and re-adding a
    // live plan's counters every tick would double-count them.
    overlay(record.metrics, *options_.run.faults);
  }
  record.health = health();
  return record;
}

std::vector<TelemetryRecord> ServeCore::telemetry_window() const {
  std::lock_guard<std::mutex> lock(telemetry_mu_);
  return {window_.begin(), window_.end()};
}

void ServeCore::start_reporter() {
  if (options_.telemetry_interval_ms == 0) {
    return;
  }
  reporter_ = std::thread([this] {
    const auto interval =
        std::chrono::milliseconds(options_.telemetry_interval_ms);
    std::unique_lock<std::mutex> lock(telemetry_mu_);
    while (!telemetry_stop_) {
      if (telemetry_cv_.wait_for(lock, interval,
                                 [this] { return telemetry_stop_; })) {
        return;
      }
      lock.unlock();
      reporter_tick();
      lock.lock();
    }
  });
}

void ServeCore::stop_reporter() {
  if (!reporter_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    telemetry_stop_ = true;
  }
  telemetry_cv_.notify_all();
  reporter_.join();
}

void ServeCore::reporter_tick() {
  // The tick counter is bumped before the snapshot so the record it
  // produces already carries this tick in serve.telemetry.tick.count.
  if (options_.run.obs.metrics != nullptr) {
    options_.run.obs.metrics->counter(names::kServeTelemetryTicks).add();
  }
  TelemetryRecord record = telemetry_now();
  record.tick = telemetry_ticks_.fetch_add(1, std::memory_order_relaxed) + 1;
  {
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    window_.push_back(record);
    if (options_.telemetry_window != 0) {
      while (window_.size() > options_.telemetry_window) {
        window_.pop_front();
      }
    }
  }
  if (options_.on_telemetry) {
    try {
      options_.on_telemetry(record);
    } catch (...) {
      // A throwing sink must not take the reporter (or the core) down.
    }
  }
}

std::string ServeCore::snapshot_text() {
  // The swap mutex excludes publication, so the unpinned current version
  // is stable for the whole serialization — the snapshot is always one
  // published version, never a blend.
  std::lock_guard<std::mutex> lock(swap_mu_);
  const PolicyVersion& version = handle_.current_unpinned();
  const std::string text = snapshot::encode(
      version.sequence, version.classifier.backend(), version.policy,
      version.fdd, default_decisions(), options_.run.faults);
  if (options_.run.obs.metrics != nullptr) {
    options_.run.obs.metrics->counter(names::kServeSnapshotSave).add();
  }
  return text;
}

std::string ServeHealth::to_json() const {
  std::ostringstream out;
  out << "{\"schema\":\"dfw-serve-health-v1\""
      << ",\"sequence\":" << sequence
      << ",\"backend\":\"" << to_string(backend) << '"'
      << ",\"last_swap_ok\":" << (last_swap_ok ? "true" : "false")
      << ",\"swaps\":" << stats.swaps
      << ",\"swaps_rejected\":" << stats.swaps_rejected
      << ",\"swap_retries\":" << stats.swap_retries
      << ",\"swap_degraded\":" << stats.swap_degraded
      << ",\"swap_failed\":" << stats.swap_failed
      << ",\"batches\":" << stats.batches
      << ",\"batches_rejected\":" << stats.batches_rejected
      << ",\"lookups\":" << stats.lookups
      << ",\"retired\":" << stats.retired
      << ",\"reclaimed\":" << stats.reclaimed
      << ",\"inflight\":" << stats.inflight
      << ",\"limbo\":" << stats.limbo
      << ",\"limbo_peak\":" << stats.limbo_peak << '}';
  return out.str();
}

}  // namespace dfw::serve
