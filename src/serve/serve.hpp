// The serve core: a long-running classification service over a hot-
// swappable compiled policy.
//
// Two planes share one ServeCore. The *data plane* — daemon shard
// threads, each owning a Shard — classifies packet batches against the
// compiled classifier; a batch pins exactly one published version for
// its whole duration (lock-free, two epoch stores) and reports that
// version's sequence alongside its decisions, so replaying the batch
// serially against the same version reproduces the output byte for
// byte. The *operator plane* calls swap(): the replacement policy is
// compiled under the swap governance budgets (a hostile or enormous
// policy must not wedge the daemon), atomically published, and the
// predecessor retired through the epoch limbo — freed only once every
// in-flight batch that could have pinned it has finished. No lookup is
// ever dropped or blocked by a swap.
//
// Admission control: max_inflight_batches bounds data-plane concurrency;
// a batch over the bound is refused with ErrorCode::kOverloaded (counted
// in serve.batch.rejected) rather than queued without bound — the
// governance layer's partial-result philosophy applied to a service.
//
// Everything observable lands in options.run.obs under the serve.*
// names (obs/names.hpp); null sinks cost pointer tests, as everywhere.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/backend.hpp"
#include "fw/policy.hpp"
#include "rt/govern.hpp"
#include "rt/run_options.hpp"
#include "serve/handle.hpp"

namespace dfw::serve {

/// Knobs for a ServeCore, in the library's options-struct idiom.
struct ServeOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.executor`
  /// (borrowed; null = serial) shards each admitted batch's lookups;
  /// the submitting thread holds the version pin across the join, so
  /// pool workers need no epoch slots of their own. `run.obs` receives
  /// the serve.* metrics and batch/swap spans. `run.context` is *not*
  /// consulted on the data plane (a serve loop outlives any one run);
  /// swaps are governed separately by swap_budgets/swap_deadline_ms.
  RunOptions run = {};

  /// Packets per pool task inside one batch (see CompileOptions).
  std::size_t batch_grain = 512;

  /// Maximum concurrently admitted batches across all shards; 0 means
  /// unbounded. The bound is what keeps retire-to-reclaim latency finite
  /// under load.
  std::size_t max_inflight_batches = 0;

  /// Governance for each swap's compile (0 fields = unlimited): node
  /// budget against diagram blowup, deadline against pathological
  /// policies. A breached swap is rejected; the served version is
  /// untouched.
  Budgets swap_budgets = {};
  std::int64_t swap_deadline_ms = 0;

  /// Compiled layout every version (boot and swaps) executes — a pure
  /// performance knob; all backends are byte-identical in output
  /// (engine/backend.hpp). Each successful compile bumps the matching
  /// serve.backend.* counter.
  ClassifierBackendKind backend = ClassifierBackendKind::kFlatSlab;
};

/// One batch's outcome. `status` is kOk on success and kOverloaded when
/// admission control refused the batch (decisions then empty,
/// version 0). `version` is the sequence of the exact classifier version
/// every decision in the batch came from.
struct BatchResult {
  std::uint64_t version = 0;
  std::vector<Decision> decisions;
  ErrorCode status = ErrorCode::kOk;
};

/// Point-in-time counters (monotonic unless noted).
struct ServeStats {
  std::uint64_t swaps = 0;           ///< successful publishes
  std::uint64_t swaps_rejected = 0;  ///< governance-refused swaps
  std::uint64_t batches = 0;         ///< admitted batches
  std::uint64_t batches_rejected = 0;
  std::uint64_t lookups = 0;         ///< packets across admitted batches
  std::uint64_t retired = 0;         ///< versions moved to limbo
  std::uint64_t reclaimed = 0;       ///< limbo versions freed
  std::uint64_t inflight = 0;        ///< currently admitted (not monotonic)
  std::uint64_t limbo = 0;           ///< currently awaiting drain
};

class ServeCore {
 public:
  /// Compiles `initial` (ungoverned — the boot policy is trusted) and
  /// starts serving it as sequence 1. The policy must be comprehensive.
  ServeCore(Policy initial, ServeOptions options);

  /// All Shards must be destroyed first; no batch may be in flight.
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// A data-plane endpoint: one per daemon thread. Construction claims
  /// an epoch slot (locked, off the hot path); classify() is lock-free
  /// with respect to swaps. A Shard must not outlive its ServeCore.
  class Shard {
   public:
    BatchResult classify(std::span<const Packet> packets);

    Shard(Shard&& other) noexcept
        : core_(other.core_), registration_(std::move(other.registration_)) {
      other.core_ = nullptr;
    }
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;
    Shard& operator=(Shard&&) = delete;
    ~Shard() = default;

   private:
    friend class ServeCore;
    explicit Shard(ServeCore& core);

    ServeCore* core_;
    EpochRegistration registration_;
  };

  /// Claims a shard. Throws std::runtime_error when the epoch domain is
  /// out of slots (EpochDomain::kMaxSlots concurrent shards).
  Shard shard() { return Shard(*this); }

  /// Convenience for callers without a long-lived shard (tools, tests):
  /// registers a temporary slot per call — correct, but pays the
  /// registration scan; daemons keep a Shard per thread instead.
  BatchResult classify_batch(std::span<const Packet> packets);

  /// Operator plane: compile `next` under the swap governance and
  /// atomically publish it. On success returns the new version's
  /// sequence; on a governance breach (budget/deadline) or a
  /// non-comprehensive policy returns the error and keeps serving the
  /// current version. Concurrent swaps serialize; each drains what it
  /// can from limbo on the way out.
  Result<std::uint64_t> swap(Policy next);

  /// Frees every drained limbo version now (also runs inside swap()).
  std::size_t reclaim();

  std::uint64_t current_sequence() const {
    return handle_.current_sequence();
  }
  const ServeOptions& options() const { return options_; }
  ServeStats stats() const;

 private:
  BatchResult classify_pinned(std::span<const Packet> packets,
                              std::size_t slot);

  ServeOptions options_;
  EpochDomain domain_;
  PolicyHandle handle_;
  std::uint64_t next_sequence_ = 2;  // under the swap mutex in swap()
  std::mutex swap_mu_;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> swaps_rejected_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batches_rejected_{0};
  std::atomic<std::uint64_t> lookups_{0};
};

}  // namespace dfw::serve
