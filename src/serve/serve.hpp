// The serve core: a long-running classification service over a hot-
// swappable compiled policy.
//
// Two planes share one ServeCore. The *data plane* — daemon shard
// threads, each owning a Shard — classifies packet batches against the
// compiled classifier; a batch pins exactly one published version for
// its whole duration (lock-free, two epoch stores) and reports that
// version's sequence alongside its decisions, so replaying the batch
// serially against the same version reproduces the output byte for
// byte. The *operator plane* calls swap(): the replacement policy is
// compiled under the swap governance budgets (a hostile or enormous
// policy must not wedge the daemon), atomically published, and the
// predecessor retired through the epoch limbo — freed only once every
// in-flight batch that could have pinned it has finished. No lookup is
// ever dropped or blocked by a swap.
//
// Admission control: max_inflight_batches bounds data-plane concurrency;
// a batch over the bound is refused with ErrorCode::kOverloaded (counted
// in serve.batch.rejected) rather than queued without bound — the
// governance layer's partial-result philosophy applied to a service.
//
// Telemetry: with telemetry_interval_ms set, a dedicated reporter thread
// snapshots metrics + health every interval into a bounded rolling window
// (TelemetryRecord), overlaying the fault plane's per-site counters
// (rt.fault.site.*) when a FaultPlan is installed, and hands each record
// to an optional on_telemetry callback — the serve CLI appends them as
// dfw-metrics-v1 JSONL (obs/export.hpp). The thread is quiesced before
// any teardown in ~ServeCore; interval 0 (the default) starts no thread
// and is byte-identical to a reporterless core.
//
// Self-healing: swap() never disturbs the served version on failure (the
// last-good guarantee), and it fights back before failing. Transient
// faults — injected faults from a FaultPlan (rt/fault.hpp), per-attempt
// deadline breaches, allocation failure — are retried up to
// swap_max_retries times under exponential backoff with deterministic
// jitter; a capacity breach (kCapacityExceeded, e.g. the bit-parallel
// path cap) degrades the compile to the flat_slab backend, which has no
// path cap, instead of failing. Every recovery step is counted
// (serve.swap.retries/degraded/failed) and surfaced through health().
//
// Everything observable lands in options.run.obs under the serve.*
// names (obs/names.hpp); null sinks cost pointer tests, as everywhere.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "engine/backend.hpp"
#include "fw/policy.hpp"
#include "rt/govern.hpp"
#include "rt/run_options.hpp"
#include "serve/handle.hpp"

namespace dfw::serve {

namespace snapshot {
struct SnapshotData;
}  // namespace snapshot

struct TelemetryRecord;

/// Knobs for a ServeCore, in the library's options-struct idiom.
struct ServeOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.executor`
  /// (borrowed; null = serial) shards each admitted batch's lookups;
  /// the submitting thread holds the version pin across the join, so
  /// pool workers need no epoch slots of their own. `run.obs` receives
  /// the serve.* metrics and batch/swap spans. `run.context` is *not*
  /// consulted on the data plane (a serve loop outlives any one run);
  /// swaps are governed separately by swap_budgets/swap_deadline_ms.
  RunOptions run = {};

  /// Packets per pool task inside one batch (see CompileOptions).
  std::size_t batch_grain = 512;

  /// Maximum concurrently admitted batches across all shards; 0 means
  /// unbounded. The bound is what keeps retire-to-reclaim latency finite
  /// under load.
  std::size_t max_inflight_batches = 0;

  /// Governance for each swap's compile (0 fields = unlimited): node
  /// budget against diagram blowup, deadline against pathological
  /// policies. A breached swap is rejected; the served version is
  /// untouched.
  Budgets swap_budgets = {};
  std::int64_t swap_deadline_ms = 0;

  /// Compiled layout every version (boot and swaps) executes — a pure
  /// performance knob; all backends are byte-identical in output
  /// (engine/backend.hpp). Each successful compile bumps the matching
  /// serve.backend.* counter.
  ClassifierBackendKind backend = ClassifierBackendKind::kFlatSlab;

  /// Extra swap attempts after a *transient* failure (injected fault,
  /// per-attempt deadline breach, std::bad_alloc). 0 = fail fast.
  /// Deterministic failures (budget breach, invalid policy) never retry.
  std::size_t swap_max_retries = 0;

  /// Exponential backoff between retry attempts: the n-th retry sleeps
  /// min(initial << (n-1), max) milliseconds plus deterministic jitter in
  /// [0, delay/2] derived from swap_jitter_seed — reproducible schedules
  /// for tests, decorrelated thundering herds in deployments.
  std::uint64_t swap_backoff_initial_ms = 1;
  std::uint64_t swap_backoff_max_ms = 100;
  std::uint64_t swap_jitter_seed = 0;

  /// Decision-path cap for the bit_parallel backend (see
  /// CompileOptions::bit_parallel_max_paths). A swap that breaches it
  /// degrades to flat_slab when degrade_on_capacity is set; a *boot*
  /// breach throws — boot is not self-healing, the operator chose the
  /// backend knowingly.
  std::size_t bit_parallel_max_paths = std::size_t{1} << 14;

  /// Retry a kCapacityExceeded compile once on the flat_slab backend
  /// (which has no path cap) instead of failing the swap. Decisions are
  /// byte-identical across backends, so degradation trades lookup speed
  /// for availability, never correctness.
  bool degrade_on_capacity = true;

  /// Telemetry reporter cadence in milliseconds; 0 (default) starts no
  /// reporter thread. Each tick snapshots metrics + health into the
  /// rolling window and bumps serve.telemetry.tick.count.
  std::uint64_t telemetry_interval_ms = 0;

  /// Records the rolling window retains (oldest evicted first); at
  /// least 1 when the reporter runs.
  std::size_t telemetry_window = 64;

  /// Invoked on the reporter thread with each tick's record, after it
  /// enters the window — the export hook (the CLI appends JSONL here).
  /// Must not call back into this core's operator plane (swap/snapshot);
  /// reading stats/health is fine. Exceptions are swallowed: telemetry
  /// must never take down the data plane.
  std::function<void(const TelemetryRecord&)> on_telemetry;
};

/// One batch's outcome. `status` is kOk on success and kOverloaded when
/// admission control refused the batch (decisions then empty,
/// version 0). `version` is the sequence of the exact classifier version
/// every decision in the batch came from.
struct BatchResult {
  std::uint64_t version = 0;
  std::vector<Decision> decisions;
  ErrorCode status = ErrorCode::kOk;
};

/// Point-in-time counters (monotonic unless noted).
struct ServeStats {
  std::uint64_t swaps = 0;           ///< successful publishes
  std::uint64_t swaps_rejected = 0;  ///< refused swaps (any cause)
  std::uint64_t swap_retries = 0;    ///< retry attempts across all swaps
  std::uint64_t swap_degraded = 0;   ///< swaps degraded to flat_slab
  std::uint64_t swap_failed = 0;     ///< swaps failed after self-healing
  std::uint64_t batches = 0;         ///< admitted batches
  std::uint64_t batches_rejected = 0;
  std::uint64_t lookups = 0;         ///< packets across admitted batches
  std::uint64_t retired = 0;         ///< versions moved to limbo
  std::uint64_t reclaimed = 0;       ///< limbo versions freed
  std::uint64_t inflight = 0;        ///< currently admitted (not monotonic)
  std::uint64_t limbo = 0;           ///< currently awaiting drain
  std::uint64_t limbo_peak = 0;      ///< high-water mark of limbo
};

/// A point-in-time health report: what is being served, whether the last
/// operator action succeeded, and the full counter set. `to_json()` is
/// the `health` command's wire format (schema dfw-serve-health-v1).
struct ServeHealth {
  std::uint64_t sequence = 0;  ///< served version right now
  ClassifierBackendKind backend =
      ClassifierBackendKind::kFlatSlab;  ///< its compiled layout
  bool last_swap_ok = true;  ///< false after a failed swap, true again
                             ///< after the next success (true at boot)
  ServeStats stats;

  std::string to_json() const;
};

/// One telemetry observation: the registry snapshot (with the fault
/// plane's cumulative site counters overlaid when a plan is installed —
/// obs/names.hpp kFaultSitePrefix) plus the health report, stamped with
/// the reporter tick that produced it and the core's uptime. On-demand
/// records from telemetry_now() carry the tick count at the call.
struct TelemetryRecord {
  std::uint64_t tick = 0;
  std::uint64_t uptime_ms = 0;
  MetricsSnapshot metrics;
  ServeHealth health;
};

class ServeCore {
 public:
  /// Compiles `initial` (ungoverned — the boot policy is trusted) and
  /// starts serving it as sequence 1. The policy must be comprehensive.
  ServeCore(Policy initial, ServeOptions options);

  /// Resumes from a decoded snapshot (serve/snapshot.hpp): serves the
  /// snapshot's version at its recorded sequence, compiled from the
  /// snapshot's FDD on the snapshot's backend (the restart must be
  /// byte-identical to the pre-crash daemon; options.backend applies to
  /// later swaps). Subsequent swaps number from sequence + 1.
  ServeCore(snapshot::SnapshotData restored, ServeOptions options);

  /// All Shards must be destroyed first; no batch may be in flight.
  ~ServeCore();

  ServeCore(const ServeCore&) = delete;
  ServeCore& operator=(const ServeCore&) = delete;

  /// A data-plane endpoint: one per daemon thread. Construction claims
  /// an epoch slot (locked, off the hot path); classify() is lock-free
  /// with respect to swaps. A Shard must not outlive its ServeCore.
  class Shard {
   public:
    BatchResult classify(std::span<const Packet> packets);

    Shard(Shard&& other) noexcept
        : core_(other.core_), registration_(std::move(other.registration_)) {
      other.core_ = nullptr;
    }
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;
    Shard& operator=(Shard&&) = delete;
    ~Shard() = default;

   private:
    friend class ServeCore;
    explicit Shard(ServeCore& core);

    ServeCore* core_;
    EpochRegistration registration_;
  };

  /// Claims a shard. Throws std::runtime_error when the epoch domain is
  /// out of slots (EpochDomain::kMaxSlots concurrent shards).
  Shard shard() { return Shard(*this); }

  /// Convenience for callers without a long-lived shard (tools, tests):
  /// registers a temporary slot per call — correct, but pays the
  /// registration scan; daemons keep a Shard per thread instead.
  BatchResult classify_batch(std::span<const Packet> packets);

  /// Operator plane: compile `next` under the swap governance and
  /// atomically publish it. On success returns the new version's
  /// sequence; on failure returns the error and keeps serving the
  /// current version (last-good guarantee — a failed attempt's compiled
  /// artifacts are released eagerly, before any retry sleep, never
  /// parked in limbo). Transient failures retry under the
  /// swap_max_retries/backoff knobs; capacity breaches degrade to
  /// flat_slab when degrade_on_capacity is set; deterministic failures
  /// (budget breach, invalid policy) fail fast. Concurrent swaps
  /// serialize; each drains what it can from limbo on the way out.
  Result<std::uint64_t> swap(const Policy& next);

  /// Frees every drained limbo version now (also runs inside swap()).
  std::size_t reclaim();

  std::uint64_t current_sequence() const {
    return handle_.current_sequence();
  }
  const ServeOptions& options() const { return options_; }
  ServeStats stats() const;

  /// Liveness/readiness for operators: served sequence + backend, the
  /// last swap's outcome, and the counters. Lock-free reads; callable
  /// from any thread.
  ServeHealth health() const;

  /// A point-in-time telemetry record, on demand: what a reporter tick
  /// would capture, without entering the window or bumping the tick
  /// counter. With no metrics registry installed the snapshot is empty
  /// and health still reports.
  TelemetryRecord telemetry_now() const;

  /// A copy of the rolling telemetry window, oldest first (empty when
  /// the reporter is off or has not ticked yet). Callable from any
  /// thread.
  std::vector<TelemetryRecord> telemetry_window() const;

  /// Reporter ticks taken so far.
  std::uint64_t telemetry_ticks() const {
    return telemetry_ticks_.load(std::memory_order_relaxed);
  }

  /// The served version serialized as a crash-consistent snapshot
  /// (serve/snapshot.hpp, format dfws 1): policy text, reduced FDD (dfdd
  /// v2 DAG), sequence, backend, checksum. Serialized against swaps so
  /// the snapshot is always one published version, never a blend.
  std::string snapshot_text();

 private:
  BatchResult classify_pinned(std::span<const Packet> packets,
                              std::size_t slot);
  void start_reporter();
  void stop_reporter();
  void reporter_tick();

  ServeOptions options_;
  EpochDomain domain_;
  PolicyHandle handle_;
  std::uint64_t next_sequence_ = 2;  // under the swap mutex in swap()
  std::mutex swap_mu_;
  std::atomic<std::uint64_t> inflight_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> swaps_rejected_{0};
  std::atomic<std::uint64_t> swap_retries_{0};
  std::atomic<std::uint64_t> swap_degraded_{0};
  std::atomic<std::uint64_t> swap_failed_{0};
  std::atomic<bool> last_swap_ok_{true};
  std::atomic<ClassifierBackendKind> served_backend_{
      ClassifierBackendKind::kFlatSlab};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batches_rejected_{0};
  std::atomic<std::uint64_t> lookups_{0};

  // Telemetry plane. The window and the stop flag share telemetry_mu_;
  // the reporter thread is started last in construction and quiesced
  // first in destruction, so every tick observes a fully built core.
  std::chrono::steady_clock::time_point boot_time_{
      std::chrono::steady_clock::now()};
  std::atomic<std::uint64_t> telemetry_ticks_{0};
  mutable std::mutex telemetry_mu_;
  std::condition_variable telemetry_cv_;
  bool telemetry_stop_ = false;
  std::deque<TelemetryRecord> window_;
  std::thread reporter_;
};

}  // namespace dfw::serve
