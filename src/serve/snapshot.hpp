// Crash-consistent serve snapshots.
//
// A serve daemon's only durable state is the version it is serving; a
// snapshot captures exactly that — the operator's policy text, the
// reduced FDD it compiled from (dfdd v2 DAG, fdd/serialize.hpp), the
// version sequence, and the compiled backend — so a restarted daemon
// resumes byte-identical classification at the next sequence number
// instead of reverting to its boot policy.
//
// Format "dfws 1", line-based like the dfdd formats it embeds:
//
//   dfws 1                      header: magic + version
//   sequence <n>                served version (>= 1)
//   backend <name>              flat_slab | prefix_trie | bit_parallel
//   policy <bytes>              byte count of the policy text that follows
//   <policy text>
//   fdd <bytes>                 byte count of the dfdd v2 text that follows
//   <dfdd v2 text>
//   checksum <hex16>            FNV-1a 64 over every byte above this line
//
// Crash consistency is two-layered: write_atomic() publishes via
// write-to-temp + rename, so a crash mid-write leaves either the old
// snapshot or the new one, never a blend; and decode() verifies the
// trailing checksum before trusting anything, so a torn or bit-flipped
// file is rejected with a structured error (exit 2 at the CLI), not
// served. The decoder inherits the dfdd loaders' hardening (bounds
// checks, byte counts capped by the input size, governed DAG expansion)
// and throws dfw::Error only: kParseError for malformed text,
// kInvalidInput for structural violations and checksum mismatches.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/backend.hpp"
#include "fdd/fdd.hpp"
#include "fw/decision.hpp"
#include "fw/policy.hpp"

namespace dfw {
class FaultPlan;
class RunContext;
}  // namespace dfw

namespace dfw::serve::snapshot {

/// One decoded snapshot: everything a ServeCore needs to resume serving.
/// Move-only (it owns an Fdd).
struct SnapshotData {
  std::uint64_t sequence;
  ClassifierBackendKind backend;
  Policy policy;
  Fdd fdd;
};

/// Serializes a served version. Deterministic: equal inputs produce equal
/// text. `decisions` renders the policy's decision names (the serve CLI
/// uses default_decisions()). `faults` (borrowed, nullable) is consulted
/// at the serve.snapshot.save site before any byte is produced.
std::string encode(std::uint64_t sequence, ClassifierBackendKind backend,
                   const Policy& policy, const Fdd& fdd,
                   const DecisionSet& decisions, FaultPlan* faults = nullptr);

/// Parses and verifies a snapshot. The caller supplies the schema and
/// decision set (the formats store structure, not domains — the dfdd
/// convention). `context` (borrowed, nullable) governs the embedded DAG
/// expansion against decompression bombs. Throws dfw::Error as documented
/// above; `faults` is consulted at the serve.snapshot.load site first.
SnapshotData decode(const Schema& schema, const DecisionSet& decisions,
                    std::string_view text, RunContext* context = nullptr,
                    FaultPlan* faults = nullptr);

/// Publishes `text` at `path` atomically: writes `path`.tmp, flushes,
/// renames over `path`. Throws dfw::Error(kInternal) on I/O failure (the
/// previous snapshot, if any, is left intact).
void write_atomic(const std::string& path, std::string_view text);

/// Slurps a snapshot file. Throws dfw::Error(kInvalidInput) when the file
/// cannot be opened or read.
std::string read_file(const std::string& path);

}  // namespace dfw::serve::snapshot
