// The dfw_serve command-line driver, factored as a library function so
// tests exercise the full CLI — flag parsing, snapshot boot/restore,
// the stdin command loop, exit codes — in-process against string
// streams (the same pattern as lint/cli.hpp).
//
// Exit-code contract (cli_common.hpp):
//   0  clean: every command succeeded
//   1  findings: at least one swap or batch was rejected (governance,
//      admission, or exhausted self-healing)
//   2  usage or input error: bad flags, unreadable files, parse errors —
//      including a corrupt or truncated --snapshot file at boot, which
//      is refused with a structured message, never served or crashed on

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dfw::serve {

/// Runs the CLI. `args` excludes argv[0]. Operator commands are read
/// from `in`; reports go to `out`, usage/errors to `err`. Returns the
/// process exit code.
int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err);

}  // namespace dfw::serve
