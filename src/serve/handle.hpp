// The epoch-guarded classifier version store.
//
// A PolicyHandle owns the chain of compiled policy versions a serve
// daemon transitions through. Readers pin the current version for the
// duration of one batch without taking any lock (two epoch stores); the
// writer publishes a replacement atomically and moves the old version to
// a limbo list, from which it is freed only once every reader that could
// have pinned it has exited — the RCU discipline, built on
// rt/epoch.hpp. Invariants the serve tests assert:
//
//   * every batch runs against exactly one version (the one pinned);
//   * a version is never freed while any Pin on it is alive;
//   * retired versions are freed eventually once readers drain (no leak:
//     retire count == reclaim count at quiescence, plus the final
//     current version freed by the destructor).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/classifier.hpp"
#include "fdd/fdd.hpp"
#include "fw/policy.hpp"
#include "rt/epoch.hpp"

namespace dfw::serve {

/// One immutable published version: the policy as the operator submitted
/// it, the reduced FDD it compiled from (kept so a crash-consistent
/// snapshot can serialize the exact served diagram without recompute),
/// and its compiled classifier, tagged with a monotonically increasing
/// sequence number (1 for the initial version).
struct PolicyVersion {
  std::uint64_t sequence;
  Policy policy;
  Fdd fdd;
  Classifier classifier;

  PolicyVersion(std::uint64_t sequence, Policy policy, Fdd fdd,
                Classifier classifier)
      : sequence(sequence),
        policy(std::move(policy)),
        fdd(std::move(fdd)),
        classifier(std::move(classifier)) {}
};

class PolicyHandle {
 public:
  /// Starts the chain at `initial` (sequence 1). The domain is borrowed
  /// and must outlive the handle.
  PolicyHandle(EpochDomain& domain, std::unique_ptr<PolicyVersion> initial);

  /// Frees the current version and any limbo remnants. All Pins must be
  /// gone and no concurrent publish may be running.
  ~PolicyHandle();

  PolicyHandle(const PolicyHandle&) = delete;
  PolicyHandle& operator=(const PolicyHandle&) = delete;

  /// A pinned version: the epoch critical section plus the version
  /// pointer loaded inside it. The referenced version stays valid for the
  /// Pin's lifetime; keep it for one batch, not longer — a long-lived Pin
  /// blocks reclamation of every later retirement.
  class Pin {
   public:
    Pin(Pin&& other) noexcept
        : domain_(other.domain_), slot_(other.slot_),
          version_(other.version_) {
      other.domain_ = nullptr;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    Pin& operator=(Pin&&) = delete;
    ~Pin() {
      if (domain_ != nullptr) {
        domain_->exit(slot_);
      }
    }

    const PolicyVersion& version() const { return *version_; }

   private:
    friend class PolicyHandle;
    Pin(EpochDomain& domain, std::size_t slot, const PolicyVersion* version)
        : domain_(&domain), slot_(slot), version_(version) {}

    EpochDomain* domain_;
    std::size_t slot_;
    const PolicyVersion* version_;
  };

  /// Lock-free reader entry: pins the version current at this instant on
  /// the caller's registered epoch slot.
  Pin pin(std::size_t slot) const {
    domain_.enter(slot);
    // seq_cst after the slot store: the publish/advance total-order
    // argument in rt/epoch.hpp is what makes this pointer safe to use
    // until the Pin exits.
    const PolicyVersion* v = current_.load(std::memory_order_seq_cst);
    return Pin(domain_, slot, v);
  }

  /// Writer: atomically replaces the current version and retires the old
  /// one into limbo tagged with the post-advance epoch. Serialized
  /// internally; safe against concurrent pins and other publishers.
  /// Returns the retired version's sequence number.
  std::uint64_t publish(std::unique_ptr<PolicyVersion> next);

  /// Frees every limbo version whose retire epoch all readers have
  /// passed. Called opportunistically after publish and at shutdown;
  /// callable any time. Returns the number of versions freed.
  std::size_t reclaim();

  /// Sequence of the version a pin() would observe right now.
  std::uint64_t current_sequence() const {
    return current_.load(std::memory_order_seq_cst)->sequence;
  }

  /// The current version without a pin. Safe only for callers that
  /// exclude publication for the reference's lifetime (the serve core's
  /// snapshot path holds the swap mutex); under a concurrent publish the
  /// version can be retired and freed underfoot.
  const PolicyVersion& current_unpinned() const {
    return *current_.load(std::memory_order_seq_cst);
  }

  /// Versions retired but not yet freed (diagnostic; racy by nature).
  std::size_t limbo_size() const;
  /// High-water mark of the limbo list since construction — the
  /// serve.limbo.peak gauge. A peak that tracks the swap count means
  /// reclamation is not keeping up (a pinned reader or a missing
  /// reclaim() call).
  std::size_t limbo_peak() const;
  /// Total versions retired / freed since construction.
  std::uint64_t retired_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }

 private:
  struct Retired {
    std::unique_ptr<PolicyVersion> version;
    std::uint64_t retire_epoch = 0;
  };

  EpochDomain& domain_;
  std::atomic<const PolicyVersion*> current_;
  mutable std::mutex writer_mu_;  // serializes publish/reclaim bookkeeping
  std::vector<Retired> limbo_;
  std::size_t limbo_peak_ = 0;  // under writer_mu_
  std::atomic<std::uint64_t> retired_total_{0};
  std::atomic<std::uint64_t> reclaimed_total_{0};
};

}  // namespace dfw::serve
