#include "serve/handle.hpp"

#include <algorithm>
#include <stdexcept>

namespace dfw::serve {

PolicyHandle::PolicyHandle(EpochDomain& domain,
                           std::unique_ptr<PolicyVersion> initial)
    : domain_(domain) {
  if (initial == nullptr) {
    throw std::invalid_argument("PolicyHandle: null initial version");
  }
  current_.store(initial.release(), std::memory_order_seq_cst);
}

PolicyHandle::~PolicyHandle() {
  // No readers may be alive here; drop the sequence chain outright.
  delete current_.load(std::memory_order_seq_cst);
  limbo_.clear();
}

std::uint64_t PolicyHandle::publish(std::unique_ptr<PolicyVersion> next) {
  if (next == nullptr) {
    throw std::invalid_argument("PolicyHandle: null published version");
  }
  std::lock_guard<std::mutex> lock(writer_mu_);
  // Publish first, then advance: a reader announcing an epoch >= the
  // advanced value provably loaded the new pointer (rt/epoch.hpp).
  const PolicyVersion* old =
      current_.exchange(next.release(), std::memory_order_seq_cst);
  const std::uint64_t retire_epoch = domain_.advance();
  Retired retired;
  retired.version.reset(const_cast<PolicyVersion*>(old));
  retired.retire_epoch = retire_epoch;
  const std::uint64_t old_sequence = retired.version->sequence;
  limbo_.push_back(std::move(retired));
  limbo_peak_ = std::max(limbo_peak_, limbo_.size());
  retired_total_.fetch_add(1, std::memory_order_relaxed);
  return old_sequence;
}

std::size_t PolicyHandle::reclaim() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  const std::uint64_t min_active = domain_.min_active();
  std::size_t freed = 0;
  for (std::size_t i = 0; i < limbo_.size();) {
    // kIdle (all readers out) compares >= any retire epoch.
    if (min_active >= limbo_[i].retire_epoch) {
      limbo_[i] = std::move(limbo_.back());
      limbo_.pop_back();
      ++freed;
    } else {
      ++i;
    }
  }
  reclaimed_total_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

std::size_t PolicyHandle::limbo_size() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return limbo_.size();
}

std::size_t PolicyHandle::limbo_peak() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return limbo_peak_;
}

}  // namespace dfw::serve
