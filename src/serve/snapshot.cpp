#include "serve/snapshot.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fdd/serialize.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "rt/fault.hpp"
#include "rt/govern.hpp"

namespace dfw::serve::snapshot {
namespace {

/// FNV-1a 64 — the integrity seal, not a cryptographic one: it catches
/// torn renames and bit rot, which is the crash-consistency contract.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

[[noreturn]] void fail_parse(const std::string& message) {
  throw Error(ErrorCode::kParseError, "snapshot: " + message);
}

std::string_view take_line(std::string_view text, std::size_t& pos) {
  if (pos >= text.size()) {
    fail_parse("unexpected end of input");
  }
  const std::size_t nl = text.find('\n', pos);
  if (nl == std::string_view::npos) {
    fail_parse("unterminated line");
  }
  const std::string_view line = text.substr(pos, nl - pos);
  pos = nl + 1;
  return line;
}

std::string_view expect_keyword(std::string_view line, std::string_view key) {
  if (line.size() <= key.size() || line.substr(0, key.size()) != key ||
      line[key.size()] != ' ') {
    fail_parse("expected \"" + std::string(key) + " ...\", got \"" +
               std::string(line) + "\"");
  }
  return line.substr(key.size() + 1);
}

std::uint64_t parse_u64(std::string_view token, const char* what) {
  if (token.empty()) {
    fail_parse(std::string(what) + ": empty number");
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      fail_parse(std::string(what) + ": not a number: \"" +
                 std::string(token) + "\"");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      fail_parse(std::string(what) + ": number overflows");
    }
    value = value * 10 + digit;
  }
  return value;
}

std::uint64_t parse_hex64(std::string_view token) {
  if (token.size() != 16) {
    fail_parse("checksum: want 16 hex digits");
  }
  std::uint64_t value = 0;
  for (const char c : token) {
    std::uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else {
      fail_parse("checksum: not hex");
    }
    value = (value << 4) | digit;
  }
  return value;
}

/// A counted payload block: `<key> <bytes>\n<bytes...>\n`. The count is
/// bounded by the remaining input before any allocation (no size bombs).
std::string_view take_block(std::string_view text, std::size_t& pos,
                            std::string_view key) {
  const std::uint64_t count = parse_u64(
      expect_keyword(take_line(text, pos), key), std::string(key).c_str());
  if (count > text.size() - pos) {
    fail_parse(std::string(key) + ": byte count exceeds input");
  }
  const std::string_view block = text.substr(pos, count);
  pos += count;
  if (pos >= text.size() || text[pos] != '\n') {
    fail_parse(std::string(key) + ": missing separator after block");
  }
  ++pos;
  return block;
}

}  // namespace

std::string encode(std::uint64_t sequence, ClassifierBackendKind backend,
                   const Policy& policy, const Fdd& fdd,
                   const DecisionSet& decisions, FaultPlan* faults) {
  fault::hit(faults, fault::sites::kSnapshotSave);
  const std::string policy_text = format_policy(policy, decisions);
  const std::string fdd_text = serialize_fdd_dag(fdd);
  std::ostringstream body;
  body << "dfws 1\n"
       << "sequence " << sequence << '\n'
       << "backend " << to_string(backend) << '\n'
       << "policy " << policy_text.size() << '\n'
       << policy_text << '\n'
       << "fdd " << fdd_text.size() << '\n'
       << fdd_text << '\n';
  std::string out = body.str();
  char seal[32];
  std::snprintf(seal, sizeof seal, "checksum %016llx\n",
                static_cast<unsigned long long>(fnv1a(out)));
  out += seal;
  return out;
}

SnapshotData decode(const Schema& schema, const DecisionSet& decisions,
                    std::string_view text, RunContext* context,
                    FaultPlan* faults) {
  fault::hit(faults, fault::sites::kSnapshotLoad);
  std::size_t pos = 0;
  if (take_line(text, pos) != "dfws 1") {
    fail_parse("bad magic (want \"dfws 1\")");
  }
  const std::uint64_t sequence =
      parse_u64(expect_keyword(take_line(text, pos), "sequence"), "sequence");
  if (sequence == 0) {
    fail_parse("sequence must be >= 1");
  }
  const std::string_view backend_name =
      expect_keyword(take_line(text, pos), "backend");
  const auto backend = parse_backend_kind(backend_name);
  if (!backend.has_value()) {
    fail_parse("unknown backend \"" + std::string(backend_name) + "\"");
  }
  const std::string_view policy_text = take_block(text, pos, "policy");
  const std::string_view fdd_text = take_block(text, pos, "fdd");

  // Verify integrity before parsing a single payload byte: a torn or
  // bit-flipped file must be rejected as corrupt, not half-understood.
  const std::size_t body_end = pos;
  const std::uint64_t recorded =
      parse_hex64(expect_keyword(take_line(text, pos), "checksum"));
  if (pos != text.size()) {
    fail_parse("trailing bytes after checksum");
  }
  if (recorded != fnv1a(text.substr(0, body_end))) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot: checksum mismatch (torn or corrupt file)");
  }

  try {
    Policy policy = parse_policy(schema, decisions, policy_text);
    Fdd fdd = deserialize_fdd(schema, fdd_text, context);
    return SnapshotData{sequence, *backend, std::move(policy),
                        std::move(fdd)};
  } catch (const Error&) {
    throw;  // governed expansion breach — already structured
  } catch (const std::invalid_argument& error) {
    throw Error(ErrorCode::kParseError,
                std::string("snapshot payload: ") + error.what());
  } catch (const std::logic_error& error) {
    throw Error(ErrorCode::kInvalidInput,
                std::string("snapshot payload: ") + error.what());
  }
}

void write_atomic(const std::string& path, std::string_view text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw Error(ErrorCode::kInternal, "snapshot: cannot open " + tmp);
  }
  const std::size_t written =
      text.empty() ? 0 : std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != text.size() || !flushed || !closed) {
    std::remove(tmp.c_str());
    throw Error(ErrorCode::kInternal, "snapshot: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error(ErrorCode::kInternal,
                "snapshot: cannot rename " + tmp + " over " + path);
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot: cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw Error(ErrorCode::kInvalidInput,
                "snapshot: read failure on " + path);
  }
  return buffer.str();
}

}  // namespace dfw::serve::snapshot
