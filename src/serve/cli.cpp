#include "serve/cli.hpp"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli_common.hpp"
#include "fw/parser.hpp"
#include "obs/export.hpp"
#include "serve/serve.hpp"
#include "serve/snapshot.hpp"

namespace dfw::serve {
namespace {

constexpr const char* kUsage =
    "usage: dfw_serve [options] <initial-policy-file>\n"
    "\n"
    "input:\n"
    "  --format=native            policy syntax (default native)\n"
    "  <initial-policy-file>      path, or - for stdin (not useful with\n"
    "                             the stdin command loop)\n"
    "\n"
    "serving:\n"
    "  --max-inflight=N  refuse batches past N in flight (default 0 =\n"
    "                    unbounded); refusals exit-code 1\n"
    "  --backend=NAME    compiled layout for every version: flat_slab\n"
    "                    (default), prefix_trie, or bit_parallel; all are\n"
    "                    byte-identical in output (docs/classifier.md)\n"
    "  --swap-retries=N  retry a transiently failed swap up to N times\n"
    "                    under exponential backoff (default 0)\n"
    "\n"
    "durability (docs/serve.md):\n"
    "  --snapshot=FILE   boot from FILE when it exists (byte-identical\n"
    "                    resume at the saved sequence; a corrupt or torn\n"
    "                    file is refused with exit 2), then save a\n"
    "                    crash-consistent snapshot after boot and after\n"
    "                    every successful swap (atomic write + rename)\n"
    "  --health-interval=N  print the health JSON after every N operator\n"
    "                    commands (default 0 = only on the health command)\n"
    "\n"
    "telemetry (docs/observability.md):\n"
    "  --metrics-interval=MS  run the in-core reporter: every MS\n"
    "                    milliseconds a dedicated thread snapshots\n"
    "                    metrics + health into a rolling window\n"
    "                    (default 0 = off)\n"
    "  --metrics-out=FILE  append one dfw-metrics-v1 JSONL record per\n"
    "                    reporter tick to FILE, plus a final record at\n"
    "                    quit (works without --metrics-interval too)\n"
    "\n"
    "commands (stdin, one per line):\n"
    "  swap FILE       compile FILE and publish it; prints the new version\n"
    "  batch FILE      classify FILE's packets; prints version + decisions\n"
    "  stats           print the metrics snapshot JSON (serve.* counters,\n"
    "                  fault-plane site counters overlaid when armed)\n"
    "  prom            print the snapshot as Prometheus text exposition\n"
    "  window          print the reporter's rolling window, one JSONL\n"
    "                  record per tick (empty until the reporter ticks)\n"
    "  health          print the health JSON (dfw-serve-health-v1)\n"
    "  reclaim         drain the retire limbo now\n"
    "  quit            flush --trace and --metrics-out output and exit\n"
    "\n"
    "The governance flags bound each swap's compile: --max-nodes the\n"
    "diagram, --deadline-ms the wall clock. A breached swap is rejected\n"
    "and the previous version keeps serving.\n"
    "\n";

constexpr std::string_view kTool = "dfw_serve";

std::optional<Policy> load_policy(const std::string& path,
                                  std::ostream& err) {
  const auto text = cli::slurp(path, err, kTool);
  if (!text.has_value()) {
    return std::nullopt;
  }
  try {
    return parse_policy(five_tuple_schema(), default_decisions(), *text);
  } catch (const ParseError& e) {
    err << "dfw_serve: " << path << ": " << e.what() << "\n";
    return std::nullopt;
  }
}

std::optional<std::vector<Packet>> load_packets(const std::string& path,
                                                std::size_t field_count,
                                                std::ostream& err) {
  const auto text = cli::slurp(path, err, kTool);
  if (!text.has_value()) {
    return std::nullopt;
  }
  std::vector<Packet> packets;
  std::istringstream lines(*text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream fields(line);
    Packet packet;
    Value value = 0;
    while (fields >> value) {
      packet.push_back(value);
    }
    if (packet.empty()) {
      continue;  // blank or comment-only line
    }
    if (!fields.eof() || packet.size() != field_count) {
      err << "dfw_serve: " << path << ":" << line_no << ": expected "
          << field_count << " decimal field values\n";
      return std::nullopt;
    }
    packets.push_back(std::move(packet));
  }
  return packets;
}

}  // namespace

int run_serve_cli(const std::vector<std::string>& args, std::istream& in,
                  std::ostream& out, std::ostream& err) {
  cli::CommonOptions common;
  std::size_t max_inflight = 0;
  std::size_t swap_retries = 0;
  std::size_t health_interval = 0;
  std::size_t metrics_interval = 0;
  std::string metrics_out;
  std::string snapshot_path;
  ClassifierBackendKind backend = ClassifierBackendKind::kFlatSlab;
  for (const std::string& arg : args) {
    if (arg == "--help" || arg == "-h") {
      out << kUsage << cli::kCommonUsage;
      return cli::kExitClean;
    }
    switch (cli::consume_common_flag(common, arg, err, kTool)) {
      case cli::FlagResult::kConsumed:
        continue;
      case cli::FlagResult::kError:
        return cli::kExitUsage;
      case cli::FlagResult::kNotMine:
        break;
    }
    if (const auto v = cli::flag_value(arg, "--max-inflight=")) {
      const auto n = cli::parse_size(*v);
      if (!n.has_value()) {
        err << "dfw_serve: bad --max-inflight value '" << *v << "'\n";
        return cli::kExitUsage;
      }
      max_inflight = *n;
    } else if (const auto r = cli::flag_value(arg, "--swap-retries=")) {
      const auto n = cli::parse_size(*r);
      if (!n.has_value()) {
        err << "dfw_serve: bad --swap-retries value '" << *r << "'\n";
        return cli::kExitUsage;
      }
      swap_retries = *n;
    } else if (const auto h = cli::flag_value(arg, "--health-interval=")) {
      const auto n = cli::parse_size(*h);
      if (!n.has_value()) {
        err << "dfw_serve: bad --health-interval value '" << *h << "'\n";
        return cli::kExitUsage;
      }
      health_interval = *n;
    } else if (const auto m = cli::flag_value(arg, "--metrics-interval=")) {
      const auto n = cli::parse_size(*m);
      if (!n.has_value()) {
        err << "dfw_serve: bad --metrics-interval value '" << *m << "'\n";
        return cli::kExitUsage;
      }
      metrics_interval = *n;
    } else if (const auto o = cli::flag_value(arg, "--metrics-out=")) {
      if (o->empty()) {
        err << "dfw_serve: --metrics-out needs a file path\n";
        return cli::kExitUsage;
      }
      metrics_out = *o;
    } else if (const auto s = cli::flag_value(arg, "--snapshot=")) {
      if (s->empty()) {
        err << "dfw_serve: --snapshot needs a file path\n";
        return cli::kExitUsage;
      }
      snapshot_path = *s;
    } else if (const auto b = cli::flag_value(arg, "--backend=")) {
      const auto kind = parse_backend_kind(*b);
      if (!kind.has_value()) {
        err << "dfw_serve: unknown backend '" << *b
            << "' (flat_slab, prefix_trie, bit_parallel)\n";
        return cli::kExitUsage;
      }
      backend = *kind;
    } else if (arg.rfind("--", 0) == 0) {
      err << "dfw_serve: unknown option '" << arg << "'\n"
          << kUsage << cli::kCommonUsage;
      return cli::kExitUsage;
    } else {
      common.positional.push_back(arg);
    }
  }
  if (common.format.empty()) {
    common.format = "native";
  }
  if (common.format != "native") {
    err << "dfw_serve: unknown format '" << common.format << "'\n";
    return cli::kExitUsage;
  }
  if (common.positional.size() != 1) {
    err << kUsage << cli::kCommonUsage;
    return cli::kExitUsage;
  }

  // The swap governance comes from the shared flags; the data-plane
  // executor and the obs sinks come from the shared runtime.
  cli::CommonRuntime runtime(common);
  ServeOptions options;
  const RunOptions run = runtime.run_options();
  options.run.executor = run.executor;
  options.run.obs = run.obs;
  options.max_inflight_batches = max_inflight;
  options.swap_budgets.max_nodes = common.max_nodes;
  options.swap_deadline_ms = common.deadline_ms;
  options.backend = backend;
  options.swap_max_retries = swap_retries;
  options.telemetry_interval_ms = metrics_interval;

  // The JSONL sink outlives the core (declared first, destroyed last):
  // the reporter thread writes through on_telemetry until ~ServeCore
  // quiesces it, and the final record at quit shares the same mutex and
  // sequence counter.
  MetricsExporter exporter;
  std::ofstream metrics_file;
  std::mutex metrics_mu;
  std::uint64_t metrics_seq = 0;
  if (!metrics_out.empty()) {
    metrics_file.open(metrics_out, std::ios::trunc);
    if (!metrics_file) {
      err << "dfw_serve: cannot open --metrics-out file '" << metrics_out
          << "'\n";
      return cli::kExitUsage;
    }
    options.on_telemetry = [&](const TelemetryRecord& record) {
      std::lock_guard<std::mutex> lock(metrics_mu);
      metrics_file << exporter.jsonl(record.metrics, ++metrics_seq,
                                     record.uptime_ms);
      metrics_file.flush();  // each tick is durable — the file tails live
    };
  }

  const std::size_t field_count = five_tuple_schema().field_count();

  // Boot order: an existing snapshot wins (byte-identical resume at the
  // saved sequence); otherwise compile the boot policy as sequence 1. A
  // snapshot that exists but does not decode — truncated, bit-flipped,
  // wrong schema — is an input error (exit 2), never a crash and never
  // silently ignored: serving the stale boot policy when the operator
  // expected the snapshotted one would be the worse failure.
  std::optional<ServeCore> core;
  bool restored = false;
  if (!snapshot_path.empty() && std::filesystem::exists(snapshot_path)) {
    try {
      auto data =
          snapshot::decode(five_tuple_schema(), default_decisions(),
                           snapshot::read_file(snapshot_path));
      core.emplace(std::move(data), options);
      restored = true;
    } catch (const Error& e) {
      err << "dfw_serve: " << snapshot_path << ": " << e.what() << "\n";
      return cli::kExitUsage;
    }
  }
  if (!core.has_value()) {
    auto initial = load_policy(common.positional[0], err);
    if (!initial.has_value()) {
      return cli::kExitUsage;
    }
    try {
      core.emplace(std::move(*initial), options);
    } catch (const std::exception& e) {
      err << "dfw_serve: " << common.positional[0] << ": " << e.what()
          << "\n";
      return cli::kExitUsage;
    }
  }

  // Snapshot saves are availability-first: a failed save (disk full,
  // injected fault) is reported and counted, but the daemon keeps
  // serving — durability degrades, classification does not.
  const auto save_snapshot = [&]() {
    if (snapshot_path.empty()) {
      return;
    }
    try {
      snapshot::write_atomic(snapshot_path, core->snapshot_text());
    } catch (const Error& e) {
      err << "dfw_serve: snapshot save failed: " << e.what() << "\n";
    }
  };
  save_snapshot();  // the boot state is durable before the first command

  ServeCore::Shard shard = core->shard();
  out << "serving version=" << core->current_sequence()
      << " backend=" << to_string(core->health().backend)
      << (restored ? " (restored)" : "") << "\n";

  bool any_rejected = false;
  std::size_t commands = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream words(line);
    std::string command;
    words >> command;
    if (command.empty() || command[0] == '#') {
      continue;
    }
    std::string path;
    if (command == "quit") {
      break;
    } else if (command == "stats") {
      out << core->telemetry_now().metrics.to_json() << "\n";
    } else if (command == "prom") {
      out << exporter.prometheus(core->telemetry_now().metrics);
    } else if (command == "window") {
      for (const TelemetryRecord& record : core->telemetry_window()) {
        out << exporter.jsonl(record.metrics, record.tick,
                              record.uptime_ms);
      }
    } else if (command == "health") {
      out << core->health().to_json() << "\n";
    } else if (command == "reclaim") {
      out << "reclaimed " << core->reclaim() << " version(s)\n";
    } else if (command == "swap" && (words >> path)) {
      auto next = load_policy(path, err);
      if (!next.has_value()) {
        return cli::kExitUsage;
      }
      const auto result = core->swap(*next);
      if (result.ok()) {
        out << "swap ok version=" << result.value() << "\n";
        save_snapshot();
      } else {
        out << "swap rejected: " << result.error().what() << "\n";
        any_rejected = true;
      }
    } else if (command == "batch" && (words >> path)) {
      const auto packets = load_packets(path, field_count, err);
      if (!packets.has_value()) {
        return cli::kExitUsage;
      }
      const BatchResult result = shard.classify(*packets);
      if (result.status != ErrorCode::kOk) {
        out << "batch rejected: " << to_string(result.status) << "\n";
        any_rejected = true;
        continue;
      }
      std::vector<std::size_t> counts(default_decisions().size(), 0);
      for (const Decision d : result.decisions) {
        ++counts[d];
      }
      out << "batch ok version=" << result.version
          << " packets=" << result.decisions.size();
      for (std::size_t d = 0; d < counts.size(); ++d) {
        if (counts[d] != 0) {
          out << " " << default_decisions().name(static_cast<Decision>(d))
              << "=" << counts[d];
        }
      }
      out << "\n";
    } else {
      err << "dfw_serve: bad command '" << line << "'\n";
      return cli::kExitUsage;
    }
    ++commands;
    if (health_interval != 0 && commands % health_interval == 0) {
      out << core->health().to_json() << "\n";
    }
  }

  if (metrics_file.is_open()) {
    // One closing record regardless of interval: a reporterless run
    // still leaves the final counter state in the series.
    const TelemetryRecord final_record = core->telemetry_now();
    std::lock_guard<std::mutex> lock(metrics_mu);
    metrics_file << exporter.jsonl(final_record.metrics, ++metrics_seq,
                                   final_record.uptime_ms);
    metrics_file.flush();
  }

  const int trace_status = runtime.finish(err, kTool);
  if (trace_status != cli::kExitClean) {
    return trace_status;
  }
  return any_rejected ? cli::kExitFindings : cli::kExitClean;
}

}  // namespace dfw::serve
