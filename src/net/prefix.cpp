#include "net/prefix.hpp"

#include <stdexcept>

#include "net/ipv4.hpp"

namespace dfw {
namespace {

// All-ones mask over the low (width - length) bits of a width-bit value.
std::uint32_t low_mask(int length, int width) {
  const int free_bits = width - length;
  if (free_bits >= 32) {
    return UINT32_MAX;
  }
  return (free_bits == 0) ? 0u : ((1u << free_bits) - 1u);
}

std::uint32_t domain_max(int width) {
  return width >= 32 ? UINT32_MAX : ((1u << width) - 1u);
}

}  // namespace

Prefix::Prefix(std::uint32_t bits, int length, int width)
    : bits_(bits), length_(length), width_(width) {
  if (width < 1 || width > 32) {
    throw std::invalid_argument("Prefix: width out of range");
  }
  if (length < 0 || length > width) {
    throw std::invalid_argument("Prefix: length out of range");
  }
  if (bits > domain_max(width)) {
    throw std::invalid_argument("Prefix: bits exceed domain");
  }
  if ((bits & low_mask(length, width)) != 0) {
    throw std::invalid_argument("Prefix: nonzero bits below prefix length");
  }
}

Interval Prefix::to_interval() const {
  return Interval(bits_, bits_ | low_mask(length_, width_));
}

bool Prefix::contains(std::uint32_t value) const {
  return value >= bits_ && value <= (bits_ | low_mask(length_, width_));
}

std::string Prefix::to_string() const {
  if (width_ == 32) {
    return format_ipv4(bits_) + "/" + std::to_string(length_);
  }
  return std::to_string(bits_) + "/" + std::to_string(length_);
}

std::optional<Prefix> parse_prefix(std::string_view text) {
  int length = 32;
  const std::size_t slash = text.find('/');
  std::string_view addr_part = text;
  if (slash != std::string_view::npos) {
    addr_part = text.substr(0, slash);
    std::string_view len_part = text.substr(slash + 1);
    if (len_part.empty() || len_part.size() > 2) {
      return std::nullopt;
    }
    length = 0;
    for (char c : len_part) {
      if (c < '0' || c > '9') {
        return std::nullopt;
      }
      length = length * 10 + (c - '0');
    }
    if (length > 32) {
      return std::nullopt;
    }
  }
  const std::optional<std::uint32_t> addr = parse_ipv4(addr_part);
  if (!addr) {
    return std::nullopt;
  }
  const std::uint32_t mask =
      (length == 0) ? 0u : (UINT32_MAX << (32 - length));
  if ((*addr & ~mask) != 0) {
    return std::nullopt;  // host bits set below the prefix length
  }
  return Prefix(*addr, length, 32);
}

std::vector<Prefix> interval_to_prefixes(const Interval& iv, int width) {
  if (width < 1 || width > 32) {
    throw std::invalid_argument("interval_to_prefixes: width out of range");
  }
  if (iv.hi() > domain_max(width)) {
    throw std::invalid_argument("interval_to_prefixes: interval exceeds domain");
  }
  std::vector<Prefix> result;
  std::uint64_t lo = iv.lo();
  const std::uint64_t hi = iv.hi();
  // Greedy: at each step emit the largest aligned block starting at lo that
  // does not overshoot hi. This yields the unique minimal disjoint cover.
  while (lo <= hi) {
    int free_bits = 0;
    // Grow the block while lo stays aligned and the block fits in [lo, hi].
    while (free_bits < width) {
      const std::uint64_t block = 1ull << (free_bits + 1);
      if ((lo & (block - 1)) != 0 || lo + block - 1 > hi) {
        break;
      }
      ++free_bits;
    }
    result.push_back(Prefix(static_cast<std::uint32_t>(lo),
                            width - free_bits, width));
    const std::uint64_t block = 1ull << free_bits;
    lo += block;
    if (lo == 0) {
      break;  // wrapped past the top of the 64-bit space: hi was 2^width - 1
    }
  }
  return result;
}

}  // namespace dfw
