#include "net/ipv4.hpp"

namespace dfw {

std::optional<std::uint32_t> parse_ipv4(std::string_view text) {
  std::uint32_t addr = 0;
  int octets = 0;
  std::size_t i = 0;
  while (octets < 4) {
    if (i >= text.size() || text[i] < '0' || text[i] > '9') {
      return std::nullopt;
    }
    std::uint32_t octet = 0;
    std::size_t digits = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      octet = octet * 10 + static_cast<std::uint32_t>(text[i] - '0');
      if (octet > 255 || ++digits > 3) {
        return std::nullopt;
      }
      ++i;
    }
    addr = (addr << 8) | octet;
    ++octets;
    if (octets < 4) {
      if (i >= text.size() || text[i] != '.') {
        return std::nullopt;
      }
      ++i;
    }
  }
  if (i != text.size()) {
    return std::nullopt;
  }
  return addr;
}

std::string format_ipv4(std::uint32_t addr) {
  return std::to_string((addr >> 24) & 0xff) + "." +
         std::to_string((addr >> 16) & 0xff) + "." +
         std::to_string((addr >> 8) & 0xff) + "." +
         std::to_string(addr & 0xff);
}

}  // namespace dfw
