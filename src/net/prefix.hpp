// CIDR prefixes and prefix <-> interval conversion.
//
// Section 7.1 of the paper: source/destination IP addresses arrive in prefix
// format, the algorithms run on integer intervals, and discrepancy reports
// convert back to prefixes for readability. Every prefix maps to exactly one
// interval; a w-bit interval converts to at most 2w-2 prefixes.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/interval.hpp"

namespace dfw {

/// A w-bit CIDR-style prefix: the `length` high bits of `bits` are fixed and
/// the remaining width-length low bits range over all values.
class Prefix {
 public:
  /// Constructs a prefix over `width`-bit values (1 <= width <= 32).
  /// Requires length <= width and the non-prefix low bits of `bits` zero.
  Prefix(std::uint32_t bits, int length, int width = 32);

  std::uint32_t bits() const { return bits_; }
  int length() const { return length_; }
  int width() const { return width_; }

  /// The exact interval [bits, bits | low_mask] this prefix covers.
  Interval to_interval() const;

  bool contains(std::uint32_t value) const;

  friend bool operator==(const Prefix&, const Prefix&) = default;

  /// Renders CIDR notation "a.b.c.d/len" for width 32, "bits/len" otherwise.
  std::string to_string() const;

 private:
  std::uint32_t bits_;
  int length_;
  int width_;
};

/// Parses "a.b.c.d/len" or a bare "a.b.c.d" (treated as /32).
std::optional<Prefix> parse_prefix(std::string_view text);

/// Converts an arbitrary interval within a w-bit domain into the unique
/// minimal set of disjoint prefixes covering it, in ascending order.
/// The result has at most 2w-2 prefixes (Gupta & McKeown, cited as [14]).
/// Requires iv.hi() < 2^width.
std::vector<Prefix> interval_to_prefixes(const Interval& iv, int width = 32);

}  // namespace dfw
