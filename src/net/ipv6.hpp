// IPv6 addresses and prefixes.
//
// The paper is IPv4-era, but a credible firewall toolchain needs IPv6.
// Our Value type is 64-bit, so a 128-bit address is modeled as a *pair of
// adjacent fields* (high and low 64 bits) in a schema — see
// FieldKind::kIpv6Hi/kIpv6Lo and five_tuple_v6_schema(). The key fact
// making this exact: any IPv6 CIDR prefix maps to a single conjunct over
// the (hi, lo) pair — a /L with L <= 64 constrains hi to an aligned block
// and leaves lo unconstrained; L > 64 pins hi to one value and constrains
// lo to an aligned block. Parsing accepts RFC 4291 text (full and
// ::-compressed groups); formatting emits RFC 5952-style lowercase with
// the longest zero run compressed.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "net/interval.hpp"

namespace dfw {

/// A 128-bit IPv6 address as two 64-bit halves.
struct Ipv6 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Ipv6&, const Ipv6&) = default;
};

/// Parses "2001:db8::1" (full or ::-compressed). No embedded-IPv4 tail,
/// no zone index. Returns nullopt on malformed input.
std::optional<Ipv6> parse_ipv6(std::string_view text);

/// Formats with the longest zero-group run compressed ("::"), lowercase.
std::string format_ipv6(const Ipv6& addr);

/// An IPv6 CIDR prefix.
struct Ipv6Prefix {
  Ipv6 bits;
  int length = 0;  // 0..128; non-prefix bits of `bits` must be zero

  /// The conjunct this prefix denotes over the (hi, lo) field pair.
  std::pair<Interval, Interval> to_intervals() const;

  std::string to_string() const;

  friend bool operator==(const Ipv6Prefix&, const Ipv6Prefix&) = default;
};

/// Parses "2001:db8::/32" or a bare address (treated as /128). Rejects
/// host bits set below the prefix length.
std::optional<Ipv6Prefix> parse_ipv6_prefix(std::string_view text);

}  // namespace dfw
