// Closed integer intervals over uint64_t values.
//
// Intervals are the atomic geometry of the whole library: every firewall-rule
// predicate conjunct, every FDD edge label, and every discrepancy report is
// built from them (paper, Section 3.1). An interval [lo, hi] contains every
// value v with lo <= v <= hi; it is never empty.

#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace dfw {

using Value = std::uint64_t;

/// A nonempty closed interval [lo, hi] of uint64_t values.
///
/// Invariant: lo <= hi. The constructor throws std::invalid_argument on a
/// violated invariant so that an empty interval can never be observed.
class Interval {
 public:
  /// Constructs [lo, hi]; requires lo <= hi.
  constexpr Interval(Value lo, Value hi) : lo_(lo), hi_(hi) {
    if (lo > hi) {
      throw std::invalid_argument("Interval: lo > hi");
    }
  }

  /// Constructs the singleton interval [v, v].
  static constexpr Interval point(Value v) { return Interval(v, v); }

  constexpr Value lo() const { return lo_; }
  constexpr Value hi() const { return hi_; }

  /// Number of values in the interval. Saturates at UINT64_MAX for the
  /// full 64-bit domain (whose true size, 2^64, is not representable).
  constexpr Value size() const {
    const Value span = hi_ - lo_;
    return span == UINT64_MAX ? UINT64_MAX : span + 1;
  }

  constexpr bool contains(Value v) const { return lo_ <= v && v <= hi_; }
  constexpr bool contains(const Interval& other) const {
    return lo_ <= other.lo_ && other.hi_ <= hi_;
  }
  constexpr bool overlaps(const Interval& other) const {
    return lo_ <= other.hi_ && other.lo_ <= hi_;
  }

  /// Intersection, or nullopt when the intervals are disjoint.
  std::optional<Interval> intersect(const Interval& other) const;

  /// True when `this` and `other` are adjacent or overlapping, i.e. their
  /// union is a single interval.
  bool mergeable(const Interval& other) const;

  /// Union of two mergeable intervals; requires mergeable(other).
  Interval merge(const Interval& other) const;

  friend constexpr bool operator==(const Interval&, const Interval&) = default;

  /// Total order by (lo, hi); disjoint intervals sort by position.
  friend constexpr bool operator<(const Interval& a, const Interval& b) {
    return a.lo_ != b.lo_ ? a.lo_ < b.lo_ : a.hi_ < b.hi_;
  }

  /// Renders "[lo, hi]", or "[v]" for singletons.
  std::string to_string() const;

 private:
  Value lo_;
  Value hi_;
};

}  // namespace dfw
