// Normalized sets of disjoint intervals.
//
// FDD edge labels are "nonempty sets of integers" (paper, Section 2,
// property 3). We represent such a set canonically as a sorted vector of
// pairwise-disjoint, non-adjacent intervals, so that structural equality of
// labels coincides with set equality — the property both the shaping and the
// comparison algorithms rely on.

#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "net/interval.hpp"

namespace dfw {

/// A (possibly empty) set of uint64_t values stored as a canonical run of
/// disjoint, non-adjacent, sorted intervals.
///
/// Invariant: for consecutive members a, b: a.hi() + 1 < b.lo().
class IntervalSet {
 public:
  IntervalSet() = default;
  /*implicit*/ IntervalSet(Interval iv) { add(iv); }
  IntervalSet(std::initializer_list<Interval> ivs) {
    for (const Interval& iv : ivs) {
      add(iv);
    }
  }

  bool empty() const { return intervals_.empty(); }

  /// Number of maximal runs (not the number of values).
  std::size_t run_count() const { return intervals_.size(); }

  /// Number of values, saturating at UINT64_MAX.
  Value size() const;

  const std::vector<Interval>& intervals() const { return intervals_; }

  bool contains(Value v) const;
  bool contains(const IntervalSet& other) const;

  /// Smallest member; requires !empty().
  Value min() const;
  /// Largest member; requires !empty().
  Value max() const;

  /// Inserts every value of `iv`, merging runs as needed.
  void add(Interval iv);

  IntervalSet unite(const IntervalSet& other) const;
  IntervalSet intersect(const IntervalSet& other) const;
  /// Set difference this \ other.
  IntervalSet subtract(const IntervalSet& other) const;

  bool overlaps(const IntervalSet& other) const {
    return !intersect(other).empty();
  }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

  /// Renders "{[a, b], [c], ...}".
  std::string to_string() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace dfw
