#include "net/interval.hpp"

#include <algorithm>

namespace dfw {

std::optional<Interval> Interval::intersect(const Interval& other) const {
  const Value lo = std::max(lo_, other.lo_);
  const Value hi = std::min(hi_, other.hi_);
  if (lo > hi) {
    return std::nullopt;
  }
  return Interval(lo, hi);
}

bool Interval::mergeable(const Interval& other) const {
  if (overlaps(other)) {
    return true;
  }
  // Adjacent: one ends exactly where the other begins, minding overflow.
  if (hi_ != UINT64_MAX && hi_ + 1 == other.lo_) {
    return true;
  }
  if (other.hi_ != UINT64_MAX && other.hi_ + 1 == lo_) {
    return true;
  }
  return false;
}

Interval Interval::merge(const Interval& other) const {
  if (!mergeable(other)) {
    throw std::invalid_argument("Interval::merge: intervals not mergeable");
  }
  return Interval(std::min(lo_, other.lo_), std::max(hi_, other.hi_));
}

std::string Interval::to_string() const {
  if (lo_ == hi_) {
    return "[" + std::to_string(lo_) + "]";
  }
  return "[" + std::to_string(lo_) + ", " + std::to_string(hi_) + "]";
}

}  // namespace dfw
