#include "net/ipv6.hpp"

#include <array>
#include <vector>

namespace dfw {
namespace {

// Parses one hex group "0".."ffff"; nullopt on bad syntax.
std::optional<std::uint32_t> parse_group(std::string_view s) {
  if (s.empty() || s.size() > 4) {
    return std::nullopt;
  }
  std::uint32_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint32_t>(c - 'A' + 10);
    } else {
      return std::nullopt;
    }
  }
  return v;
}

// Splits on ':' keeping empty pieces (which mark the '::' position).
std::vector<std::string_view> split_groups(std::string_view s) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t colon = s.find(':', start);
    if (colon == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, colon - start));
    start = colon + 1;
  }
  return parts;
}

std::uint64_t low_mask64(int free_bits) {
  if (free_bits >= 64) {
    return UINT64_MAX;
  }
  return free_bits <= 0 ? 0 : ((std::uint64_t{1} << free_bits) - 1);
}

}  // namespace

std::optional<Ipv6> parse_ipv6(std::string_view text) {
  // Locate "::" (at most one).
  const std::size_t gap = text.find("::");
  if (gap != std::string_view::npos &&
      text.find("::", gap + 1) != std::string_view::npos) {
    return std::nullopt;
  }
  std::array<std::uint32_t, 8> groups{};
  if (gap == std::string_view::npos) {
    const std::vector<std::string_view> parts = split_groups(text);
    if (parts.size() != 8) {
      return std::nullopt;
    }
    for (std::size_t i = 0; i < 8; ++i) {
      const auto g = parse_group(parts[i]);
      if (!g) {
        return std::nullopt;
      }
      groups[i] = *g;
    }
  } else {
    const std::string_view head = text.substr(0, gap);
    const std::string_view tail = text.substr(gap + 2);
    std::vector<std::string_view> head_parts =
        head.empty() ? std::vector<std::string_view>{} : split_groups(head);
    std::vector<std::string_view> tail_parts =
        tail.empty() ? std::vector<std::string_view>{} : split_groups(tail);
    if (head_parts.size() + tail_parts.size() > 7) {
      return std::nullopt;  // "::" must cover at least one zero group
    }
    for (std::size_t i = 0; i < head_parts.size(); ++i) {
      const auto g = parse_group(head_parts[i]);
      if (!g) {
        return std::nullopt;
      }
      groups[i] = *g;
    }
    for (std::size_t i = 0; i < tail_parts.size(); ++i) {
      const auto g = parse_group(tail_parts[i]);
      if (!g) {
        return std::nullopt;
      }
      groups[8 - tail_parts.size() + i] = *g;
    }
  }
  Ipv6 out;
  for (int i = 0; i < 4; ++i) {
    out.hi = (out.hi << 16) | groups[static_cast<std::size_t>(i)];
  }
  for (int i = 4; i < 8; ++i) {
    out.lo = (out.lo << 16) | groups[static_cast<std::size_t>(i)];
  }
  return out;
}

std::string format_ipv6(const Ipv6& addr) {
  std::array<std::uint32_t, 8> groups{};
  for (int i = 0; i < 4; ++i) {
    groups[static_cast<std::size_t>(i)] =
        static_cast<std::uint32_t>((addr.hi >> (48 - 16 * i)) & 0xffff);
    groups[static_cast<std::size_t>(i + 4)] =
        static_cast<std::uint32_t>((addr.lo >> (48 - 16 * i)) & 0xffff);
  }
  // Longest run of zero groups (length >= 2) gets "::" (RFC 5952 §4.2).
  int best_start = -1;
  int best_len = 1;  // a single zero group is not compressed
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) {
      ++j;
    }
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  std::string out;
  const auto hex = [](std::uint32_t v) {
    if (v == 0) {
      return std::string("0");
    }
    std::string s;
    bool started = false;
    for (int shift = 12; shift >= 0; shift -= 4) {
      const std::uint32_t digit = (v >> shift) & 0xf;
      if (!started && digit == 0) {
        continue;
      }
      started = true;
      s += digit < 10 ? static_cast<char>('0' + digit)
                      : static_cast<char>('a' + digit - 10);
    }
    return s;
  };
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";  // closes the previous group and opens the next
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') {
      out += ":";
    }
    out += hex(groups[static_cast<std::size_t>(i)]);
    ++i;
  }
  if (out.empty()) {
    out = "::";
  }
  return out;
}

std::pair<Interval, Interval> Ipv6Prefix::to_intervals() const {
  if (length <= 64) {
    const std::uint64_t mask = low_mask64(64 - length);
    return {Interval(bits.hi, bits.hi | mask), Interval(0, UINT64_MAX)};
  }
  const std::uint64_t mask = low_mask64(128 - length);
  return {Interval::point(bits.hi), Interval(bits.lo, bits.lo | mask)};
}

std::string Ipv6Prefix::to_string() const {
  return format_ipv6(bits) + "/" + std::to_string(length);
}

std::optional<Ipv6Prefix> parse_ipv6_prefix(std::string_view text) {
  int length = 128;
  std::string_view addr_part = text;
  const std::size_t slash = text.find('/');
  if (slash != std::string_view::npos) {
    addr_part = text.substr(0, slash);
    const std::string_view len_part = text.substr(slash + 1);
    if (len_part.empty() || len_part.size() > 3) {
      return std::nullopt;
    }
    length = 0;
    for (const char c : len_part) {
      if (c < '0' || c > '9') {
        return std::nullopt;
      }
      length = length * 10 + (c - '0');
    }
    if (length > 128) {
      return std::nullopt;
    }
  }
  const auto addr = parse_ipv6(addr_part);
  if (!addr) {
    return std::nullopt;
  }
  // Host bits below the prefix length must be zero.
  const std::uint64_t hi_free =
      length >= 64 ? 0 : low_mask64(64 - length);
  const std::uint64_t lo_free =
      length >= 128 ? 0
                    : (length <= 64 ? UINT64_MAX : low_mask64(128 - length));
  if ((addr->hi & hi_free) != 0 || (addr->lo & lo_free) != 0) {
    return std::nullopt;
  }
  return Ipv6Prefix{*addr, length};
}

}  // namespace dfw
