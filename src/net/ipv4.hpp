// IPv4 address parsing and formatting.
//
// The paper's firewalls examine 32-bit source/destination IP addresses
// "regarded as 32-bit integers" (Section 7.1). This module converts between
// dotted-quad text and the integer form used by every algorithm.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace dfw {

/// Parses "a.b.c.d" into a 32-bit big-endian integer. Returns nullopt on any
/// syntax error (missing octets, values > 255, stray characters).
std::optional<std::uint32_t> parse_ipv4(std::string_view text);

/// Formats a 32-bit integer as dotted-quad "a.b.c.d".
std::string format_ipv4(std::uint32_t addr);

}  // namespace dfw
