#include "net/interval_set.hpp"

#include <algorithm>

namespace dfw {

Value IntervalSet::size() const {
  Value total = 0;
  for (const Interval& iv : intervals_) {
    const Value n = iv.size();
    if (total > UINT64_MAX - n) {
      return UINT64_MAX;
    }
    total += n;
  }
  return total;
}

bool IntervalSet::contains(Value v) const {
  // Binary search over the sorted runs: find the first run ending >= v.
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), v,
      [](const Interval& iv, Value x) { return iv.hi() < x; });
  return it != intervals_.end() && it->contains(v);
}

bool IntervalSet::contains(const IntervalSet& other) const {
  return other.subtract(*this).empty();
}

Value IntervalSet::min() const {
  if (empty()) {
    throw std::logic_error("IntervalSet::min on empty set");
  }
  return intervals_.front().lo();
}

Value IntervalSet::max() const {
  if (empty()) {
    throw std::logic_error("IntervalSet::max on empty set");
  }
  return intervals_.back().hi();
}

void IntervalSet::add(Interval iv) {
  // Find the span of existing runs mergeable with iv and collapse them.
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) {
        return a.hi() < b.lo() && !a.mergeable(b);
      });
  auto last = first;
  Interval merged = iv;
  while (last != intervals_.end() && merged.mergeable(*last)) {
    merged = merged.merge(*last);
    ++last;
  }
  if (first == last) {
    intervals_.insert(first, merged);
  } else {
    *first = merged;
    intervals_.erase(first + 1, last);
  }
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  IntervalSet result = *this;
  for (const Interval& iv : other.intervals_) {
    result.add(iv);
  }
  return result;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet result;
  // Classic two-pointer sweep over two sorted disjoint runs.
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    if (auto common = a.intersect(b)) {
      result.intervals_.push_back(*common);
    }
    if (a.hi() < b.hi()) {
      ++i;
    } else {
      ++j;
    }
  }
  return result;
}

IntervalSet IntervalSet::subtract(const IntervalSet& other) const {
  IntervalSet result;
  std::size_t j = 0;
  for (const Interval& a : intervals_) {
    Value lo = a.lo();
    bool open = true;  // [lo, a.hi()] still pending output
    while (j < other.intervals_.size() &&
           other.intervals_[j].hi() < a.lo()) {
      ++j;
    }
    std::size_t k = j;
    while (open && k < other.intervals_.size() &&
           other.intervals_[k].lo() <= a.hi()) {
      const Interval& b = other.intervals_[k];
      if (b.lo() > lo) {
        result.intervals_.push_back(Interval(lo, b.lo() - 1));
      }
      if (b.hi() >= a.hi()) {
        open = false;
      } else {
        lo = std::max(lo, b.hi() + 1);
      }
      ++k;
    }
    if (open) {
      result.intervals_.push_back(Interval(lo, a.hi()));
    }
  }
  return result;
}

std::string IntervalSet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < intervals_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += intervals_[i].to_string();
  }
  out += "}";
  return out;
}

}  // namespace dfw
