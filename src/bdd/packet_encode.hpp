// Bit-level packet encoding into BDDs.
//
// To diff two firewalls with BDDs one must encode every packet field as a
// bit vector (Section 7.5: "every node in a BDD represents only a bit of a
// packet and not a field"). This module assigns each schema field a block
// of variables (MSB first, fields in schema order), encodes interval
// conjuncts as threshold circuits, folds a first-match policy into its
// accept-set BDD, and diffs two policies by XOR.

#pragma once

#include "bdd/bdd.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// Bit layout of a schema: field i occupies bit_offset[i] .. +bit_width[i).
struct BitLayout {
  std::vector<std::size_t> offset;
  std::vector<std::size_t> width;
  std::size_t total_bits = 0;
};

/// Computes the layout: each field gets ceil(log2(|D(F_i)|)) variables.
BitLayout layout_for(const Schema& schema);

/// Expands a packet into the layout's bit assignment (MSB-first within
/// each field block, matching encode_interval's variable order), ready for
/// BddManager::evaluate.
std::vector<bool> encode_packet(const BitLayout& layout, const Packet& p);

/// BDD for "field value (at the given block) lies in [lo, hi]".
BddRef encode_interval(BddManager& mgr, const BitLayout& layout,
                       std::size_t field, const Interval& iv);

/// BDD for a rule's predicate (conjunction over all fields).
BddRef encode_predicate(BddManager& mgr, const BitLayout& layout,
                        const Rule& rule);

/// BDD for the accept-set of a first-match policy: packets whose decision
/// is kAccept. Decisions other than kAccept are treated as "not accept",
/// matching the Boolean scope of the BDD baseline.
BddRef encode_policy(BddManager& mgr, const BitLayout& layout,
                     const Policy& policy);

/// BDD of the symmetric difference of two policies' accept sets — the
/// BDD-based analogue of the discrepancy computation.
BddRef policy_diff(BddManager& mgr, const BitLayout& layout,
                   const Policy& a, const Policy& b);

}  // namespace dfw
