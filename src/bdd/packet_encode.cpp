#include "bdd/packet_encode.hpp"

#include <stdexcept>

namespace dfw {
namespace {

std::size_t bits_needed(Value domain_hi) {
  std::size_t bits = 0;
  while (domain_hi > 0) {
    ++bits;
    domain_hi >>= 1;
  }
  return bits == 0 ? 1 : bits;
}

// BDD for "value >= bound" over the block's bits, accumulated LSB to MSB:
// at a 1-bound bit the value bit must be 1 and the tail decides ties; at a
// 0-bound bit a 1 value bit wins outright.
BddRef encode_ge(BddManager& mgr, std::size_t offset, std::size_t width,
                 Value bound) {
  BddRef acc = mgr.one();  // built LSB -> MSB
  for (std::size_t bit = 0; bit < width; ++bit) {  // 0 = LSB
    const BddRef v = mgr.var(offset + (width - 1 - bit));
    if ((bound >> bit) & 1) {
      acc = mgr.land(v, acc);
    } else {
      acc = mgr.lor(v, acc);
    }
  }
  return acc;
}

BddRef encode_le(BddManager& mgr, std::size_t offset, std::size_t width,
                 Value bound) {
  BddRef acc = mgr.one();
  for (std::size_t bit = 0; bit < width; ++bit) {  // 0 = LSB
    const BddRef v = mgr.var(offset + (width - 1 - bit));
    if ((bound >> bit) & 1) {
      acc = mgr.lor(mgr.lnot(v), acc);
    } else {
      acc = mgr.land(mgr.lnot(v), acc);
    }
  }
  return acc;
}

}  // namespace

std::vector<bool> encode_packet(const BitLayout& layout, const Packet& p) {
  if (p.size() != layout.offset.size()) {
    throw std::invalid_argument("encode_packet: packet arity mismatch");
  }
  std::vector<bool> assignment(layout.total_bits, false);
  for (std::size_t f = 0; f < p.size(); ++f) {
    for (std::size_t bit = 0; bit < layout.width[f]; ++bit) {  // 0 = LSB
      assignment[layout.offset[f] + (layout.width[f] - 1 - bit)] =
          ((p[f] >> bit) & 1) != 0;
    }
  }
  return assignment;
}

BitLayout layout_for(const Schema& schema) {
  BitLayout layout;
  layout.offset.reserve(schema.field_count());
  layout.width.reserve(schema.field_count());
  std::size_t next = 0;
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    const std::size_t width = bits_needed(schema.domain(i).hi());
    layout.offset.push_back(next);
    layout.width.push_back(width);
    next += width;
  }
  layout.total_bits = next;
  return layout;
}

BddRef encode_interval(BddManager& mgr, const BitLayout& layout,
                       std::size_t field, const Interval& iv) {
  if (field >= layout.offset.size()) {
    throw std::out_of_range("encode_interval: field out of range");
  }
  const BddRef ge =
      encode_ge(mgr, layout.offset[field], layout.width[field], iv.lo());
  const BddRef le =
      encode_le(mgr, layout.offset[field], layout.width[field], iv.hi());
  return mgr.land(ge, le);
}

BddRef encode_predicate(BddManager& mgr, const BitLayout& layout,
                        const Rule& rule) {
  BddRef acc = mgr.one();
  for (std::size_t f = 0; f < rule.conjuncts().size(); ++f) {
    BddRef field_set = mgr.zero();
    for (const Interval& iv : rule.conjunct(f).intervals()) {
      field_set = mgr.lor(field_set, encode_interval(mgr, layout, f, iv));
    }
    acc = mgr.land(acc, field_set);
  }
  return acc;
}

BddRef encode_policy(BddManager& mgr, const BitLayout& layout,
                     const Policy& policy) {
  // Fold the first-match chain back to front:
  //   f_i = ite(match_i, decision_i, f_{i+1})
  BddRef acc = mgr.zero();  // fall-through (non-comprehensive tail) rejects
  for (std::size_t i = policy.size(); i-- > 0;) {
    const Rule& rule = policy.rule(i);
    const BddRef match = encode_predicate(mgr, layout, rule);
    const BddRef decision =
        rule.decision() == kAccept ? mgr.one() : mgr.zero();
    acc = mgr.ite(match, decision, acc);
  }
  return acc;
}

BddRef policy_diff(BddManager& mgr, const BitLayout& layout, const Policy& a,
                   const Policy& b) {
  return mgr.lxor(encode_policy(mgr, layout, a),
                  encode_policy(mgr, layout, b));
}

}  // namespace dfw
