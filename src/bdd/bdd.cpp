#include "bdd/bdd.hpp"

#include <algorithm>
#include <stdexcept>

namespace dfw {

BddManager::BddManager(std::size_t num_vars) : num_vars_(num_vars) {
  if (num_vars >= UINT32_MAX) {
    throw std::invalid_argument("BddManager: too many variables");
  }
  // Terminals live at ids 0 and 1 with a past-the-end variable index so
  // that top_var comparisons treat them as below every real variable.
  nodes_.push_back({static_cast<std::uint32_t>(num_vars_), 0, 0});  // zero
  nodes_.push_back({static_cast<std::uint32_t>(num_vars_), 1, 1});  // one
}

BddRef BddManager::var(std::size_t v) {
  if (v >= num_vars_) {
    throw std::out_of_range("BddManager::var: index out of range");
  }
  return make_node(static_cast<std::uint32_t>(v), zero(), one());
}

BddRef BddManager::make_node(std::uint32_t var, BddRef lo, BddRef hi) {
  if (lo == hi) {
    return lo;  // reduction rule: redundant test
  }
  const NodeKey key{var, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) {
    return it->second;  // hash-consing: share isomorphic subgraphs
  }
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::cofactor(BddRef f, std::uint32_t var, bool value) const {
  const Node& n = nodes_[f];
  if (n.var != var) {
    return f;  // f does not test var at its top
  }
  return value ? n.hi : n.lo;
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == one()) {
    return g;
  }
  if (f == zero()) {
    return h;
  }
  if (g == h) {
    return g;
  }
  if (g == one() && h == zero()) {
    return f;
  }
  const IteKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) {
    return it->second;
  }
  const std::uint32_t v = std::min({top_var(f), top_var(g), top_var(h)});
  const BddRef lo =
      ite(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const BddRef hi =
      ite(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const BddRef result = make_node(v, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

std::uint64_t BddManager::cube_count(BddRef f) const {
  std::unordered_map<BddRef, std::uint64_t> memo;
  // Iterative post-order would avoid recursion depth concerns; depth is
  // bounded by num_vars (one level per variable), so recursion is fine.
  struct Counter {
    const std::vector<Node>& nodes;
    std::unordered_map<BddRef, std::uint64_t>& memo;
    std::uint64_t count(BddRef r) {
      if (r == 0) {
        return 0;
      }
      if (r == 1) {
        return 1;
      }
      const auto it = memo.find(r);
      if (it != memo.end()) {
        return it->second;
      }
      const std::uint64_t lo = count(nodes[r].lo);
      const std::uint64_t hi = count(nodes[r].hi);
      const std::uint64_t total =
          (lo > UINT64_MAX - hi) ? UINT64_MAX : lo + hi;
      memo.emplace(r, total);
      return total;
    }
  } counter{nodes_, memo};
  return counter.count(f);
}

std::uint64_t BddManager::sat_count(BddRef f) const {
  // Weight each edge by 2^(skipped levels); saturating arithmetic.
  const auto scaled = [](std::uint64_t count, std::uint32_t skipped) {
    if (skipped >= 64) {
      return count == 0 ? std::uint64_t{0} : UINT64_MAX;
    }
    const std::uint64_t factor = 1ull << skipped;
    return (count != 0 && count > UINT64_MAX / factor) ? UINT64_MAX
                                                       : count * factor;
  };
  std::unordered_map<BddRef, std::uint64_t> memo;  // counts below node level
  struct Counter {
    const std::vector<Node>& nodes;
    std::unordered_map<BddRef, std::uint64_t>& memo;
    const decltype(scaled)& scale;
    std::uint64_t count(BddRef r) {  // assignments over vars below var(r)
      if (r <= 1) {
        return r;
      }
      const auto it = memo.find(r);
      if (it != memo.end()) {
        return it->second;
      }
      const Node& n = nodes[r];
      const std::uint64_t lo =
          scale(count(n.lo), nodes[n.lo].var - n.var - 1);
      const std::uint64_t hi =
          scale(count(n.hi), nodes[n.hi].var - n.var - 1);
      const std::uint64_t total =
          (lo > UINT64_MAX - hi) ? UINT64_MAX : lo + hi;
      memo.emplace(r, total);
      return total;
    }
  } counter{nodes_, memo, scaled};
  return scaled(counter.count(f), top_var(f));
}

bool BddManager::evaluate(BddRef f, const std::vector<bool>& assignment) const {
  if (assignment.size() != num_vars_) {
    throw std::invalid_argument(
        "BddManager::evaluate: assignment arity mismatch");
  }
  while (f > 1) {
    const Node& n = nodes_[f];
    f = assignment[n.var] ? n.hi : n.lo;
  }
  return f == 1;
}

}  // namespace dfw
