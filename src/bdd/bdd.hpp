// A minimal reduced-ordered BDD engine.
//
// The paper argues (Section 7.5) that BDDs are the wrong vehicle for
// reporting firewall differences: a BDD node tests one *bit*, so the diff
// of two policies, read back as rule-like cubes, explodes into unreadably
// many entries, whereas FDD paths stay field-level and compact. To
// reproduce that comparison honestly we implement the baseline ourselves:
// a classic ROBDD with a unique table (hash-consing) and a memoized ite
// operator, in the spirit of Bryant (the paper's ref [6]) and CUDD (its
// ref [23]).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace dfw {

/// Handle to a BDD node within a BddManager. 0 and 1 are the terminals.
using BddRef = std::uint32_t;

class BddManager {
 public:
  /// Creates a manager over `num_vars` Boolean variables, ordered by index
  /// (variable 0 at the top).
  explicit BddManager(std::size_t num_vars);

  BddRef zero() const { return 0; }
  BddRef one() const { return 1; }

  /// The function "variable v is 1".
  BddRef var(std::size_t v);

  BddRef land(BddRef a, BddRef b) { return ite(a, b, zero()); }
  BddRef lor(BddRef a, BddRef b) { return ite(a, one(), b); }
  BddRef lxor(BddRef a, BddRef b) { return ite(a, lnot(b), b); }
  BddRef lnot(BddRef a) { return ite(a, zero(), one()); }

  /// If-then-else: the Shannon-expansion workhorse all operators reduce to.
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Number of live nodes (terminals included).
  std::size_t node_count() const { return nodes_.size(); }

  /// Evaluates f under a full assignment (assignment[v] is variable v's
  /// value; size must be num_vars()). One node walk per level — the
  /// BDD-as-classifier baseline the bench suite compares against.
  bool evaluate(BddRef f, const std::vector<bool>& assignment) const;

  /// Number of root-to-one paths — each path is one "rule-like cube" a
  /// human would have to read in a BDD-based diff report (Section 7.5's
  /// "millions of rules"). Don't-care levels do not multiply the count.
  std::uint64_t cube_count(BddRef f) const;

  /// Number of satisfying assignments over all num_vars variables
  /// (saturating at UINT64_MAX).
  std::uint64_t sat_count(BddRef f) const;

  std::size_t num_vars() const { return num_vars_; }

 private:
  struct Node {
    std::uint32_t var;  ///< variable index; num_vars_ for terminals
    BddRef lo;          ///< cofactor for var = 0
    BddRef hi;          ///< cofactor for var = 1
  };

  struct NodeKey {
    std::uint32_t var;
    BddRef lo;
    BddRef hi;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const {
      std::uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ull + k.lo;
      h = h * 0x9e3779b97f4a7c15ull + k.hi;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct IteKey {
    BddRef f;
    BddRef g;
    BddRef h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ull + k.g;
      h = h * 0x9e3779b97f4a7c15ull + k.h;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  BddRef make_node(std::uint32_t var, BddRef lo, BddRef hi);
  std::uint32_t top_var(BddRef f) const { return nodes_[f].var; }
  BddRef cofactor(BddRef f, std::uint32_t var, bool value) const;

  std::size_t num_vars_;
  std::vector<Node> nodes_;
  std::unordered_map<NodeKey, BddRef, NodeKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
};

}  // namespace dfw
