// parallel_map: fork-join mapping with deterministic result ordering.
//
// Results land in their index slot regardless of which worker computes
// them, so the returned vector is identical to the serial
// `for (i) out.push_back(fn(i))` — the property the comparison pipeline's
// "parallel output is bit-identical to serial" guarantee rests on.

#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "rt/executor.hpp"

namespace dfw {

/// Returns {fn(0), fn(1), ..., fn(n-1)} computed on `ex`. T needs only a
/// move constructor (results are staged in optionals, so no default
/// construction happens on any worker). With a non-null `context`, the
/// batch is governed: once the context aborts, unstarted indices are
/// skipped and the governing dfw::Error is rethrown here — a governed map
/// either returns every result or throws, never a partial vector. A
/// non-null obs sink traces each index as a "chunk" span (see
/// Executor::parallel_for).
template <typename T, typename F>
std::vector<T> parallel_map(Executor& ex, std::size_t n, F&& fn,
                            RunContext* context = nullptr,
                            ObsOptions obs = {}) {
  std::vector<std::optional<T>> staged(n);
  ex.parallel_for(
      n, [&](std::size_t i) { staged[i].emplace(fn(i)); }, context, obs);
  std::vector<T> out;
  out.reserve(n);
  for (std::optional<T>& slot : staged) {
    out.push_back(std::move(*slot));
  }
  return out;
}

}  // namespace dfw
