// Epoch-based reclamation for read-mostly hot swaps (the serve layer's
// RCU-style primitive).
//
// The problem: a daemon thread classifying packets must read the current
// compiled classifier without taking any lock, while an operator thread
// occasionally publishes a new version and must eventually free the old
// one — but only once no reader can still be using it. Reference counting
// would put an atomic RMW on every batch; a reader-writer lock would let
// a swap stall the data plane. Epoch reclamation costs a reader two plain
// atomic stores per critical section and moves all waiting to the writer.
//
// Protocol. The domain keeps a global epoch counter and one announcement
// slot per registered participant (kIdle when outside a critical
// section). A reader enters by loading the global epoch and storing it
// into its slot, then loads the shared pointer; it exits by storing
// kIdle. A writer publishes the new pointer first, then advances the
// epoch, and tags the retired pointer with the *new* epoch value E; the
// retired pointer is free to delete once every slot is either idle or
// announces an epoch >= E — such a reader entered after the advance, and
// therefore (seq_cst total order) after the publish, so it can only have
// seen the new pointer.
//
// Memory ordering: every operation here is seq_cst on purpose. The
// correctness argument above is a Dekker-style total-order argument
// (reader: store slot then load pointer; writer: store pointer then load
// slots), which weaker orderings do not support without standalone
// fences — and ThreadSanitizer does not model standalone fences, so the
// seq_cst formulation is also what keeps the concurrent tests
// instrumentable. Epoch operations are off the per-packet path (two per
// *batch*), so the cost is irrelevant.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace dfw {

/// A reclamation domain: one global epoch and a fixed array of
/// participant slots. Readers and writers of one shared structure share
/// one domain. All methods are thread-safe; registration is lock-free.
class EpochDomain {
 public:
  /// Maximum simultaneously registered participants.
  static constexpr std::size_t kMaxSlots = 64;
  /// Slot value announcing "not in a critical section".
  static constexpr std::uint64_t kIdle = ~static_cast<std::uint64_t>(0);

  EpochDomain() {
    for (auto& slot : slots_) {
      slot.value.store(kIdle, std::memory_order_relaxed);
    }
  }
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Claims a free slot; returns its index, or kMaxSlots when the domain
  /// is full (callers treat that as a configuration error).
  std::size_t register_slot();

  /// Releases a slot claimed by register_slot. The slot must be idle.
  void unregister_slot(std::size_t slot);

  /// Reader entry: announce presence at the current epoch. After this
  /// returns, any pointer the caller loads stays valid until exit().
  void enter(std::size_t slot) {
    const std::uint64_t e = epoch_.load(std::memory_order_seq_cst);
    slots_[slot].value.store(e, std::memory_order_seq_cst);
  }

  /// Reader exit: announce idleness, allowing retired state to drain.
  void exit(std::size_t slot) {
    slots_[slot].value.store(kIdle, std::memory_order_seq_cst);
  }

  /// Writer step, called *after* publishing the replacement pointer:
  /// advances the global epoch and returns the new value — the retire
  /// epoch to tag the old pointer with.
  std::uint64_t advance() {
    return epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  }

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_seq_cst);
  }

  /// The smallest epoch announced by any registered, non-idle slot; kIdle
  /// when every slot is idle. State retired at epoch E is reclaimable
  /// when min_active() >= E.
  std::uint64_t min_active() const;

  /// Number of currently registered slots (diagnostic).
  std::size_t registered() const;

 private:
  struct alignas(64) Slot {  // one cache line per slot: no false sharing
    std::atomic<std::uint64_t> value{kIdle};
    std::atomic<bool> claimed{false};
  };

  std::atomic<std::uint64_t> epoch_{0};
  Slot slots_[kMaxSlots];
};

/// RAII slot registration: a participant thread (a daemon shard, a test
/// reader) owns one for its lifetime and passes slot() to enter/exit.
class EpochRegistration {
 public:
  explicit EpochRegistration(EpochDomain& domain)
      : domain_(&domain), slot_(domain.register_slot()) {}
  ~EpochRegistration() {
    if (domain_ != nullptr && slot_ < EpochDomain::kMaxSlots) {
      domain_->unregister_slot(slot_);
    }
  }
  EpochRegistration(EpochRegistration&& other) noexcept
      : domain_(other.domain_), slot_(other.slot_) {
    other.domain_ = nullptr;
  }
  EpochRegistration& operator=(EpochRegistration&&) = delete;
  EpochRegistration(const EpochRegistration&) = delete;
  EpochRegistration& operator=(const EpochRegistration&) = delete;

  /// False when the domain was full; the holder must not enter().
  bool valid() const { return slot_ < EpochDomain::kMaxSlots; }
  std::size_t slot() const { return slot_; }

 private:
  EpochDomain* domain_;
  std::size_t slot_;
};

/// RAII critical section: enter on construction, exit on destruction.
class EpochGuard {
 public:
  EpochGuard(EpochDomain& domain, std::size_t slot)
      : domain_(domain), slot_(slot) {
    domain_.enter(slot_);
  }
  ~EpochGuard() { domain_.exit(slot_); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain& domain_;
  std::size_t slot_;
};

}  // namespace dfw
