#include "rt/epoch.hpp"

namespace dfw {

std::size_t EpochDomain::register_slot() {
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    if (slots_[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_seq_cst)) {
      // A freshly claimed slot must read idle before anyone enters it.
      slots_[i].value.store(kIdle, std::memory_order_seq_cst);
      return i;
    }
  }
  return kMaxSlots;
}

void EpochDomain::unregister_slot(std::size_t slot) {
  if (slot >= kMaxSlots) {
    return;
  }
  slots_[slot].value.store(kIdle, std::memory_order_seq_cst);
  slots_[slot].claimed.store(false, std::memory_order_seq_cst);
}

std::uint64_t EpochDomain::min_active() const {
  std::uint64_t min = kIdle;
  for (const Slot& slot : slots_) {
    if (!slot.claimed.load(std::memory_order_seq_cst)) {
      continue;
    }
    const std::uint64_t v = slot.value.load(std::memory_order_seq_cst);
    if (v < min) {
      min = v;
    }
  }
  return min;
}

std::size_t EpochDomain::registered() const {
  std::size_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.claimed.load(std::memory_order_seq_cst)) {
      ++n;
    }
  }
  return n;
}

}  // namespace dfw
