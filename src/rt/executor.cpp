#include "rt/executor.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <limits>

#include "rt/govern.hpp"
#include "rt/run_options.hpp"

namespace dfw {

// Workers hold plain pointers to batches, never ownership: a Batch lives
// on its owner's stack, and parallel_for_chunked does not return until no
// worker references it (outstanding_helpers == 0). That keeps every Batch
// destruction — including any captured exception object — on the owning
// thread, strictly after all worker accesses.
struct Executor::Worker {
  std::mutex mu;
  std::deque<Batch*> tokens;
};

// Shared state of one parallel_for call. Helpers claim chunk indices from
// `next`; completion is `done == chunk_count` (all chunks finished) plus
// `outstanding_helpers == 0` (no worker still holds a token). The
// first-throwing-chunk rule (smallest begin index wins) keeps the
// rethrown exception independent of the schedule.
struct Executor::Batch {
  std::size_t n = 0;
  std::size_t grain = 1;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  RunContext* ctx = nullptr;  ///< borrowed; aborted() skips unstarted chunks
  ObsOptions obs;             ///< per-chunk spans / duration samples
  Histogram* chunk_hist = nullptr;  ///< resolved once at batch entry

  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::condition_variable cv;
  std::size_t done = 0;
  std::size_t outstanding_helpers = 0;
  std::exception_ptr error;
  std::size_t error_chunk = std::numeric_limits<std::size_t>::max();
};

Executor::Executor(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Executor::~Executor() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

Executor& Executor::inline_executor() {
  static Executor serial(0);
  return serial;
}

std::size_t Executor::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

Executor& executor_or_inline(const RunOptions& run) {
  return run.executor != nullptr ? *run.executor
                                 : Executor::inline_executor();
}

void Executor::enqueue_helpers(Batch& batch, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t w =
        next_queue_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    std::lock_guard<std::mutex> lk(workers_[w]->mu);
    workers_[w]->tokens.push_back(&batch);
  }
  pending_.fetch_add(count, std::memory_order_release);
  {
    // Taking the lock (even empty) pairs with the waiters' predicate check,
    // so a worker between its check and its wait cannot miss these tokens.
    std::lock_guard<std::mutex> lk(wake_mu_);
  }
  if (count == 1) {
    wake_cv_.notify_one();
  } else {
    wake_cv_.notify_all();
  }
}

void Executor::sweep_helpers(Batch& batch) {
  std::size_t removed = 0;
  for (const std::unique_ptr<Worker>& worker : workers_) {
    std::lock_guard<std::mutex> lk(worker->mu);
    const auto it =
        std::remove(worker->tokens.begin(), worker->tokens.end(), &batch);
    removed += static_cast<std::size_t>(worker->tokens.end() - it);
    worker->tokens.erase(it, worker->tokens.end());
  }
  if (removed > 0) {
    pending_.fetch_sub(removed, std::memory_order_release);
    std::lock_guard<std::mutex> lk(batch.mu);
    batch.outstanding_helpers -= removed;
    if (batch.outstanding_helpers == 0 && batch.done == batch.chunk_count) {
      batch.cv.notify_all();
    }
  }
}

bool Executor::try_run_one(std::size_t self) {
  Batch* batch = nullptr;
  bool stolen = false;
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.tokens.empty()) {
      batch = own.tokens.back();
      own.tokens.pop_back();
    }
  }
  if (!batch) {
    for (std::size_t k = 1; k < workers_.size() && !batch; ++k) {
      Worker& victim = *workers_[(self + k) % workers_.size()];
      std::lock_guard<std::mutex> lk(victim.mu);
      if (!victim.tokens.empty()) {
        batch = victim.tokens.front();
        victim.tokens.pop_front();
        stolen = true;
      }
    }
  }
  if (!batch) {
    return false;
  }
  pending_.fetch_sub(1, std::memory_order_release);
  if (stolen) {
    steals_.fetch_add(1, std::memory_order_relaxed);
  }
  run_batch(*batch);
  // Last touch of *batch: the owner cannot leave its frame before this
  // helper is accounted for.
  std::lock_guard<std::mutex> lk(batch->mu);
  if (--batch->outstanding_helpers == 0 &&
      batch->done == batch->chunk_count) {
    batch->cv.notify_all();
  }
  return true;
}

void Executor::worker_loop(std::size_t self) {
  for (;;) {
    if (try_run_one(self)) {
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    wake_cv_.wait(lk, [this] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) {
      return;
    }
  }
}

void Executor::run_batch(Batch& batch) {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    const std::size_t chunk =
        batch.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= batch.chunk_count) {
      return;
    }
    std::exception_ptr error;
    if (batch.ctx != nullptr && batch.ctx->aborted()) {
      // Governed batch, context already breached: cancel this not-yet-
      // started chunk. The marker carries the original abort code; the
      // smallest-index rule keeps the breaching chunk's own error (which
      // precedes every skipped chunk in claim order) as the one rethrown.
      error = std::make_exception_ptr(
          Error(batch.ctx->abort_code(), "chunk cancelled before start"));
    } else {
      const std::size_t begin = chunk * batch.grain;
      const std::size_t end = std::min(begin + batch.grain, batch.n);
      const auto start = Clock::now();
      try {
        ScopedSpan span(batch.obs.tracer, "chunk", "begin", begin, "end",
                        end);
        (*batch.fn)(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                               start)
              .count());
      if (batch.chunk_hist != nullptr) {
        batch.chunk_hist->record(elapsed_ns);
      }
      busy_ns_.fetch_add(elapsed_ns, std::memory_order_relaxed);
      tasks_run_.fetch_add(1, std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lk(batch.mu);
    if (error && chunk < batch.error_chunk) {
      batch.error = error;
      batch.error_chunk = chunk;
    }
    if (++batch.done == batch.chunk_count &&
        batch.outstanding_helpers == 0) {
      batch.cv.notify_all();
    }
  }
}

void Executor::parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_chunked(n, grain, fn, nullptr);
}

namespace {

// Batch-in-flight marker; its scope is what quiescent() reports on.
class ActiveBatchGuard {
 public:
  explicit ActiveBatchGuard(std::atomic<std::size_t>& counter)
      : counter_(counter) {
    counter_.fetch_add(1, std::memory_order_acq_rel);
  }
  ~ActiveBatchGuard() { counter_.fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<std::size_t>& counter_;
};

}  // namespace

void Executor::parallel_for_chunked(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn,
    RunContext* context, ObsOptions obs) {
  if (n == 0) {
    return;
  }
  ActiveBatchGuard in_flight(active_batches_);
  if (context != nullptr && !context->aborted()) {
    // Probe once at batch entry so a cancellation or deadline that fired
    // before the batch started skips every chunk instead of running one
    // grain of work first. The raise marks the context aborted; the skip
    // markers below carry the code to the join point.
    try {
      context->check_now();
    } catch (const Error&) {
    }
  }
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunk_count = (n + grain - 1) / grain;
  Histogram* chunk_hist =
      obs.metrics != nullptr ? &obs.metrics->histogram("rt.executor.chunk_ns")
                             : nullptr;
  if (is_inline() || chunk_count == 1) {
    // Serial path: same chunk decomposition, same first-error rule, same
    // skip-after-abort behaviour — and the same per-chunk spans — as the
    // pool path.
    std::exception_ptr error;
    for (std::size_t c = 0; c < chunk_count; ++c) {
      if (context != nullptr && context->aborted()) {
        if (!error) {
          error = std::make_exception_ptr(
              Error(context->abort_code(), "chunk cancelled before start"));
        }
        continue;
      }
      const std::size_t begin = c * grain;
      const std::size_t end = std::min(begin + grain, n);
      const auto start = std::chrono::steady_clock::now();
      try {
        ScopedSpan span(obs.tracer, "chunk", "begin", begin, "end", end);
        fn(begin, end);
      } catch (...) {
        if (!error) {
          error = std::current_exception();
        }
      }
      if (chunk_hist != nullptr) {
        chunk_hist->record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
    }
    if (error) {
      std::rethrow_exception(error);
    }
    return;
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  Batch batch;
  batch.n = n;
  batch.grain = grain;
  batch.chunk_count = chunk_count;
  batch.fn = &fn;
  batch.ctx = context;
  batch.obs = obs;
  batch.chunk_hist = chunk_hist;

  // One helper per worker, capped by the chunk count — the caller claims
  // chunks too, so more helpers than chunks would only churn.
  const std::size_t helpers = std::min(thread_count(), chunk_count - 1);
  batch.outstanding_helpers = helpers;
  enqueue_helpers(batch, helpers);
  run_batch(batch);

  // All chunks are claimed now; drop helper tokens still queued so the
  // wait below only covers helpers actively draining their final claim.
  sweep_helpers(batch);
  std::unique_lock<std::mutex> lk(batch.mu);
  batch.cv.wait(lk, [&] {
    return batch.done == batch.chunk_count && batch.outstanding_helpers == 0;
  });
  if (batch.error) {
    std::rethrow_exception(batch.error);
  }
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  parallel_for_chunked(
      n, 1, [&fn](std::size_t begin, std::size_t) { fn(begin); }, nullptr);
}

void Executor::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn,
                            RunContext* context, ObsOptions obs) {
  parallel_for_chunked(
      n, 1, [&fn](std::size_t begin, std::size_t) { fn(begin); }, context,
      obs);
}

ExecutorMetrics Executor::metrics() const {
  ExecutorMetrics m;
  m.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  m.steals = steals_.load(std::memory_order_relaxed);
  m.batches = batches_.load(std::memory_order_relaxed);
  m.busy_ms =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) / 1e6;
  return m;
}

void Executor::reset_metrics() {
  if (!quiescent()) {
    // A reset racing an in-flight batch would split that batch's counters
    // across the reset boundary — half its chunks erased, half surviving —
    // so the numbers after the reset would describe no real workload.
    throw std::logic_error(
        "Executor::reset_metrics: batches in flight; reset requires "
        "quiescence (see Executor::quiescent())");
  }
  tasks_run_.store(0, std::memory_order_relaxed);
  steals_.store(0, std::memory_order_relaxed);
  batches_.store(0, std::memory_order_relaxed);
  busy_ns_.store(0, std::memory_order_relaxed);
}

}  // namespace dfw
