// Deterministic fault injection: the failure plane of the runtime.
//
// The governance layer (rt/govern.hpp) made hostile *inputs* a first-class,
// testable condition. This header does the same for hostile *environments*:
// allocation failures mid-build, a backend compile dying under memory
// pressure, a serialization write torn by the machine rebooting. Those
// failures are rare and non-reproducible in the wild, which is exactly why
// the recovery paths that handle them — serve's retry/degrade/last-good
// machinery, the snapshot loader's rejection paths — rot unless a test can
// trigger them on demand, deterministically, at a named point.
//
// A FaultPlan is a seeded schedule of injected failures. The library's hot
// paths carry *named injection sites* (fault::sites), each a single call to
// fault::hit(plan, site); a null plan short-circuits on one pointer test,
// so production runs are byte-identical and pay nothing — the same nullable
// borrowing rule as RunContext and ObsOptions, threaded through the same
// RunOptions. An armed site fires by throwing a structured dfw::Error
// (ErrorCode::kFaultInjected by default), which then travels the exact
// unwind path a real failure would.
//
// Determinism is the design center. Count triggers (fire on the Nth hit,
// then every `period` after) depend only on the per-site hit counter;
// probability triggers hash (seed, site, hit-index) through splitmix64, so
// the same seed replays the same schedule — there is no global RNG state
// to race on. Under concurrency the per-site counters are atomic: the
// *set* of fired hits per site is a pure function of the seed and the
// site's hit count, which is what the chaos harness's per-seed determinism
// gate asserts on (tests/chaos_test.cpp).

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "rt/govern.hpp"

namespace dfw {

namespace fault::sites {

/// Arena node materialisation — the allocation unit of FDD construction
/// (fired where the node budget is charged, fdd/arena.cpp).
inline constexpr const char* kArenaAlloc = "fdd.arena.alloc";
/// Entry into build_reduced_fdd (the construct phase boundary).
inline constexpr const char* kConstructPhase = "fdd.construct.phase";
/// The final reduce pass of the tree construction path.
inline constexpr const char* kReducePhase = "fdd.reduce.phase";
/// Classifier backend compilation (engine/classifier.cpp, every backend).
inline constexpr const char* kBackendCompile = "engine.backend.compile";
/// Snapshot serialization (serve/snapshot.cpp, encode side).
inline constexpr const char* kSnapshotSave = "serve.snapshot.save";
/// Snapshot deserialization (serve/snapshot.cpp, decode side).
inline constexpr const char* kSnapshotLoad = "serve.snapshot.load";
/// A swap attempt's compile step (serve/serve.cpp, per attempt).
inline constexpr const char* kSwapCompile = "serve.swap.compile";
/// The publish step after a successful swap compile — fires between the
/// compiled version existing and it becoming visible, the torn-swap window.
inline constexpr const char* kSwapPublish = "serve.swap.publish";

}  // namespace fault::sites

/// One armed injection site. A spec fires by count, by probability, or
/// both (either trigger fires the hit).
struct FaultSpec {
  /// Exact site name (one of fault::sites, or any site a test defines).
  std::string site;
  /// Fire on the Nth hit of the site, 1-based; 0 disables the count
  /// trigger.
  std::uint64_t fire_on = 0;
  /// With fire_on: keep firing every `period` hits after the first fire
  /// (fire_on, fire_on+period, ...); 0 = fire exactly once.
  std::uint64_t period = 0;
  /// Bernoulli per hit, deterministic in (plan seed, site, hit index);
  /// 0 disables the probability trigger.
  double probability = 0.0;
  /// The structured error a fire throws. kFaultInjected is the transient
  /// class serve's retry loop heals; use other codes to mimic specific
  /// failures (e.g. kCapacityExceeded to force backend degradation).
  ErrorCode code = ErrorCode::kFaultInjected;
  /// Appended to the thrown error's message.
  std::string message;
};

/// A seeded, immutable-after-construction fault schedule. hit() is safe to
/// call from concurrent threads; all mutation is per-site atomic counters.
class FaultPlan {
 public:
  FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs);

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  /// Records a hit at `site`. Throws dfw::Error when an armed spec's
  /// trigger fires; a site no spec names costs one hash lookup. `site`
  /// must be a static string literal (the sites above), as everywhere the
  /// obs layer takes phase names.
  void hit(const char* site);

  /// Per-spec observation counts, in spec order (deterministic).
  struct SiteStats {
    std::string site;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };
  std::vector<SiteStats> stats() const;

  std::uint64_t total_hits() const;
  /// Total injected faults so far — the chaos gate's >= 200 denominator.
  std::uint64_t total_fires() const;
  std::uint64_t seed() const { return seed_; }

  /// The fault schedule as deterministic JSON (seed, per-site spec and
  /// counts) — the artifact the CI chaos-smoke job uploads.
  std::string to_json() const;

 private:
  struct Armed {
    FaultSpec spec;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
  };

  bool should_fire(const Armed& armed, std::uint64_t hit_index) const;

  std::uint64_t seed_;
  // Stable storage for the armed specs; site_index_ maps a site name to
  // the specs armed on it. Both are immutable after construction, so
  // lookups are lock-free.
  std::vector<std::unique_ptr<Armed>> armed_;
  std::vector<std::pair<std::string, std::vector<std::size_t>>> site_index_;
};

namespace fault {

/// The null-tolerant hook the instrumented paths call: one pointer test
/// when no plan is installed.
inline void hit(FaultPlan* plan, const char* site) {
  if (plan != nullptr) {
    plan->hit(site);
  }
}

}  // namespace fault
}  // namespace dfw
