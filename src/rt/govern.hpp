// Resource governance: cooperative cancellation, deadlines, and budgets.
//
// FDD construction and shaping are worst-case exponential in rules x
// fields (Theorem 1), so a hostile — or merely unlucky — policy pair can
// hang or exhaust memory in the middle of a comparison pipeline. A
// RunContext makes every governed pipeline *interruptible*: it carries a
// cancellation token, a wall-clock deadline, and resource budgets (node
// count, interned-label bytes, generated-rule count), and the hot
// recursive paths call cheap amortized checkpoints against it. A breached
// limit raises a structured dfw::Error, which the governed entry points
// (discrepancies_governed, DiverseDesign::compare_governed, governed
// cross_compare) catch and convert into a *partial, clearly marked*
// result instead of an opaque exception, a hang, or an OOM kill.
//
// Design rules:
//   * Ungoverned means free: every hook takes a nullable RunContext*; a
//     null context short-circuits before touching any state, so the
//     default pipelines are byte-identical to — and as fast as — the
//     pre-governance code.
//   * Checkpoints are amortized: cancellation and deadline are only
//     consulted every `checkpoint_grain` ticks; budget charges compare
//     two integers. Worst-case cancellation latency is one grain of hot-
//     loop work plus one subtree unwind.
//   * A RunContext may be shared by concurrent tasks (a governed parallel
//     batch, cross-comparison pairs): all counters are atomic, and the
//     first breach makes the context *aborted* — a sticky state every
//     later checkpoint observes, so sibling tasks unwind promptly and
//     not-yet-started tasks in a governed Executor batch never run.

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace dfw {

/// Machine-readable cause carried by every dfw::Error.
enum class ErrorCode {
  kOk = 0,               ///< no error (Result/outcome success marker)
  kCancelled,            ///< CancelSource::cancel() observed at a checkpoint
  kDeadlineExceeded,     ///< wall-clock deadline passed
  kNodeBudgetExceeded,   ///< diagram/tree node budget breached
  kLabelBudgetExceeded,  ///< interned edge-label byte budget breached
  kRuleBudgetExceeded,   ///< generated-rule budget breached (rule blowup)
  kParseError,           ///< malformed textual input
  kInvalidInput,         ///< structurally invalid input (ids, bounds)
  kInternal,             ///< invariant violation inside the library
  kOverloaded,           ///< admission control refused the request (serve)
  kCapacityExceeded,     ///< compiled layout over a hard size cap (backends)
  kFaultInjected,        ///< deterministic injected fault (rt/fault.hpp)
};

/// Stable identifier string, e.g. "NodeBudgetExceeded".
const char* to_string(ErrorCode code);

/// The structured error of the governed API surface. Thrown by RunContext
/// checkpoints and budget charges, rethrown by the Executor at batch join
/// points, and caught at governed pipeline boundaries where it becomes an
/// outcome status. what() is "<Code>: <message>".
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message)
      : std::runtime_error(std::string(to_string(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// Value-or-Error, with room for both: a governed operation that was cut
/// short may still carry a usable partial value alongside its error (the
/// caller checks ok() / has_value() to distinguish the three states:
/// success, failure, partial).
template <typename T>
class Result {
 public:
  static Result success(T value) {
    Result r;
    r.value_.emplace(std::move(value));
    return r;
  }
  static Result failure(Error error) {
    Result r;
    r.error_.emplace(std::move(error));
    return r;
  }
  static Result partial(T value, Error error) {
    Result r;
    r.value_.emplace(std::move(value));
    r.error_.emplace(std::move(error));
    return r;
  }

  bool ok() const { return !error_.has_value(); }
  bool has_value() const { return value_.has_value(); }
  ErrorCode code() const { return error_ ? error_->code() : ErrorCode::kOk; }

  /// The value; throws the stored Error when there is none.
  const T& value() const& {
    if (!value_) {
      throw *error_;
    }
    return *value_;
  }
  T&& take() {
    if (!value_) {
      throw *error_;
    }
    return std::move(*value_);
  }
  /// The stored error; only meaningful when !ok().
  const Error& error() const { return *error_; }

 private:
  Result() = default;
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Hands out CancelTokens and flips them. Copyable; copies share the flag.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return flag_->load(std::memory_order_relaxed);
  }
  class CancelToken token() const;

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Observer end of a CancelSource. Default-constructed tokens never fire.
class CancelToken {
 public:
  CancelToken() = default;

  bool cancel_requested() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Resource ceilings. 0 means unlimited. Budgets measure *materialised*
/// state, not visits: tree/arena nodes created, bytes of interned edge
/// labels, rules emitted by a generator. For a rule-blowup factor cap,
/// set max_rules = factor * input_rule_count at the call site.
struct Budgets {
  std::size_t max_nodes = 0;
  std::size_t max_label_bytes = 0;
  std::size_t max_rules = 0;
};

/// One governed run: cancellation + deadline + budgets + usage counters.
/// Immutable configuration after construction; counters are atomic, so a
/// single context can govern a parallel batch. Passed by pointer (nullable,
/// borrowed) through options structs; a null pointer disables governance.
class RunContext {
 public:
  struct Config {
    CancelToken cancel;
    std::optional<std::chrono::steady_clock::time_point> deadline;
    Budgets budgets;
    /// Cancellation/deadline are consulted once per this many checkpoint
    /// ticks — the cancellation-latency grain of the hot loops.
    std::size_t checkpoint_grain = 256;
  };

  RunContext() = default;
  explicit RunContext(Config config) : config_(std::move(config)) {
    if (config_.checkpoint_grain == 0) {
      config_.checkpoint_grain = 1;
    }
  }

  /// Convenience: a context whose deadline is `timeout` from now.
  static RunContext after(std::chrono::milliseconds timeout) {
    Config c;
    c.deadline = std::chrono::steady_clock::now() + timeout;
    return RunContext(std::move(c));
  }
  /// Convenience: a context with budgets only.
  static RunContext with_budgets(Budgets budgets) {
    Config c;
    c.budgets = budgets;
    return RunContext(std::move(c));
  }

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  const Budgets& budgets() const { return config_.budgets; }

  /// Amortized cancellation/deadline probe for hot loops: cheap tick, full
  /// check every checkpoint_grain ticks. Throws Error on breach.
  void checkpoint() {
    if (ticks_.fetch_add(1, std::memory_order_relaxed) %
            config_.checkpoint_grain !=
        0) {
      return;
    }
    check_now();
  }

  /// Unamortized check: aborted state, cancellation, deadline.
  void check_now();

  /// Records `count` freshly materialised diagram/tree nodes; throws
  /// Error(kNodeBudgetExceeded) when the budget is breached.
  void charge_nodes(std::size_t count = 1) {
    const std::size_t total =
        nodes_.fetch_add(count, std::memory_order_relaxed) + count;
    if (config_.budgets.max_nodes != 0 &&
        total > config_.budgets.max_nodes) {
      raise(ErrorCode::kNodeBudgetExceeded,
            "created " + std::to_string(total) + " nodes, budget " +
                std::to_string(config_.budgets.max_nodes));
    }
  }

  /// Records `bytes` of freshly interned edge-label storage.
  void charge_label_bytes(std::size_t bytes) {
    const std::size_t total =
        label_bytes_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    if (config_.budgets.max_label_bytes != 0 &&
        total > config_.budgets.max_label_bytes) {
      raise(ErrorCode::kLabelBudgetExceeded,
            "interned " + std::to_string(total) + " label bytes, budget " +
                std::to_string(config_.budgets.max_label_bytes));
    }
  }

  /// Records `count` generated rules (the rule-blowup guard).
  void charge_rules(std::size_t count = 1) {
    const std::size_t total =
        rules_.fetch_add(count, std::memory_order_relaxed) + count;
    if (config_.budgets.max_rules != 0 &&
        total > config_.budgets.max_rules) {
      raise(ErrorCode::kRuleBudgetExceeded,
            "generated " + std::to_string(total) + " rules, budget " +
                std::to_string(config_.budgets.max_rules));
    }
  }

  std::size_t nodes_charged() const {
    return nodes_.load(std::memory_order_relaxed);
  }
  std::size_t label_bytes_charged() const {
    return label_bytes_.load(std::memory_order_relaxed);
  }
  std::size_t rules_charged() const {
    return rules_.load(std::memory_order_relaxed);
  }

  /// True once any governed check has failed (sticky). Concurrent tasks
  /// sharing this context observe it at their next checkpoint; a governed
  /// Executor batch skips chunks that have not started yet.
  bool aborted() const {
    return abort_code_.load(std::memory_order_relaxed) !=
           static_cast<int>(ErrorCode::kOk);
  }
  /// The code of the first breach; kOk while not aborted.
  ErrorCode abort_code() const {
    return static_cast<ErrorCode>(abort_code_.load(std::memory_order_relaxed));
  }

 private:
  [[noreturn]] void raise(ErrorCode code, const std::string& message);

  Config config_{};
  std::atomic<std::size_t> ticks_{0};
  std::atomic<std::size_t> nodes_{0};
  std::atomic<std::size_t> label_bytes_{0};
  std::atomic<std::size_t> rules_{0};
  std::atomic<int> abort_code_{static_cast<int>(ErrorCode::kOk)};
};

inline CancelToken CancelSource::token() const {
  return CancelToken(flag_);
}

/// Null-tolerant checkpoint helpers: the hot paths call these with the
/// (possibly null) context they were handed, keeping governance one
/// branch away from free when disabled.
namespace govern {

inline void checkpoint(RunContext* ctx) {
  if (ctx != nullptr) {
    ctx->checkpoint();
  }
}
inline void charge_nodes(RunContext* ctx, std::size_t count = 1) {
  if (ctx != nullptr) {
    ctx->charge_nodes(count);
  }
}
inline void charge_label_bytes(RunContext* ctx, std::size_t bytes) {
  if (ctx != nullptr) {
    ctx->charge_label_bytes(bytes);
  }
}
inline void charge_rules(RunContext* ctx, std::size_t count = 1) {
  if (ctx != nullptr) {
    ctx->charge_rules(count);
  }
}
inline bool aborted(const RunContext* ctx) {
  return ctx != nullptr && ctx->aborted();
}

}  // namespace govern
}  // namespace dfw
