#include "rt/fault.hpp"

#include <algorithm>
#include <sstream>

namespace dfw {
namespace {

// splitmix64: the standard 64-bit finalizer-style mixer. Good avalanche,
// stateless — the whole probability trigger is a pure function of its
// inputs, which is what makes the schedule replayable.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_site(std::string_view site) {
  // FNV-1a, the same idiom the lint fingerprints use.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

}  // namespace

FaultPlan::FaultPlan(std::uint64_t seed, std::vector<FaultSpec> specs)
    : seed_(seed) {
  armed_.reserve(specs.size());
  for (FaultSpec& spec : specs) {
    auto armed = std::make_unique<Armed>();
    armed->spec = std::move(spec);
    const std::string& site = armed->spec.site;
    auto it = std::find_if(site_index_.begin(), site_index_.end(),
                           [&](const auto& entry) {
                             return entry.first == site;
                           });
    if (it == site_index_.end()) {
      site_index_.emplace_back(site, std::vector<std::size_t>{});
      it = std::prev(site_index_.end());
    }
    it->second.push_back(armed_.size());
    armed_.push_back(std::move(armed));
  }
}

bool FaultPlan::should_fire(const Armed& armed,
                            std::uint64_t hit_index) const {
  const FaultSpec& spec = armed.spec;
  if (spec.fire_on != 0) {
    if (hit_index == spec.fire_on) {
      return true;
    }
    if (spec.period != 0 && hit_index > spec.fire_on &&
        (hit_index - spec.fire_on) % spec.period == 0) {
      return true;
    }
  }
  if (spec.probability > 0.0) {
    const std::uint64_t draw =
        splitmix64(seed_ ^ hash_site(spec.site) ^ hit_index);
    // 53-bit mantissa draw in [0, 1).
    const double u =
        static_cast<double>(draw >> 11) * (1.0 / 9007199254740992.0);
    if (u < spec.probability) {
      return true;
    }
  }
  return false;
}

void FaultPlan::hit(const char* site) {
  const std::string_view name(site);
  for (const auto& [indexed_site, indices] : site_index_) {
    if (indexed_site != name) {
      continue;
    }
    for (const std::size_t index : indices) {
      Armed& armed = *armed_[index];
      const std::uint64_t n =
          armed.hits.fetch_add(1, std::memory_order_relaxed) + 1;
      if (should_fire(armed, n)) {
        armed.fires.fetch_add(1, std::memory_order_relaxed);
        std::string message = "injected fault at ";
        message += armed.spec.site;
        message += " (hit " + std::to_string(n) + ")";
        if (!armed.spec.message.empty()) {
          message += ": " + armed.spec.message;
        }
        throw Error(armed.spec.code, message);
      }
    }
    return;
  }
}

std::vector<FaultPlan::SiteStats> FaultPlan::stats() const {
  std::vector<SiteStats> out;
  out.reserve(armed_.size());
  for (const auto& armed : armed_) {
    SiteStats s;
    s.site = armed->spec.site;
    s.hits = armed->hits.load(std::memory_order_relaxed);
    s.fires = armed->fires.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t FaultPlan::total_hits() const {
  std::uint64_t total = 0;
  for (const auto& armed : armed_) {
    total += armed->hits.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t FaultPlan::total_fires() const {
  std::uint64_t total = 0;
  for (const auto& armed : armed_) {
    total += armed->fires.load(std::memory_order_relaxed);
  }
  return total;
}

std::string FaultPlan::to_json() const {
  std::ostringstream out;
  out << "{\n  \"schema\": \"dfw-fault-plan-v1\",\n  \"seed\": " << seed_
      << ",\n  \"sites\": [";
  bool first = true;
  for (const auto& armed : armed_) {
    const FaultSpec& spec = armed->spec;
    out << (first ? "\n" : ",\n") << "    {\"site\": ";
    append_json_string(out, spec.site);
    out << ", \"fire_on\": " << spec.fire_on
        << ", \"period\": " << spec.period
        << ", \"probability\": " << spec.probability << ", \"code\": ";
    append_json_string(out, to_string(spec.code));
    out << ", \"hits\": " << armed->hits.load(std::memory_order_relaxed)
        << ", \"fires\": " << armed->fires.load(std::memory_order_relaxed)
        << "}";
    first = false;
  }
  out << "\n  ],\n  \"total_hits\": " << total_hits()
      << ",\n  \"total_fires\": " << total_fires() << "\n}\n";
  return out.str();
}

}  // namespace dfw
