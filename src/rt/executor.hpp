// Execution runtime: a small, dependency-free work-stealing thread pool.
//
// The hot paths of this library — FDD construction, pairwise/N-way
// comparison, batch classification — decompose into bulk independent
// subproblems (Hazelhurst's observation for BDD-style analyses holds for
// FDDs too). The Executor runs such task sets across a fixed set of
// worker threads: every worker owns a deque, takes its own work LIFO, and
// steals FIFO from siblings when idle. Parallelism is always *opt-in*:
// every parallel entry point in the library defaults to
// Executor::inline_executor(), which runs everything on the calling
// thread, and parallel results are bit-identical to serial ones (results
// land in preassigned index slots, so schedule order never shows).
//
// Blocking calls participate: a thread waiting on its own parallel_for
// claims pending iterations itself, so nested submission from inside a
// task cannot deadlock — a batch's owner alone is always sufficient to
// drain it.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

namespace dfw {

class RunContext;

/// Counters accumulated since construction (or the last reset_metrics()).
/// Queryable at any time, but only a *quiescent* read (no batch in flight,
/// see Executor::quiescent()) is a consistent cut — a mid-flight read can
/// pair a batch's tasks_run with a busy_ms that does not include them yet.
struct ExecutorMetrics {
  std::uint64_t tasks_run = 0;  ///< claimed work chunks executed
  std::uint64_t steals = 0;     ///< tasks taken from another worker's deque
  std::uint64_t batches = 0;    ///< parallel_for / parallel_map invocations
  double busy_ms = 0.0;         ///< wall time inside tasks, summed over threads
};

class Executor {
 public:
  /// A pool with `threads` workers. 0 workers makes a serial executor that
  /// runs every batch inline on the calling thread.
  explicit Executor(std::size_t threads);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The shared serial executor — the library-wide default. Never runs
  /// anything off the calling thread.
  static Executor& inline_executor();

  /// std::thread::hardware_concurrency(), floored at 1.
  static std::size_t hardware_threads();

  std::size_t thread_count() const { return threads_.size(); }
  bool is_inline() const { return threads_.empty(); }

  /// Runs fn(i) for every i in [0, n); returns when all invocations have
  /// completed. Iterations are claimed dynamically by the caller and the
  /// workers. If invocations throw, all remaining iterations still run and
  /// the exception from the smallest throwing index is rethrown.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Governed variant: iterations additionally observe `context` (borrowed,
  /// may be null). Once the context is aborted — by a breach inside an
  /// iteration or from outside — iterations that have not started yet are
  /// *skipped* instead of run, and the join point rethrows the governing
  /// dfw::Error (the smallest-index rule still applies, so the breaching
  /// iteration's own error wins over skip markers behind it).
  ///
  /// With a non-null obs sink every claimed chunk additionally emits a
  /// "chunk" trace span (attributed to the thread that ran it, with the
  /// chunk's index range as args) and a duration sample in the registry
  /// histogram "rt.executor.chunk_ns". The default sink is null and free.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                    RunContext* context, ObsOptions obs = {});

  /// Like parallel_for, but hands each task a contiguous index range
  /// fn(begin, end) of at most `grain` iterations — the right shape when
  /// per-iteration work is tiny (e.g. classifying one packet).
  void parallel_for_chunked(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);
  void parallel_for_chunked(
      std::size_t n, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn,
      RunContext* context, ObsOptions obs = {});

  /// True when no parallel_for/parallel_for_chunked batch is in flight on
  /// this executor — the precondition for a consistent metrics() cut and
  /// for reset_metrics().
  bool quiescent() const {
    return active_batches_.load(std::memory_order_acquire) == 0;
  }

  /// A point-in-time snapshot; see ExecutorMetrics for the mid-flight
  /// caveat. For a consistent cut, call at quiescence.
  ExecutorMetrics metrics() const;

  /// Zeroes the counters. Requires quiescence: resetting while a batch is
  /// in flight would tear that batch's counters in half (its already-run
  /// chunks vanish, its remaining chunks survive), so this throws
  /// std::logic_error when quiescent() is false.
  void reset_metrics();

 private:
  struct Worker;
  struct Batch;

  void worker_loop(std::size_t self);
  /// Pops one batch token (own deque back, else steal a sibling's front)
  /// and helps run it. Returns false when every deque is empty.
  bool try_run_one(std::size_t self);
  /// Spreads `count` helper tokens for `batch` over the worker deques.
  void enqueue_helpers(Batch& batch, std::size_t count);
  /// Removes this batch's not-yet-claimed helper tokens from every deque,
  /// so the batch owner never waits behind unrelated queued work and no
  /// reference to the (stack-allocated) batch outlives its owner's frame.
  void sweep_helpers(Batch& batch);
  void run_batch(Batch& batch);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::size_t> active_batches_{0};
};

}  // namespace dfw
