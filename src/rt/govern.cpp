#include "rt/govern.hpp"

namespace dfw {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "Ok";
    case ErrorCode::kCancelled:
      return "Cancelled";
    case ErrorCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case ErrorCode::kNodeBudgetExceeded:
      return "NodeBudgetExceeded";
    case ErrorCode::kLabelBudgetExceeded:
      return "LabelBudgetExceeded";
    case ErrorCode::kRuleBudgetExceeded:
      return "RuleBudgetExceeded";
    case ErrorCode::kParseError:
      return "ParseError";
    case ErrorCode::kInvalidInput:
      return "InvalidInput";
    case ErrorCode::kInternal:
      return "Internal";
    case ErrorCode::kOverloaded:
      return "Overloaded";
    case ErrorCode::kCapacityExceeded:
      return "CapacityExceeded";
    case ErrorCode::kFaultInjected:
      return "FaultInjected";
  }
  return "Unknown";
}

void RunContext::check_now() {
  const ErrorCode sticky = abort_code();
  if (sticky != ErrorCode::kOk) {
    // A sibling task (or an earlier checkpoint) already breached: unwind
    // with the original cause so the whole run reports one status.
    raise(sticky, "run already aborted");
  }
  if (config_.cancel.cancel_requested()) {
    raise(ErrorCode::kCancelled, "cancellation requested");
  }
  if (config_.deadline &&
      std::chrono::steady_clock::now() > *config_.deadline) {
    raise(ErrorCode::kDeadlineExceeded, "deadline passed");
  }
}

void RunContext::raise(ErrorCode code, const std::string& message) {
  // Keep the *first* breach code: concurrent raisers race benignly, and a
  // sticky re-raise passes its own (already recorded) code through.
  int expected = static_cast<int>(ErrorCode::kOk);
  abort_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                      std::memory_order_relaxed);
  throw Error(code, message);
}

}  // namespace dfw
