// The shared execution-environment knobs of every pipeline entry point.
//
// Before this header each options struct of the library — construction,
// comparison, generation, classification, anomaly scan, lint — carried its
// own copy of the same three fields: the borrowed Executor that decides
// where parallel work runs, the borrowed RunContext that governs it, and
// the borrowed ObsOptions sinks that observe it. Seven structs accreted
// seven slightly different field orders and seven places to forget one.
// RunOptions consolidates the triple; the per-pipeline options structs
// embed it by composition as a `run` member and keep only their genuinely
// pipeline-specific knobs (grain sizes, arena toggles, pass selections).
//
// All three members follow the library's borrowing rule: nullable, never
// owned, and null means "off" — a null executor runs serially on the
// calling thread, a null context runs ungoverned, null sinks leave every
// output byte-identical. A default-constructed RunOptions is therefore
// exactly the pre-options behaviour.
//
// The old per-struct field names survived one release as deprecated
// reference aliases into `run` and are gone (see DESIGN.md's migration
// notes); code writes `options.run.executor` and friends.

#pragma once

#include "obs/obs.hpp"

namespace dfw {

class Executor;
class RunContext;
class FaultPlan;

/// The shared quadruple: where work runs, what governs it, who observes
/// it, and what failures are injected into it. Copyable pointer-value;
/// embed by value as `run` in an options struct and pass around freely.
struct RunOptions {
  /// Borrowed executor for the parallelizable stages; null = serial
  /// (Executor::inline_executor()). Results are identical for every
  /// executor — parallelism only reorders work, never output.
  Executor* executor = nullptr;
  /// Borrowed governance context (cancellation, deadline, budgets); null =
  /// ungoverned and byte-identical to pre-governance builds.
  RunContext* context = nullptr;
  /// Borrowed observability sinks (tracer + metrics registry); null sinks
  /// are free and leave outputs byte-identical.
  ObsOptions obs = {};
  /// Borrowed deterministic fault schedule (rt/fault.hpp); null injects
  /// nothing, costs one pointer test per site, and is byte-identical to a
  /// build without the fault plane.
  FaultPlan* faults = nullptr;
};

/// The executor `run` names, or the shared inline (serial) executor.
Executor& executor_or_inline(const RunOptions& run);

}  // namespace dfw
