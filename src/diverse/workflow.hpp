// The three-phase diverse-design workflow (paper, Section 2).
//
// A DiverseDesign session collects the team firewalls from the design
// phase, runs the comparison phase (construct -> shape -> compare), and
// drives the resolution phase to a final, unanimously agreed firewall.
// Cross comparison of all pairs (Section 7.3) is offered alongside the
// direct N-way comparison.
//
// Session-wide knobs travel in WorkflowOptions: the resolution method and
// base team, the comparison mode the report uses, and the executor the
// comparison phase runs on. The executor default is serial
// (Executor::inline_executor()); with a pool, cross comparison runs its
// K(K-1)/2 pairs as independent tasks and direct comparison constructs
// the K diagrams concurrently — with output identical to serial.

#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "diverse/resolve.hpp"
#include "fdd/compare.hpp"
#include "fw/policy.hpp"

namespace dfw {

class Executor;

/// Which resolution method generates the final firewall (Section 6).
enum class ResolutionMethod {
  kCorrectedFdd,   ///< method 1: correct an FDD, regenerate rules
  kPrependAndTrim, ///< method 2: prepend corrections, remove redundancy
};

/// How the comparison phase reports (Section 7.3): one direct N-way pass
/// over all teams, or every unordered pair separately.
enum class ComparisonMode {
  kDirect,
  kCross,
};

/// Session-wide options for a DiverseDesign run.
struct WorkflowOptions {
  /// Shared execution knobs (rt/run_options.hpp), honoured by the whole
  /// session. `run.executor` (borrowed; null = serial) drives the
  /// comparison phase: cross comparison runs its K(K-1)/2 pairs as
  /// independent tasks and direct comparison constructs the K diagrams
  /// concurrently, with output identical to serial. `run.context`
  /// (borrowed, nullable) governs submission builds, comparison, and
  /// resolution alike: with a context set, cross_compare() reports
  /// per-pair status instead of throwing and compare_governed() returns
  /// partial results; the plain entry points let the dfw::Error
  /// propagate. `run.obs` (borrowed, nullable sinks) observes the
  /// session: submissions run under "workflow.submit" spans, the
  /// comparison phase under "workflow.compare"/"workflow.cross_compare"
  /// with one "pair" span per unordered pair, and resolution under
  /// "workflow.resolve"; the underlying pipelines inherit the sinks
  /// through CompareOptions/ConstructOptions/GenerateOptions.
  RunOptions run = {};
  ResolutionMethod resolution = ResolutionMethod::kCorrectedFdd;
  /// Team whose rule sequence seeds the resolution phase.
  std::size_t base_team = 0;
  ComparisonMode comparison = ComparisonMode::kDirect;
  /// Forwarded to the comparison pipeline (see CompareOptions).
  std::size_t fork_threshold = 4;
  /// Forwarded to the comparison pipeline: run serial comparisons
  /// arena-native (see CompareOptions::use_arena).
  bool use_arena = true;
};

/// One pairwise comparison result from cross comparison. In a governed
/// session a pair cut short by cancellation/deadline/budget carries
/// complete = false and the cause in `status`; its discrepancies are the
/// partial findings up to the cut (empty when the pair never started).
struct PairwiseReport {
  std::size_t team_a = 0;
  std::size_t team_b = 0;
  std::vector<Discrepancy> discrepancies;
  bool complete = true;
  ErrorCode status = ErrorCode::kOk;

  friend bool operator==(const PairwiseReport&,
                         const PairwiseReport&) = default;
};

class DiverseDesign {
 public:
  /// Starts a session over the given decision vocabulary.
  explicit DiverseDesign(DecisionSet decisions, WorkflowOptions options = {});

  const WorkflowOptions& options() const { return options_; }

  /// Design phase: registers one team's firewall. All firewalls must share
  /// a schema and be comprehensive (validated on submit). Returns the team
  /// index.
  std::size_t submit(std::string team_name, Policy policy);

  std::size_t team_count() const { return policies_.size(); }
  const Policy& policy(std::size_t team) const;
  const std::vector<std::string>& team_names() const { return names_; }
  const DecisionSet& decisions() const { return decisions_; }

  /// Comparison phase, direct N-way (Section 7.3). Requires >= 2 teams.
  std::vector<Discrepancy> compare() const;

  /// Governed direct comparison: a breach of options().context becomes a
  /// partial CompareOutcome (complete = false, discrepancies found so
  /// far) instead of an exception. With a null context this is compare()
  /// wrapped in an always-complete outcome.
  CompareOutcome compare_governed() const;

  /// Comparison phase, cross comparison: one report per unordered pair,
  /// ordered (0,1), (0,2), ..., (K-2,K-1). With a pool executor the pairs
  /// run as independent tasks; the order and contents never change.
  std::vector<PairwiseReport> cross_compare() const;

  /// Human-readable report, Table-3 style, honouring
  /// options().comparison: one table for kDirect, one per pair for kCross.
  std::string report() const;

  /// Resolution phase: given an agreed decision per discrepancy (indices
  /// into compare()'s result), produce the final firewall using
  /// options().resolution and options().base_team.
  Policy resolve(const ResolutionPlan& plan) const;
  /// Same, with the session options overridden per call.
  Policy resolve(const ResolutionPlan& plan, ResolutionMethod method,
                 std::size_t base_team = 0) const;

  /// Shortcut: resolve every discrepancy in favour of team `winner`.
  /// The result is then equivalent to `policy(winner)` but expressed
  /// through the chosen method — useful for testing and for adopting a
  /// reference team wholesale.
  Policy resolve_in_favour_of(std::size_t winner) const;
  Policy resolve_in_favour_of(std::size_t winner,
                              ResolutionMethod method,
                              std::size_t base_team) const;

 private:
  CompareOptions compare_options() const;

  DecisionSet decisions_;
  WorkflowOptions options_;
  std::vector<std::string> names_;
  std::vector<Policy> policies_;
};

}  // namespace dfw
