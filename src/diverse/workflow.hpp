// The three-phase diverse-design workflow (paper, Section 2).
//
// A DiverseDesign session collects the team firewalls from the design
// phase, runs the comparison phase (construct -> shape -> compare), and
// drives the resolution phase to a final, unanimously agreed firewall.
// Cross comparison of all pairs (Section 7.3) is offered alongside the
// direct N-way comparison.

#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "diverse/resolve.hpp"
#include "fdd/compare.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// Which resolution method generates the final firewall (Section 6).
enum class ResolutionMethod {
  kCorrectedFdd,   ///< method 1: correct an FDD, regenerate rules
  kPrependAndTrim, ///< method 2: prepend corrections, remove redundancy
};

/// One pairwise comparison result from cross comparison.
struct PairwiseReport {
  std::size_t team_a = 0;
  std::size_t team_b = 0;
  std::vector<Discrepancy> discrepancies;
};

class DiverseDesign {
 public:
  /// Starts a session over the given decision vocabulary.
  explicit DiverseDesign(DecisionSet decisions);

  /// Design phase: registers one team's firewall. All firewalls must share
  /// a schema and be comprehensive (validated on submit). Returns the team
  /// index.
  std::size_t submit(std::string team_name, Policy policy);

  std::size_t team_count() const { return policies_.size(); }
  const Policy& policy(std::size_t team) const;
  const std::vector<std::string>& team_names() const { return names_; }
  const DecisionSet& decisions() const { return decisions_; }

  /// Comparison phase, direct N-way (Section 7.3). Requires >= 2 teams.
  std::vector<Discrepancy> compare() const;

  /// Comparison phase, cross comparison: one report per unordered pair.
  std::vector<PairwiseReport> cross_compare() const;

  /// Human-readable report of compare(), Table-3 style.
  std::string report() const;

  /// Resolution phase: given an agreed decision per discrepancy (indices
  /// into compare()'s result), produce the final firewall.
  Policy resolve(const ResolutionPlan& plan,
                 ResolutionMethod method = ResolutionMethod::kCorrectedFdd,
                 std::size_t base_team = 0) const;

  /// Shortcut: resolve every discrepancy in favour of team `winner`.
  /// The result is then equivalent to `policy(winner)` but expressed
  /// through the chosen method — useful for testing and for adopting a
  /// reference team wholesale.
  Policy resolve_in_favour_of(std::size_t winner,
                              ResolutionMethod method,
                              std::size_t base_team) const;

 private:
  DecisionSet decisions_;
  std::vector<std::string> names_;
  std::vector<Policy> policies_;
};

}  // namespace dfw
