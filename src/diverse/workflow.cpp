#include "diverse/workflow.hpp"

#include <stdexcept>

#include "diverse/discrepancy.hpp"
#include "fdd/construct.hpp"
#include "rt/executor.hpp"
#include "rt/parallel.hpp"

namespace dfw {

DiverseDesign::DiverseDesign(DecisionSet decisions, WorkflowOptions options)
    : decisions_(std::move(decisions)), options_(options) {}

CompareOptions DiverseDesign::compare_options() const {
  CompareOptions options;
  options.run = options_.run;
  options.fork_threshold = options_.fork_threshold;
  options.use_arena = options_.use_arena;
  return options;
}

std::size_t DiverseDesign::submit(std::string team_name, Policy policy) {
  ScopedSpan span(options_.run.obs.tracer, "workflow.submit", "team",
                  policies_.size());
  if (!policies_.empty() && !(policy.schema() == policies_[0].schema())) {
    throw std::invalid_argument("submit: schema differs from earlier teams");
  }
  // Comprehensiveness gate: a rule sequence must cover every packet to
  // serve as a firewall (Section 3.1). Governed sessions bound this build
  // too — a hostile submission must not hang the design phase.
  ConstructOptions construct;
  construct.run.context = options_.run.context;
  construct.run.obs = options_.run.obs;
  Fdd fdd = build_reduced_fdd(policy, construct);
  fdd.validate();
  names_.push_back(std::move(team_name));
  policies_.push_back(std::move(policy));
  return policies_.size() - 1;
}

const Policy& DiverseDesign::policy(std::size_t team) const {
  if (team >= policies_.size()) {
    throw std::out_of_range("policy: no such team");
  }
  return policies_[team];
}

std::vector<Discrepancy> DiverseDesign::compare() const {
  if (policies_.size() < 2) {
    throw std::logic_error("compare: need at least two teams");
  }
  ScopedSpan span(options_.run.obs.tracer, "workflow.compare", "teams",
                  policies_.size());
  return discrepancies_many(policies_, compare_options());
}

CompareOutcome DiverseDesign::compare_governed() const {
  if (policies_.size() < 2) {
    throw std::logic_error("compare: need at least two teams");
  }
  ScopedSpan span(options_.run.obs.tracer, "workflow.compare", "teams",
                  policies_.size());
  return discrepancies_many_governed(policies_, compare_options());
}

std::vector<PairwiseReport> DiverseDesign::cross_compare() const {
  if (policies_.size() < 2) {
    throw std::logic_error("cross_compare: need at least two teams");
  }
  ScopedSpan span(options_.run.obs.tracer, "workflow.cross_compare", "teams",
                  policies_.size());
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(policies_.size() * (policies_.size() - 1) / 2);
  for (std::size_t a = 0; a < policies_.size(); ++a) {
    for (std::size_t b = a + 1; b < policies_.size(); ++b) {
      pairs.emplace_back(a, b);
    }
  }
  // Each pair is an independent construct->shape->compare pipeline; run
  // them as pool tasks. The pair pipelines get a serial CompareOptions so
  // the pool's threads each own one whole pipeline instead of contending
  // over intra-pair subtasks.
  Executor& ex = executor_or_inline(options_.run);
  // A serial pipeline per pair keeps each task on one thread; use_arena
  // then gives every task its own task-local arena.
  CompareOptions pair_options;
  pair_options.run.context = options_.run.context;
  pair_options.run.obs = options_.run.obs;
  pair_options.fork_threshold = options_.fork_threshold;
  pair_options.use_arena = options_.use_arena;
  const auto run_pair = [&](std::size_t i) {
    const auto [a, b] = pairs[i];
    // One span per unordered pair, on whichever pool thread runs it; the
    // pair's construct/shape/compare phase spans nest inside.
    ScopedSpan pair_span(options_.run.obs.tracer, "pair", "team_a", a, "team_b",
                         b);
    if (options_.run.context == nullptr) {
      return PairwiseReport{
          a, b, discrepancies(policies_[a], policies_[b], pair_options)};
    }
    // Governed session: each pair absorbs its own governance cut into a
    // per-pair status, so one breached pair never torpedoes the others'
    // reports. A pair starting after the shared context already aborted
    // is marked cancelled without doing any work.
    PairwiseReport report;
    report.team_a = a;
    report.team_b = b;
    if (options_.run.context->aborted()) {
      report.complete = false;
      report.status = options_.run.context->abort_code();
      return report;
    }
    CompareOutcome outcome =
        discrepancies_governed(policies_[a], policies_[b], pair_options);
    report.discrepancies = std::move(outcome.discrepancies);
    report.complete = outcome.complete;
    report.status = outcome.status;
    return report;
  };
  return parallel_map<PairwiseReport>(ex, pairs.size(), run_pair, nullptr,
                                      options_.run.obs);
}

std::string DiverseDesign::report() const {
  if (options_.comparison == ComparisonMode::kCross) {
    std::string out;
    for (const PairwiseReport& pair : cross_compare()) {
      out += "== " + names_[pair.team_a] + " vs " + names_[pair.team_b] +
             " ==\n";
      out += format_discrepancy_report(
          policies_[0].schema(), decisions_, pair.discrepancies,
          {names_[pair.team_a], names_[pair.team_b]});
    }
    return out;
  }
  return format_discrepancy_report(policies_[0].schema(), decisions_,
                                   compare(), names_);
}

Policy DiverseDesign::resolve(const ResolutionPlan& plan) const {
  return resolve(plan, options_.resolution, options_.base_team);
}

Policy DiverseDesign::resolve(const ResolutionPlan& plan,
                              ResolutionMethod method,
                              std::size_t base_team) const {
  ScopedSpan span(options_.run.obs.tracer, "workflow.resolve", "base_team",
                  base_team);
  switch (method) {
    case ResolutionMethod::kCorrectedFdd:
      return resolve_via_fdd(policies_, plan, base_team, options_.run.obs);
    case ResolutionMethod::kPrependAndTrim:
      return resolve_via_corrections(policies_, plan, base_team,
                                     options_.run.obs);
  }
  throw std::invalid_argument("resolve: unknown method");
}

Policy DiverseDesign::resolve_in_favour_of(std::size_t winner) const {
  return resolve_in_favour_of(winner, options_.resolution,
                              options_.base_team);
}

Policy DiverseDesign::resolve_in_favour_of(std::size_t winner,
                                           ResolutionMethod method,
                                           std::size_t base_team) const {
  const std::vector<Discrepancy> all = compare();
  ResolutionPlan plan;
  plan.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    plan.push_back(adopt(i, all[i], winner));
  }
  return resolve(plan, method, base_team);
}

}  // namespace dfw
