#include "diverse/workflow.hpp"

#include <stdexcept>

#include "diverse/discrepancy.hpp"
#include "fdd/construct.hpp"

namespace dfw {

DiverseDesign::DiverseDesign(DecisionSet decisions)
    : decisions_(std::move(decisions)) {}

std::size_t DiverseDesign::submit(std::string team_name, Policy policy) {
  if (!policies_.empty() && !(policy.schema() == policies_[0].schema())) {
    throw std::invalid_argument("submit: schema differs from earlier teams");
  }
  // Comprehensiveness gate: a rule sequence must cover every packet to
  // serve as a firewall (Section 3.1).
  Fdd fdd = build_reduced_fdd(policy);
  fdd.validate();
  names_.push_back(std::move(team_name));
  policies_.push_back(std::move(policy));
  return policies_.size() - 1;
}

const Policy& DiverseDesign::policy(std::size_t team) const {
  if (team >= policies_.size()) {
    throw std::out_of_range("policy: no such team");
  }
  return policies_[team];
}

std::vector<Discrepancy> DiverseDesign::compare() const {
  if (policies_.size() < 2) {
    throw std::logic_error("compare: need at least two teams");
  }
  return discrepancies_many(policies_);
}

std::vector<PairwiseReport> DiverseDesign::cross_compare() const {
  if (policies_.size() < 2) {
    throw std::logic_error("cross_compare: need at least two teams");
  }
  std::vector<PairwiseReport> reports;
  for (std::size_t a = 0; a < policies_.size(); ++a) {
    for (std::size_t b = a + 1; b < policies_.size(); ++b) {
      reports.push_back(
          {a, b, discrepancies(policies_[a], policies_[b])});
    }
  }
  return reports;
}

std::string DiverseDesign::report() const {
  return format_discrepancy_report(policies_[0].schema(), decisions_,
                                   compare(), names_);
}

Policy DiverseDesign::resolve(const ResolutionPlan& plan,
                              ResolutionMethod method,
                              std::size_t base_team) const {
  switch (method) {
    case ResolutionMethod::kCorrectedFdd:
      return resolve_via_fdd(policies_, plan, base_team);
    case ResolutionMethod::kPrependAndTrim:
      return resolve_via_corrections(policies_, plan, base_team);
  }
  throw std::invalid_argument("resolve: unknown method");
}

Policy DiverseDesign::resolve_in_favour_of(std::size_t winner,
                                           ResolutionMethod method,
                                           std::size_t base_team) const {
  const std::vector<Discrepancy> all = compare();
  ResolutionPlan plan;
  plan.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    plan.push_back(adopt(i, all[i], winner));
  }
  return resolve(plan, method, base_team);
}

}  // namespace dfw
