// Human-readable discrepancy reports.
//
// The comparison phase must present discrepancies "in human readable
// format in order to be used in the next step" (paper, Section 1.2) —
// rule-like lines with CIDR prefixes for IP fields (Section 7.1), one
// column per team, exactly like the paper's Table 3.

#pragma once

#include <string>
#include <vector>

#include "fdd/compare.hpp"
#include "fw/decision.hpp"
#include "fw/schema.hpp"

namespace dfw {

/// Renders one discrepancy as "<predicate> : <team1>=accept <team2>=discard".
/// `team_names` labels the decision columns; empty names default to
/// "team1", "team2", ...
std::string format_discrepancy(const Schema& schema,
                               const DecisionSet& decisions,
                               const Discrepancy& d,
                               const std::vector<std::string>& team_names = {});

/// Renders a full report: header, one line per discrepancy, and a summary
/// line with the discrepancy count and total packets covered.
std::string format_discrepancy_report(
    const Schema& schema, const DecisionSet& decisions,
    const std::vector<Discrepancy>& discrepancies,
    const std::vector<std::string>& team_names = {});

}  // namespace dfw
