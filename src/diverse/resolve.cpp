#include "diverse/resolve.hpp"

#include <algorithm>
#include <stdexcept>

#include "fdd/construct.hpp"
#include "fdd/shape.hpp"
#include "gen/generate.hpp"
#include "gen/redundancy.hpp"

namespace dfw {
namespace {

// Validates the plan against a freshly computed discrepancy list and
// returns agreed decisions indexed by discrepancy position.
std::vector<Decision> agreed_by_index(
    const std::vector<Discrepancy>& discrepancies,
    const ResolutionPlan& plan) {
  std::vector<bool> covered(discrepancies.size(), false);
  std::vector<Decision> agreed(discrepancies.size(), kAccept);
  for (const Resolution& r : plan) {
    if (r.discrepancy_index >= discrepancies.size()) {
      throw std::invalid_argument("resolution: discrepancy index out of range");
    }
    if (covered[r.discrepancy_index]) {
      throw std::invalid_argument("resolution: discrepancy resolved twice");
    }
    covered[r.discrepancy_index] = true;
    agreed[r.discrepancy_index] = r.agreed;
  }
  if (!std::all_of(covered.begin(), covered.end(),
                   [](bool b) { return b; })) {
    throw std::invalid_argument("resolution: some discrepancy left unresolved");
  }
  return agreed;
}

std::vector<Fdd> build_shaped(const std::vector<Policy>& policies,
                              const ObsOptions& obs = {}) {
  if (policies.size() < 2) {
    throw std::invalid_argument("resolution: need at least two policies");
  }
  std::vector<Fdd> fdds;
  fdds.reserve(policies.size());
  for (const Policy& p : policies) {
    ConstructOptions construct;
    construct.run.obs = obs;
    fdds.push_back(build_reduced_fdd(p, construct));
    fdds.back().validate();
  }
  shape_all(fdds);
  return fdds;
}

// Walks the semi-isomorphic diagrams in the same depth-first order as the
// comparison algorithm; at each discrepant terminal (not all decisions
// equal) overwrites `base`'s terminal with the next agreed decision.
void correct(std::vector<FddNode*>& nodes, FddNode* base,
             const std::vector<Decision>& agreed, std::size_t& next) {
  const FddNode* first = nodes.front();
  if (first->is_terminal()) {
    const bool all_equal = std::all_of(
        nodes.begin(), nodes.end(), [&](const FddNode* n) {
          return n->decision == first->decision;
        });
    if (!all_equal) {
      if (next >= agreed.size()) {
        throw std::logic_error("resolution: discrepancy walk out of sync");
      }
      base->decision = agreed[next++];
    }
    return;
  }
  for (std::size_t e = 0; e < first->edges.size(); ++e) {
    std::vector<FddNode*> children;
    children.reserve(nodes.size());
    for (FddNode* n : nodes) {
      children.push_back(n->edges[e].target.get());
    }
    correct(children, base->edges[e].target.get(), agreed, next);
  }
}

}  // namespace

Resolution adopt(std::size_t discrepancy_index, const Discrepancy& d,
                 std::size_t winner_team) {
  if (winner_team >= d.decisions.size()) {
    throw std::invalid_argument("adopt: no such team");
  }
  return Resolution{discrepancy_index, d.decisions[winner_team]};
}

ResolutionPlan plan_by_majority(
    const std::vector<Discrepancy>& discrepancies,
    std::size_t arbiter_team) {
  ResolutionPlan plan;
  plan.reserve(discrepancies.size());
  for (std::size_t i = 0; i < discrepancies.size(); ++i) {
    const std::vector<Decision>& votes = discrepancies[i].decisions;
    if (arbiter_team >= votes.size()) {
      throw std::invalid_argument("plan_by_majority: no such arbiter team");
    }
    Decision best = votes[arbiter_team];
    std::size_t best_count = 0;
    for (const Decision candidate : votes) {
      const std::size_t count = static_cast<std::size_t>(
          std::count(votes.begin(), votes.end(), candidate));
      // Strict majority beats the arbiter; ties keep the arbiter's pick.
      const std::size_t arbiter_count = static_cast<std::size_t>(
          std::count(votes.begin(), votes.end(), votes[arbiter_team]));
      if (count > best_count && count > arbiter_count) {
        best = candidate;
        best_count = count;
      }
    }
    plan.push_back({i, best});
  }
  return plan;
}

Policy resolve_via_fdd(const std::vector<Policy>& policies,
                       const ResolutionPlan& plan, std::size_t base_team) {
  return resolve_via_fdd(policies, plan, base_team, ObsOptions{});
}

Policy resolve_via_fdd(const std::vector<Policy>& policies,
                       const ResolutionPlan& plan, std::size_t base_team,
                       const ObsOptions& obs) {
  if (base_team >= policies.size()) {
    throw std::invalid_argument("resolve_via_fdd: no such team");
  }
  std::vector<Fdd> fdds = build_shaped(policies, obs);
  const std::vector<Discrepancy> discrepancies = compare_fdds_many(fdds);
  const std::vector<Decision> agreed = agreed_by_index(discrepancies, plan);

  std::vector<FddNode*> roots;
  roots.reserve(fdds.size());
  for (Fdd& f : fdds) {
    roots.push_back(&f.mutable_root());
  }
  std::size_t next = 0;
  correct(roots, &fdds[base_team].mutable_root(), agreed, next);
  if (next != agreed.size()) {
    throw std::logic_error("resolve_via_fdd: correction walk out of sync");
  }
  GenerateOptions generate;
  generate.run.obs = obs;
  return generate_policy(fdds[base_team], generate);
}

Policy resolve_via_corrections(const std::vector<Policy>& policies,
                               const ResolutionPlan& plan,
                               std::size_t base_team) {
  return resolve_via_corrections(policies, plan, base_team, ObsOptions{});
}

Policy resolve_via_corrections(const std::vector<Policy>& policies,
                               const ResolutionPlan& plan,
                               std::size_t base_team, const ObsOptions& obs) {
  if (base_team >= policies.size()) {
    throw std::invalid_argument("resolve_via_corrections: no such team");
  }
  std::vector<Fdd> fdds = build_shaped(policies, obs);
  const std::vector<Discrepancy> discrepancies = compare_fdds_many(fdds);
  const std::vector<Decision> agreed = agreed_by_index(discrepancies, plan);

  const Policy& base = policies[base_team];
  std::vector<Rule> rules;
  for (std::size_t i = 0; i < discrepancies.size(); ++i) {
    // Only the resolutions the base team got wrong need prepending; the
    // discrepancy predicates are pairwise disjoint (distinct decision
    // paths), so their relative order is immaterial.
    if (discrepancies[i].decisions[base_team] != agreed[i]) {
      rules.emplace_back(base.schema(), discrepancies[i].conjuncts,
                         agreed[i]);
    }
  }
  rules.insert(rules.end(), base.rules().begin(), base.rules().end());
  return remove_redundant(Policy(base.schema(), std::move(rules)));
}

}  // namespace dfw
