#include "diverse/discrepancy.hpp"

#include "fw/format.hpp"

namespace dfw {
namespace {

std::string team_label(const std::vector<std::string>& names,
                       std::size_t i) {
  if (i < names.size() && !names[i].empty()) {
    return names[i];
  }
  return "team" + std::to_string(i + 1);
}

}  // namespace

std::string format_discrepancy(const Schema& schema,
                               const DecisionSet& decisions,
                               const Discrepancy& d,
                               const std::vector<std::string>& team_names) {
  std::string out;
  bool any_field = false;
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    const Field& field = schema.field(i);
    if (d.conjuncts[i] == IntervalSet(field.domain)) {
      continue;
    }
    if (any_field) {
      out += " ^ ";
    }
    out += field.name + " in " + format_spec(field, d.conjuncts[i]);
    any_field = true;
  }
  if (!any_field) {
    out += "all packets";
  }
  out += " : ";
  for (std::size_t i = 0; i < d.decisions.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += team_label(team_names, i) + "=" +
           decisions.name(d.decisions[i]);
  }
  return out;
}

std::string format_discrepancy_report(
    const Schema& schema, const DecisionSet& decisions,
    const std::vector<Discrepancy>& discrepancies,
    const std::vector<std::string>& team_names) {
  if (discrepancies.empty()) {
    return "no functional discrepancies: the firewalls are equivalent\n";
  }
  std::string out = "functional discrepancies (" +
                    std::to_string(discrepancies.size()) + "):\n";
  Value packets = 0;
  for (std::size_t i = 0; i < discrepancies.size(); ++i) {
    out += "  d" + std::to_string(i + 1) + ": " +
           format_discrepancy(schema, decisions, discrepancies[i],
                              team_names) +
           "\n";
    const Value n = discrepancy_packet_count(discrepancies[i]);
    packets = (packets > UINT64_MAX - n) ? UINT64_MAX : packets + n;
  }
  out += "  total packets affected: " +
         (packets == UINT64_MAX ? std::string("2^64 or more (saturated)")
                                : std::to_string(packets)) +
         "\n";
  return out;
}

}  // namespace dfw
