// Discrepancy resolution (paper, Section 6).
//
// After the teams agree on the correct decision for every discrepancy, a
// final firewall must be produced. Method 1 corrects one of the shaped
// FDDs and regenerates rules from it; method 2 prepends the corrections a
// team got wrong to that team's original firewall and removes redundancy.
// Both yield firewalls equivalent to the resolution, by construction.

#pragma once

#include <cstddef>
#include <vector>

#include "fdd/compare.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// One resolved discrepancy: the predicate (by index into the discrepancy
/// list) plus the decision the teams agreed on.
struct Resolution {
  std::size_t discrepancy_index;
  Decision agreed;
};

/// A resolution for every discrepancy, in any order; each index must be
/// resolved exactly once.
using ResolutionPlan = std::vector<Resolution>;

/// Convenience: resolve discrepancy i by adopting team `winner`'s decision.
Resolution adopt(std::size_t discrepancy_index, const Discrepancy& d,
                 std::size_t winner_team);

/// Builds a plan by majority vote over the teams' decisions — the
/// N-version-programming decision-selection mechanism the paper's method
/// is inspired by (Section 9). Ties go to `arbiter_team`'s decision.
/// Intended for N >= 3 teams; with N = 2 every discrepancy is a tie and
/// the arbiter decides everything.
ResolutionPlan plan_by_majority(const std::vector<Discrepancy>& discrepancies,
                                std::size_t arbiter_team = 0);

/// Method 1 (Section 6.1): correct the shaped FDD of team `base_team` at
/// every discrepant terminal and generate a compact policy from it.
/// `policies` are the original team firewalls (>= 2, same schema,
/// comprehensive); `plan` must cover all their discrepancies.
Policy resolve_via_fdd(const std::vector<Policy>& policies,
                       const ResolutionPlan& plan, std::size_t base_team = 0);

/// Observable variant: the internal rebuild/shape/compare walk runs with
/// the given sinks (per-policy "build_reduced_fdd" spans) and the final
/// regeneration emits its "generate" span and "gen.rules_emitted" count.
Policy resolve_via_fdd(const std::vector<Policy>& policies,
                       const ResolutionPlan& plan, std::size_t base_team,
                       const ObsOptions& obs);

/// Method 2 (Section 6.2): take team `base_team`'s original firewall,
/// prepend (in plan order) the resolved rules on which that team's decision
/// was wrong, and remove redundant rules from the result.
Policy resolve_via_corrections(const std::vector<Policy>& policies,
                               const ResolutionPlan& plan,
                               std::size_t base_team);

/// Observable variant; see the observable resolve_via_fdd.
Policy resolve_via_corrections(const std::vector<Policy>& policies,
                               const ResolutionPlan& plan,
                               std::size_t base_team, const ObsOptions& obs);

}  // namespace dfw
