#include "simplify/simplify.hpp"

#include <cstddef>
#include <cstdint>
#include <exception>
#include <iterator>
#include <utility>
#include <vector>

#include "analysis/anomaly.hpp"
#include "fdd/arena.hpp"
#include "obs/names.hpp"
#include "obs/obs.hpp"

namespace dfw {
namespace {

/// Index of the single field where the two rules' conjuncts differ, when
/// the rules share a decision and differ in exactly one field; SIZE_MAX
/// otherwise. Merging such a pair into one rule whose differing conjunct
/// is the union is exact: a packet matches the merged rule iff it matches
/// the d-1 shared conjuncts and lands in either variant of the field.
std::size_t mergeable_field(const Rule& a, const Rule& b) {
  if (a.decision() != b.decision()) {
    return SIZE_MAX;
  }
  std::size_t differing = SIZE_MAX;
  for (std::size_t f = 0; f < a.conjuncts().size(); ++f) {
    if (a.conjunct(f) == b.conjunct(f)) {
      continue;
    }
    if (differing != SIZE_MAX) {
      return SIZE_MAX;  // second differing field
    }
    differing = f;
  }
  return differing;
}

Rule merge_pair(const Schema& schema, const Rule& a, const Rule& b,
                std::size_t field) {
  std::vector<IntervalSet> conjuncts = a.conjuncts();
  conjuncts[field] = conjuncts[field].unite(b.conjunct(field));
  return Rule(schema, std::move(conjuncts), a.decision());
}

/// Removes rules no packet ever first-matches. Exact via the incremental
/// coverage FDD behind dead_rules() — the same reachability dfw-lint's
/// dead-rules pass reports on.
bool eliminate_dead(const Schema& schema, std::vector<Rule>& rules,
                    const SimplifyOptions& options, SimplifyStats& stats) {
  AnomalyOptions scan;
  // The coverage pass is inherently serial; keep the caller's governance
  // and sinks but not its executor.
  scan.run.context = options.run.context;
  scan.run.obs = options.run.obs;
  const std::vector<std::size_t> dead =
      dead_rules(Policy(schema, rules), scan);
  if (dead.empty()) {
    return false;
  }
  // dead_rules reports ascending indices; erase back-to-front.
  for (std::size_t i = dead.size(); i-- > 0;) {
    rules.erase(rules.begin() + static_cast<std::ptrdiff_t>(dead[i]));
  }
  stats.dead_eliminated += dead.size();
  return true;
}

/// Folds neighbouring same-decision rules that differ in exactly one
/// field. Sound independently of the surrounding rules: the pair's
/// combined first-match set equals the merged rule's match set, and no
/// rule between them exists to observe the difference.
bool merge_adjacent(const Schema& schema, std::vector<Rule>& rules,
                    RunContext* ctx, SimplifyStats& stats) {
  std::vector<Rule> out;
  out.reserve(rules.size());
  bool changed = false;
  for (Rule& rule : rules) {
    govern::checkpoint(ctx);
    if (!out.empty()) {
      const std::size_t field = mergeable_field(out.back(), rule);
      if (field != SIZE_MAX) {
        out.back() = merge_pair(schema, out.back(), rule, field);
        ++stats.adjacent_merged;
        changed = true;
        continue;
      }
    }
    out.push_back(std::move(rule));
  }
  // The loop moves from `rules` unconditionally, so the result vector is
  // installed even when nothing merged.
  rules = std::move(out);
  return changed;
}

/// Within one maximal run of consecutive same-decision rules, evaluation
/// order is immaterial (any packet reaching the run that matches any
/// member gets the run's one decision, and the run's contribution to the
/// fall-through set is the complement of the predicate union). That
/// licenses two rewrites adjacency cannot see: dropping a rule whose
/// predicate is contained in a sibling's, and merging non-adjacent
/// single-field pairs.
bool coalesce_run(const Schema& schema, std::vector<Rule>& run,
                  RunContext* ctx, SimplifyStats& stats) {
  bool changed = false;
  bool progressed = true;
  while (progressed && run.size() > 1) {
    progressed = false;
    // Subsumption: later siblings first, so an equal-predicate pair drops
    // the later rule.
    for (std::size_t b = run.size(); b-- > 0 && run.size() > 1;) {
      for (std::size_t a = 0; a < run.size(); ++a) {
        govern::checkpoint(ctx);
        if (a == b) {
          continue;
        }
        if (predicate_subset(run[b], run[a])) {
          run.erase(run.begin() + static_cast<std::ptrdiff_t>(b));
          ++stats.run_subsumed;
          changed = progressed = true;
          break;
        }
      }
    }
    // First single-field pair in scan order merges; rescan (the merged
    // rule may enable further subsumption or merging).
    for (std::size_t a = 0; a + 1 < run.size() && !progressed; ++a) {
      for (std::size_t b = a + 1; b < run.size(); ++b) {
        govern::checkpoint(ctx);
        const std::size_t field = mergeable_field(run[a], run[b]);
        if (field == SIZE_MAX) {
          continue;
        }
        run[a] = merge_pair(schema, run[a], run[b], field);
        run.erase(run.begin() + static_cast<std::ptrdiff_t>(b));
        ++stats.run_merged;
        changed = progressed = true;
        break;
      }
    }
  }
  return changed;
}

bool coalesce_runs(const Schema& schema, std::vector<Rule>& rules,
                   RunContext* ctx, SimplifyStats& stats) {
  std::vector<Rule> out;
  out.reserve(rules.size());
  bool changed = false;
  std::size_t i = 0;
  while (i < rules.size()) {
    std::size_t j = i + 1;
    while (j < rules.size() &&
           rules[j].decision() == rules[i].decision()) {
      ++j;
    }
    if (j - i > 1) {
      std::vector<Rule> run(
          std::make_move_iterator(rules.begin() +
                                  static_cast<std::ptrdiff_t>(i)),
          std::make_move_iterator(rules.begin() +
                                  static_cast<std::ptrdiff_t>(j)));
      changed = coalesce_run(schema, run, ctx, stats) || changed;
      for (Rule& r : run) {
        out.push_back(std::move(r));
      }
    } else {
      out.push_back(std::move(rules[i]));
    }
    i = j;
  }
  rules = std::move(out);
  return changed;
}

/// Arena-backed equivalence proof. Both policies intern into one
/// hash-consed arena through build_reduced, whose results are canonical —
/// the reduced ordered FDD of a packet function is unique, so root-id
/// equality decides equivalence outright (for partial functions too). The
/// explicit shape + compare walk is run as the reportable artifact: a
/// proven rewrite shows zero discrepancies from the same comparison
/// machinery the paper's cross-team pipeline uses.
ProofStatus prove(const Policy& original, const Policy& simplified,
                  RunContext* ctx, SimplifyReport& report) {
  FddArena arena(original.schema());
  arena.set_context(ctx);
  const ArenaNodeId a = arena.build_reduced(original);
  const ArenaNodeId b = arena.build_reduced(simplified);
  if (a == b) {
    const auto shaped = arena.shape_pair(a, b);
    report.proof_discrepancies =
        arena.compare({shaped.first, shaped.second}).size();
    return report.proof_discrepancies == 0 ? ProofStatus::kProven
                                           : ProofStatus::kRefuted;
  }
  // Distinct canonical roots refute equivalence by themselves; the
  // comparison walk is attempted for witness discrepancies, but partial
  // diagrams may not shape (std::logic_error), and a governance breach
  // (dfw::Error) must still unwind to the caller.
  report.proof_discrepancies = 1;
  try {
    const auto shaped = arena.shape_pair(a, b);
    const std::vector<Discrepancy> found =
        arena.compare({shaped.first, shaped.second});
    if (!found.empty()) {
      report.proof_discrepancies = found.size();
    }
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    // Root inequality remains the (unitemized) witness.
  }
  return ProofStatus::kRefuted;
}

}  // namespace

const char* to_string(ProofStatus status) {
  switch (status) {
    case ProofStatus::kProven:
      return "proven";
    case ProofStatus::kSkipped:
      return "skipped";
    case ProofStatus::kAborted:
      return "aborted";
    case ProofStatus::kRefuted:
      return "refuted";
  }
  return "unknown";
}

SimplifyOutcome simplify_policy(const Policy& policy,
                                const SimplifyOptions& options) {
  PhaseSpan span(options.run.obs, "simplify", "rules",
                 static_cast<std::uint64_t>(policy.size()));
  RunContext* ctx = options.run.context;

  SimplifyReport report;
  report.rules_before = policy.size();
  report.rules_after = policy.size();

  const Schema& schema = policy.schema();
  std::vector<Rule> rules = policy.rules();
  try {
    for (std::size_t round = 0; round < options.max_passes; ++round) {
      bool changed = false;
      if (options.eliminate_dead) {
        changed = eliminate_dead(schema, rules, options, report.stats);
      }
      if (options.merge_adjacent) {
        changed = merge_adjacent(schema, rules, ctx, report.stats) || changed;
      }
      if (options.coalesce_runs) {
        changed = coalesce_runs(schema, rules, ctx, report.stats) || changed;
      }
      if (!changed) {
        break;
      }
      ++report.passes;
    }

    Policy simplified(schema, rules);
    if (report.passes == 0) {
      // Untouched: nothing to prove, nothing to count.
      return {std::move(simplified), report};
    }
    if (options.prove) {
      report.proof = prove(policy, simplified, ctx, report);
      if (report.proof == ProofStatus::kRefuted) {
        // A refuted proof means a transform is unsound (an internal bug):
        // fail safe by handing back the input untouched.
        report.rules_after = report.rules_before;
        return {policy, report};
      }
    }
    report.rules_after = simplified.size();
    if (MetricsRegistry* metrics = options.run.obs.metrics) {
      metrics->counter(names::kSimplifyRulesRemoved)
          .add(report.rules_before - report.rules_after);
      if (report.proof == ProofStatus::kProven) {
        metrics->counter(names::kSimplifyProven).add();
      }
    }
    return {std::move(simplified), report};
  } catch (const Error& e) {
    report.complete = false;
    report.status = e.code();
    report.message = e.what();
    report.proof = options.prove ? ProofStatus::kAborted
                                 : ProofStatus::kSkipped;
    report.rules_after = report.rules_before;
    if (MetricsRegistry* metrics = options.run.obs.metrics) {
      metrics->counter(names::kSimplifyAborted).add();
    }
    return {policy, report};
  }
}

}  // namespace dfw
