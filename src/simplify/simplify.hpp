// Semantics-preserving policy simplification (the static-analysis pass of
// Diekmann et al., "Semantics-Preserving Simplification of Real-World
// Firewall Rule Sets", recast over this library's rule model).
//
// Real rule sets accrete garbage: rules jointly masked by the rules above
// them, adjacent rules that are one rule written as two, same-decision
// runs full of subsumed special cases. simplify_policy rewrites a policy
// into a smaller one with three transforms, each individually
// order-of-evaluation sound (they preserve the policy's packet-to-decision
// mapping, including the fall-through set of non-comprehensive policies):
//
//   dead elimination   rules no packet ever first-matches, detected
//                      exactly via the incremental coverage FDD
//                      (analysis/anomaly.hpp dead_rules — the same
//                      machinery behind dfw-lint's dead-rules pass)
//   adjacent merge     neighbouring rules with one decision that differ
//                      in exactly one field fold into one rule whose
//                      differing conjunct is the union
//   run coalescing     within a maximal run of consecutive same-decision
//                      rules, order is immaterial; rules subsumed by a
//                      run sibling are dropped and non-adjacent
//                      single-field pairs are merged
//
// The pass iterates the transforms to a fixpoint, then *proves* the
// result: both policies are interned into one hash-consed FddArena, where
// id equality of the canonical roots IS semantic equality — backed up by
// an explicit shape + compare walk reporting zero discrepancies. A policy
// is never returned unproven: if the proof is refuted (an internal bug)
// or cut short by governance, the ORIGINAL policy comes back and the
// report says so.

#pragma once

#include <cstddef>
#include <string>

#include "fw/policy.hpp"
#include "rt/govern.hpp"
#include "rt/run_options.hpp"

namespace dfw {

/// Per-run knobs, in the library's options-struct idiom.
struct SimplifyOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.context` governs
  /// the whole pass: the dead-rule scan charges its coverage-FDD nodes,
  /// the proof arena charges every interned node and label byte, and the
  /// transform scans take amortized checkpoints. A breach aborts the pass
  /// — the outcome carries the ORIGINAL policy, complete = false, and the
  /// breach's code. `run.obs`: the pass runs under a "simplify" phase
  /// span with "simplify.transform" / "simplify.prove" subspans, and
  /// counts rules removed into "simplify.rules_removed". `run.executor`
  /// is accepted for uniformity but unused — one policy simplifies
  /// serially (fleets parallelize across policies, tools/dfw_fleet).
  RunOptions run = {};

  /// Transform toggles; disabling all three makes the pass an (optionally
  /// proof-checked) identity.
  bool eliminate_dead = true;
  bool merge_adjacent = true;
  bool coalesce_runs = true;

  /// Prove the rewrite equivalent by arena-backed FDD comparison. Off
  /// skips the proof (ProofStatus::kSkipped) — for callers that re-prove
  /// in aggregate, e.g. a randomized harness.
  bool prove = true;

  /// Fixpoint bound: transform rounds stop after this many passes even if
  /// the policy is still shrinking (each round removes at least one rule,
  /// so the bound only matters for adversarial inputs).
  std::size_t max_passes = 16;
};

/// How the equivalence proof of a simplification ended.
enum class ProofStatus {
  kProven,   ///< canonical arena roots identical; compare walk agrees
  kSkipped,  ///< proof disabled, or no transform changed the policy
  kAborted,  ///< governance breach mid-proof; original policy returned
  kRefuted,  ///< proof found a discrepancy (internal bug); original
             ///< policy returned
};

/// Stable identifier string, e.g. "proven".
const char* to_string(ProofStatus status);

/// Per-transform application counts.
struct SimplifyStats {
  std::size_t dead_eliminated = 0;   ///< rules removed by dead elimination
  std::size_t adjacent_merged = 0;   ///< merges of neighbouring rule pairs
  std::size_t run_subsumed = 0;      ///< in-run subsumption removals
  std::size_t run_merged = 0;        ///< in-run non-adjacent merges
};

/// What simplify_policy did, machine-readable (the fleet report embeds
/// one per device).
struct SimplifyReport {
  std::size_t rules_before = 0;
  std::size_t rules_after = 0;
  std::size_t passes = 0;  ///< fixpoint rounds that ran (0 = untouched)
  SimplifyStats stats;
  ProofStatus proof = ProofStatus::kSkipped;
  /// Number of discrepancies the proof's compare walk reported. Proven
  /// simplifications always show zero; nonzero means kRefuted.
  std::size_t proof_discrepancies = 0;
  bool complete = true;
  ErrorCode status = ErrorCode::kOk;
  std::string message;  ///< empty when complete; Error::what() otherwise
};

/// The outcome: the (possibly) simplified policy plus the report. When
/// the report is not complete, or the proof was refuted, `policy` is the
/// unmodified input.
struct SimplifyOutcome {
  Policy policy;
  SimplifyReport report;
};

/// Simplifies `policy` (see the header comment for the transform set and
/// the proof contract). Works on non-comprehensive policies too — every
/// transform preserves the fall-through set, and the proof degrades to
/// canonical-root identity (which is exact for partial functions as
/// well). Governance breaches are absorbed into the report; other
/// exceptions propagate.
SimplifyOutcome simplify_policy(const Policy& policy,
                                const SimplifyOptions& options = {});

}  // namespace dfw
