#include "synth/mutate.hpp"

#include <algorithm>

namespace dfw {
namespace {

// Picks a rule index excluding the final catch-all.
std::optional<std::size_t> pick_rule(const Policy& policy, Rng& rng) {
  if (policy.size() < 2) {
    return std::nullopt;
  }
  std::uniform_int_distribution<std::size_t> pick(0, policy.size() - 2);
  return pick(rng);
}

// A fresh rule whose geometry matches the synthetic distribution; used as
// the "incorrectly added" head rule.
Rule random_rule(const Policy& policy, Rng& rng) {
  SynthConfig config;
  config.num_rules = 2;  // one synthetic rule + catch-all
  const Policy sample = synth_policy(config, rng);
  Rule r = sample.rule(0);
  // Decisions of bad head insertions are biased to differ from the default.
  std::uniform_int_distribution<int> coin(0, 1);
  r.set_decision(coin(rng) == 0 ? kAccept : kDiscard);
  (void)policy;
  return r;
}

}  // namespace

const char* to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kInsertAtHead:
      return "insert-at-head";
    case MutationKind::kDeleteRule:
      return "delete-rule";
    case MutationKind::kFlipDecision:
      return "flip-decision";
    case MutationKind::kSwapAdjacent:
      return "swap-adjacent";
    case MutationKind::kWidenConjunct:
      return "widen-conjunct";
  }
  return "unknown";
}

std::optional<Policy> mutate_policy(const Policy& policy, MutationKind kind,
                                    Rng& rng) {
  Policy mutant = policy;
  switch (kind) {
    case MutationKind::kInsertAtHead: {
      if (!(policy.schema() == five_tuple_schema())) {
        return std::nullopt;  // random_rule generates five-tuple geometry
      }
      mutant.insert(0, random_rule(policy, rng));
      return mutant;
    }
    case MutationKind::kDeleteRule: {
      const auto idx = pick_rule(policy, rng);
      if (!idx) {
        return std::nullopt;
      }
      mutant.erase(*idx);
      return mutant;
    }
    case MutationKind::kFlipDecision: {
      const auto idx = pick_rule(policy, rng);
      if (!idx) {
        return std::nullopt;
      }
      Rule r = policy.rule(*idx);
      r.set_decision(r.decision() == kAccept ? kDiscard : kAccept);
      mutant.replace(*idx, std::move(r));
      return mutant;
    }
    case MutationKind::kSwapAdjacent: {
      if (policy.size() < 3) {
        return std::nullopt;  // need two non-catch-all neighbours
      }
      std::uniform_int_distribution<std::size_t> pick(0, policy.size() - 3);
      const std::size_t i = pick(rng);
      mutant.move(i, i + 1);
      return mutant;
    }
    case MutationKind::kWidenConjunct: {
      const auto idx = pick_rule(policy, rng);
      if (!idx) {
        return std::nullopt;
      }
      const Rule& original = policy.rule(*idx);
      // Widen the first non-wildcard conjunct to the whole domain.
      for (std::size_t f = 0; f < policy.schema().field_count(); ++f) {
        const IntervalSet domain{policy.schema().domain(f)};
        if (original.conjunct(f) != domain) {
          std::vector<IntervalSet> conjuncts = original.conjuncts();
          conjuncts[f] = domain;
          mutant.replace(*idx, Rule(policy.schema(), std::move(conjuncts),
                                    original.decision()));
          return mutant;
        }
      }
      return std::nullopt;  // rule was already all-wildcard
    }
  }
  return std::nullopt;
}

}  // namespace dfw
