// Synthetic firewall generation (paper, Section 8.2.2).
//
// Real firewall configurations are confidential, so the paper evaluates on
// synthetic firewalls "generated based on the characteristics of real-life
// firewalls reported in [13]" (Gupta's classifier study): IP conjuncts are
// CIDR-shaped with a heavy skew toward wildcard, /16, /24 and /32 lengths;
// port conjuncts are wildcards, well-known service ports, or the ephemeral
// range; protocols are mostly TCP/UDP; decisions mix accept and discard;
// and the final rule is a catch-all default. The same generator also
// implements Section 8.2.1's perturbation model, which simulates two design
// teams (or a before/after change pair) by flipping and deleting a random
// slice of an existing firewall.

#pragma once

#include <cstdint>
#include <random>
#include <utility>

#include "fw/policy.hpp"

namespace dfw {

using Rng = std::mt19937_64;

/// Tunable rule-geometry distribution. Weights need not sum to 1; they are
/// normalised internally.
/// Geometry of one IP field: weights for wildcard ("F in all"), exact
/// /32 host, and /8../28 subnet conjuncts.
struct IpFieldWeights {
  double wildcard;
  double host;
  double subnet;
};

/// Geometry of one port field: weights for wildcard, a single well-known
/// service port, and a range (ephemeral or short service range).
struct PortFieldWeights {
  double wildcard;
  double service;
  double range;
};

struct SynthConfig {
  std::size_t num_rules = 100;  ///< including the final catch-all

  // Per-field geometry, defaulted to the asymmetry real rule sets show
  // (Gupta [13]): sources are usually broad ("from anywhere/this net"),
  // destinations name concrete servers, source ports are almost never
  // constrained, destination ports usually are.
  IpFieldWeights sip{50, 10, 40};
  IpFieldWeights dip{15, 50, 35};
  PortFieldWeights sport{92, 2, 6};
  PortFieldWeights dport{20, 65, 15};

  double tcp_weight = 70;
  double udp_weight = 18;
  double any_proto_weight = 12;

  /// Probability (percent) that a rule accepts. Real policies are mostly
  /// accept rules carving services out of a default-deny; interleaving
  /// conflicting decisions on overlapping predicates at a 50/50 rate is
  /// what real rule sets avoid and what inflates FDDs toward the
  /// Theorem 1 worst case.
  double accept_weight = 85;
  Decision default_decision = kDiscard;  ///< decision of the catch-all

  /// Size of the address pool rules draw from. Real firewalls protect a
  /// bounded set of subnets and servers, so distinct IP conjuncts grow
  /// much slower than the rule count (Gupta [13]); that bounded reuse is
  /// what keeps real FDDs small (Section 7.4's "the worst case ... is
  /// extremely unlikely to happen in practice"). 0 = scale automatically
  /// with sqrt(num_rules).
  std::size_t address_pool_size = 0;
};

/// Generates a comprehensive policy over five_tuple_schema() with
/// `config.num_rules` rules (the last one a catch-all). Deterministic in
/// the rng state.
Policy synth_policy(const SynthConfig& config, Rng& rng);

/// Geometry of a synthetic fleet: N per-site device policies derived from
/// one base policy over one shared address pool (the "object groups" of a
/// real deployment — every site names the same subnets and servers), each
/// site individually perturbed and salted with the kinds of redundancy
/// that accrete in production and that simplify_policy provably removes.
struct FleetSynthConfig {
  std::size_t sites = 100;
  /// Geometry of the shared base policy every site derives from.
  SynthConfig base;
  /// Section 8.2.1 perturbation applied per site (percent of rules
  /// flipped/deleted) — the fleet's genuine per-site drift.
  double perturb_percent = 10;
  /// Percent of a site's rules duplicated in place (the copy lands right
  /// below the original, so it is exactly dead).
  double duplicate_percent = 8;
  /// Percent of a site's rules split into two adjacent single-field
  /// halves (one rule written as two; adjacent merging re-folds it).
  double split_percent = 8;
  /// Site-local carve-out rules prepended per site, drawn from the shared
  /// pool. 0 = base.num_rules / 10, at least 1.
  std::size_t site_rules = 0;
  std::uint64_t seed = 1;
};

/// Generates `config.sites` per-site policies (see FleetSynthConfig).
/// Deterministic in the seed: site k's policy depends only on the config,
/// never on how many sites are generated around it.
std::vector<Policy> make_fleet(const FleetSynthConfig& config);

/// Section 8.2.1's perturbation model on an existing policy: select
/// x_percent of the rules; flip the decision of a random y-percent portion
/// of the selection (y drawn uniformly from [0, 100]); delete the rest of
/// the selection. Returns the perturbed policy (the "second team" /
/// "after change" firewall). The final rule is never selected, keeping the
/// result comprehensive.
Policy perturb_policy(const Policy& original, double x_percent, Rng& rng);

}  // namespace dfw
