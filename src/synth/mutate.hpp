// Policy mutation operators for the effectiveness study (paper, Section 8.1).
//
// The paper's real-world experiment found 84 functional discrepancies
// between a production firewall and an independent redesign; 72 of the 82
// production-side errors came from rules incorrectly *inserted at the head*
// of the policy during maintenance, and the rest from *missing rules*.
// These operators inject exactly those error classes (plus a few more for
// test coverage), so the mutation benchmark can measure how completely the
// comparison pipeline recovers known-injected errors.

#pragma once

#include <optional>
#include <string>

#include "synth/synth.hpp"

namespace dfw {

/// The error classes injected by mutate_policy.
enum class MutationKind {
  kInsertAtHead,   ///< shadowing rule added at the top (the dominant class)
  kDeleteRule,     ///< a non-catch-all rule goes missing
  kFlipDecision,   ///< a rule's decision inverted
  kSwapAdjacent,   ///< two neighbouring rules reordered
  kWidenConjunct,  ///< a conjunct grows (rule matches more traffic)
};

const char* to_string(MutationKind kind);

/// Applies one mutation of the given kind to a copy of `policy`. Returns
/// nullopt when the kind is inapplicable (e.g. deleting from a 1-rule
/// policy). Mutations never touch the final catch-all, so results remain
/// comprehensive. Note a mutation is *syntactic*: it may happen to be
/// semantically invisible (e.g. a swap of non-overlapping rules) — the
/// effectiveness study counts semantic impact via the comparison pipeline.
std::optional<Policy> mutate_policy(const Policy& policy, MutationKind kind,
                                    Rng& rng);

}  // namespace dfw
