#include "synth/synth.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace dfw {
namespace {

// Well-known service ports seen in the wild (Gupta's traces are dominated
// by a small set of services).
constexpr std::array<Value, 14> kServicePorts = {
    20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 443, 3306, 8080};

// Weighted among the common prefix lengths; wildcards and hosts handled
// separately.
constexpr std::array<int, 8> kSubnetLengths = {14, 16, 16, 20, 24, 24, 28, 28};

std::size_t pick_weighted(Rng& rng, std::initializer_list<double> weights) {
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("synth: all weights are zero");
  }
  std::uniform_real_distribution<double> dist(0.0, total);
  double x = dist(rng);
  std::size_t i = 0;
  for (double w : weights) {
    if (x < w) {
      return i;
    }
    x -= w;
    ++i;
  }
  return weights.size() - 1;
}

// The pool of subnets and hosts a synthetic site talks about. Hosts are
// drawn from inside the subnets (servers live in the protected ranges),
// mirroring how production rules keep referencing the same addresses.
struct AddressPool {
  std::vector<Interval> subnets;
  std::vector<Value> hosts;

  AddressPool(std::size_t size, Rng& rng) {
    std::uniform_int_distribution<std::size_t> len_pick(
        0, kSubnetLengths.size() - 1);
    std::uniform_int_distribution<std::uint32_t> addr(0, UINT32_MAX);
    for (std::size_t i = 0; i < size; ++i) {
      const int len = kSubnetLengths[len_pick(rng)];
      const std::uint32_t mask = UINT32_MAX << (32 - len);
      const std::uint32_t base = addr(rng) & mask;
      subnets.push_back(Interval(base, base | ~mask));
      std::uniform_int_distribution<std::uint32_t> offset(
          0, static_cast<std::uint32_t>(~mask));
      hosts.push_back(base + offset(rng));
    }
  }
};

IntervalSet synth_ip(const IpFieldWeights& w, const AddressPool& pool,
                     Rng& rng) {
  std::uniform_int_distribution<std::size_t> pool_pick(
      0, pool.subnets.size() - 1);
  switch (pick_weighted(rng, {w.wildcard, w.host, w.subnet})) {
    case 0:
      return IntervalSet(Interval(0, UINT32_MAX));
    case 1:
      return IntervalSet(Interval::point(pool.hosts[pool_pick(rng)]));
    default:
      return IntervalSet(pool.subnets[pool_pick(rng)]);
  }
}

IntervalSet synth_port(const PortFieldWeights& w, Rng& rng) {
  switch (pick_weighted(rng, {w.wildcard, w.service, w.range})) {
    case 0:
      return IntervalSet(Interval(0, 65535));
    case 1: {
      std::uniform_int_distribution<std::size_t> pick(
          0, kServicePorts.size() - 1);
      return IntervalSet(Interval::point(kServicePorts[pick(rng)]));
    }
    default: {
      // Mostly the ephemeral range; sometimes a short service range.
      std::uniform_int_distribution<int> coin(0, 2);
      if (coin(rng) != 0) {
        return IntervalSet(Interval(1024, 65535));
      }
      std::uniform_int_distribution<Value> lo_pick(0, 65000);
      const Value lo = lo_pick(rng);
      std::uniform_int_distribution<Value> hi_pick(lo, std::min<Value>(
                                                           lo + 512, 65535));
      return IntervalSet(Interval(lo, hi_pick(rng)));
    }
  }
}

IntervalSet synth_proto(const SynthConfig& c, Rng& rng) {
  switch (pick_weighted(rng, {c.tcp_weight, c.udp_weight,
                              c.any_proto_weight})) {
    case 0:
      return IntervalSet(Interval::point(6));
    case 1:
      return IntervalSet(Interval::point(17));
    default:
      return IntervalSet(Interval(0, 255));
  }
}

std::size_t effective_pool_size(const SynthConfig& config) {
  std::size_t pool_size = config.address_pool_size;
  if (pool_size == 0) {
    // Roughly sqrt(n) distinct subnets: a 100-rule site mentions ~10
    // networks, a 3000-rule one ~55 — in line with the bounded reuse real
    // configurations exhibit.
    pool_size = 2;
    while (pool_size * pool_size < config.num_rules) {
      ++pool_size;
    }
  }
  return pool_size;
}

Rule synth_rule(const SynthConfig& config, const Schema& schema,
                const AddressPool& pool, Rng& rng) {
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(5);
  conjuncts.push_back(synth_ip(config.sip, pool, rng));
  conjuncts.push_back(synth_ip(config.dip, pool, rng));
  conjuncts.push_back(synth_port(config.sport, rng));
  conjuncts.push_back(synth_port(config.dport, rng));
  conjuncts.push_back(synth_proto(config, rng));  // proto
  const Decision d =
      pick_weighted(rng, {config.accept_weight,
                          100.0 - std::min(config.accept_weight, 100.0)}) == 0
          ? kAccept
          : kDiscard;
  return Rule(schema, std::move(conjuncts), d);
}

Policy synth_policy_with_pool(const SynthConfig& config, const Schema& schema,
                              const AddressPool& pool, Rng& rng) {
  std::vector<Rule> rules;
  rules.reserve(config.num_rules);
  for (std::size_t i = 0; i + 1 < config.num_rules; ++i) {
    rules.push_back(synth_rule(config, schema, pool, rng));
  }
  rules.push_back(Rule::catch_all(schema, config.default_decision));
  return Policy(schema, std::move(rules));
}

}  // namespace

Policy synth_policy(const SynthConfig& config, Rng& rng) {
  if (config.num_rules < 1) {
    throw std::invalid_argument("synth_policy: num_rules must be >= 1");
  }
  const Schema schema = five_tuple_schema();
  const AddressPool pool(effective_pool_size(config), rng);
  return synth_policy_with_pool(config, schema, pool, rng);
}

std::vector<Policy> make_fleet(const FleetSynthConfig& config) {
  if (config.sites == 0) {
    throw std::invalid_argument("make_fleet: sites must be >= 1");
  }
  if (config.base.num_rules < 1) {
    throw std::invalid_argument("make_fleet: base.num_rules must be >= 1");
  }
  for (double percent : {config.perturb_percent, config.duplicate_percent,
                         config.split_percent}) {
    if (percent < 0 || percent > 100) {
      throw std::invalid_argument("make_fleet: percentage out of range");
    }
  }
  const Schema schema = five_tuple_schema();

  // One pool for the whole fleet: every site's rules reference the same
  // subnets and servers, the way shared object groups propagate through a
  // real deployment.
  Rng base_rng(config.seed);
  const AddressPool pool(effective_pool_size(config.base), base_rng);
  const Policy base =
      synth_policy_with_pool(config.base, schema, pool, base_rng);

  std::size_t site_rules = config.site_rules;
  if (site_rules == 0) {
    site_rules = std::max<std::size_t>(1, config.base.num_rules / 10);
  }

  std::vector<Policy> fleet;
  fleet.reserve(config.sites);
  for (std::size_t site = 0; site < config.sites; ++site) {
    // Per-site stream split off the seed, so site k is independent of how
    // many sites surround it.
    Rng rng(config.seed ^
            (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(site + 1)));
    Policy p = perturb_policy(base, config.perturb_percent, rng);

    // Site-local carve-outs, highest priority, drawn from the shared pool.
    for (std::size_t k = 0; k < site_rules; ++k) {
      p.insert(k, synth_rule(config.base, schema, pool, rng));
    }

    // Redundancy injection (the catch-all is never a target, keeping the
    // site syntactically comprehensive). Descending insertion positions
    // keep earlier picks valid.
    const std::size_t body = p.size() - 1;
    std::vector<std::size_t> picks(body);
    for (std::size_t i = 0; i < body; ++i) {
      picks[i] = i;
    }
    std::shuffle(picks.begin(), picks.end(), rng);

    const auto count_of = [body](double percent) {
      return static_cast<std::size_t>(static_cast<double>(body) * percent /
                                      100.0);
    };
    // Duplicates: the copy lands immediately below the original, so the
    // original masks it completely — an exactly-dead rule.
    std::vector<std::size_t> duplicate_at(
        picks.begin(),
        picks.begin() +
            static_cast<std::ptrdiff_t>(count_of(config.duplicate_percent)));
    std::sort(duplicate_at.rbegin(), duplicate_at.rend());
    for (std::size_t idx : duplicate_at) {
      p.insert(idx + 1, p.rule(idx));
    }

    // Splits: one rule becomes two adjacent halves over its first
    // splittable field — the "one rule written as two" pattern adjacent
    // merging re-folds.
    std::shuffle(picks.begin(), picks.end(), rng);
    std::vector<std::size_t> split_at(
        picks.begin(),
        picks.begin() +
            static_cast<std::ptrdiff_t>(count_of(config.split_percent)));
    std::sort(split_at.rbegin(), split_at.rend());
    for (std::size_t idx : split_at) {
      const Rule& r = p.rule(idx);
      for (std::size_t f = 0; f < r.conjuncts().size(); ++f) {
        const IntervalSet& c = r.conjunct(f);
        if (c.run_count() != 1 || c.size() < 2) {
          continue;
        }
        const Interval iv = c.intervals()[0];
        const Value mid = iv.lo() + (iv.hi() - iv.lo()) / 2;
        std::vector<IntervalSet> lo = r.conjuncts();
        std::vector<IntervalSet> hi = r.conjuncts();
        lo[f] = IntervalSet(Interval(iv.lo(), mid));
        hi[f] = IntervalSet(Interval(mid + 1, iv.hi()));
        const Decision d = r.decision();
        p.replace(idx, Rule(schema, std::move(lo), d));
        p.insert(idx + 1, Rule(schema, std::move(hi), d));
        break;
      }
    }
    fleet.push_back(std::move(p));
  }
  return fleet;
}

Policy perturb_policy(const Policy& original, double x_percent, Rng& rng) {
  if (x_percent < 0 || x_percent > 100) {
    throw std::invalid_argument("perturb_policy: x_percent out of range");
  }
  if (original.size() < 2) {
    return original;
  }
  // Candidate indices exclude the final catch-all so the perturbed policy
  // stays comprehensive (the paper's setup keeps both firewalls valid).
  std::vector<std::size_t> candidates(original.size() - 1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = i;
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  const std::size_t select_count = static_cast<std::size_t>(
      static_cast<double>(candidates.size()) * x_percent / 100.0);
  candidates.resize(select_count);

  // y percent of the selection flips decision; the rest is deleted.
  std::uniform_real_distribution<double> y_dist(0.0, 100.0);
  const double y = y_dist(rng);
  const std::size_t flip_count = static_cast<std::size_t>(
      static_cast<double>(select_count) * y / 100.0);

  std::vector<bool> flip(original.size(), false);
  std::vector<bool> drop(original.size(), false);
  for (std::size_t i = 0; i < select_count; ++i) {
    (i < flip_count ? flip : drop)[candidates[i]] = true;
  }

  std::vector<Rule> rules;
  rules.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (drop[i]) {
      continue;
    }
    Rule r = original.rule(i);
    if (flip[i]) {
      r.set_decision(r.decision() == kAccept ? kDiscard : kAccept);
    }
    rules.push_back(std::move(r));
  }
  return Policy(original.schema(), std::move(rules));
}

}  // namespace dfw
