#include "synth/synth.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace dfw {
namespace {

// Well-known service ports seen in the wild (Gupta's traces are dominated
// by a small set of services).
constexpr std::array<Value, 14> kServicePorts = {
    20, 21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 443, 3306, 8080};

// Weighted among the common prefix lengths; wildcards and hosts handled
// separately.
constexpr std::array<int, 8> kSubnetLengths = {14, 16, 16, 20, 24, 24, 28, 28};

std::size_t pick_weighted(Rng& rng, std::initializer_list<double> weights) {
  double total = 0;
  for (double w : weights) {
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("synth: all weights are zero");
  }
  std::uniform_real_distribution<double> dist(0.0, total);
  double x = dist(rng);
  std::size_t i = 0;
  for (double w : weights) {
    if (x < w) {
      return i;
    }
    x -= w;
    ++i;
  }
  return weights.size() - 1;
}

// The pool of subnets and hosts a synthetic site talks about. Hosts are
// drawn from inside the subnets (servers live in the protected ranges),
// mirroring how production rules keep referencing the same addresses.
struct AddressPool {
  std::vector<Interval> subnets;
  std::vector<Value> hosts;

  AddressPool(std::size_t size, Rng& rng) {
    std::uniform_int_distribution<std::size_t> len_pick(
        0, kSubnetLengths.size() - 1);
    std::uniform_int_distribution<std::uint32_t> addr(0, UINT32_MAX);
    for (std::size_t i = 0; i < size; ++i) {
      const int len = kSubnetLengths[len_pick(rng)];
      const std::uint32_t mask = UINT32_MAX << (32 - len);
      const std::uint32_t base = addr(rng) & mask;
      subnets.push_back(Interval(base, base | ~mask));
      std::uniform_int_distribution<std::uint32_t> offset(
          0, static_cast<std::uint32_t>(~mask));
      hosts.push_back(base + offset(rng));
    }
  }
};

IntervalSet synth_ip(const IpFieldWeights& w, const AddressPool& pool,
                     Rng& rng) {
  std::uniform_int_distribution<std::size_t> pool_pick(
      0, pool.subnets.size() - 1);
  switch (pick_weighted(rng, {w.wildcard, w.host, w.subnet})) {
    case 0:
      return IntervalSet(Interval(0, UINT32_MAX));
    case 1:
      return IntervalSet(Interval::point(pool.hosts[pool_pick(rng)]));
    default:
      return IntervalSet(pool.subnets[pool_pick(rng)]);
  }
}

IntervalSet synth_port(const PortFieldWeights& w, Rng& rng) {
  switch (pick_weighted(rng, {w.wildcard, w.service, w.range})) {
    case 0:
      return IntervalSet(Interval(0, 65535));
    case 1: {
      std::uniform_int_distribution<std::size_t> pick(
          0, kServicePorts.size() - 1);
      return IntervalSet(Interval::point(kServicePorts[pick(rng)]));
    }
    default: {
      // Mostly the ephemeral range; sometimes a short service range.
      std::uniform_int_distribution<int> coin(0, 2);
      if (coin(rng) != 0) {
        return IntervalSet(Interval(1024, 65535));
      }
      std::uniform_int_distribution<Value> lo_pick(0, 65000);
      const Value lo = lo_pick(rng);
      std::uniform_int_distribution<Value> hi_pick(lo, std::min<Value>(
                                                           lo + 512, 65535));
      return IntervalSet(Interval(lo, hi_pick(rng)));
    }
  }
}

IntervalSet synth_proto(const SynthConfig& c, Rng& rng) {
  switch (pick_weighted(rng, {c.tcp_weight, c.udp_weight,
                              c.any_proto_weight})) {
    case 0:
      return IntervalSet(Interval::point(6));
    case 1:
      return IntervalSet(Interval::point(17));
    default:
      return IntervalSet(Interval(0, 255));
  }
}

}  // namespace

Policy synth_policy(const SynthConfig& config, Rng& rng) {
  if (config.num_rules < 1) {
    throw std::invalid_argument("synth_policy: num_rules must be >= 1");
  }
  const Schema schema = five_tuple_schema();
  std::size_t pool_size = config.address_pool_size;
  if (pool_size == 0) {
    // Roughly sqrt(n) distinct subnets: a 100-rule site mentions ~10
    // networks, a 3000-rule one ~55 — in line with the bounded reuse real
    // configurations exhibit.
    pool_size = 2;
    while (pool_size * pool_size < config.num_rules) {
      ++pool_size;
    }
  }
  const AddressPool pool(pool_size, rng);
  std::vector<Rule> rules;
  rules.reserve(config.num_rules);
  for (std::size_t i = 0; i + 1 < config.num_rules; ++i) {
    std::vector<IntervalSet> conjuncts;
    conjuncts.reserve(5);
    conjuncts.push_back(synth_ip(config.sip, pool, rng));
    conjuncts.push_back(synth_ip(config.dip, pool, rng));
    conjuncts.push_back(synth_port(config.sport, rng));
    conjuncts.push_back(synth_port(config.dport, rng));
    conjuncts.push_back(synth_proto(config, rng)); // proto
    const Decision d =
        pick_weighted(rng, {config.accept_weight,
                            100.0 - std::min(config.accept_weight, 100.0)}) ==
                0
            ? kAccept
            : kDiscard;
    rules.emplace_back(schema, std::move(conjuncts), d);
  }
  rules.push_back(Rule::catch_all(schema, config.default_decision));
  return Policy(schema, std::move(rules));
}

Policy perturb_policy(const Policy& original, double x_percent, Rng& rng) {
  if (x_percent < 0 || x_percent > 100) {
    throw std::invalid_argument("perturb_policy: x_percent out of range");
  }
  if (original.size() < 2) {
    return original;
  }
  // Candidate indices exclude the final catch-all so the perturbed policy
  // stays comprehensive (the paper's setup keeps both firewalls valid).
  std::vector<std::size_t> candidates(original.size() - 1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = i;
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  const std::size_t select_count = static_cast<std::size_t>(
      static_cast<double>(candidates.size()) * x_percent / 100.0);
  candidates.resize(select_count);

  // y percent of the selection flips decision; the rest is deleted.
  std::uniform_real_distribution<double> y_dist(0.0, 100.0);
  const double y = y_dist(rng);
  const std::size_t flip_count = static_cast<std::size_t>(
      static_cast<double>(select_count) * y / 100.0);

  std::vector<bool> flip(original.size(), false);
  std::vector<bool> drop(original.size(), false);
  for (std::size_t i = 0; i < select_count; ++i) {
    (i < flip_count ? flip : drop)[candidates[i]] = true;
  }

  std::vector<Rule> rules;
  rules.reserve(original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (drop[i]) {
      continue;
    }
    Rule r = original.rule(i);
    if (flip[i]) {
      r.set_decision(r.decision() == kAccept ? kDiscard : kAccept);
    }
    rules.push_back(std::move(r));
  }
  return Policy(original.schema(), std::move(rules));
}

}  // namespace dfw
