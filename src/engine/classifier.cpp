#include "engine/classifier.hpp"

#include <algorithm>
#include <stdexcept>

#include "fdd/construct.hpp"
#include "rt/executor.hpp"

namespace dfw {

std::uint32_t Classifier::compile_node(const FddNode& node) {
  if (node.is_terminal()) {
    return kDecisionBit | node.decision;
  }
  // Children first, so this node's slabs land contiguously afterwards.
  std::vector<std::pair<Value, std::uint32_t>> pending;
  for (const FddEdge& e : node.edges) {
    const std::uint32_t target = compile_node(*e.target);
    for (const Interval& run : e.label.intervals()) {
      pending.emplace_back(run.hi(), target);
    }
  }
  std::sort(pending.begin(), pending.end());
  const std::uint32_t slab_begin = static_cast<std::uint32_t>(slabs_.size());
  for (const auto& [upper, target] : pending) {
    slabs_.push_back({upper, target});
  }
  const std::uint32_t index = static_cast<std::uint32_t>(nodes_.size());
  if (index >= kDecisionBit) {
    throw std::length_error("Classifier: diagram too large to compile");
  }
  nodes_.push_back({static_cast<std::uint32_t>(node.field), slab_begin,
                    static_cast<std::uint32_t>(slabs_.size())});
  return index;
}

Classifier Classifier::compile(const Fdd& fdd, const CompileOptions& options) {
  fdd.validate();  // completeness makes every lookup land in a slab
  Classifier c;
  c.field_count_ = fdd.schema().field_count();
  c.root_ = c.compile_node(fdd.root());
  c.options_ = options;
  return c;
}

Classifier Classifier::compile(const Policy& policy,
                               const CompileOptions& options) {
  ConstructOptions construct;
  construct.run.context = options.run.context;
  construct.run.obs = options.run.obs;
  return compile(build_reduced_fdd(policy, construct), options);
}

Decision Classifier::classify(const Packet& p) const {
  if (p.size() != field_count_) {
    throw std::invalid_argument("Classifier::classify: packet arity mismatch");
  }
  std::uint32_t current = root_;
  while ((current & kDecisionBit) == 0) {
    const Node& node = nodes_[current];
    const Value v = p[node.field];
    // First slab whose upper bound is >= v; completeness guarantees one.
    const Slab* begin = slabs_.data() + node.slab_begin;
    const Slab* end = slabs_.data() + node.slab_end;
    const Slab* hit = std::lower_bound(
        begin, end, v,
        [](const Slab& s, Value value) { return s.upper < value; });
    current = hit->next;
  }
  return static_cast<Decision>(current & ~kDecisionBit);
}

std::vector<Decision> Classifier::classify_batch(
    std::span<const Packet> packets, const RunOptions& run) const {
  Executor& executor = run.executor != nullptr
                           ? *run.executor
                           : (options_.run.executor != nullptr
                                  ? *options_.run.executor
                                  : Executor::inline_executor());
  std::vector<Decision> out(packets.size());
  executor.parallel_for_chunked(
      packets.size(), std::max<std::size_t>(1, options_.batch_grain),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = classify(packets[i]);
        }
      },
      run.context, run.obs);
  return out;
}

std::vector<Decision> Classifier::classify_batch(
    std::span<const Packet> packets) const {
  return classify_batch(packets, RunOptions{});
}

}  // namespace dfw
