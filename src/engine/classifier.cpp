#include "engine/classifier.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "fdd/construct.hpp"
#include "obs/names.hpp"
#include "obs/obs.hpp"
#include "rt/executor.hpp"
#include "rt/fault.hpp"

namespace dfw {

Classifier Classifier::compile(const Fdd& fdd, const CompileOptions& options) {
  fdd.validate();  // completeness makes every lookup land in a slab
  Classifier c;
  c.field_count_ = fdd.schema().field_count();
  {
    PhaseSpan span(options.run.obs, compile_phase_name(options.backend));
    fault::hit(options.run.faults, fault::sites::kBackendCompile);
    c.backend_ = compile_backend(options.backend, fdd,
                                 options.bit_parallel_max_paths);
  }
  c.options_ = options;
  return c;
}

Classifier Classifier::compile(const Policy& policy,
                               const CompileOptions& options) {
  ConstructOptions construct;
  construct.run.context = options.run.context;
  construct.run.obs = options.run.obs;
  construct.run.faults = options.run.faults;
  return compile(build_reduced_fdd(policy, construct), options);
}

Decision Classifier::classify(const Packet& p) const {
  if (p.size() != field_count_) {
    throw std::invalid_argument("Classifier::classify: packet arity mismatch");
  }
  return backend_->classify_one(p.data());
}

void Classifier::run_batch(std::span<const Packet> packets,
                           std::span<Decision> out,
                           const RunOptions& run) const {
  // Per-call obs override the compile-time sinks, mirroring the executor
  // fallback; counters are bumped per batch (the registry name lookup
  // takes a lock) and never per packet.
  const ObsOptions& obs =
      run.obs.active() ? run.obs : options_.run.obs;
  const auto start = obs.metrics != nullptr
                         ? std::chrono::steady_clock::now()
                         : std::chrono::steady_clock::time_point{};
  Executor& executor = run.executor != nullptr
                           ? *run.executor
                           : (options_.run.executor != nullptr
                                  ? *options_.run.executor
                                  : Executor::inline_executor());
  for (const Packet& p : packets) {
    if (p.size() != field_count_) {
      throw std::invalid_argument(
          "Classifier::classify_batch: packet arity mismatch");
    }
  }
  executor.parallel_for_chunked(
      packets.size(), std::max<std::size_t>(1, options_.batch_grain),
      [&](std::size_t begin, std::size_t end) {
        backend_->classify_range(packets.data() + begin, end - begin,
                                 out.data() + begin);
      },
      run.context, obs);
  if (obs.metrics != nullptr) {
    obs.metrics->counter(names::kClassifierBatchCount).add(1);
    obs.metrics->counter(names::kClassifierLookupCount).add(packets.size());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    obs.metrics->histogram(names::kClassifierBatchNs)
        .record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
  }
}

std::vector<Decision> Classifier::classify_batch(
    std::span<const Packet> packets, const RunOptions& run) const {
  std::vector<Decision> out(packets.size());
  run_batch(packets, out, run);
  return out;
}

std::vector<Decision> Classifier::classify_batch(
    std::span<const Packet> packets) const {
  return classify_batch(packets, RunOptions{});
}

void Classifier::classify_into(std::span<const Packet> packets,
                               std::span<Decision> out,
                               const RunOptions& run) const {
  if (out.size() != packets.size()) {
    throw std::invalid_argument(
        "Classifier::classify_into: output span size mismatch");
  }
  run_batch(packets, out, run);
}

void Classifier::classify_into(std::span<const Packet> packets,
                               std::span<Decision> out) const {
  classify_into(packets, out, RunOptions{});
}

}  // namespace dfw
