// The prefix-trie backend: LPM-style stride tables for IPv4 fields.
//
// An FDD node over a 32-bit address field partitions the address space
// into the same kind of disjoint ranges a forwarding table's prefixes do
// (net/prefix.*: every slab boundary is a prefix boundary union), so the
// node can execute as a multi-bit-stride trie — the classic LPM layout:
// four levels of 256-entry tables, one per address byte MSB-first, where
// an entry either resolves directly (the whole /8, /16, or /24 block
// falls inside one slab) or points at the next level's table. Tables are
// materialised sparsely: a child table exists only where a slab boundary
// actually cuts through the parent entry's block, so table count is
// proportional to the node's boundary count, not to 2^32.
//
// Real policies concentrate boundaries on few prefixes (the synth model's
// pooled addresses reproduce this), so most lookups resolve in one or two
// indexed loads instead of log2(slabs) compare/branch steps — the win
// over flat-slab grows with the slab count. Non-IPv4 fields (ports,
// protocol, tiny test domains) keep the branchless slab search.

#include "engine/backend.hpp"
#include "engine/slab_layout.hpp"
#include "fdd/fdd.hpp"
#include "fw/schema.hpp"

namespace dfw {
namespace {

using engine_detail::kDecisionBit;
using engine_detail::Slab;
using engine_detail::SlabLayout;
using engine_detail::SlabNode;

/// Trie table entries: bit 63 marks a pointer to a child table (index in
/// the low bits); otherwise the low 32 bits are the slab `next` ref.
constexpr std::uint64_t kChildFlag = std::uint64_t{1} << 63;
constexpr std::size_t kStrideBits = 8;
constexpr std::size_t kFanout = std::size_t{1} << kStrideBits;
constexpr std::uint32_t kNoTrie = 0xffff'ffffu;

class PrefixTrieBackend final : public ClassifierBackend {
 public:
  PrefixTrieBackend(SlabLayout layout, const Schema& schema)
      : layout_(std::move(layout)) {
    trie_root_.assign(layout_.nodes.size(), kNoTrie);
    for (std::size_t i = 0; i < layout_.nodes.size(); ++i) {
      const SlabNode& node = layout_.nodes[i];
      const Field& field = schema.field(node.field);
      // The stride walk reads all four address bytes, so it requires the
      // slabs to cover the full 32-bit space; a narrower IPv4 domain
      // falls back to the slab search like any other field.
      if (field.kind == FieldKind::kIpv4 && field.domain.lo() == 0 &&
          field.domain.hi() == 0xffff'ffffu) {
        trie_root_[i] = build_table(node, 0, 24);
      }
    }
  }

  ClassifierBackendKind kind() const override {
    return ClassifierBackendKind::kPrefixTrie;
  }

  Decision classify_one(const Value* packet) const override {
    std::uint32_t current = layout_.root;
    while ((current & kDecisionBit) == 0) {
      const SlabNode& node = layout_.nodes[current];
      const Value v = packet[node.field];
      const std::uint32_t root_table = trie_root_[current];
      if (root_table != kNoTrie) {
        std::uint64_t entry;
        std::size_t table = root_table;
        for (int shift = 24;; shift -= kStrideBits) {
          entry = tables_[table * kFanout + ((v >> shift) & 0xff)];
          if ((entry & kChildFlag) == 0) {
            break;
          }
          table = static_cast<std::size_t>(entry & ~kChildFlag);
        }
        current = static_cast<std::uint32_t>(entry);
      } else {
        const Slab* hit = engine_detail::branchless_lower_bound(
            layout_.slabs.data() + node.slab_begin,
            node.slab_end - node.slab_begin, v);
        current = hit->next;
      }
    }
    return static_cast<Decision>(current & ~kDecisionBit);
  }

  std::size_t node_count() const override { return layout_.nodes.size(); }
  std::size_t slab_count() const override {
    return layout_.slabs.size() + tables_.size();
  }

 private:
  /// Builds the table covering [base, base + 256 << shift) of one node's
  /// address space; returns its index. Children are built depth-first
  /// while the parent's entries are filled.
  std::uint32_t build_table(const SlabNode& node, Value base, int shift) {
    const std::uint32_t index =
        static_cast<std::uint32_t>(tables_.size() / kFanout);
    tables_.resize(tables_.size() + kFanout, 0);
    const Slab* begin = layout_.slabs.data() + node.slab_begin;
    const std::size_t n = node.slab_end - node.slab_begin;
    for (std::size_t b = 0; b < kFanout; ++b) {
      const Value lo = base + (static_cast<Value>(b) << shift);
      const Value hi = lo + ((Value{1} << shift) - 1);
      const Slab* hit = engine_detail::branchless_lower_bound(begin, n, lo);
      std::uint64_t entry;
      if (shift == 0 || hit->upper >= hi) {
        // The whole block lies in one slab: resolve now.
        entry = hit->next;
      } else {
        entry = kChildFlag |
                build_table(node, lo, shift - static_cast<int>(kStrideBits));
      }
      tables_[static_cast<std::size_t>(index) * kFanout + b] = entry;
    }
    return index;
  }

  SlabLayout layout_;
  std::vector<std::uint32_t> trie_root_;  ///< per node; kNoTrie = slabs
  std::vector<std::uint64_t> tables_;     ///< 256-entry blocks
};

}  // namespace

std::shared_ptr<const ClassifierBackend> compile_prefix_trie_backend(
    const Fdd& fdd) {
  return std::make_shared<PrefixTrieBackend>(engine_detail::flatten_fdd(fdd),
                                             fdd.schema());
}

}  // namespace dfw
