// Compiled packet classifier.
//
// FDDs are not only an analysis vehicle — they are an efficient execution
// form for the very firewalls they model (the paper's FDD lineage, ref
// [10], introduced them for specification *and* lookup). This module
// compiles a policy's reduced FDD into a flat, cache-friendly structure:
// one record per node holding a sorted array of (upper-bound, next-index)
// slabs, so classifying a packet is d binary searches over contiguous
// memory with no pointer chasing into heap-scattered tree nodes.
//
// The classifier is the deployment-side counterpart of the comparison
// pipeline: resolve the teams' discrepancies, compile the agreed policy
// once, and classify packets at line rate. classify_batch shards a packet
// batch across an Executor's workers; lookups are independent and the
// result vector is indexed by input position, so batch output is
// identical to a serial classify loop.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fdd/fdd.hpp"
#include "fw/policy.hpp"
#include "rt/run_options.hpp"

namespace dfw {

class Executor;

/// Compile- and batch-execution options, in the same options-struct idiom
/// as ConstructOptions/CompareOptions.
struct CompileOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.executor` is the
  /// default executor for classify_batch calls on this classifier —
  /// borrowed, not owned, must outlive the classifier; null means serial
  /// (Executor::inline_executor()). Compiling from a Policy threads
  /// `run.context`/`run.obs` through the internal build_reduced_fdd, so
  /// compilation is governed and observable like every other pipeline.
  RunOptions run = {};

  /// Packets per pool task in classify_batch; tune upward for tiny
  /// per-packet cost, downward for very skewed batches.
  std::size_t batch_grain = 512;

// The alias references below are initialized in every constructor; that
// initialization is itself a "use" of the deprecated member, so the
// in-class definitions suppress the warning locally. External uses of
// the aliases still warn at their own source locations.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  CompileOptions() = default;
  CompileOptions(const CompileOptions& o)
      : run(o.run), batch_grain(o.batch_grain) {}
  CompileOptions& operator=(const CompileOptions& o) {
    run = o.run;
    batch_grain = o.batch_grain;
    return *this;
  }

  /// Deprecated one-release alias for the pre-RunOptions field name
  /// (see DESIGN.md, "RunOptions migration").
  [[deprecated("use run.executor")]] Executor*& executor = run.executor;
#pragma GCC diagnostic pop
};

/// An immutable compiled classifier. Copyable; internally a few flat
/// vectors.
class Classifier {
 public:
  /// Compiles a comprehensive policy (via its reduced FDD, governed and
  /// observed through `options.run`).
  static Classifier compile(const Policy& policy,
                            const CompileOptions& options = {});

  /// Compiles an already-built complete FDD.
  static Classifier compile(const Fdd& fdd,
                            const CompileOptions& options = {});

  /// The decision for packet p. O(sum over path fields of log(edges)).
  Decision classify(const Packet& p) const;

  /// Decisions for a whole batch, indexed like `packets`, sharded over
  /// the compile-time executor (serial when none was given).
  std::vector<Decision> classify_batch(std::span<const Packet> packets) const;
  /// Same, under per-call execution knobs: `run.executor` overrides the
  /// compile-time executor (null falls back to it), and lookups take no
  /// locks — the hot path reads only immutable slabs, so concurrent
  /// batches on one classifier are safe.
  std::vector<Decision> classify_batch(std::span<const Packet> packets,
                                       const RunOptions& run) const;

  /// Number of compiled nodes (terminals excluded).
  std::size_t node_count() const { return nodes_.size(); }
  /// Number of slab entries across all nodes.
  std::size_t slab_count() const { return slabs_.size(); }

 private:
  // A slab covers values up to and including `upper`; `next` encodes
  // either another node index or a terminal decision.
  struct Slab {
    Value upper;
    std::uint32_t next;
  };
  struct Node {
    std::uint32_t field;
    std::uint32_t slab_begin;
    std::uint32_t slab_end;
  };

  static constexpr std::uint32_t kDecisionBit = 0x8000'0000u;

  Classifier() = default;

  std::uint32_t compile_node(const FddNode& node);

  std::vector<Node> nodes_;
  std::vector<Slab> slabs_;
  std::uint32_t root_ = 0;
  std::size_t field_count_ = 0;
  CompileOptions options_{};
};

}  // namespace dfw
