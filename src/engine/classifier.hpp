// Compiled packet classifier.
//
// FDDs are not only an analysis vehicle — they are an efficient execution
// form for the very firewalls they model (the paper's FDD lineage, ref
// [10], introduced them for specification *and* lookup). This module
// compiles a policy's reduced FDD into one of several flat, cache-friendly
// layouts (engine/backend.hpp): the default flat-slab form, a prefix-trie
// form for IPv4-heavy policies, and a bit-parallel form for batched
// lookups. All backends produce byte-identical decisions; the choice is a
// pure performance knob (docs/classifier.md compares the cost models).
//
// The classifier is the deployment-side counterpart of the comparison
// pipeline: resolve the teams' discrepancies, compile the agreed policy
// once, and classify packets at line rate. classify_batch shards a packet
// batch across an Executor's workers; lookups are independent and the
// result vector is indexed by input position, so batch output is
// identical to a serial classify loop. classify_into is the
// allocation-free variant for callers that recycle an output buffer.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/backend.hpp"
#include "fdd/fdd.hpp"
#include "fw/policy.hpp"
#include "rt/run_options.hpp"

namespace dfw {

/// Compile- and batch-execution options, in the same options-struct idiom
/// as ConstructOptions/CompareOptions.
struct CompileOptions {
  /// Shared execution knobs (rt/run_options.hpp). `run.executor` is the
  /// default executor for classify_batch calls on this classifier —
  /// borrowed, not owned, must outlive the classifier; null means serial
  /// (Executor::inline_executor()). Compiling from a Policy threads
  /// `run.context`/`run.obs` through the internal build_reduced_fdd, so
  /// compilation is governed and observable like every other pipeline.
  RunOptions run = {};

  /// Packets per pool task in classify_batch; tune upward for tiny
  /// per-packet cost, downward for very skewed batches.
  std::size_t batch_grain = 512;

  /// Which compiled layout to execute (engine/backend.hpp). The default
  /// is the historical flat-slab form; every backend is byte-identical in
  /// output.
  ClassifierBackendKind backend = ClassifierBackendKind::kFlatSlab;

  /// Decision-path budget for the bit-parallel backend, whose memory and
  /// per-lookup reduction scale with the path count; compilation throws
  /// dfw::Error(ErrorCode::kCapacityExceeded) beyond it so callers can
  /// degrade to another backend. Ignored by the other backends.
  std::size_t bit_parallel_max_paths = std::size_t{1} << 14;
};

/// An immutable compiled classifier. Copyable; a shared handle to an
/// immutable backend plus the compile options.
class Classifier {
 public:
  /// Compiles a comprehensive policy (via its reduced FDD, governed and
  /// observed through `options.run`).
  static Classifier compile(const Policy& policy,
                            const CompileOptions& options = {});

  /// Compiles an already-built complete FDD.
  static Classifier compile(const Fdd& fdd,
                            const CompileOptions& options = {});

  /// The decision for packet p. O(sum over path fields of log(edges)).
  Decision classify(const Packet& p) const;

  /// Decisions for a whole batch, indexed like `packets`, sharded over
  /// the compile-time executor (serial when none was given).
  std::vector<Decision> classify_batch(std::span<const Packet> packets) const;
  /// Same, under per-call execution knobs: `run.executor` overrides the
  /// compile-time executor (null falls back to it), and lookups take no
  /// locks — the hot path reads only immutable tables, so concurrent
  /// batches on one classifier are safe.
  std::vector<Decision> classify_batch(std::span<const Packet> packets,
                                       const RunOptions& run) const;

  /// Allocation-free batch: writes decisions into `out`, which must have
  /// exactly packets.size() elements (throws std::invalid_argument
  /// otherwise). Output is byte-identical to classify_batch.
  void classify_into(std::span<const Packet> packets,
                     std::span<Decision> out) const;
  void classify_into(std::span<const Packet> packets, std::span<Decision> out,
                     const RunOptions& run) const;

  /// The layout this classifier executes.
  ClassifierBackendKind backend() const { return backend_->kind(); }

  /// Compiled interior nodes (backend-specific gauge; see backend.hpp).
  std::size_t node_count() const { return backend_->node_count(); }
  /// Slab/table entries across all nodes (backend-specific gauge).
  std::size_t slab_count() const { return backend_->slab_count(); }

 private:
  Classifier() = default;

  void run_batch(std::span<const Packet> packets, std::span<Decision> out,
                 const RunOptions& run) const;

  std::shared_ptr<const ClassifierBackend> backend_;
  std::size_t field_count_ = 0;
  CompileOptions options_{};
};

}  // namespace dfw
