// The compiled-classifier backend interface.
//
// One reduced FDD admits several execution layouts, each with a different
// lookup cost model: the flat-slab form (d branchless binary searches over
// contiguous slabs), a prefix-trie form (multi-bit stride tables for IPv4
// fields, in the spirit of LPM forwarding tables, reusing net/prefix.*'s
// geometry), and a bit-parallel form (per-field interval tables mapping a
// value to a bitset of candidate decision paths, AND-reduced across
// fields, after Hazelhurst's bit-vector analyses of access lists). The
// Classifier facade (engine/classifier.hpp) compiles a policy into one of
// these backends, selected by CompileOptions::backend; every backend is
// required to produce byte-identical decisions — the cross-backend
// equivalence harness in tests/classifier_backend_test.cpp is the gate.
//
// Backends are immutable after compilation and internally pointer-free
// (index-linked flat vectors), so lookups take no locks and a compiled
// backend can be shared across threads freely — the property the serve
// plane's epoch-published versions rely on.

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>

#include "fw/decision.hpp"
#include "fw/packet.hpp"

namespace dfw {

class Fdd;

/// The compiled layouts a Classifier can execute.
enum class ClassifierBackendKind {
  kFlatSlab,     ///< sorted (upper, next) slabs, branchless binary search
  kPrefixTrie,   ///< stride-8 trie tables on IPv4 fields, slabs elsewhere
  kBitParallel,  ///< per-field interval tables of path bitsets, AND-reduced
};

/// Stable lowercase name ("flat_slab", "prefix_trie", "bit_parallel") —
/// the spelling of dfw_serve's --backend flag and the serve.backend.*
/// metric suffixes.
const char* to_string(ClassifierBackendKind kind);

/// Inverse of to_string; nullopt on an unknown name.
std::optional<ClassifierBackendKind> parse_backend_kind(std::string_view name);

/// The "classifier.compile.<backend>" phase-span literal for a kind (the
/// obs layer requires static-lifetime names; see obs/names.hpp).
const char* compile_phase_name(ClassifierBackendKind kind);

/// The "serve.backend.<backend>" counter literal for a kind.
const char* serve_backend_counter_name(ClassifierBackendKind kind);

/// One compiled execution form of a complete FDD. Implementations are
/// immutable and safe to share across threads.
class ClassifierBackend {
 public:
  virtual ~ClassifierBackend() = default;

  virtual ClassifierBackendKind kind() const = 0;

  /// The decision for one packet, given as `field_count` values in schema
  /// order. Arity and domain conformance are the caller's contract (the
  /// Classifier facade checks arity).
  virtual Decision classify_one(const Value* packet) const = 0;

  /// Decisions for `count` packets into `out`. The default implementation
  /// loops classify_one; backends with a profitable batch layout (the
  /// bit-parallel backend's structure-of-arrays staging) override it.
  virtual void classify_range(const Packet* packets, std::size_t count,
                              Decision* out) const;

  /// Compiled interior nodes (flat-slab/prefix-trie) or decision paths
  /// (bit-parallel) — a backend-specific size gauge, not a shared unit.
  virtual std::size_t node_count() const = 0;
  /// Slab entries, trie+slab entries, or interval-table rows.
  virtual std::size_t slab_count() const = 0;
};

/// Per-backend compile factories. Each validates completeness via the
/// facade's prior fdd.validate() contract and never keeps a reference to
/// the FDD. Capacity breaches are structured failures, not raw
/// exceptions: compile_bit_parallel_backend throws
/// dfw::Error(ErrorCode::kCapacityExceeded) when the diagram has more
/// than `max_paths` decision paths (the bitset width and table memory
/// scale with the path count), and the slab layout throws the same code
/// past its 31-bit node index space — so callers can catch the code and
/// degrade to another backend instead of crashing (the serve plane does).
std::shared_ptr<const ClassifierBackend> compile_flat_slab_backend(
    const Fdd& fdd);
std::shared_ptr<const ClassifierBackend> compile_prefix_trie_backend(
    const Fdd& fdd);
std::shared_ptr<const ClassifierBackend> compile_bit_parallel_backend(
    const Fdd& fdd, std::size_t max_paths);

/// Dispatches on `kind` to the factories above.
std::shared_ptr<const ClassifierBackend> compile_backend(
    ClassifierBackendKind kind, const Fdd& fdd,
    std::size_t bit_parallel_max_paths);

}  // namespace dfw
