#include "engine/trace.hpp"

#include <stdexcept>

namespace dfw {

std::vector<std::size_t> TraceStats::unexercised() const {
  std::vector<std::size_t> result;
  for (std::size_t i = 0; i < rule_hits.size(); ++i) {
    if (rule_hits[i] == 0) {
      result.push_back(i);
    }
  }
  return result;
}

TraceStats evaluate_trace(const Policy& policy,
                          std::span<const Packet> trace) {
  TraceStats stats;
  stats.rule_hits.assign(policy.size(), 0);
  for (const Packet& p : trace) {
    const auto match = policy.first_match(p);
    if (!match) {
      throw std::logic_error(
          "evaluate_trace: a packet fell through the policy");
    }
    ++stats.rule_hits[*match];
    const Decision d = policy.rule(*match).decision();
    if (d >= stats.decision_hits.size()) {
      stats.decision_hits.resize(d + 1, 0);
    }
    ++stats.decision_hits[d];
    ++stats.packets;
  }
  return stats;
}

std::vector<Packet> synth_trace(const Policy& policy, std::size_t count,
                                Rng& rng, double random_fraction) {
  if (random_fraction < 0 || random_fraction > 1) {
    throw std::invalid_argument("synth_trace: random_fraction out of range");
  }
  const Schema& schema = policy.schema();
  std::vector<Packet> trace;
  trace.reserve(count);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> rule_pick(0, policy.size() - 1);
  for (std::size_t i = 0; i < count; ++i) {
    Packet p;
    p.reserve(schema.field_count());
    if (coin(rng) < random_fraction) {
      for (std::size_t f = 0; f < schema.field_count(); ++f) {
        std::uniform_int_distribution<Value> v(schema.domain(f).lo(),
                                               schema.domain(f).hi());
        p.push_back(v(rng));
      }
    } else {
      const Rule& rule = policy.rule(rule_pick(rng));
      for (std::size_t f = 0; f < schema.field_count(); ++f) {
        // Sample a run, then a value inside it.
        const std::vector<Interval>& runs = rule.conjunct(f).intervals();
        std::uniform_int_distribution<std::size_t> run_pick(0,
                                                            runs.size() - 1);
        const Interval& run = runs[run_pick(rng)];
        std::uniform_int_distribution<Value> v(run.lo(), run.hi());
        p.push_back(v(rng));
      }
    }
    trace.push_back(std::move(p));
  }
  return trace;
}

}  // namespace dfw
