// The shared flat-slab layout the pointer-walking backends compile to.
//
// Both the flat-slab backend and the prefix-trie backend flatten the FDD
// the same way: children first, so each node's slabs land contiguously;
// one record per nonterminal holding a sorted run of (upper-bound, next)
// slabs; `next` encodes either another node index or a terminal decision
// through the high bit. The trie backend then augments IPv4-field nodes
// with stride tables while keeping the slab run as its fallback and
// build-time source of truth. Internal header — not part of the public
// engine surface.

#pragma once

#include <cstdint>
#include <vector>

#include "net/interval.hpp"

namespace dfw {

struct FddNode;
class Fdd;

namespace engine_detail {

/// `next` values at or above kDecisionBit are terminal decisions.
inline constexpr std::uint32_t kDecisionBit = 0x8000'0000u;

/// A slab covers field values up to and including `upper`.
struct Slab {
  Value upper;
  std::uint32_t next;
};

/// One flattened nonterminal: its schema field and its slab run.
struct SlabNode {
  std::uint32_t field;
  std::uint32_t slab_begin;
  std::uint32_t slab_end;
};

/// The whole flattened diagram. `root` may itself be a decision (constant
/// firewall), in which case `nodes` is empty.
struct SlabLayout {
  std::vector<SlabNode> nodes;
  std::vector<Slab> slabs;
  std::uint32_t root = 0;
};

/// Flattens a complete FDD (caller has validated it). Throws dfw::Error
/// (ErrorCode::kCapacityExceeded) when the diagram exceeds the 31-bit
/// index space.
SlabLayout flatten_fdd(const Fdd& fdd);

/// First slab in [begin, begin+n) whose upper bound is >= v, assuming one
/// exists (completeness guarantees it for in-domain v; out-of-domain
/// values clamp to the last slab). Branchless: the loop body compiles to
/// a conditional move, so lookups over the sorted run never mispredict.
inline const Slab* branchless_lower_bound(const Slab* begin, std::size_t n,
                                          Value v) {
  const Slab* base = begin;
  while (n > 1) {
    const std::size_t half = n / 2;
    base = base[half - 1].upper < v ? base + half : base;
    n -= half;
  }
  return base;
}

}  // namespace engine_detail
}  // namespace dfw
