#include "engine/backend.hpp"

#include "obs/names.hpp"

namespace dfw {

const char* to_string(ClassifierBackendKind kind) {
  switch (kind) {
    case ClassifierBackendKind::kFlatSlab:
      return "flat_slab";
    case ClassifierBackendKind::kPrefixTrie:
      return "prefix_trie";
    case ClassifierBackendKind::kBitParallel:
      return "bit_parallel";
  }
  return "flat_slab";
}

std::optional<ClassifierBackendKind> parse_backend_kind(
    std::string_view name) {
  if (name == "flat_slab") {
    return ClassifierBackendKind::kFlatSlab;
  }
  if (name == "prefix_trie") {
    return ClassifierBackendKind::kPrefixTrie;
  }
  if (name == "bit_parallel") {
    return ClassifierBackendKind::kBitParallel;
  }
  return std::nullopt;
}

const char* compile_phase_name(ClassifierBackendKind kind) {
  switch (kind) {
    case ClassifierBackendKind::kFlatSlab:
      return names::kClassifierCompileFlatSlab;
    case ClassifierBackendKind::kPrefixTrie:
      return names::kClassifierCompilePrefixTrie;
    case ClassifierBackendKind::kBitParallel:
      return names::kClassifierCompileBitParallel;
  }
  return names::kClassifierCompileFlatSlab;
}

const char* serve_backend_counter_name(ClassifierBackendKind kind) {
  switch (kind) {
    case ClassifierBackendKind::kFlatSlab:
      return names::kServeBackendFlatSlab;
    case ClassifierBackendKind::kPrefixTrie:
      return names::kServeBackendPrefixTrie;
    case ClassifierBackendKind::kBitParallel:
      return names::kServeBackendBitParallel;
  }
  return names::kServeBackendFlatSlab;
}

void ClassifierBackend::classify_range(const Packet* packets,
                                       std::size_t count,
                                       Decision* out) const {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = classify_one(packets[i].data());
  }
}

std::shared_ptr<const ClassifierBackend> compile_backend(
    ClassifierBackendKind kind, const Fdd& fdd,
    std::size_t bit_parallel_max_paths) {
  switch (kind) {
    case ClassifierBackendKind::kPrefixTrie:
      return compile_prefix_trie_backend(fdd);
    case ClassifierBackendKind::kBitParallel:
      return compile_bit_parallel_backend(fdd, bit_parallel_max_paths);
    case ClassifierBackendKind::kFlatSlab:
      break;
  }
  return compile_flat_slab_backend(fdd);
}

}  // namespace dfw
