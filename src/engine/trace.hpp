// Trace evaluation and rule-coverage telemetry.
//
// The static analyses (dead_rules, redundancy) say which rules *can* ever
// fire; operators also want to know which rules *do* fire under real
// traffic — unreferenced rules are candidates for retirement and hot
// rules drive classifier placement. This module replays a packet trace
// through a policy, collecting per-rule hit counters and per-decision
// totals, plus a biased trace generator that draws packets from inside
// rule predicates (uniform packets over the 2^104 five-tuple space would
// almost never exercise specific rules).

#pragma once

#include <span>
#include <vector>

#include "fw/policy.hpp"
#include "synth/synth.hpp"

namespace dfw {

struct TraceStats {
  std::vector<std::uint64_t> rule_hits;      ///< one counter per rule
  std::vector<std::uint64_t> decision_hits;  ///< indexed by decision id
  std::uint64_t packets = 0;

  /// Indices of rules no packet of the trace first-matched.
  std::vector<std::size_t> unexercised() const;
};

/// Replays the trace, counting first-match hits. The policy must be
/// comprehensive over every packet of the trace. A std::vector<Packet>
/// converts to the span implicitly.
TraceStats evaluate_trace(const Policy& policy, std::span<const Packet> trace);

/// Generates `count` packets biased toward the policy's own rules: each
/// packet picks a random rule and samples each field from inside that
/// rule's conjunct (earlier rules may still capture the packet — exactly
/// like production traffic hitting a deep rule's shadow). A slice of
/// fully-random packets is mixed in to exercise the default path.
std::vector<Packet> synth_trace(const Policy& policy, std::size_t count,
                                Rng& rng, double random_fraction = 0.1);

}  // namespace dfw
