// The flat-slab backend: the library's original compiled layout, now one
// contender behind the ClassifierBackend interface. One record per FDD
// nonterminal with a sorted (upper, next) slab run; a lookup is d
// branchless binary searches over contiguous memory. This is the default
// backend and the baseline every alternative must beat to earn a slot in
// CompileOptions::backend.

#include "engine/backend.hpp"
#include "engine/slab_layout.hpp"

namespace dfw {
namespace {

using engine_detail::kDecisionBit;
using engine_detail::Slab;
using engine_detail::SlabLayout;
using engine_detail::SlabNode;

class FlatSlabBackend final : public ClassifierBackend {
 public:
  explicit FlatSlabBackend(SlabLayout layout) : layout_(std::move(layout)) {}

  ClassifierBackendKind kind() const override {
    return ClassifierBackendKind::kFlatSlab;
  }

  Decision classify_one(const Value* packet) const override {
    std::uint32_t current = layout_.root;
    while ((current & kDecisionBit) == 0) {
      const SlabNode& node = layout_.nodes[current];
      const Slab* hit = engine_detail::branchless_lower_bound(
          layout_.slabs.data() + node.slab_begin,
          node.slab_end - node.slab_begin, packet[node.field]);
      current = hit->next;
    }
    return static_cast<Decision>(current & ~kDecisionBit);
  }

  std::size_t node_count() const override { return layout_.nodes.size(); }
  std::size_t slab_count() const override { return layout_.slabs.size(); }

 private:
  SlabLayout layout_;
};

}  // namespace

std::shared_ptr<const ClassifierBackend> compile_flat_slab_backend(
    const Fdd& fdd) {
  return std::make_shared<FlatSlabBackend>(engine_detail::flatten_fdd(fdd));
}

}  // namespace dfw
