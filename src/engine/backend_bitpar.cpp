// The bit-parallel backend: Hazelhurst-style interval tables of path
// bitsets, AND-reduced across fields.
//
// Every root-to-terminal path of a complete reduced FDD is a disjoint
// d-dimensional box with a decision, and exactly one box contains any
// packet. Project all boxes onto each field: the projection boundaries
// cut the field's domain into elementary intervals, and each elementary
// interval maps to the bitset of paths whose conjunct covers it. A lookup
// then needs one table-row search per field (branchless, over the rows'
// upper bounds) followed by a word-wise AND across the d selected rows —
// 64 candidate paths per machine word, the bit-parallel reduction of
// Hazelhurst's access-list analyses — stopping at the first nonzero word,
// whose single set bit names the matching path and hence the decision.
//
// The batch path is where this layout earns its slot: classify_range
// stages a block of packets as structure-of-arrays columns, runs each
// field's row search over its contiguous column (one table hot in cache
// per pass, trivially auto-vectorizable), and only then reduces per
// packet. Memory and reduction cost scale with the path count, so
// compilation refuses diagrams beyond `max_paths` with a structured
// dfw::Error (ErrorCode::kCapacityExceeded) rather than silently
// degrading — structured so callers (the serve plane's self-healing
// swap) can catch the code and recompile on a capacity-free backend.

#include <algorithm>
#include <stdexcept>
#include <string>

#include "engine/backend.hpp"
#include "engine/slab_layout.hpp"
#include "fdd/fdd.hpp"
#include "fw/schema.hpp"
#include "rt/govern.hpp"

namespace dfw {
namespace {

class BitParallelBackend final : public ClassifierBackend {
 public:
  BitParallelBackend(const Fdd& fdd, std::size_t max_paths) {
    const Schema& schema = fdd.schema();
    const std::size_t d = schema.field_count();

    std::vector<std::vector<IntervalSet>> paths;
    std::vector<Decision> decisions;
    fdd.for_each_path([&](const std::vector<IntervalSet>& conjuncts,
                          Decision decision) {
      paths.push_back(conjuncts);
      decisions.push_back(decision);
    });
    if (paths.size() > max_paths) {
      throw Error(
          ErrorCode::kCapacityExceeded,
          "bit-parallel classifier: diagram exceeds the path budget (" +
              std::to_string(paths.size()) + " > " +
              std::to_string(max_paths) +
              " paths); raise CompileOptions::bit_parallel_max_paths or "
              "pick another backend");
    }
    decisions_ = std::move(decisions);
    words_ = (decisions_.size() + 63) / 64;
    fields_.resize(d);

    for (std::size_t f = 0; f < d; ++f) {
      // Elementary intervals: every conjunct run edge is a cut; the row
      // for [cut_r, cut_{r+1} - 1] keeps only its upper bound (the row
      // search mirrors the slab search).
      const Interval& domain = schema.domain(f);
      std::vector<Value> cuts;
      cuts.push_back(domain.lo());
      for (const std::vector<IntervalSet>& path : paths) {
        for (const Interval& run : path[f].intervals()) {
          if (run.lo() > domain.lo()) {
            cuts.push_back(run.lo());
          }
          if (run.hi() < domain.hi()) {
            cuts.push_back(run.hi() + 1);
          }
        }
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

      FieldTable& table = fields_[f];
      table.uppers.reserve(cuts.size());
      for (std::size_t r = 0; r + 1 < cuts.size(); ++r) {
        table.uppers.push_back(cuts[r + 1] - 1);
      }
      table.uppers.push_back(domain.hi());
      table.bits.assign(table.uppers.size() * words_, 0);
      for (std::size_t p = 0; p < paths.size(); ++p) {
        for (const Interval& run : paths[p][f].intervals()) {
          // Rows whose start lies in the run: the run's edges are cuts,
          // so containment of the row start is containment of the row.
          const std::size_t first = static_cast<std::size_t>(
              std::lower_bound(cuts.begin(), cuts.end(), run.lo()) -
              cuts.begin());
          for (std::size_t r = first;
               r < table.uppers.size() && table.row_lo(cuts, r) <= run.hi();
               ++r) {
            table.bits[r * words_ + p / 64] |= std::uint64_t{1} << (p % 64);
          }
        }
      }
      rows_total_ += table.uppers.size();
    }
  }

  ClassifierBackendKind kind() const override {
    return ClassifierBackendKind::kBitParallel;
  }

  Decision classify_one(const Value* packet) const override {
    const std::uint64_t* rows[kMaxFields];
    const std::size_t d = fields_.size();
    if (d > kMaxFields) {
      return classify_wide(packet);
    }
    for (std::size_t f = 0; f < d; ++f) {
      rows[f] = row_for(f, packet[f]);
    }
    return reduce(rows, d);
  }

  void classify_range(const Packet* packets, std::size_t count,
                      Decision* out) const override {
    const std::size_t d = fields_.size();
    if (d > kMaxFields) {
      ClassifierBackend::classify_range(packets, count, out);
      return;
    }
    // Structure-of-arrays staging: transpose a block of packets into
    // per-field columns, resolve each field's rows over its contiguous
    // column (one interval table per pass), then reduce per packet.
    Value column[kMaxFields][kBlock];
    const std::uint64_t* rows[kBlock][kMaxFields];
    for (std::size_t base = 0; base < count; base += kBlock) {
      const std::size_t n = std::min(kBlock, count - base);
      for (std::size_t f = 0; f < d; ++f) {
        for (std::size_t i = 0; i < n; ++i) {
          column[f][i] = packets[base + i][f];
        }
      }
      for (std::size_t f = 0; f < d; ++f) {
        for (std::size_t i = 0; i < n; ++i) {
          rows[i][f] = row_for(f, column[f][i]);
        }
      }
      for (std::size_t i = 0; i < n; ++i) {
        out[base + i] = reduce(rows[i], d);
      }
    }
  }

  std::size_t node_count() const override { return decisions_.size(); }
  std::size_t slab_count() const override { return rows_total_; }

 private:
  static constexpr std::size_t kMaxFields = 8;
  static constexpr std::size_t kBlock = 64;

  struct FieldTable {
    std::vector<Value> uppers;        ///< row r covers (prev upper, uppers[r]]
    std::vector<std::uint64_t> bits;  ///< row-major, words_ words per row

    Value row_lo(const std::vector<Value>& cuts, std::size_t r) const {
      return cuts[r];
    }
  };

  const std::uint64_t* row_for(std::size_t f, Value v) const {
    const FieldTable& table = fields_[f];
    // Branchless search over the row upper bounds, as in slab_layout.
    const Value* base = table.uppers.data();
    std::size_t n = table.uppers.size();
    while (n > 1) {
      const std::size_t half = n / 2;
      base = base[half - 1] < v ? base + half : base;
      n -= half;
    }
    return table.bits.data() +
           static_cast<std::size_t>(base - table.uppers.data()) * words_;
  }

  Decision reduce(const std::uint64_t* const* rows, std::size_t d) const {
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t acc = rows[0][w];
      for (std::size_t f = 1; f < d; ++f) {
        acc &= rows[f][w];
      }
      if (acc != 0) {
        // Disjoint complete paths: exactly one bit survives overall.
        const std::size_t path =
            w * 64 + static_cast<std::size_t>(__builtin_ctzll(acc));
        return decisions_[path];
      }
    }
    // Unreachable for in-domain packets of a validated FDD; fall back to
    // the first path's decision rather than invoking UB.
    return decisions_.empty() ? kAccept : decisions_[0];
  }

  Decision classify_wide(const Value* packet) const {
    std::vector<const std::uint64_t*> rows(fields_.size());
    for (std::size_t f = 0; f < fields_.size(); ++f) {
      rows[f] = row_for(f, packet[f]);
    }
    return reduce(rows.data(), fields_.size());
  }

  std::vector<FieldTable> fields_;
  std::vector<Decision> decisions_;  ///< per path, in for_each_path order
  std::size_t words_ = 0;
  std::size_t rows_total_ = 0;
};

}  // namespace

std::shared_ptr<const ClassifierBackend> compile_bit_parallel_backend(
    const Fdd& fdd, std::size_t max_paths) {
  return std::make_shared<BitParallelBackend>(fdd, max_paths);
}

}  // namespace dfw
