#include "engine/slab_layout.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fdd/fdd.hpp"
#include "rt/govern.hpp"

namespace dfw::engine_detail {
namespace {

std::uint32_t flatten_node(const FddNode& node, SlabLayout& layout) {
  if (node.is_terminal()) {
    return kDecisionBit | node.decision;
  }
  // Children first, so this node's slabs land contiguously afterwards.
  std::vector<std::pair<Value, std::uint32_t>> pending;
  for (const FddEdge& e : node.edges) {
    const std::uint32_t target = flatten_node(*e.target, layout);
    for (const Interval& run : e.label.intervals()) {
      pending.emplace_back(run.hi(), target);
    }
  }
  std::sort(pending.begin(), pending.end());
  const std::uint32_t slab_begin =
      static_cast<std::uint32_t>(layout.slabs.size());
  for (const auto& [upper, target] : pending) {
    layout.slabs.push_back({upper, target});
  }
  const std::uint32_t index = static_cast<std::uint32_t>(layout.nodes.size());
  if (index >= kDecisionBit) {
    throw Error(ErrorCode::kCapacityExceeded,
                "flat-slab classifier: diagram exceeds the 31-bit node "
                "index space");
  }
  layout.nodes.push_back({static_cast<std::uint32_t>(node.field), slab_begin,
                          static_cast<std::uint32_t>(layout.slabs.size())});
  return index;
}

}  // namespace

SlabLayout flatten_fdd(const Fdd& fdd) {
  SlabLayout layout;
  layout.root = flatten_node(fdd.root(), layout);
  return layout;
}

}  // namespace dfw::engine_detail
