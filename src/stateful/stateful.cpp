#include "stateful/stateful.hpp"

#include <algorithm>
#include <stdexcept>

namespace dfw {

Flow Flow::of(const Packet& p) {
  return Flow{p[0], p[1], p[2], p[3], p[4]};
}

Flow Flow::reversed() const { return Flow{dip, sip, dport, sport, proto}; }

StatefulFirewall::StatefulFirewall(Policy core, std::vector<bool> tracked,
                                   std::size_t state_capacity)
    : core_(std::move(core)),
      tracked_(std::move(tracked)),
      capacity_(state_capacity) {
  if (!(core_.schema() == five_tuple_schema())) {
    throw std::invalid_argument(
        "StatefulFirewall: core must use five_tuple_schema()");
  }
  if (tracked_.size() != core_.size()) {
    throw std::invalid_argument(
        "StatefulFirewall: tracked flags must match the rule count");
  }
  if (capacity_ == 0) {
    throw std::invalid_argument(
        "StatefulFirewall: state capacity must be positive");
  }
}

bool StatefulFirewall::knows_flow(const Flow& flow) const {
  return std::find(table_.begin(), table_.end(), flow) != table_.end();
}

StatefulVerdict StatefulFirewall::process(const Packet& p) {
  const Flow flow = Flow::of(p);
  // Section 1: the state table admits both directions of a tracked flow.
  if (knows_flow(flow) || knows_flow(flow.reversed())) {
    return {kAccept, /*via_state=*/true, /*tracked_new=*/false};
  }
  // Section 2: the stateless core.
  const std::optional<std::size_t> match = core_.first_match(p);
  if (!match) {
    throw std::logic_error(
        "StatefulFirewall::process: core is not comprehensive");
  }
  const Decision decision = core_.rule(*match).decision();
  bool inserted = false;
  if (decision == kAccept && tracked_[*match]) {
    if (table_.size() == capacity_) {
      table_.pop_front();  // FIFO eviction
    }
    table_.push_back(flow);
    inserted = true;
  }
  return {decision, /*via_state=*/false, inserted};
}

}  // namespace dfw
