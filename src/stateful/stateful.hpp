// A model of stateful firewalls.
//
// The paper scopes itself to stateless policies but leans on the authors'
// companion model of stateful firewalls (its ref [11], Gouda & Liu,
// DSN 2005): a stateful firewall is a *stateless core* — exactly the
// Policy the diverse-design method analyses — plus a state section that
// remembers accepted flows and admits their return traffic. We implement
// that two-section model so stateful configurations can be (a) executed
// over packet traces and (b) fed to the comparison pipeline through their
// stateless cores.
//
// Semantics per packet, in order:
//   1. if the packet belongs to a tracked flow (same direction) or is the
//      reverse of one, accept it (the state section);
//   2. otherwise evaluate the stateless core; if it accepts via a rule
//      marked `track`, insert the packet's flow into the state table.
// The state table is bounded; inserting into a full table evicts the
// oldest flow (FIFO), mirroring the connection-table behaviour of real
// middleboxes.

#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "fw/policy.hpp"

namespace dfw {

/// A flow identity over the five-tuple schema.
struct Flow {
  Value sip;
  Value dip;
  Value sport;
  Value dport;
  Value proto;

  static Flow of(const Packet& p);
  /// The reverse direction: endpoints and ports swapped.
  Flow reversed() const;

  friend bool operator==(const Flow&, const Flow&) = default;
};

/// Outcome of processing one packet.
struct StatefulVerdict {
  Decision decision;
  bool via_state = false;   ///< accepted by the state section
  bool tracked_new = false; ///< inserted a new flow into the table
};

class StatefulFirewall {
 public:
  /// Wraps a comprehensive stateless core over five_tuple_schema().
  /// `tracked` marks which rules insert state on accept; its size must
  /// equal the core's rule count.
  StatefulFirewall(Policy core, std::vector<bool> tracked,
                   std::size_t state_capacity = 4096);

  /// Processes one packet, mutating the state table.
  StatefulVerdict process(const Packet& p);

  /// The stateless core — the object diverse design compares.
  const Policy& core() const { return core_; }

  std::size_t state_size() const { return table_.size(); }
  bool knows_flow(const Flow& flow) const;
  void clear_state() { table_.clear(); }

 private:
  Policy core_;
  std::vector<bool> tracked_;
  std::size_t capacity_;
  std::deque<Flow> table_;  // FIFO eviction order
};

}  // namespace dfw
