#include "fw/permute.hpp"

#include <stdexcept>

namespace dfw {
namespace {

void check_permutation(std::size_t d, const std::vector<std::size_t>& order) {
  if (order.size() != d) {
    throw std::invalid_argument("permute: order size != field count");
  }
  std::vector<bool> seen(d, false);
  for (const std::size_t i : order) {
    if (i >= d || seen[i]) {
      throw std::invalid_argument("permute: order is not a permutation");
    }
    seen[i] = true;
  }
}

}  // namespace

Schema permute_schema(const Schema& schema,
                      const std::vector<std::size_t>& order) {
  check_permutation(schema.field_count(), order);
  std::vector<Field> fields;
  fields.reserve(order.size());
  for (const std::size_t i : order) {
    fields.push_back(schema.field(i));
  }
  return Schema(std::move(fields));
}

Policy permute_policy(const Policy& policy,
                      const std::vector<std::size_t>& order) {
  const Schema permuted = permute_schema(policy.schema(), order);
  std::vector<Rule> rules;
  rules.reserve(policy.size());
  for (const Rule& rule : policy.rules()) {
    std::vector<IntervalSet> conjuncts;
    conjuncts.reserve(order.size());
    for (const std::size_t i : order) {
      conjuncts.push_back(rule.conjunct(i));
    }
    rules.emplace_back(permuted, std::move(conjuncts), rule.decision());
  }
  return Policy(permuted, std::move(rules));
}

Packet permute_packet(const Packet& packet,
                      const std::vector<std::size_t>& order) {
  check_permutation(packet.size(), order);
  Packet out;
  out.reserve(order.size());
  for (const std::size_t i : order) {
    out.push_back(packet[i]);
  }
  return out;
}

std::vector<std::size_t> inverse_order(
    const std::vector<std::size_t>& order) {
  check_permutation(order.size(), order);
  std::vector<std::size_t> inverse(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    inverse[order[i]] = i;
  }
  return inverse;
}

}  // namespace dfw
