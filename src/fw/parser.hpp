// Text format for firewall policies.
//
// One rule per line:
//
//   <decision> [<field>=<spec> ...]     # trailing comment
//
// where <spec> is a comma-separated union of atoms and an atom is
//   *                        the whole domain (same as omitting the field)
//   42                       a single value
//   10-20                    an inclusive integer range
//   192.168.0.1              an IPv4 host          (kIpv4 fields)
//   224.168.0.0/16           a CIDR prefix         (kIpv4 fields)
//   10.0.0.0-10.0.0.255      an IPv4 range         (kIpv4 fields)
//   tcp | udp | icmp         protocol mnemonics    (kProtocol fields)
//
// Omitted fields default to their full domain, matching the paper's
// "F in all" shorthand (Section 3.1). Blank lines and '#' comments are
// ignored. Example (Team B's firewall, Table 2):
//
//   discard I=0 S=224.168.0.0/16
//   accept  I=0 D=192.168.0.1 N=25 P=tcp
//   discard I=0 D=192.168.0.1
//   accept

#pragma once

#include <string>
#include <string_view>

#include "fw/policy.hpp"

namespace dfw {

/// Thrown on malformed input; what() carries line number and cause.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Parses a whole policy (one rule per line).
Policy parse_policy(const Schema& schema, const DecisionSet& decisions,
                    std::string_view text);

/// Parses a single rule line (no comments/blank allowed).
Rule parse_rule(const Schema& schema, const DecisionSet& decisions,
                std::string_view line);

}  // namespace dfw
