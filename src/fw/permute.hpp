// Field-order permutation (paper, Section 7.2).
//
// The shaping algorithm requires both FDDs to be ordered by the same field
// order. When teams design over different orders — e.g. one team's FDD
// tests destination address first — the paper's recipe is: generate an
// equivalent rule sequence from one design, then construct an ordered FDD
// from it using the other's field order. Permuting a policy's schema is
// the substrate of that recipe: rules are order-insensitive conjunctions,
// so reordering fields preserves semantics exactly.

#pragma once

#include <cstddef>
#include <vector>

#include "fw/policy.hpp"

namespace dfw {

/// Returns the schema with fields reordered so that new field i is old
/// field order[i]. `order` must be a permutation of [0, d).
Schema permute_schema(const Schema& schema,
                      const std::vector<std::size_t>& order);

/// Returns the policy over the permuted schema; packet p in the original
/// schema corresponds to the permuted packet q with q[i] = p[order[i]],
/// and decisions are preserved under that bijection.
Policy permute_policy(const Policy& policy,
                      const std::vector<std::size_t>& order);

/// Reorders a packet from the original schema into the permuted one.
Packet permute_packet(const Packet& packet,
                      const std::vector<std::size_t>& order);

/// The inverse permutation: permute_policy(p, order) composed with
/// permute_policy(..., inverse_order(order)) is the identity.
std::vector<std::size_t> inverse_order(const std::vector<std::size_t>& order);

}  // namespace dfw
