// Firewall rules.
//
// A rule is <predicate> -> <decision> where the predicate is a conjunction
// F_1 in S_1 ^ ... ^ F_d in S_d (paper, Section 3.1). Each S_i is stored as
// an IntervalSet over D(F_i); a rule is "simple" when every S_i is a single
// interval, which is the common deployable form and the form Theorem 1 and
// the synthetic generator use.

#pragma once

#include <string>
#include <vector>

#include "fw/decision.hpp"
#include "fw/packet.hpp"
#include "fw/schema.hpp"
#include "net/interval_set.hpp"

namespace dfw {

/// One firewall rule: d conjuncts plus a decision.
class Rule {
 public:
  /// Constructs a rule; `conjuncts` must have one nonempty set per schema
  /// field, each within the field's domain (validated).
  Rule(const Schema& schema, std::vector<IntervalSet> conjuncts,
       Decision decision);

  /// Convenience: the catch-all rule F_i in D(F_i) for all i.
  static Rule catch_all(const Schema& schema, Decision decision);

  const std::vector<IntervalSet>& conjuncts() const { return conjuncts_; }
  const IntervalSet& conjunct(std::size_t i) const { return conjuncts_[i]; }
  Decision decision() const { return decision_; }
  void set_decision(Decision d) { decision_ = d; }

  /// First-match semantics building block: does packet p satisfy every
  /// conjunct? Requires p.size() == d.
  bool matches(const Packet& p) const;

  /// A rule is simple iff every conjunct is one interval (Section 3.1).
  bool is_simple() const;

  friend bool operator==(const Rule&, const Rule&) = default;

 private:
  std::vector<IntervalSet> conjuncts_;
  Decision decision_;
};

}  // namespace dfw
