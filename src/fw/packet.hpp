// Packets.
//
// A packet over fields F_1 ... F_d is a d-tuple (p_1, ..., p_d) with each
// p_i in D(F_i) (paper, Section 3.1). We keep it as a plain value vector;
// schema conformance is checked where packets enter the library.

#pragma once

#include <vector>

#include "net/interval.hpp"

namespace dfw {

using Packet = std::vector<Value>;

}  // namespace dfw
