#include "fw/parser.hpp"

#include <cctype>
#include <charconv>
#include <vector>

#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/prefix.hpp"

namespace dfw {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t end = s.find(sep, start);
    if (end == std::string_view::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::optional<Value> parse_uint(std::string_view s) {
  if (s.empty()) {
    return std::nullopt;
  }
  Value v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    return std::nullopt;
  }
  return v;
}

// Parses one value according to the field's display kind.
std::optional<Value> parse_value(const Field& field, std::string_view s) {
  switch (field.kind) {
    case FieldKind::kIpv4:
      if (auto addr = parse_ipv4(s)) {
        return Value{*addr};
      }
      return parse_uint(s);
    case FieldKind::kProtocol:
      if (s == "tcp") {
        // The paper's example schema uses {0 = TCP, 1 = UDP}; the real
        // IANA numbers (6, 17, 1) apply on 8-bit protocol domains.
        return field.domain.hi() <= 1 ? Value{0} : Value{6};
      }
      if (s == "udp") {
        return field.domain.hi() <= 1 ? Value{1} : Value{17};
      }
      if (s == "icmp" && field.domain.hi() > 1) {
        return Value{1};
      }
      return parse_uint(s);
    case FieldKind::kInteger:
    case FieldKind::kIpv6Hi:  // raw 64-bit halves accept plain integers;
    case FieldKind::kIpv6Lo:  // CIDR syntax is handled before atoms split
      return parse_uint(s);
  }
  return std::nullopt;
}

// Parses one comma-atom into an interval.
Interval parse_atom(const Field& field, std::string_view atom,
                    std::size_t line) {
  // CIDR prefix?
  if (field.kind == FieldKind::kIpv4 &&
      atom.find('/') != std::string_view::npos) {
    const auto prefix = parse_prefix(atom);
    if (!prefix) {
      throw ParseError(line, "bad prefix '" + std::string(atom) + "'");
    }
    return prefix->to_interval();
  }
  // Range a-b? (careful: IPv4 ranges contain '.', plain '-' split is safe
  // because dotted quads never contain '-')
  const std::size_t dash = atom.find('-');
  if (dash != std::string_view::npos) {
    const auto lo = parse_value(field, trim(atom.substr(0, dash)));
    const auto hi = parse_value(field, trim(atom.substr(dash + 1)));
    if (!lo || !hi || *lo > *hi) {
      throw ParseError(line, "bad range '" + std::string(atom) + "'");
    }
    return Interval(*lo, *hi);
  }
  const auto v = parse_value(field, atom);
  if (!v) {
    throw ParseError(line, "bad value '" + std::string(atom) + "' for field " +
                               field.name);
  }
  return Interval::point(*v);
}

IntervalSet parse_spec(const Field& field, std::string_view spec,
                       std::size_t line) {
  if (spec == "*" || spec == "all") {
    return IntervalSet(field.domain);
  }
  IntervalSet set;
  for (std::string_view atom : split(spec, ',')) {
    atom = trim(atom);
    if (atom.empty()) {
      throw ParseError(line, "empty atom in spec '" + std::string(spec) + "'");
    }
    set.add(parse_atom(field, atom, line));
  }
  if (!IntervalSet(field.domain).contains(set)) {
    throw ParseError(line, "spec '" + std::string(spec) +
                               "' exceeds domain of field " + field.name);
  }
  return set;
}

Rule parse_rule_line(const Schema& schema, const DecisionSet& decisions,
                     std::string_view line_text, std::size_t line) {
  std::vector<std::string_view> tokens;
  for (std::string_view tok : split(line_text, ' ')) {
    tok = trim(tok);
    if (!tok.empty()) {
      tokens.push_back(tok);
    }
  }
  if (tokens.empty()) {
    throw ParseError(line, "empty rule");
  }
  const auto decision = decisions.find(tokens[0]);
  if (!decision) {
    throw ParseError(line,
                     "unknown decision '" + std::string(tokens[0]) + "'");
  }
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema.field_count());
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    conjuncts.emplace_back(schema.domain(i));
  }
  std::vector<bool> seen(schema.field_count(), false);
  for (std::size_t t = 1; t < tokens.size(); ++t) {
    const std::size_t eq = tokens[t].find('=');
    if (eq == std::string_view::npos) {
      throw ParseError(line, "expected field=spec, got '" +
                                 std::string(tokens[t]) + "'");
    }
    const std::string_view name = tokens[t].substr(0, eq);
    const auto idx = schema.index_of(name);
    if (!idx) {
      throw ParseError(line, "unknown field '" + std::string(name) + "'");
    }
    if (seen[*idx]) {
      throw ParseError(line, "field '" + std::string(name) + "' repeated");
    }
    seen[*idx] = true;
    const Field& field = schema.field(*idx);
    if (field.kind == FieldKind::kIpv6Lo) {
      throw ParseError(line, "field '" + std::string(name) +
                                 "' is the low half of an IPv6 address; "
                                 "set it via its high-half field");
    }
    if (field.kind == FieldKind::kIpv6Hi) {
      // One CIDR (or bare address) per rule: an IPv6 prefix is exactly one
      // conjunct over the (hi, lo) pair, a union of prefixes is not.
      const std::string_view spec = tokens[t].substr(eq + 1);
      if (spec == "*" || spec == "all") {
        continue;  // both halves stay full-domain
      }
      const auto prefix = parse_ipv6_prefix(spec);
      if (!prefix) {
        throw ParseError(line, "bad IPv6 prefix '" + std::string(spec) +
                                   "' for field " + field.name);
      }
      const auto [hi, lo] = prefix->to_intervals();
      conjuncts[*idx] = IntervalSet(hi);
      conjuncts[*idx + 1] = IntervalSet(lo);
      seen[*idx + 1] = true;
      continue;
    }
    conjuncts[*idx] =
        parse_spec(field, tokens[t].substr(eq + 1), line);
  }
  return Rule(schema, std::move(conjuncts), *decision);
}

}  // namespace

Rule parse_rule(const Schema& schema, const DecisionSet& decisions,
                std::string_view line) {
  return parse_rule_line(schema, decisions, line, 1);
}

Policy parse_policy(const Schema& schema, const DecisionSet& decisions,
                    std::string_view text) {
  std::vector<Rule> rules;
  std::size_t line_no = 0;
  for (std::string_view raw : split(text, '\n')) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) {
      raw = raw.substr(0, hash);
    }
    raw = trim(raw);
    if (raw.empty()) {
      continue;
    }
    rules.push_back(parse_rule_line(schema, decisions, raw, line_no));
  }
  if (rules.empty()) {
    throw ParseError(line_no, "policy has no rules");
  }
  return Policy(schema, std::move(rules));
}

}  // namespace dfw
