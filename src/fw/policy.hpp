// Firewall policies: ordered rule sequences with first-match semantics.
//
// "A firewall f over the d fields F_1 ... F_d is a sequence of firewall
// rules ... the decision for a packet p is the decision of the first rule
// that p matches" (paper, Section 3.1). A sequence must be comprehensive to
// serve as a firewall; Policy checks and reports that.

#pragma once

#include <optional>
#include <vector>

#include "fw/rule.hpp"
#include "fw/schema.hpp"

namespace dfw {

/// A firewall policy: a schema plus an ordered, nonempty rule list.
class Policy {
 public:
  /// Constructs a policy. Rules must be nonempty; comprehensiveness is NOT
  /// required here (use is_comprehensive(), or evaluate() which throws on a
  /// fall-through) so that in-progress edits can be represented.
  Policy(Schema schema, std::vector<Rule> rules);

  const Schema& schema() const { return schema_; }
  const std::vector<Rule>& rules() const { return rules_; }
  const Rule& rule(std::size_t i) const { return rules_.at(i); }
  std::size_t size() const { return rules_.size(); }

  /// First-match evaluation f(p). Throws std::logic_error if no rule
  /// matches (the sequence was not comprehensive).
  Decision evaluate(const Packet& p) const;

  /// Index of the first matching rule, or nullopt on fall-through.
  std::optional<std::size_t> first_match(const Packet& p) const;

  /// True iff the last rule is a catch-all (the standard way the paper
  /// ensures comprehensiveness, Section 3.1). This is a sufficient,
  /// syntactic check; semantic comprehensiveness is checked via FDDs.
  bool last_rule_is_catch_all() const;

  // --- edit operations (used by change-impact analysis, Section 1.3) ---

  /// Inserts `rule` so that it becomes rules()[index]; index <= size().
  void insert(std::size_t index, Rule rule);
  /// Removes rules()[index]; index < size().
  void erase(std::size_t index);
  /// Replaces rules()[index]; index < size().
  void replace(std::size_t index, Rule rule);
  /// Moves the rule at `from` so that it ends up at position `to`.
  void move(std::size_t from, std::size_t to);

 private:
  Schema schema_;
  std::vector<Rule> rules_;
};

}  // namespace dfw
