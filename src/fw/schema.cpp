#include "fw/schema.hpp"

#include <stdexcept>

namespace dfw {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {
  if (fields_.empty()) {
    throw std::invalid_argument("Schema: at least one field required");
  }
  for (const Field& f : fields_) {
    if (f.name.empty()) {
      throw std::invalid_argument("Schema: field names must be nonempty");
    }
    if (f.domain.lo() != 0) {
      throw std::invalid_argument("Schema: domains must start at 0");
    }
  }
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    for (std::size_t j = i + 1; j < fields_.size(); ++j) {
      if (fields_[i].name == fields_[j].name) {
        throw std::invalid_argument("Schema: duplicate field name " +
                                    fields_[i].name);
      }
    }
  }
  // IPv6 halves must come in adjacent (hi, lo) pairs with full 64-bit
  // domains, or the CIDR-to-conjunct mapping breaks.
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].kind == FieldKind::kIpv6Hi) {
      if (i + 1 >= fields_.size() ||
          fields_[i + 1].kind != FieldKind::kIpv6Lo) {
        throw std::invalid_argument(
            "Schema: kIpv6Hi field must be followed by its kIpv6Lo half");
      }
      if (!(fields_[i].domain == Interval(0, UINT64_MAX)) ||
          !(fields_[i + 1].domain == Interval(0, UINT64_MAX))) {
        throw std::invalid_argument(
            "Schema: IPv6 halves must span the full 64-bit domain");
      }
    } else if (fields_[i].kind == FieldKind::kIpv6Lo) {
      if (i == 0 || fields_[i - 1].kind != FieldKind::kIpv6Hi) {
        throw std::invalid_argument(
            "Schema: kIpv6Lo field must follow its kIpv6Hi half");
      }
    }
  }
  domain_sets_.reserve(fields_.size());
  for (const Field& f : fields_) {
    domain_sets_.emplace_back(f.domain);
  }
}

const Field& Schema::field(std::size_t i) const {
  if (i >= fields_.size()) {
    throw std::out_of_range("Schema::field: index out of range");
  }
  return fields_[i];
}

std::optional<std::size_t> Schema::index_of(std::string_view name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) {
      return i;
    }
  }
  return std::nullopt;
}

Value Schema::packet_space_size() const {
  Value total = 1;
  for (const Field& f : fields_) {
    const Value n = f.domain.size();
    if (n != 0 && total > UINT64_MAX / n) {
      return UINT64_MAX;
    }
    total *= n;
  }
  return total;
}

bool operator==(const Schema& a, const Schema& b) {
  return a.fields_ == b.fields_;
}

Schema example_schema() {
  return Schema({
      {"I", Interval(0, 1), FieldKind::kInteger},
      {"S", Interval(0, UINT32_MAX), FieldKind::kIpv4},
      {"D", Interval(0, UINT32_MAX), FieldKind::kIpv4},
      {"N", Interval(0, 65535), FieldKind::kInteger},
      {"P", Interval(0, 1), FieldKind::kProtocol},
  });
}

Schema five_tuple_v6_schema() {
  return Schema({
      {"sip", Interval(0, UINT64_MAX), FieldKind::kIpv6Hi},
      {"sip.lo", Interval(0, UINT64_MAX), FieldKind::kIpv6Lo},
      {"dip", Interval(0, UINT64_MAX), FieldKind::kIpv6Hi},
      {"dip.lo", Interval(0, UINT64_MAX), FieldKind::kIpv6Lo},
      {"sport", Interval(0, 65535), FieldKind::kInteger},
      {"dport", Interval(0, 65535), FieldKind::kInteger},
      {"proto", Interval(0, 255), FieldKind::kProtocol},
  });
}

Schema five_tuple_schema() {
  return Schema({
      {"sip", Interval(0, UINT32_MAX), FieldKind::kIpv4},
      {"dip", Interval(0, UINT32_MAX), FieldKind::kIpv4},
      {"sport", Interval(0, 65535), FieldKind::kInteger},
      {"dport", Interval(0, 65535), FieldKind::kInteger},
      {"proto", Interval(0, 255), FieldKind::kProtocol},
  });
}

}  // namespace dfw
