#include "fw/rule.hpp"

#include <stdexcept>

namespace dfw {

Rule::Rule(const Schema& schema, std::vector<IntervalSet> conjuncts,
           Decision decision)
    : conjuncts_(std::move(conjuncts)), decision_(decision) {
  if (conjuncts_.size() != schema.field_count()) {
    throw std::invalid_argument("Rule: conjunct count != field count");
  }
  for (std::size_t i = 0; i < conjuncts_.size(); ++i) {
    if (conjuncts_[i].empty()) {
      throw std::invalid_argument("Rule: empty conjunct for field " +
                                  schema.field(i).name);
    }
    if (!IntervalSet(schema.domain(i)).contains(conjuncts_[i])) {
      throw std::invalid_argument("Rule: conjunct exceeds domain of field " +
                                  schema.field(i).name);
    }
  }
}

Rule Rule::catch_all(const Schema& schema, Decision decision) {
  std::vector<IntervalSet> conjuncts;
  conjuncts.reserve(schema.field_count());
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    conjuncts.emplace_back(schema.domain(i));
  }
  return Rule(schema, std::move(conjuncts), decision);
}

bool Rule::matches(const Packet& p) const {
  if (p.size() != conjuncts_.size()) {
    throw std::invalid_argument("Rule::matches: packet arity mismatch");
  }
  for (std::size_t i = 0; i < conjuncts_.size(); ++i) {
    if (!conjuncts_[i].contains(p[i])) {
      return false;
    }
  }
  return true;
}

bool Rule::is_simple() const {
  for (const IntervalSet& s : conjuncts_) {
    if (s.run_count() != 1) {
      return false;
    }
  }
  return true;
}

}  // namespace dfw
