#include "fw/policy.hpp"

#include <stdexcept>

namespace dfw {

Policy::Policy(Schema schema, std::vector<Rule> rules)
    : schema_(std::move(schema)), rules_(std::move(rules)) {
  if (rules_.empty()) {
    throw std::invalid_argument("Policy: at least one rule required");
  }
  for (const Rule& r : rules_) {
    if (r.conjuncts().size() != schema_.field_count()) {
      throw std::invalid_argument("Policy: rule arity != schema arity");
    }
  }
}

Decision Policy::evaluate(const Packet& p) const {
  if (auto idx = first_match(p)) {
    return rules_[*idx].decision();
  }
  throw std::logic_error("Policy::evaluate: no rule matches (policy not comprehensive)");
}

std::optional<std::size_t> Policy::first_match(const Packet& p) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].matches(p)) {
      return i;
    }
  }
  return std::nullopt;
}

bool Policy::last_rule_is_catch_all() const {
  const Rule& last = rules_.back();
  for (std::size_t i = 0; i < schema_.field_count(); ++i) {
    if (last.conjunct(i) != IntervalSet(schema_.domain(i))) {
      return false;
    }
  }
  return true;
}

void Policy::insert(std::size_t index, Rule rule) {
  if (index > rules_.size()) {
    throw std::out_of_range("Policy::insert: index out of range");
  }
  rules_.insert(rules_.begin() + static_cast<std::ptrdiff_t>(index),
                std::move(rule));
}

void Policy::erase(std::size_t index) {
  if (index >= rules_.size()) {
    throw std::out_of_range("Policy::erase: index out of range");
  }
  if (rules_.size() == 1) {
    throw std::logic_error("Policy::erase: cannot remove the only rule");
  }
  rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(index));
}

void Policy::replace(std::size_t index, Rule rule) {
  if (index >= rules_.size()) {
    throw std::out_of_range("Policy::replace: index out of range");
  }
  rules_[index] = std::move(rule);
}

void Policy::move(std::size_t from, std::size_t to) {
  if (from >= rules_.size() || to >= rules_.size()) {
    throw std::out_of_range("Policy::move: index out of range");
  }
  if (from == to) {
    return;
  }
  Rule r = rules_[from];
  rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(from));
  rules_.insert(rules_.begin() + static_cast<std::ptrdiff_t>(to),
                std::move(r));
}

}  // namespace dfw
