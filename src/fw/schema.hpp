// Field schemas.
//
// A field F_i is "a variable whose domain D(F_i) is a finite interval of
// nonnegative integers" (paper, Section 3.1). A Schema fixes the ordered
// list of fields a firewall examines — their names, domains, and display
// kinds — and every algorithm in the library is generic over it.

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/interval.hpp"
#include "net/interval_set.hpp"

namespace dfw {

/// How a field's values should be parsed and printed.
enum class FieldKind {
  kInteger,   ///< plain nonnegative integers (ports, interface ids)
  kIpv4,      ///< dotted-quad / CIDR prefixes over a 32-bit domain
  kProtocol,  ///< integer with tcp/udp/icmp mnemonics
  kIpv6Hi,    ///< high 64 bits of an IPv6 address (next field must be kIpv6Lo)
  kIpv6Lo,    ///< low 64 bits; addressed through its kIpv6Hi partner
};

/// One packet field: a name, a domain [0, max], and a display kind.
struct Field {
  std::string name;
  Interval domain;
  FieldKind kind = FieldKind::kInteger;
};

/// An ordered list of fields F_1 ... F_d. Immutable once built.
class Schema {
 public:
  explicit Schema(std::vector<Field> fields);

  std::size_t field_count() const { return fields_.size(); }
  const Field& field(std::size_t i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of a field by name, or nullopt.
  std::optional<std::size_t> index_of(std::string_view name) const;

  /// The domain of field i as a single-interval set; requires i < d.
  const Interval& domain(std::size_t i) const { return field(i).domain; }

  /// The domain of field i as an IntervalSet, cached at construction.
  /// Wildcard checks and splice checks compare conjuncts against this set
  /// on every visit; handing out a shared instance keeps those loops free
  /// of per-call IntervalSet allocations.
  const IntervalSet& domain_set(std::size_t i) const {
    field(i);  // range check
    return domain_sets_[i];
  }

  /// Total number of distinct packets |Sigma| = prod |D(F_i)|, saturating
  /// at UINT64_MAX. Used by exhaustive property tests on tiny schemas.
  Value packet_space_size() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Field> fields_;
  std::vector<IntervalSet> domain_sets_;
};

inline bool operator==(const Field& a, const Field& b) {
  return a.name == b.name && a.domain == b.domain && a.kind == b.kind;
}

/// The paper's five-field schema: interface I (domain [0,1] as in the
/// running example), source/destination IPv4 addresses S and D, destination
/// port N, and protocol P in {0 = TCP, 1 = UDP} (Section 2).
Schema example_schema();

/// The classic real-life five-tuple (Section 7.1): 32-bit src/dst IPv4,
/// 16-bit src/dst ports, 8-bit protocol.
Schema five_tuple_schema();

/// The IPv6 five-tuple: each 128-bit address is a (hi, lo) pair of 64-bit
/// fields (see net/ipv6.hpp for why that is exact for CIDR rules), then
/// 16-bit src/dst ports and the 8-bit protocol — 7 fields in total.
Schema five_tuple_v6_schema();

}  // namespace dfw
