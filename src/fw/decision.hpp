// Rule decisions.
//
// The paper's decision set DS (Section 2) commonly holds accept, discard,
// accept-with-logging, and discard-with-logging, but the method "can support
// any number of decisions". We model a decision as a small integer id with a
// registry of printable names so user-defined decisions compose with every
// algorithm unchanged.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dfw {

/// Identifier of a decision within a DecisionSet.
using Decision = std::uint16_t;

/// The built-in decisions every DecisionSet starts with.
inline constexpr Decision kAccept = 0;
inline constexpr Decision kDiscard = 1;

/// A registry of decision names. Ids are dense and stable; 0 is "accept"
/// and 1 is "discard" by construction.
class DecisionSet {
 public:
  /// Creates a set with the two built-in decisions.
  DecisionSet();

  /// Registers a new decision (e.g. "accept_log"); returns its id.
  /// Registering an existing name returns the existing id.
  Decision add(std::string_view name);

  /// Looks a name up; nullopt if unknown.
  std::optional<Decision> find(std::string_view name) const;

  /// Name of an id; requires d < size().
  const std::string& name(Decision d) const;

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
};

/// A shared default set holding exactly accept/discard — sufficient for the
/// paper's running example and most tests.
const DecisionSet& default_decisions();

}  // namespace dfw
