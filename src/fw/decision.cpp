#include "fw/decision.hpp"

#include <stdexcept>

namespace dfw {

DecisionSet::DecisionSet() {
  names_.emplace_back("accept");
  names_.emplace_back("discard");
}

Decision DecisionSet::add(std::string_view name) {
  if (auto existing = find(name)) {
    return *existing;
  }
  if (names_.size() > UINT16_MAX) {
    throw std::length_error("DecisionSet: too many decisions");
  }
  names_.emplace_back(name);
  return static_cast<Decision>(names_.size() - 1);
}

std::optional<Decision> DecisionSet::find(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return static_cast<Decision>(i);
    }
  }
  return std::nullopt;
}

const std::string& DecisionSet::name(Decision d) const {
  if (d >= names_.size()) {
    throw std::out_of_range("DecisionSet::name: unknown decision id");
  }
  return names_[d];
}

const DecisionSet& default_decisions() {
  static const DecisionSet instance;
  return instance;
}

}  // namespace dfw
