#include "fw/format.hpp"

#include "net/ipv4.hpp"
#include "net/ipv6.hpp"
#include "net/prefix.hpp"

namespace dfw {
namespace {

std::string format_protocol_value(const Field& field, Value v) {
  if (field.domain.hi() <= 1) {
    return v == 0 ? "tcp" : "udp";
  }
  switch (v) {
    case 1:
      return "icmp";
    case 6:
      return "tcp";
    case 17:
      return "udp";
    default:
      return std::to_string(v);
  }
}

std::string format_interval(const Field& field, const Interval& iv) {
  switch (field.kind) {
    case FieldKind::kIpv4: {
      // Prefer CIDR when the interval is coverable by one prefix, else an
      // address range.
      const std::vector<Prefix> prefixes = interval_to_prefixes(iv, 32);
      if (prefixes.size() == 1) {
        return prefixes.front().to_string();
      }
      return format_ipv4(static_cast<std::uint32_t>(iv.lo())) + "-" +
             format_ipv4(static_cast<std::uint32_t>(iv.hi()));
    }
    case FieldKind::kProtocol:
      if (iv.lo() == iv.hi()) {
        return format_protocol_value(field, iv.lo());
      }
      return std::to_string(iv.lo()) + "-" + std::to_string(iv.hi());
    case FieldKind::kInteger:
    case FieldKind::kIpv6Hi:
    case FieldKind::kIpv6Lo:
      // IPv6 halves reaching this path render as raw 64-bit ranges; the
      // rule formatter prints recognisable (hi, lo) pairs as CIDR instead.
      if (iv.lo() == iv.hi()) {
        return std::to_string(iv.lo());
      }
      return std::to_string(iv.lo()) + "-" + std::to_string(iv.hi());
  }
  return iv.to_string();
}

// Renders an IPv6 (hi, lo) conjunct pair as one CIDR when it has prefix
// shape; nullopt otherwise.
std::optional<std::string> ipv6_pair_as_prefix(const IntervalSet& hi,
                                               const IntervalSet& lo) {
  if (hi.run_count() != 1 || lo.run_count() != 1) {
    return std::nullopt;
  }
  const Interval h = hi.intervals().front();
  const Interval l = lo.intervals().front();
  const bool lo_full = l == Interval(0, UINT64_MAX);
  const auto aligned_block_bits = [](const Interval& iv) -> std::optional<int> {
    // Returns the number of free (suffix) bits of an aligned block.
    const std::uint64_t span = iv.hi() - iv.lo();
    if ((span & (span + 1)) != 0) {
      return std::nullopt;  // span+1 not a power of two
    }
    if (span == UINT64_MAX) {
      return iv.lo() == 0 ? std::optional<int>(64) : std::nullopt;
    }
    if ((iv.lo() & span) != 0) {
      return std::nullopt;  // unaligned
    }
    int bits = 0;
    std::uint64_t s = span;
    while (s != 0) {
      ++bits;
      s >>= 1;
    }
    return bits;
  };
  if (lo_full) {
    const auto free_bits = aligned_block_bits(h);
    if (!free_bits) {
      return std::nullopt;
    }
    return Ipv6Prefix{{h.lo(), 0}, 64 - *free_bits}.to_string();
  }
  if (h.lo() != h.hi()) {
    return std::nullopt;
  }
  const auto free_bits = aligned_block_bits(l);
  if (!free_bits) {
    return std::nullopt;
  }
  return Ipv6Prefix{{h.lo(), l.lo()}, 128 - *free_bits}.to_string();
}

}  // namespace

std::string format_spec(const Field& field, const IntervalSet& set) {
  if (set == IntervalSet(field.domain)) {
    return "*";
  }
  std::string out;
  for (std::size_t i = 0; i < set.intervals().size(); ++i) {
    if (i != 0) {
      out += ",";
    }
    out += format_interval(field, set.intervals()[i]);
  }
  return out;
}

std::string format_rule(const Schema& schema, const DecisionSet& decisions,
                        const Rule& rule) {
  std::string out = decisions.name(rule.decision());
  for (std::size_t i = 0; i < schema.field_count(); ++i) {
    const Field& field = schema.field(i);
    if (field.kind == FieldKind::kIpv6Hi) {
      const IntervalSet& hi = rule.conjunct(i);
      const IntervalSet& lo = rule.conjunct(i + 1);
      const bool both_full = hi == IntervalSet(field.domain) &&
                             lo == IntervalSet(schema.domain(i + 1));
      if (both_full) {
        ++i;  // wildcard pair: omit, and skip the lo half
        continue;
      }
      if (const auto cidr = ipv6_pair_as_prefix(hi, lo)) {
        out += " " + field.name + "=" + *cidr;
        ++i;
        continue;
      }
      // Fall through: print both halves raw (report-style output).
    }
    if (rule.conjunct(i) == IntervalSet(field.domain)) {
      continue;
    }
    out += " " + field.name + "=" + format_spec(field, rule.conjunct(i));
  }
  return out;
}

std::string format_policy(const Policy& policy,
                          const DecisionSet& decisions) {
  std::string out;
  for (const Rule& rule : policy.rules()) {
    out += format_rule(policy.schema(), decisions, rule);
    out += "\n";
  }
  return out;
}

std::string format_policy_table(const Policy& policy,
                                const DecisionSet& decisions) {
  std::string out;
  for (std::size_t i = 0; i < policy.size(); ++i) {
    out += "r" + std::to_string(i + 1) + ": ";
    const Rule& rule = policy.rule(i);
    for (std::size_t f = 0; f < policy.schema().field_count(); ++f) {
      const Field& field = policy.schema().field(f);
      out += field.name + " in " + format_spec(field, rule.conjunct(f));
      out += " ^ ";
    }
    // Replace the trailing " ^ " with the decision arrow.
    out.erase(out.size() - 3);
    out += " -> " + decisions.name(rule.decision()) + "\n";
  }
  return out;
}

}  // namespace dfw
