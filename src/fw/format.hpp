// Pretty-printing of rules, policies, and field value sets.
//
// Discrepancy reports must be "human readable ... in rulelike format"
// (paper, Sections 1.2 and 7.5). The formatter renders interval sets
// according to the field kind — CIDR prefixes for IPv4 fields (Section 7.1),
// mnemonics for protocols, ranges otherwise — and round-trips through the
// parser.

#pragma once

#include <string>

#include "fw/decision.hpp"
#include "fw/policy.hpp"

namespace dfw {

/// Renders one field's value set in parser syntax ("*", "25", "10-20",
/// "224.168.0.0/16", "tcp", comma unions).
std::string format_spec(const Field& field, const IntervalSet& set);

/// Renders a rule in parser syntax: "<decision> f1=... f2=...". Fields whose
/// set is the whole domain are omitted.
std::string format_rule(const Schema& schema, const DecisionSet& decisions,
                        const Rule& rule);

/// Renders a whole policy, one rule per line, trailing newline included.
std::string format_policy(const Policy& policy, const DecisionSet& decisions);

/// Renders a policy as a numbered table resembling the paper's Tables 1-2.
std::string format_policy_table(const Policy& policy,
                                const DecisionSet& decisions);

}  // namespace dfw
