// Change-impact analysis (Sections 1.3, 8.1): an administrator evolves a
// production policy through a week of edits; after each edit the tool
// prints exactly which traffic classes changed decision and in which
// direction — the report that would have caught the paper's 72
// ordering-induced errors before deployment.

#include <iostream>

#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "impact/impact.hpp"

namespace {

void show(const char* title, const dfw::Policy& before,
          const dfw::Policy& after) {
  using namespace dfw;
  std::cout << "== " << title << " ==\n"
            << format_impact_report(before.schema(), default_decisions(),
                                    change_impact(before, after))
            << "\n";
}

}  // namespace

int main() {
  using namespace dfw;
  const Schema schema = five_tuple_schema();
  const DecisionSet& decisions = default_decisions();

  const Policy monday =
      parse_policy(schema, decisions,
                   "accept dip=10.1.0.0/24 dport=80,443 proto=tcp\n"
                   "accept dip=10.1.1.25/32 dport=25 proto=tcp\n"
                   "accept sip=10.9.0.0/16 dport=22 proto=tcp\n"
                   "discard dport=22\n"
                   "accept sip=10.0.0.0/8 dip=10.0.0.0/8\n"
                   "discard\n");

  // Tuesday: a worm outbreak — block a botnet /24 at the very top. Safe:
  // the analysis shows only that subnet's traffic changes.
  Policy tuesday = monday;
  tuesday.insert(0, parse_rule(schema, decisions,
                               "discard sip=203.0.113.0/24"));
  show("Tuesday: insert botnet block at head", monday, tuesday);

  // Wednesday: the classic mistake — a broad ssh block added at the head,
  // unintentionally cutting off the ops subnet that rule 3 meant to allow.
  Policy wednesday = tuesday;
  wednesday.insert(0, parse_rule(schema, decisions, "discard dport=22"));
  show("Wednesday: overbroad ssh block at head (BUG)", tuesday, wednesday);

  // Thursday: attempt to fix by moving the block below the ops allowance —
  // the analysis proves the fix restores exactly the ops subnet's ssh.
  Policy thursday = wednesday;
  thursday.move(0, 4);
  show("Thursday: demote the ssh block below the ops allow", wednesday,
       thursday);

  // Friday sanity check: Thursday should behave like Tuesday again.
  std::cout << "Thursday == Tuesday (bug fully undone): "
            << (is_semantics_preserving(tuesday, thursday) ? "yes" : "no")
            << "\n";
  return 0;
}
