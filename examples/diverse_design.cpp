// Diverse design, all three phases (Section 2): three teams design a
// firewall for a small campus network, the session discovers every
// functional discrepancy, a resolution plan arbitrates each one, and both
// resolution methods (Section 6) emit a final unanimously-agreed firewall.

#include <iostream>

#include "diverse/workflow.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "rt/executor.hpp"

int main() {
  using namespace dfw;
  const Schema schema = five_tuple_schema();
  DecisionSet decisions;  // accept/discard

  // Session options: method-1 resolution seeded from green's rules, and a
  // worker pool for the comparison phase (results are identical to
  // serial; drop the executor field to run on the calling thread only).
  Executor pool(Executor::hardware_threads());
  WorkflowOptions options;
  options.resolution = ResolutionMethod::kCorrectedFdd;
  options.base_team = 1;
  options.run.executor = &pool;
  DiverseDesign session(decisions, options);

  // Phase 1 — design. The spec: web (80/443, TCP) to 10.1.0.0/24 is open;
  // ssh only from the ops net 10.9.0.0/16; the scanner net 198.51.100.0/24
  // is banned outright; internal 10/8 <-> 10/8 traffic flows freely;
  // default deny.
  session.submit("red",
                 parse_policy(schema, decisions,
                              "discard sip=198.51.100.0/24\n"
                              "accept dip=10.1.0.0/24 dport=80,443 proto=tcp\n"
                              "accept sip=10.9.0.0/16 dport=22 proto=tcp\n"
                              "accept sip=10.0.0.0/8 dip=10.0.0.0/8\n"
                              "discard\n"));
  session.submit("green",
                 parse_policy(schema, decisions,
                              // green forgot to ban the scanner net first —
                              // a scanner can hit the web ports.
                              "accept dip=10.1.0.0/24 dport=80,443 proto=tcp\n"
                              "discard sip=198.51.100.0/24\n"
                              "accept sip=10.9.0.0/16 dport=22 proto=tcp\n"
                              "accept sip=10.0.0.0/8 dip=10.0.0.0/8\n"
                              "discard\n"));
  session.submit("blue",
                 parse_policy(schema, decisions,
                              // blue opened ssh to everyone by mistake and
                              // forgot UDP is not part of the web rule.
                              "discard sip=198.51.100.0/24\n"
                              "accept dip=10.1.0.0/24 dport=80,443\n"
                              "accept dport=22 proto=tcp\n"
                              "accept sip=10.0.0.0/8 dip=10.0.0.0/8\n"
                              "discard\n"));

  // Phase 2 — comparison.
  std::cout << "== Comparison phase ==\n" << session.report() << "\n";

  // Phase 3 — resolution. The spec is the arbiter: red's reading is the
  // intended one for every discrepancy here, so adopt red's decisions.
  const std::vector<Discrepancy> diffs = session.compare();
  ResolutionPlan plan;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    plan.push_back(adopt(i, diffs[i], /*winner_team=*/0));
  }

  // Method 1 comes from the session options; method 2 overrides per call.
  const Policy via_fdd = session.resolve(plan);
  const Policy via_corrections =
      session.resolve(plan, ResolutionMethod::kPrependAndTrim,
                      /*base_team=*/2);

  std::cout << "== Final firewall, method 1 (corrected FDD, "
            << via_fdd.size() << " rules) ==\n"
            << format_policy(via_fdd, decisions) << "\n"
            << "== Final firewall, method 2 (corrections + original, "
            << via_corrections.size() << " rules) ==\n"
            << format_policy(via_corrections, decisions) << "\n"
            << "methods equivalent: "
            << (equivalent(via_fdd, via_corrections) ? "yes" : "no") << "\n"
            << "equivalent to red's design: "
            << (equivalent(via_fdd, session.policy(0)) ? "yes" : "no")
            << "\n";
  return 0;
}
