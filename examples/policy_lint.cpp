// policy_lint: a command-line firewall auditor built on the public API.
//
//   policy_lint [options] <policy-file>                  lint one policy
//   policy_lint [options] <before-file> <after-file>     change impact
//
// options:
//   --format=native|iptables|ip6tables|cisco   input syntax (default native)
//   --chain=<name>                   iptables chain (default INPUT)
//   --acl=<id>                       Cisco access-list id (default 101)
//
// Lint mode checks comprehensiveness, runs the anomaly scan (shadowing /
// generalization / correlation / redundancy pairs), finds dead and
// redundant rules, reports FDD statistics, and prints the compact
// regenerated form. Diff mode runs the comparison pipeline and prints the
// impact report. Native files use the parser syntax over the classic
// five-tuple schema (see fw/parser.hpp).

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "analysis/anomaly.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/stats.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "gen/generate.hpp"
#include "gen/redundancy.hpp"
#include "impact/impact.hpp"

namespace {

struct Options {
  std::string format = "native";
  std::string chain = "INPUT";
  std::string acl = "101";
  std::vector<const char*> files;
};

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error(std::string("cannot open ") + path);
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

dfw::Policy load(const Options& opts, const char* path) {
  using namespace dfw;
  const std::string text = slurp(path);
  if (opts.format == "iptables") {
    return parse_iptables_save(text, opts.chain);
  }
  if (opts.format == "ip6tables") {
    return parse_ip6tables_save(text, opts.chain);
  }
  if (opts.format == "cisco") {
    return parse_cisco_acl(text, opts.acl);
  }
  return parse_policy(five_tuple_schema(), default_decisions(), text);
}

int lint(const dfw::Policy& policy) {
  using namespace dfw;
  const DecisionSet& decisions = default_decisions();
  std::cout << "rules: " << policy.size() << "\n";

  Fdd fdd = build_reduced_fdd(policy);
  try {
    fdd.validate();
    std::cout << "comprehensive: yes\n";
  } catch (const std::logic_error& e) {
    std::cout << "comprehensive: NO — " << e.what() << "\n"
              << "add a final catch-all rule; aborting further checks\n";
    return 1;
  }
  std::cout << "fdd: " << to_string(compute_stats(fdd)) << "\n\n";

  std::cout << format_anomaly_report(policy, decisions,
                                     find_anomalies(policy),
                                     dead_rules(policy));

  const std::vector<std::size_t> redundant = redundant_rules(policy);
  if (redundant.empty()) {
    std::cout << "redundant rules: none\n";
  } else {
    std::cout << "redundant rules (1-based, each individually removable):\n";
    for (const std::size_t i : redundant) {
      std::cout << "  r" << (i + 1) << ": "
                << format_rule(policy.schema(), decisions, policy.rule(i))
                << "\n";
    }
  }

  const Policy compact = generate_policy(fdd);
  std::cout << "\ncompact equivalent (" << compact.size() << " rules):\n"
            << format_policy(compact, decisions);
  return 0;
}

int diff(const dfw::Policy& before, const dfw::Policy& after) {
  using namespace dfw;
  const std::vector<Impact> impacts = change_impact(before, after);
  std::cout << format_impact_report(before.schema(), default_decisions(),
                                    impacts);
  return impacts.empty() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfw;
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      opts.format = arg.substr(9);
      if (opts.format != "native" && opts.format != "iptables" &&
          opts.format != "ip6tables" && opts.format != "cisco") {
        std::cerr << "unknown format '" << opts.format << "'\n";
        return 64;
      }
    } else if (arg.rfind("--chain=", 0) == 0) {
      opts.chain = arg.substr(8);
    } else if (arg.rfind("--acl=", 0) == 0) {
      opts.acl = arg.substr(6);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option '" << arg << "'\n";
      return 64;
    } else {
      opts.files.push_back(argv[i]);
    }
  }
  if (opts.files.size() != 1 && opts.files.size() != 2) {
    std::cerr << "usage: " << argv[0]
              << " [--format=native|iptables|ip6tables|cisco] [--chain=NAME]"
                 " [--acl=ID] <policy> [<changed-policy>]\n";
    return 64;
  }
  try {
    const Policy first = load(opts, opts.files[0]);
    if (opts.files.size() == 1) {
      return lint(first);
    }
    return diff(first, load(opts, opts.files[1]));
  } catch (const ParseError& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 65;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 70;
  }
}
