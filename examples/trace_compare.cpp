// End-to-end observability demo: run the full diverse-design pipeline on
// two firewalls (the native test-corpus policies by default, or any two
// policy files given on the command line) with both observability sinks
// attached, then show where the time went.
//
//   trace_compare [--trace FILE] [--stats] [A.fw B.fw]
//
//   --trace FILE   write a Chrome trace_event JSON file (load it in
//                  Perfetto / chrome://tracing) covering submit, compare,
//                  and resolve, down to the per-phase spans
//   --stats        print the unified metrics snapshot as JSON
//
// The phase-time breakdown table at the end is computed from the registry's
// "phase.*_ns" histograms — the same numbers a trace viewer would show,
// without leaving the terminal.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "diverse/workflow.hpp"
#include "fw/parser.hpp"
#include "obs/obs.hpp"

namespace {

// tests/corpus/native/basic.fw
const char* kBasicFw =
    "discard sip=224.168.0.0/16\n"
    "accept dip=192.168.0.1 dport=25 proto=tcp\n"
    "accept\n";

// tests/corpus/native/multifield.fw
const char* kMultifieldFw =
    "accept sip=10.0.0.0/8 dip=10.1.0.0/16 sport=1024-65535 dport=443 "
    "proto=tcp\n"
    "discard sip=0.0.0.0/0 proto=udp dport=53\n"
    "accept proto=icmp\n"
    "discard\n";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path);
    std::exit(1);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dfw;

  const char* trace_path = nullptr;
  bool print_stats = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else {
      files.push_back(argv[i]);
    }
  }
  if (!files.empty() && files.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s [--trace FILE] [--stats] [A.fw B.fw]\n", argv[0]);
    return 1;
  }

  const Schema schema = five_tuple_schema();
  DecisionSet decisions;
  const std::string text_a = files.empty() ? kBasicFw : read_file(files[0]);
  const std::string text_b =
      files.empty() ? kMultifieldFw : read_file(files[1]);

  Tracer tracer;
  MetricsRegistry registry;
  WorkflowOptions options;
  options.run.obs = ObsOptions{&tracer, &registry};
  DiverseDesign session(decisions, options);

  // The whole workflow runs instrumented: both submits, the comparison
  // phase, and a method-1 resolution (which regenerates rules through the
  // traced "generate" phase).
  session.submit(files.empty() ? "basic" : files[0],
                 parse_policy(schema, decisions, text_a));
  session.submit(files.empty() ? "multifield" : files[1],
                 parse_policy(schema, decisions, text_b));
  const std::vector<Discrepancy> diffs = session.compare();
  const Policy agreed = session.resolve_in_favour_of(0);

  std::cout << session.report();
  std::cout << "resolved in favour of team 0: " << agreed.size()
            << " rules\n\n";

  if (trace_path != nullptr) {
    const std::string trace = tracer.chrome_trace_json();
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    out << trace;
    const TraceValidation v = validate_chrome_trace(trace);
    if (!v.ok) {
      std::fprintf(stderr, "internal error: emitted invalid trace: %s\n",
                   v.error.c_str());
      return 1;
    }
    std::printf("wrote %s — %zu events, %zu threads; open in Perfetto or "
                "chrome://tracing\n\n",
                trace_path, v.events, v.threads);
  }

  const MetricsSnapshot snapshot = registry.snapshot();
  std::uint64_t total_ns = 0;
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name.rfind("phase.", 0) == 0) {
      total_ns += hist.sum;
    }
  }
  std::printf("phase-time breakdown (%zu discrepancies found)\n",
              diffs.size());
  std::printf("%-24s %8s %14s %7s\n", "phase", "spans", "total(ns)", "share");
  for (const auto& [name, hist] : snapshot.histograms) {
    if (name.rfind("phase.", 0) != 0) {
      continue;
    }
    // Strip the "phase." prefix and the "_ns" suffix for display.
    const std::string label = name.substr(6, name.size() - 6 - 3);
    std::printf("%-24s %8llu %14llu %6.1f%%\n", label.c_str(),
                static_cast<unsigned long long>(hist.count),
                static_cast<unsigned long long>(hist.sum),
                total_ns == 0 ? 0.0
                              : 100.0 * static_cast<double>(hist.sum) /
                                    static_cast<double>(total_ns));
  }

  if (print_stats) {
    std::printf("\nmetrics snapshot:\n%s\n", snapshot.to_json().c_str());
  }
  return 0;
}
