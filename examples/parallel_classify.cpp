// Batch classification on the execution runtime.
//
// The deployment-side loop: compile the agreed policy once, then push
// packet batches through Classifier::classify_batch, which shards each
// batch across an Executor pool. Batch output is identical to a serial
// classify loop — index i of the result is always packet i's decision —
// so the pool size is purely a throughput knob. The executor metrics
// printed at the end show the pool actually ran (tasks, steals, busy
// time).

#include <cstdio>
#include <vector>

#include "engine/classifier.hpp"
#include "engine/trace.hpp"
#include "rt/executor.hpp"
#include "synth/synth.hpp"

int main() {
  using namespace dfw;

  // An agreed 300-rule policy and a biased 200k-packet trace.
  SynthConfig config;
  config.num_rules = 300;
  Rng rng(2026);
  const Policy policy = synth_policy(config, rng);
  const std::vector<Packet> trace = synth_trace(policy, 200'000, rng);

  Executor pool(Executor::hardware_threads());
  CompileOptions options;
  options.run.executor = &pool;
  const Classifier classifier = Classifier::compile(policy, options);
  std::printf("compiled: %zu nodes, %zu slabs, pool of %zu workers\n",
              classifier.node_count(), classifier.slab_count(),
              pool.thread_count());

  const std::vector<Decision> decisions = classifier.classify_batch(trace);

  // Spot-check determinism against the serial path and tally decisions.
  const std::vector<Decision> serial =
      classifier.classify_batch(
          trace, RunOptions{.executor = &Executor::inline_executor()});
  std::vector<std::size_t> tally;
  for (const Decision d : decisions) {
    if (d >= tally.size()) {
      tally.resize(d + 1, 0);
    }
    ++tally[d];
  }
  std::printf("batch of %zu packets: identical to serial: %s\n", trace.size(),
              decisions == serial ? "yes" : "NO");
  for (std::size_t d = 0; d < tally.size(); ++d) {
    std::printf("  decision %zu: %zu packets\n", d, tally[d]);
  }

  const ExecutorMetrics m = pool.metrics();
  std::printf("pool metrics: %llu tasks, %llu steals, %.2f ms busy\n",
              static_cast<unsigned long long>(m.tasks_run),
              static_cast<unsigned long long>(m.steals), m.busy_ms);
  return decisions == serial ? 0 : 1;
}
