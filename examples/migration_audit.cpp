// Migration audit: verifying a firewall translation across vendors.
//
// A common operation the paper's comparison pipeline makes safe: a site
// migrates its edge filter from a Cisco router ACL to a Linux iptables
// host. Both configurations are parsed into the same policy model and
// compared — zero discrepancies proves the migration faithful; any
// discrepancy pinpoints, in rule-like terms, exactly which traffic the
// new firewall treats differently. We audit one faithful translation and
// one with two realistic translation mistakes.

#include <iostream>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "diverse/discrepancy.hpp"
#include "fdd/compare.hpp"
#include "rt/executor.hpp"

int main() {
  using namespace dfw;
  const DecisionSet& decisions = default_decisions();

  // Audits share one two-worker pool: each pairwise pipeline builds its
  // FDDs concurrently (output is identical to serial).
  Executor pool(2);
  CompareOptions compare_options;
  compare_options.run.executor = &pool;
  compare_options.fork_threshold = 4;

  // The router configuration being retired.
  const Policy router = parse_cisco_acl(
      "access-list 120 remark edge filter, 2019-2026\n"
      "access-list 120 permit tcp any host 10.1.0.25 eq smtp\n"
      "access-list 120 permit tcp any 10.1.0.0 0.0.0.255 range 80 443\n"
      "access-list 120 permit udp any eq domain any\n"
      "access-list 120 deny ip 203.0.113.0 0.0.0.255 any\n"
      "access-list 120 permit tcp 10.9.0.0 0.0.255.255 any eq 22\n",
      "120");

  // A faithful iptables translation.
  const Policy faithful = parse_iptables_save(
      ":INPUT DROP [0:0]\n"
      "-A INPUT -d 10.1.0.25/32 -p tcp --dport 25 -j ACCEPT\n"
      "-A INPUT -d 10.1.0.0/24 -p tcp --dport 80:443 -j ACCEPT\n"
      "-A INPUT -p udp --sport 53 -j ACCEPT\n"
      "-A INPUT -s 203.0.113.0/24 -j DROP\n"
      "-A INPUT -s 10.9.0.0/16 -p tcp --dport 22 -j ACCEPT\n",
      "INPUT");

  std::cout << "== Faithful translation ==\n";
  const std::vector<Discrepancy> clean =
      discrepancies(router, faithful, compare_options);
  std::cout << format_discrepancy_report(router.schema(), decisions, clean,
                                         {"cisco", "iptables"})
            << "\n";

  // A buggy translation: --dport/--sport confused on the DNS rule, and
  // the ban demoted below the ssh rule. The comparison separates the two
  // edits precisely: the port confusion produces real discrepancies, while
  // the reorder is proved harmless (the ssh and ban predicates are
  // disjoint) and generates none — a semantic diff, not a textual one.
  const Policy buggy = parse_iptables_save(
      ":INPUT DROP [0:0]\n"
      "-A INPUT -d 10.1.0.25/32 -p tcp --dport 25 -j ACCEPT\n"
      "-A INPUT -d 10.1.0.0/24 -p tcp --dport 80:443 -j ACCEPT\n"
      "-A INPUT -p udp --dport 53 -j ACCEPT\n"
      "-A INPUT -s 10.9.0.0/16 -p tcp --dport 22 -j ACCEPT\n"
      "-A INPUT -s 203.0.113.0/24 -j DROP\n",
      "INPUT");

  std::cout << "== Buggy translation ==\n";
  const std::vector<Discrepancy> diffs =
      discrepancies(router, buggy, compare_options);
  std::cout << format_discrepancy_report(router.schema(), decisions, diffs,
                                         {"cisco", "iptables"});
  std::cout << "\nverdict: "
            << (diffs.empty() ? "safe to cut over"
                              : "DO NOT cut over — fix the classes above")
            << "\n";
  return diffs.empty() ? 1 : 0;  // the buggy one must show discrepancies
}
