// Redundancy audit: years of accreted edits leave policies with shadowed
// and duplicate rules. This example detects every redundant rule
// (the engine behind resolution method 2, paper ref [19]), removes them,
// and proves the trimmed policy equivalent — then regenerates an even more
// compact equivalent via the FDD pipeline (paper ref [12]).

#include <iostream>

#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/stats.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "gen/generate.hpp"
#include "gen/redundancy.hpp"

int main() {
  using namespace dfw;
  const Schema schema = five_tuple_schema();
  const DecisionSet& decisions = default_decisions();

  // A policy with history: rule 3 is shadowed by rule 1; rule 5 duplicates
  // rule 2; rule 6 agrees with the default and protects nothing.
  const Policy crusty = parse_policy(
      schema, decisions,
      "discard sip=203.0.113.0/24\n"                        // 1
      "accept dip=10.1.0.0/24 dport=80,443 proto=tcp\n"     // 2
      "discard sip=203.0.113.0/26\n"                        // 3 shadowed by 1
      "accept sip=10.9.0.0/16 dport=22 proto=tcp\n"         // 4
      "accept dip=10.1.0.0/24 dport=80,443 proto=tcp\n"     // 5 dup of 2
      "discard sip=192.0.2.0/24 dport=23\n"                 // 6 = default
      "discard\n");                                         // 7

  std::cout << "== Original policy (" << crusty.size() << " rules) ==\n"
            << format_policy(crusty, decisions) << "\n";

  std::cout << "redundant rule indices (1-based): ";
  for (const std::size_t i : redundant_rules(crusty)) {
    std::cout << (i + 1) << " ";
  }
  std::cout << "\n\n";

  const Policy trimmed = remove_redundant(crusty);
  std::cout << "== After redundancy removal (" << trimmed.size()
            << " rules) ==\n"
            << format_policy(trimmed, decisions) << "\n"
            << "equivalent to original: "
            << (equivalent(crusty, trimmed) ? "yes" : "no") << "\n\n";

  // Full regeneration through the FDD sometimes finds a different compact
  // form; both are valid deployables.
  const Fdd fdd = build_fdd(crusty);
  const Policy regenerated = generate_policy(fdd);
  std::cout << "== Regenerated from the reduced FDD (" << regenerated.size()
            << " rules, FDD " << to_string(compute_stats(fdd)) << ") ==\n"
            << format_policy(regenerated, decisions) << "\n"
            << "equivalent to original: "
            << (equivalent(crusty, regenerated) ? "yes" : "no") << "\n";
  return 0;
}
