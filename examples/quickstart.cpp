// Quickstart: the paper's running example end to end.
//
// Two teams design firewalls for the same requirement specification
// (Tables 1-2); we construct their FDDs (Figs. 2-3), shape them into
// semi-isomorphic form (Figs. 4-5), and print every functional discrepancy
// (Table 3). Run with --dot to additionally dump Graphviz for the four
// diagrams.

#include <cstring>
#include <iostream>

#include "diverse/discrepancy.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "fdd/dot.hpp"
#include "fdd/shape.hpp"
#include "fdd/stats.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"

int main(int argc, char** argv) {
  using namespace dfw;
  const bool dump_dot = argc > 1 && std::strcmp(argv[1], "--dot") == 0;

  const Schema schema = example_schema();
  const DecisionSet& decisions = default_decisions();

  // Requirement specification (Section 2.1): the mail server 192.168.0.1
  // can receive e-mail; the malicious domain 224.168.0.0/16 is blocked;
  // everything else is accepted.
  const Policy team_a =
      parse_policy(schema, decisions,
                   "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                   "discard I=0 S=224.168.0.0/16\n"
                   "accept\n");
  const Policy team_b =
      parse_policy(schema, decisions,
                   "discard I=0 S=224.168.0.0/16\n"
                   "accept  I=0 D=192.168.0.1 N=25 P=tcp\n"
                   "discard I=0 D=192.168.0.1\n"
                   "accept\n");

  std::cout << "== Team A's firewall (Table 1) ==\n"
            << format_policy_table(team_a, decisions) << "\n"
            << "== Team B's firewall (Table 2) ==\n"
            << format_policy_table(team_b, decisions) << "\n";

  // Step 1 — construction (Section 3).
  Fdd fa = build_fdd(team_a);
  Fdd fb = build_fdd(team_b);
  fa.validate();
  fb.validate();
  std::cout << "constructed FDD A: " << to_string(compute_stats(fa)) << "\n"
            << "constructed FDD B: " << to_string(compute_stats(fb)) << "\n";
  if (dump_dot) {
    std::cout << "\n-- FDD A (Fig. 2) --\n" << to_dot(fa, decisions)
              << "\n-- FDD B (Fig. 3) --\n" << to_dot(fb, decisions);
  }

  // Step 2 — shaping (Section 4).
  shape_pair(fa, fb);
  std::cout << "shaped FDD A:      " << to_string(compute_stats(fa)) << "\n"
            << "shaped FDD B:      " << to_string(compute_stats(fb)) << "\n"
            << "semi-isomorphic:   "
            << (semi_isomorphic(fa, fb) ? "yes" : "no") << "\n\n";
  if (dump_dot) {
    std::cout << "-- shaped FDD A (Fig. 4) --\n" << to_dot(fa, decisions)
              << "\n-- shaped FDD B (Fig. 5) --\n" << to_dot(fb, decisions);
  }

  // Step 3 — comparison (Section 5): Table 3. CompareOptions carries the
  // execution knobs; the defaults mean "serial, on this thread".
  const std::vector<Discrepancy> diffs = compare_fdds(fa, fb, CompareOptions{});
  std::cout << "== Functional discrepancies (Table 3) ==\n"
            << format_discrepancy_report(schema, decisions, diffs,
                                         {"Team A", "Team B"});
  return 0;
}
