// Structured firewall design (paper Section 7.2 and its ref [12]): a team
// designs the firewall directly as an FDD with FddBuilder — the builder
// enforces consistency, completeness, and field order while the intent is
// expressed region by region — then the library renders the diagram
// (Graphviz), generates a compact deployable rule sequence, and emits it
// as an iptables configuration. Finally the diverse-design comparison
// cross-checks the FDD design against an independently written rule-based
// design of the same specification.

#include <iostream>

#include "adapters/emit.hpp"
#include "diverse/discrepancy.hpp"
#include "fdd/builder.hpp"
#include "fdd/compare.hpp"
#include "fdd/dot.hpp"
#include "fw/format.hpp"
#include "fw/parser.hpp"
#include "gen/generate.hpp"
#include "gen/redundancy.hpp"
#include "net/ipv4.hpp"

int main() {
  using namespace dfw;
  const Schema schema = five_tuple_schema();
  const DecisionSet& decisions = default_decisions();

  // Specification: the DMZ web server 10.1.0.80 serves TCP 80/443 to the
  // world; the ops net 10.9.0.0/16 may ssh anywhere; the scanner net
  // 198.51.100.0/24 is banned outright; default deny.
  FddBuilder b(schema);

  const Value scanners_lo = *parse_ipv4("198.51.100.0");
  const Value scanners_hi = *parse_ipv4("198.51.100.255");
  const Value ops_lo = *parse_ipv4("10.9.0.0");
  const Value ops_hi = *parse_ipv4("10.9.255.255");
  const Value web = *parse_ipv4("10.1.0.80");

  // Region 1: split the world by source — scanners, ops, everyone else.
  const auto by_src = b.split(
      b.root(), 0,
      {IntervalSet(Interval(scanners_lo, scanners_hi)),
       IntervalSet(Interval(ops_lo, ops_hi))});
  b.decide(by_src[0], kDiscard);  // scanners: banned, full stop

  // Region 2: ops traffic — ssh anywhere, otherwise treated like everyone.
  const auto ops_by_port =
      b.split(by_src[1], 3, {IntervalSet(Interval::point(22))});
  const auto ops_ssh_proto =
      b.split(ops_by_port[0], 4, {IntervalSet(Interval::point(6))});
  b.decide(ops_ssh_proto[0], kAccept);  // tcp/22 from ops
  b.decide(ops_ssh_proto[1], kDiscard);
  // Ops' non-ssh traffic falls under the same web rule as everyone else.
  const auto ops_rest =
      b.split(ops_by_port[1], 4, {IntervalSet(Interval::point(6))});
  b.decide(ops_rest[1], kDiscard);
  b.decide(ops_rest[0], kDiscard);  // conservative: ops browse via proxy

  // Region 3: everyone else — the web server's TCP 80/443 only.
  const auto by_dst =
      b.split(by_src[2], 1, {IntervalSet(Interval::point(web))});
  b.decide(by_dst[1], kDiscard);
  const auto web_ports = b.split(
      by_dst[0], 3, {IntervalSet{Interval::point(80), Interval::point(443)}});
  b.decide(web_ports[1], kDiscard);
  const auto web_proto =
      b.split(web_ports[0], 4, {IntervalSet(Interval::point(6))});
  b.decide(web_proto[0], kAccept);
  b.decide(web_proto[1], kDiscard);

  const Fdd designed = b.finish();
  std::cout << "== The designed FDD (Graphviz) ==\n"
            << to_dot(designed, decisions) << "\n";

  const Policy rules = generate_policy(designed);
  std::cout << "== Generated rule sequence (" << rules.size()
            << " rules) ==\n"
            << format_policy(rules, decisions) << "\n";

  // For deployment, regenerate in carve-outs-over-a-default shape: one
  // disjoint rule per non-default region plus the default-deny tail —
  // the form vendor languages express directly — then strip any
  // redundancy.
  const Policy deployable =
      remove_redundant(generate_disjoint_policy(designed, kDiscard));
  std::cout << "== Deployable form (" << deployable.size() << " rules) ==\n"
            << format_policy(deployable, decisions) << "\n"
            << "equivalent to the design: "
            << (equivalent(deployable, rules) ? "yes" : "no") << "\n\n"
            << "== Deployable iptables configuration ==\n"
            << emit_iptables_save(deployable, "INPUT") << "\n";

  // Cross-check against an independent rule-based design. Note the
  // deliberate reading difference: this designer let ops reach the web
  // server too (they did not route ops through a proxy).
  const Policy rule_based =
      parse_policy(schema, decisions,
                   "discard sip=198.51.100.0/24\n"
                   "accept sip=10.9.0.0/16 dport=22 proto=tcp\n"
                   "accept dip=10.1.0.80 dport=80,443 proto=tcp\n"
                   "discard\n");
  std::cout << "== Cross-comparison with a rule-based design ==\n"
            << format_discrepancy_report(schema, decisions,
                                         discrepancies(rules, rule_based),
                                         {"fdd-design", "rule-design"});
  return 0;
}
