# Empty dependencies file for bench_fig12_perturbation.
# This may be replaced when dependencies are built.
