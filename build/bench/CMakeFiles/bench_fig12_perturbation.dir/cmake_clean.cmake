file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_perturbation.dir/bench_fig12_perturbation.cpp.o"
  "CMakeFiles/bench_fig12_perturbation.dir/bench_fig12_perturbation.cpp.o.d"
  "bench_fig12_perturbation"
  "bench_fig12_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
