file(REMOVE_RECURSE
  "CMakeFiles/bench_bdd_baseline.dir/bench_bdd_baseline.cpp.o"
  "CMakeFiles/bench_bdd_baseline.dir/bench_bdd_baseline.cpp.o.d"
  "bench_bdd_baseline"
  "bench_bdd_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bdd_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
