file(REMOVE_RECURSE
  "CMakeFiles/bench_nway.dir/bench_nway.cpp.o"
  "CMakeFiles/bench_nway.dir/bench_nway.cpp.o.d"
  "bench_nway"
  "bench_nway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
