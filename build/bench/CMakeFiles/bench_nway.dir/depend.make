# Empty dependencies file for bench_nway.
# This may be replaced when dependencies are built.
