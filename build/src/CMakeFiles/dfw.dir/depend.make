# Empty dependencies file for dfw.
# This may be replaced when dependencies are built.
