
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapters/cisco.cpp" "src/CMakeFiles/dfw.dir/adapters/cisco.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/adapters/cisco.cpp.o.d"
  "/root/repo/src/adapters/emit.cpp" "src/CMakeFiles/dfw.dir/adapters/emit.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/adapters/emit.cpp.o.d"
  "/root/repo/src/adapters/iptables.cpp" "src/CMakeFiles/dfw.dir/adapters/iptables.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/adapters/iptables.cpp.o.d"
  "/root/repo/src/analysis/anomaly.cpp" "src/CMakeFiles/dfw.dir/analysis/anomaly.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/analysis/anomaly.cpp.o.d"
  "/root/repo/src/analysis/property.cpp" "src/CMakeFiles/dfw.dir/analysis/property.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/analysis/property.cpp.o.d"
  "/root/repo/src/bdd/bdd.cpp" "src/CMakeFiles/dfw.dir/bdd/bdd.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/bdd/bdd.cpp.o.d"
  "/root/repo/src/bdd/packet_encode.cpp" "src/CMakeFiles/dfw.dir/bdd/packet_encode.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/bdd/packet_encode.cpp.o.d"
  "/root/repo/src/diverse/discrepancy.cpp" "src/CMakeFiles/dfw.dir/diverse/discrepancy.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/diverse/discrepancy.cpp.o.d"
  "/root/repo/src/diverse/resolve.cpp" "src/CMakeFiles/dfw.dir/diverse/resolve.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/diverse/resolve.cpp.o.d"
  "/root/repo/src/diverse/workflow.cpp" "src/CMakeFiles/dfw.dir/diverse/workflow.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/diverse/workflow.cpp.o.d"
  "/root/repo/src/engine/classifier.cpp" "src/CMakeFiles/dfw.dir/engine/classifier.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/engine/classifier.cpp.o.d"
  "/root/repo/src/engine/trace.cpp" "src/CMakeFiles/dfw.dir/engine/trace.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/engine/trace.cpp.o.d"
  "/root/repo/src/fdd/builder.cpp" "src/CMakeFiles/dfw.dir/fdd/builder.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/builder.cpp.o.d"
  "/root/repo/src/fdd/compare.cpp" "src/CMakeFiles/dfw.dir/fdd/compare.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/compare.cpp.o.d"
  "/root/repo/src/fdd/construct.cpp" "src/CMakeFiles/dfw.dir/fdd/construct.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/construct.cpp.o.d"
  "/root/repo/src/fdd/dot.cpp" "src/CMakeFiles/dfw.dir/fdd/dot.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/dot.cpp.o.d"
  "/root/repo/src/fdd/fdd.cpp" "src/CMakeFiles/dfw.dir/fdd/fdd.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/fdd.cpp.o.d"
  "/root/repo/src/fdd/node.cpp" "src/CMakeFiles/dfw.dir/fdd/node.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/node.cpp.o.d"
  "/root/repo/src/fdd/reduce.cpp" "src/CMakeFiles/dfw.dir/fdd/reduce.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/reduce.cpp.o.d"
  "/root/repo/src/fdd/serialize.cpp" "src/CMakeFiles/dfw.dir/fdd/serialize.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/serialize.cpp.o.d"
  "/root/repo/src/fdd/shape.cpp" "src/CMakeFiles/dfw.dir/fdd/shape.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/shape.cpp.o.d"
  "/root/repo/src/fdd/simplify.cpp" "src/CMakeFiles/dfw.dir/fdd/simplify.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/simplify.cpp.o.d"
  "/root/repo/src/fdd/stats.cpp" "src/CMakeFiles/dfw.dir/fdd/stats.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fdd/stats.cpp.o.d"
  "/root/repo/src/fw/decision.cpp" "src/CMakeFiles/dfw.dir/fw/decision.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fw/decision.cpp.o.d"
  "/root/repo/src/fw/format.cpp" "src/CMakeFiles/dfw.dir/fw/format.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fw/format.cpp.o.d"
  "/root/repo/src/fw/parser.cpp" "src/CMakeFiles/dfw.dir/fw/parser.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fw/parser.cpp.o.d"
  "/root/repo/src/fw/permute.cpp" "src/CMakeFiles/dfw.dir/fw/permute.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fw/permute.cpp.o.d"
  "/root/repo/src/fw/policy.cpp" "src/CMakeFiles/dfw.dir/fw/policy.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fw/policy.cpp.o.d"
  "/root/repo/src/fw/rule.cpp" "src/CMakeFiles/dfw.dir/fw/rule.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fw/rule.cpp.o.d"
  "/root/repo/src/fw/schema.cpp" "src/CMakeFiles/dfw.dir/fw/schema.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/fw/schema.cpp.o.d"
  "/root/repo/src/gen/generate.cpp" "src/CMakeFiles/dfw.dir/gen/generate.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/gen/generate.cpp.o.d"
  "/root/repo/src/gen/redundancy.cpp" "src/CMakeFiles/dfw.dir/gen/redundancy.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/gen/redundancy.cpp.o.d"
  "/root/repo/src/impact/impact.cpp" "src/CMakeFiles/dfw.dir/impact/impact.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/impact/impact.cpp.o.d"
  "/root/repo/src/impact/rule_diff.cpp" "src/CMakeFiles/dfw.dir/impact/rule_diff.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/impact/rule_diff.cpp.o.d"
  "/root/repo/src/net/interval.cpp" "src/CMakeFiles/dfw.dir/net/interval.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/net/interval.cpp.o.d"
  "/root/repo/src/net/interval_set.cpp" "src/CMakeFiles/dfw.dir/net/interval_set.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/net/interval_set.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/CMakeFiles/dfw.dir/net/ipv4.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/net/ipv4.cpp.o.d"
  "/root/repo/src/net/ipv6.cpp" "src/CMakeFiles/dfw.dir/net/ipv6.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/net/ipv6.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/CMakeFiles/dfw.dir/net/prefix.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/net/prefix.cpp.o.d"
  "/root/repo/src/query/query.cpp" "src/CMakeFiles/dfw.dir/query/query.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/query/query.cpp.o.d"
  "/root/repo/src/stateful/stateful.cpp" "src/CMakeFiles/dfw.dir/stateful/stateful.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/stateful/stateful.cpp.o.d"
  "/root/repo/src/synth/mutate.cpp" "src/CMakeFiles/dfw.dir/synth/mutate.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/synth/mutate.cpp.o.d"
  "/root/repo/src/synth/synth.cpp" "src/CMakeFiles/dfw.dir/synth/synth.cpp.o" "gcc" "src/CMakeFiles/dfw.dir/synth/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
