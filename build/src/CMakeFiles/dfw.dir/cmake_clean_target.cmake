file(REMOVE_RECURSE
  "libdfw.a"
)
