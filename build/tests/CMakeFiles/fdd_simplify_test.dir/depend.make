# Empty dependencies file for fdd_simplify_test.
# This may be replaced when dependencies are built.
