file(REMOVE_RECURSE
  "CMakeFiles/fdd_simplify_test.dir/fdd_simplify_test.cpp.o"
  "CMakeFiles/fdd_simplify_test.dir/fdd_simplify_test.cpp.o.d"
  "fdd_simplify_test"
  "fdd_simplify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdd_simplify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
