# Empty dependencies file for fdd_reduce_test.
# This may be replaced when dependencies are built.
