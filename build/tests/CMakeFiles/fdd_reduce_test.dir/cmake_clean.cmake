file(REMOVE_RECURSE
  "CMakeFiles/fdd_reduce_test.dir/fdd_reduce_test.cpp.o"
  "CMakeFiles/fdd_reduce_test.dir/fdd_reduce_test.cpp.o.d"
  "fdd_reduce_test"
  "fdd_reduce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdd_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
