file(REMOVE_RECURSE
  "CMakeFiles/permute_test.dir/permute_test.cpp.o"
  "CMakeFiles/permute_test.dir/permute_test.cpp.o.d"
  "permute_test"
  "permute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/permute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
