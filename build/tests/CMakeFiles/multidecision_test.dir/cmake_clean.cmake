file(REMOVE_RECURSE
  "CMakeFiles/multidecision_test.dir/multidecision_test.cpp.o"
  "CMakeFiles/multidecision_test.dir/multidecision_test.cpp.o.d"
  "multidecision_test"
  "multidecision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multidecision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
