# Empty compiler generated dependencies file for multidecision_test.
# This may be replaced when dependencies are built.
