# Empty compiler generated dependencies file for fdd_compare_test.
# This may be replaced when dependencies are built.
