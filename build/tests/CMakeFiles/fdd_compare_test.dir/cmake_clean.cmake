file(REMOVE_RECURSE
  "CMakeFiles/fdd_compare_test.dir/fdd_compare_test.cpp.o"
  "CMakeFiles/fdd_compare_test.dir/fdd_compare_test.cpp.o.d"
  "fdd_compare_test"
  "fdd_compare_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdd_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
