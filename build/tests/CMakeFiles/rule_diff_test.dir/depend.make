# Empty dependencies file for rule_diff_test.
# This may be replaced when dependencies are built.
