file(REMOVE_RECURSE
  "CMakeFiles/rule_diff_test.dir/rule_diff_test.cpp.o"
  "CMakeFiles/rule_diff_test.dir/rule_diff_test.cpp.o.d"
  "rule_diff_test"
  "rule_diff_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_diff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
