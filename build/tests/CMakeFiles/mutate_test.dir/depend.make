# Empty dependencies file for mutate_test.
# This may be replaced when dependencies are built.
