# Empty dependencies file for fdd_construct_test.
# This may be replaced when dependencies are built.
