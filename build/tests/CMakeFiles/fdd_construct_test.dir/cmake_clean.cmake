file(REMOVE_RECURSE
  "CMakeFiles/fdd_construct_test.dir/fdd_construct_test.cpp.o"
  "CMakeFiles/fdd_construct_test.dir/fdd_construct_test.cpp.o.d"
  "fdd_construct_test"
  "fdd_construct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdd_construct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
