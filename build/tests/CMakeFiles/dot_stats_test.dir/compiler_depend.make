# Empty compiler generated dependencies file for dot_stats_test.
# This may be replaced when dependencies are built.
