file(REMOVE_RECURSE
  "CMakeFiles/dot_stats_test.dir/dot_stats_test.cpp.o"
  "CMakeFiles/dot_stats_test.dir/dot_stats_test.cpp.o.d"
  "dot_stats_test"
  "dot_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dot_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
