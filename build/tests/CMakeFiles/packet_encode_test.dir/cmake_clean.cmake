file(REMOVE_RECURSE
  "CMakeFiles/packet_encode_test.dir/packet_encode_test.cpp.o"
  "CMakeFiles/packet_encode_test.dir/packet_encode_test.cpp.o.d"
  "packet_encode_test"
  "packet_encode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_encode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
