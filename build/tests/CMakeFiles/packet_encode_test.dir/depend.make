# Empty dependencies file for packet_encode_test.
# This may be replaced when dependencies are built.
