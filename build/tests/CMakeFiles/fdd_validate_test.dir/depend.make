# Empty dependencies file for fdd_validate_test.
# This may be replaced when dependencies are built.
