file(REMOVE_RECURSE
  "CMakeFiles/fdd_validate_test.dir/fdd_validate_test.cpp.o"
  "CMakeFiles/fdd_validate_test.dir/fdd_validate_test.cpp.o.d"
  "fdd_validate_test"
  "fdd_validate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdd_validate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
