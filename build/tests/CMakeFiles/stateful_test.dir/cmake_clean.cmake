file(REMOVE_RECURSE
  "CMakeFiles/stateful_test.dir/stateful_test.cpp.o"
  "CMakeFiles/stateful_test.dir/stateful_test.cpp.o.d"
  "stateful_test"
  "stateful_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stateful_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
