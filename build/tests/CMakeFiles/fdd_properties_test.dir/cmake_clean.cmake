file(REMOVE_RECURSE
  "CMakeFiles/fdd_properties_test.dir/fdd_properties_test.cpp.o"
  "CMakeFiles/fdd_properties_test.dir/fdd_properties_test.cpp.o.d"
  "fdd_properties_test"
  "fdd_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdd_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
