# Empty dependencies file for fdd_properties_test.
# This may be replaced when dependencies are built.
