file(REMOVE_RECURSE
  "CMakeFiles/iptables_test.dir/iptables_test.cpp.o"
  "CMakeFiles/iptables_test.dir/iptables_test.cpp.o.d"
  "iptables_test"
  "iptables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iptables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
