# Empty dependencies file for iptables_test.
# This may be replaced when dependencies are built.
