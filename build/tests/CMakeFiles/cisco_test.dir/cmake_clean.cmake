file(REMOVE_RECURSE
  "CMakeFiles/cisco_test.dir/cisco_test.cpp.o"
  "CMakeFiles/cisco_test.dir/cisco_test.cpp.o.d"
  "cisco_test"
  "cisco_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cisco_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
