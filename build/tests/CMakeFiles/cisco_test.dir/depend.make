# Empty dependencies file for cisco_test.
# This may be replaced when dependencies are built.
