file(REMOVE_RECURSE
  "CMakeFiles/fdd_shape_test.dir/fdd_shape_test.cpp.o"
  "CMakeFiles/fdd_shape_test.dir/fdd_shape_test.cpp.o.d"
  "fdd_shape_test"
  "fdd_shape_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fdd_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
