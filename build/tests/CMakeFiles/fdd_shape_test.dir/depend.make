# Empty dependencies file for fdd_shape_test.
# This may be replaced when dependencies are built.
