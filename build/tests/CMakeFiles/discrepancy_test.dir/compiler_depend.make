# Empty compiler generated dependencies file for discrepancy_test.
# This may be replaced when dependencies are built.
