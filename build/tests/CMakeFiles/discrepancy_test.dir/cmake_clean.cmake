file(REMOVE_RECURSE
  "CMakeFiles/discrepancy_test.dir/discrepancy_test.cpp.o"
  "CMakeFiles/discrepancy_test.dir/discrepancy_test.cpp.o.d"
  "discrepancy_test"
  "discrepancy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrepancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
