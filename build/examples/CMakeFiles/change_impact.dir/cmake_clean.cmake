file(REMOVE_RECURSE
  "CMakeFiles/change_impact.dir/change_impact.cpp.o"
  "CMakeFiles/change_impact.dir/change_impact.cpp.o.d"
  "change_impact"
  "change_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/change_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
