# Empty dependencies file for change_impact.
# This may be replaced when dependencies are built.
