# Empty dependencies file for redundancy_audit.
# This may be replaced when dependencies are built.
