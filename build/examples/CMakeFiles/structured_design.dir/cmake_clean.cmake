file(REMOVE_RECURSE
  "CMakeFiles/structured_design.dir/structured_design.cpp.o"
  "CMakeFiles/structured_design.dir/structured_design.cpp.o.d"
  "structured_design"
  "structured_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
