# Empty dependencies file for structured_design.
# This may be replaced when dependencies are built.
