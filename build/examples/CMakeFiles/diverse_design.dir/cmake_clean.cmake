file(REMOVE_RECURSE
  "CMakeFiles/diverse_design.dir/diverse_design.cpp.o"
  "CMakeFiles/diverse_design.dir/diverse_design.cpp.o.d"
  "diverse_design"
  "diverse_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diverse_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
