# Empty compiler generated dependencies file for diverse_design.
# This may be replaced when dependencies are built.
