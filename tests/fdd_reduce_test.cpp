// Reduction tests: reduce() must shrink (or keep) the diagram, preserve
// semantics, merge identical siblings, and splice out trivial nodes.

#include <gtest/gtest.h>

#include "fdd/construct.hpp"
#include "fdd/reduce.hpp"
#include "fdd/simplify.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

TEST(FddReduce, MergesSiblingsWithIdenticalSubtrees) {
  auto root = FddNode::make_internal(0);
  root->edges.emplace_back(IntervalSet(Interval(0, 3)),
                           FddNode::make_terminal(kAccept));
  root->edges.emplace_back(IntervalSet(Interval(4, 7)),
                           FddNode::make_terminal(kAccept));
  Fdd fdd(Schema({{"x", Interval(0, 7), FieldKind::kInteger}}),
          std::move(root));
  reduce(fdd);
  // Both edges merge into a full-domain edge; the node is then spliced
  // out, leaving a constant diagram.
  EXPECT_TRUE(fdd.root().is_terminal());
  EXPECT_EQ(fdd.evaluate({5}), kAccept);
}

TEST(FddReduce, SplicesOutSingleFullDomainEdges) {
  auto leafy = FddNode::make_internal(1);
  leafy->edges.emplace_back(IntervalSet(Interval(0, 7)),
                            FddNode::make_terminal(kDiscard));
  auto root = FddNode::make_internal(0);
  root->edges.emplace_back(IntervalSet(Interval(0, 7)), std::move(leafy));
  Fdd fdd(tiny2(), std::move(root));
  reduce(fdd);
  EXPECT_TRUE(fdd.root().is_terminal());
}

TEST(FddReduce, PreservesSemanticsOnRandomPolicies) {
  std::mt19937_64 rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const Policy p = test::random_policy(tiny3(), 5, rng);
    Fdd fdd = build_fdd(p);
    reduce(fdd);
    fdd.validate();
    EXPECT_TRUE(test::fdd_matches_policy(fdd, p));
  }
}

TEST(FddReduce, NeverGrowsTheDiagram) {
  std::mt19937_64 rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    const Policy p = test::random_policy(tiny3(), 6, rng);
    Fdd fdd = build_fdd(p);
    const std::size_t before = fdd.node_count();
    reduce(fdd);
    EXPECT_LE(fdd.node_count(), before);
  }
}

TEST(FddReduce, UndoesSimplificationBlowup) {
  // Simplifying then reducing a diagram returns to (at most) the size of
  // reducing directly: reduction merges the edges splitting created.
  std::mt19937_64 rng(13);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  Fdd direct = build_fdd(p);
  reduce(direct);
  Fdd roundtrip = build_fdd(p);
  make_simple(roundtrip);
  reduce(roundtrip);
  EXPECT_LE(roundtrip.node_count(), direct.node_count());
  EXPECT_TRUE(test::fdd_matches_policy(roundtrip, p));
}

TEST(FddReduce, IdempotentOnReducedDiagrams) {
  std::mt19937_64 rng(14);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  Fdd fdd = build_fdd(p);
  reduce(fdd);
  const Fdd snapshot = fdd.clone();
  reduce(fdd);
  EXPECT_TRUE(structurally_equal(snapshot, fdd));
}

}  // namespace
}  // namespace dfw
