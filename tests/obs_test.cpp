// Tests for the observability layer (src/obs/): tracer span recording,
// nesting and thread attribution, Chrome trace JSON export + validator
// round-trip, the unified metrics registry and its legacy-struct
// absorption, the executor quiescence contract, and — the load-bearing
// invariant — that a null sink leaves every pipeline output byte-identical.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "diverse/discrepancy.hpp"
#include "diverse/workflow.hpp"
#include "fdd/arena.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "gen/generate.hpp"
#include "obs/names.hpp"
#include "obs/obs.hpp"
#include "rt/executor.hpp"
#include "rt/fault.hpp"
#include "rt/govern.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

Policy synth(std::size_t rules, std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = rules;
  Rng rng(seed);
  return synth_policy(config, rng);
}

// -- Tracer ------------------------------------------------------------------

TEST(TracerTest, RecordsNestedSpansWithDepths) {
  Tracer tracer;
  {
    ScopedSpan outer(&tracer, "outer");
    {
      ScopedSpan inner(&tracer, "inner", "k", 7);
    }
    {
      ScopedSpan inner(&tracer, "inner");
    }
  }
  EXPECT_EQ(tracer.event_count(), 3u);
  EXPECT_EQ(tracer.thread_count(), 1u);
  EXPECT_EQ(tracer.dropped(), 0u);

  const TraceValidation v = validate_chrome_trace(tracer.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, 3u);
  EXPECT_EQ(v.threads, 1u);
  EXPECT_EQ(v.name_counts.at("outer"), 1u);
  EXPECT_EQ(v.name_counts.at("inner"), 2u);
}

TEST(TracerTest, NullTracerRecordsNothing) {
  ScopedSpan span(nullptr, "ignored");
  ScopedSpan with_args(nullptr, "ignored", "a", 1, "b", 2);
  // Nothing to assert beyond "does not crash": a null tracer is the null
  // sink the pipeline relies on.
  SUCCEED();
}

TEST(TracerTest, AttributesSpansToTheRecordingThread) {
  Tracer tracer;
  constexpr int kSpansPerThread = 50;
  const auto worker = [&] {
    for (int i = 0; i < kSpansPerThread; ++i) {
      ScopedSpan span(&tracer, "worker");
    }
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
  {
    ScopedSpan span(&tracer, "main");
  }
  EXPECT_EQ(tracer.thread_count(), 3u);
  EXPECT_EQ(tracer.event_count(), 2 * kSpansPerThread + 1u);

  const TraceValidation v = validate_chrome_trace(tracer.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.threads, 3u);
  EXPECT_EQ(v.name_counts.at("worker"),
            static_cast<std::size_t>(2 * kSpansPerThread));
  EXPECT_EQ(v.name_counts.at("main"), 1u);
}

TEST(TracerTest, FullRingDropsOldestAndCounts) {
  Tracer tracer(16);
  for (int i = 0; i < 100; ++i) {
    ScopedSpan span(&tracer, "spin");
  }
  EXPECT_EQ(tracer.event_count(), 16u);
  EXPECT_EQ(tracer.dropped(), 84u);
  const TraceValidation v = validate_chrome_trace(tracer.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, 16u);
}

TEST(TracerTest, SurvivesTracerDestructionAndReuse) {
  // The thread-local fast path caches a log pointer keyed by the tracer's
  // process-unique serial; a new tracer on the same thread must miss the
  // cache instead of writing into the dead tracer's storage.
  {
    Tracer first;
    ScopedSpan span(&first, "first");
  }
  Tracer second;
  {
    ScopedSpan span(&second, "second");
  }
  EXPECT_EQ(second.event_count(), 1u);
  const TraceValidation v = validate_chrome_trace(second.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.name_counts.count("first"), 0u);
  EXPECT_EQ(v.name_counts.at("second"), 1u);
}

// -- Trace validator ---------------------------------------------------------

TEST(TraceValidatorTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(validate_chrome_trace("").ok);
  EXPECT_FALSE(validate_chrome_trace("not json").ok);
  EXPECT_FALSE(validate_chrome_trace("{}").ok);  // no traceEvents
  EXPECT_FALSE(
      validate_chrome_trace(R"({"traceEvents":[{"ph":"X"}]})").ok);
  // Partial overlap on one thread is not proper nesting.
  const char* overlapping =
      R"({"traceEvents":[
        {"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
        {"name":"b","ph":"X","pid":1,"tid":1,"ts":5,"dur":10}]})";
  EXPECT_FALSE(validate_chrome_trace(overlapping).ok);
}

TEST(TraceValidatorTest, AcceptsMinimalWellFormedTrace) {
  const char* doc =
      R"({"traceEvents":[
        {"name":"a","ph":"X","pid":1,"tid":1,"ts":0,"dur":10},
        {"name":"b","ph":"X","pid":1,"tid":1,"ts":2,"dur":3},
        {"name":"a","ph":"X","pid":1,"tid":2,"ts":1,"dur":4}]})";
  const TraceValidation v = validate_chrome_trace(doc);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.events, 3u);
  EXPECT_EQ(v.threads, 2u);
  EXPECT_EQ(v.name_counts.at("a"), 2u);
}

// -- Metrics registry --------------------------------------------------------

TEST(MetricsTest, CountersAndHistogramsAccumulate) {
  MetricsRegistry registry;
  registry.counter("x").add();
  registry.counter("x").add(4);
  registry.histogram("h").record(0);
  registry.histogram("h").record(1);
  registry.histogram("h").record(1000);

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("x"), 5u);
  EXPECT_EQ(snap.histograms.at("h").count, 3u);
  EXPECT_EQ(snap.histograms.at("h").sum, 1001u);
}

TEST(MetricsTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  for (std::size_t i = 2; i < Histogram::kBuckets; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i);
    EXPECT_EQ(Histogram::bucket_of(lo), i);
    EXPECT_EQ(Histogram::bucket_of(lo - 1), i - 1);
  }
}

TEST(MetricsTest, LogLinearBucketsRefineOctavesWithinErrorBound) {
  // subbits=2: values < 8 get exact buckets, every octave splits into 4
  // sub-buckets, and the bound/index functions stay inverse of each other.
  constexpr std::uint32_t kSub = 2;
  EXPECT_EQ(Histogram::num_buckets(kSub), (std::size_t{65} - kSub) << kSub);
  for (std::uint64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(Histogram::bucket_of(v, kSub), v);
  }
  for (std::size_t i = 2; i < Histogram::num_buckets(kSub); ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i, kSub);
    EXPECT_EQ(Histogram::bucket_of(lo, kSub), i) << "bucket " << i;
    EXPECT_EQ(Histogram::bucket_of(lo - 1, kSub), i - 1) << "bucket " << i;
  }
  // The log-linear relative error bound: a bucket's width never exceeds
  // 2^-s of its lower bound once past the exact region.
  for (std::size_t i = 1u << (kSub + 1);
       i < Histogram::num_buckets(kSub) - 1; ++i) {
    const std::uint64_t lo = Histogram::bucket_lower_bound(i, kSub);
    const std::uint64_t hi = Histogram::bucket_next_bound(lo, kSub);
    EXPECT_LE(hi - lo, lo >> kSub) << "bucket " << i;
  }
  // subbits=0 reproduces the legacy power-of-two scheme exactly.
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 7ull, 1000ull,
                          (1ull << 40) + 17, ~0ull}) {
    EXPECT_EQ(Histogram::bucket_of(v, 0), Histogram::bucket_of(v));
  }
}

TEST(MetricsTest, SubbitsZeroRegistryIsByteIdenticalToDefault) {
  MetricsRegistry legacy;
  MetricsRegistry explicit_zero(0);
  for (MetricsRegistry* r : {&legacy, &explicit_zero}) {
    r->counter("c").add(3);
    for (const std::uint64_t v : {1ull, 9ull, 512ull, 100000ull}) {
      r->histogram("h").record(v);
    }
  }
  EXPECT_EQ(legacy.snapshot().to_json(), explicit_zero.snapshot().to_json());
}

TEST(MetricsTest, QuantileEdgeCases) {
  // Empty histogram: every quantile is 0.
  HistogramSnapshot empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(0.999), 0.0);

  // Single occupied bucket: quantiles interpolate inside [lo, hi).
  MetricsRegistry registry;
  for (int i = 0; i < 10; ++i) {
    registry.histogram("one").record(1000);
  }
  const HistogramSnapshot one = registry.snapshot().histograms.at("one");
  const std::uint64_t lo = one.buckets.front().first;
  const std::uint64_t hi = Histogram::bucket_next_bound(lo, one.subbits);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_GE(one.quantile(q), static_cast<double>(lo));
    EXPECT_LE(one.quantile(q), static_cast<double>(hi - 1));
  }
  EXPECT_LE(one.quantile(0.5), one.quantile(0.9));

  // Saturating top bucket: the max value lands in the last bucket, whose
  // upper bound clamps to UINT64_MAX instead of wrapping.
  registry.histogram("top").record(~std::uint64_t{0});
  const HistogramSnapshot top = registry.snapshot().histograms.at("top");
  EXPECT_GE(top.quantile(1.0), static_cast<double>(1ull << 63));
  const std::uint64_t top_lo = top.buckets.back().first;
  EXPECT_EQ(Histogram::bucket_next_bound(top_lo, top.subbits),
            ~std::uint64_t{0});
}

TEST(MetricsTest, HistogramSnapshotMergeAccumulates) {
  MetricsRegistry a(2);
  MetricsRegistry b(2);
  for (const std::uint64_t v : {1ull, 5ull, 100ull, 100ull, 4096ull}) {
    a.histogram("h").record(v);
  }
  for (const std::uint64_t v : {2ull, 100ull, 1ull << 20}) {
    b.histogram("h").record(v);
  }
  HistogramSnapshot merged = a.snapshot().histograms.at("h");
  merged.merge(b.snapshot().histograms.at("h"));
  EXPECT_EQ(merged.count, 8u);
  EXPECT_EQ(merged.sum, 1ull + 5 + 100 + 100 + 4096 + 2 + 100 + (1u << 20));
  std::uint64_t total = 0;
  std::uint64_t prev_lo = 0;
  for (const auto& [lo, n] : merged.buckets) {
    EXPECT_GE(lo, prev_lo);
    prev_lo = lo;
    total += n;
  }
  EXPECT_EQ(total, merged.count);
  // The shared bucket (both recorded 100) summed, not duplicated.
  const std::size_t idx = Histogram::bucket_of(100, 2);
  const std::uint64_t lo100 = Histogram::bucket_lower_bound(idx, 2);
  std::uint64_t in100 = 0;
  for (const auto& [lo, n] : merged.buckets) {
    if (lo == lo100) {
      in100 += n;
    }
  }
  EXPECT_EQ(in100, 3u);

  // Merging into an empty snapshot adopts the other's resolution;
  // mismatched non-empty resolutions are a logic error, not silent junk.
  HistogramSnapshot fresh;
  fresh.merge(merged);
  EXPECT_EQ(fresh.subbits, 2u);
  EXPECT_EQ(fresh, merged);
  MetricsRegistry c(0);
  c.histogram("h").record(7);
  HistogramSnapshot coarse = c.snapshot().histograms.at("h");
  EXPECT_THROW(coarse.merge(merged), std::logic_error);
}

TEST(MetricsTest, QuantilesDeterministicAcrossThreadCounts) {
  // The same multiset of samples must snapshot identically no matter how
  // many threads recorded it — bucket counts are commutative.
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 9000; ++i) {
    values.push_back((i * 2654435761u) % 1000000);
  }
  std::vector<MetricsSnapshot> snaps;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    MetricsRegistry registry(3);
    Histogram& h = registry.histogram("h");
    std::vector<std::thread> workers;
    const std::size_t share = values.size() / threads;
    for (std::size_t t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::size_t begin = t * share;
        const std::size_t end =
            t + 1 == threads ? values.size() : begin + share;
        for (std::size_t i = begin; i < end; ++i) {
          h.record(values[i]);
        }
      });
    }
    for (std::thread& w : workers) {
      w.join();
    }
    snaps.push_back(registry.snapshot());
  }
  EXPECT_EQ(snaps[0], snaps[1]);
  EXPECT_EQ(snaps[0], snaps[2]);
  EXPECT_EQ(snaps[0].histograms.at("h").quantile(0.99),
            snaps[2].histograms.at("h").quantile(0.99));
}

TEST(MetricsTest, FaultPlanCountersAbsorbAndOverlay) {
  FaultSpec spec;
  spec.site = fault::sites::kSwapCompile;
  spec.fire_on = 2;
  FaultPlan plan(7, {spec});
  for (int i = 0; i < 3; ++i) {
    try {
      plan.hit(fault::sites::kSwapCompile);
    } catch (const Error&) {
    }
  }

  MetricsRegistry registry;
  absorb(registry, plan);
  MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("rt.fault.site.serve.swap.compile.hits"), 3u);
  EXPECT_EQ(snap.counters.at("rt.fault.site.serve.swap.compile.fires"), 1u);
  EXPECT_EQ(snap.counters.at(names::kFaultTotalHits), 3u);
  EXPECT_EQ(snap.counters.at(names::kFaultTotalFires), 1u);

  // overlay() sets point-in-time values — applying it twice is stable,
  // where a second absorb() would double.
  overlay(snap, plan);
  overlay(snap, plan);
  EXPECT_EQ(snap.counters.at("rt.fault.site.serve.swap.compile.hits"), 3u);

  // An unarmed plan leaves both forms byte-identical to no plan at all.
  FaultPlan unarmed(1, {});
  MetricsRegistry clean;
  clean.counter("x").add();
  const std::string before = clean.snapshot().to_json();
  absorb(clean, unarmed);
  MetricsSnapshot overlay_snap = clean.snapshot();
  overlay(overlay_snap, unarmed);
  EXPECT_EQ(clean.snapshot().to_json(), before);
  EXPECT_EQ(overlay_snap.to_json(), before);
}

TEST(MetricsTest, EqualSnapshotsSerializeToEqualJson) {
  MetricsRegistry a;
  MetricsRegistry b;
  for (MetricsRegistry* r : {&a, &b}) {
    r->counter("beta").add(2);
    r->counter("alpha").add(1);
    r->histogram("h").record(42);
  }
  EXPECT_EQ(a.snapshot(), b.snapshot());
  EXPECT_EQ(a.snapshot().to_json(), b.snapshot().to_json());
  // Deterministic ordering: alpha before beta regardless of registration
  // order.
  const std::string json = a.snapshot().to_json();
  EXPECT_LT(json.find("alpha"), json.find("beta"));
}

TEST(MetricsTest, AbsorbUnifiesLegacyStructsUnderDottedNames) {
  MetricsRegistry registry;

  Executor pool(2);
  pool.parallel_for(64, [](std::size_t) {}, nullptr);
  absorb(registry, pool.metrics());

  FddArena arena(synth(20, 3).schema());
  arena.build_reduced(synth(20, 3));
  absorb(registry, arena.stats());

  RunContext::Config config;
  config.budgets.max_nodes = 1u << 20;
  RunContext context(config);
  Policy policy = synth(20, 3);
  ConstructOptions governed;
  governed.use_arena = true;
  governed.run.context = &context;
  (void)build_reduced_fdd(policy, governed);
  absorb(registry, context);

  const MetricsSnapshot snap = registry.snapshot();
  for (const char* name :
       {"rt.executor.tasks_run", "rt.executor.steals", "rt.executor.batches",
        "rt.executor.busy_ns", "fdd.arena.unique_nodes",
        "fdd.arena.unique_labels", "fdd.arena.node_queries",
        "fdd.arena.node_hits", "rt.govern.nodes_charged",
        "rt.govern.label_bytes_charged", "rt.govern.rules_charged",
        "rt.govern.aborted"}) {
    EXPECT_TRUE(snap.counters.count(name) != 0) << "missing " << name;
  }
  EXPECT_GT(snap.counters.at("rt.executor.batches"), 0u);
  EXPECT_GT(snap.counters.at("fdd.arena.unique_nodes"), 0u);
  EXPECT_GT(snap.counters.at("rt.govern.nodes_charged"), 0u);

  // Absorption is additive: a second absorb doubles the counter.
  const std::uint64_t once = snap.counters.at("fdd.arena.unique_nodes");
  absorb(registry, arena.stats());
  EXPECT_EQ(registry.snapshot().counters.at("fdd.arena.unique_nodes"),
            2 * once);
}

// -- Executor quiescence (satellite 1) ---------------------------------------

TEST(ExecutorQuiescenceTest, ResetMetricsThrowsWhileBatchesInFlight) {
  Executor pool(2);
  EXPECT_TRUE(pool.quiescent());
  // From inside a task the executor is by definition not quiescent; the
  // reset must refuse rather than tear counters out from under the batch.
  EXPECT_THROW(
      pool.parallel_for(8, [&](std::size_t) { pool.reset_metrics(); },
                        nullptr),
      std::logic_error);
  EXPECT_TRUE(pool.quiescent());
  pool.reset_metrics();  // quiescent again: allowed
  EXPECT_EQ(pool.metrics().batches, 0u);
}

TEST(ExecutorQuiescenceTest, ArenaStatsSnapshotAndResetAreConsistent) {
  const Policy policy = synth(30, 5);
  FddArena arena(policy.schema());
  arena.build_reduced(policy);
  const ArenaStats snap = arena.stats_snapshot();
  EXPECT_EQ(snap.unique_nodes, arena.stats().unique_nodes);
  EXPECT_GT(snap.node_queries, 0u);
  arena.reset_stats();
  EXPECT_EQ(arena.stats().node_queries, 0u);
  // The structural counters restart too; the arena contents are untouched.
  EXPECT_EQ(arena.stats().unique_nodes, 0u);
  EXPECT_EQ(arena.unique_node_count(), snap.unique_nodes);
}

// -- Pipeline instrumentation ------------------------------------------------

TEST(PipelineObsTest, TracedDiscrepanciesEmitsAllPhaseSpans) {
  const Policy pa = synth(60, 7);
  const Policy pb = synth(60, 8);
  Tracer tracer;
  MetricsRegistry registry;
  CompareOptions options;
  options.run.obs = ObsOptions{&tracer, &registry};

  const std::vector<Discrepancy> diffs = discrepancies(pa, pb, options);
  EXPECT_EQ(diffs, discrepancies(pa, pb));

  const TraceValidation v = validate_chrome_trace(tracer.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  for (const char* phase :
       {"construct", "validate", "shape", "compare", "build_reduced_fdd"}) {
    EXPECT_GE(v.name_counts.count(phase), 1u) << "missing span " << phase;
  }
  EXPECT_EQ(v.name_counts.at("build_reduced_fdd"), 2u);

  const MetricsSnapshot snap = registry.snapshot();
  for (const char* hist : {"phase.construct_ns", "phase.validate_ns",
                           "phase.shape_ns", "phase.compare_ns"}) {
    ASSERT_TRUE(snap.histograms.count(hist) != 0) << "missing " << hist;
    EXPECT_EQ(snap.histograms.at(hist).count, 1u);
  }
  // The serial pipeline runs arena-native and absorbs its stats.
  EXPECT_GT(snap.counters.at("fdd.arena.unique_nodes"), 0u);
}

TEST(PipelineObsTest, TracedGenerateEmitsSpanAndRuleCount) {
  const Policy policy = synth(60, 7);
  const Fdd fdd = build_reduced_fdd(policy);
  Tracer tracer;
  MetricsRegistry registry;
  GenerateOptions options;
  options.run.obs = ObsOptions{&tracer, &registry};

  const Policy regenerated = generate_policy(fdd, options);
  EXPECT_EQ(regenerated.rules(), generate_policy(fdd).rules());

  const TraceValidation v = validate_chrome_trace(tracer.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.name_counts.at("generate"), 1u);
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("gen.rules_emitted"), regenerated.size());
  EXPECT_EQ(snap.histograms.at("phase.generate_ns").count, 1u);
}

TEST(PipelineObsTest, PoolExecutorEmitsChunkSpansAndExecutorCounters) {
  const Policy pa = synth(60, 7);
  const Policy pb = synth(60, 8);
  Tracer tracer;
  MetricsRegistry registry;
  Executor pool(2);
  CompareOptions options;
  options.run.executor = &pool;
  options.run.obs = ObsOptions{&tracer, &registry};

  const std::vector<Discrepancy> diffs = discrepancies(pa, pb, options);
  EXPECT_EQ(diffs, discrepancies(pa, pb));

  const TraceValidation v = validate_chrome_trace(tracer.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_GE(v.name_counts.at("chunk"), 2u);
  EXPECT_GT(registry.snapshot().histograms.at("rt.executor.chunk_ns").count,
            0u);
}

// The acceptance-criterion test: one registry attached to a full governed
// session carries executor, arena, and governance counters side by side
// under the unified names.
TEST(PipelineObsTest, WorkflowSnapshotUnifiesAllSubsystems) {
  Executor pool(2);
  RunContext context;  // defaults are unbounded: governance active, no abort
  Tracer tracer;
  MetricsRegistry registry;
  WorkflowOptions options;
  options.run.executor = &pool;
  options.run.context = &context;
  options.run.obs = ObsOptions{&tracer, &registry};

  DiverseDesign session((DecisionSet()), options);
  const Policy base = synth(60, 7);
  Rng rng(99);
  session.submit("t0", base);
  session.submit("t1", perturb_policy(base, 15.0, rng));
  session.submit("t2", perturb_policy(base, 15.0, rng));
  const std::vector<PairwiseReport> cross = session.cross_compare();
  EXPECT_EQ(cross.size(), 3u);
  absorb(registry, pool.metrics());
  absorb(registry, context);

  const MetricsSnapshot snap = registry.snapshot();
  for (const char* name :
       {"rt.executor.batches", "fdd.arena.unique_nodes",
        "rt.govern.nodes_charged"}) {
    EXPECT_TRUE(snap.counters.count(name) != 0) << "missing " << name;
  }
  const TraceValidation v = validate_chrome_trace(tracer.chrome_trace_json());
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_EQ(v.name_counts.at("workflow.submit"), 3u);
  EXPECT_EQ(v.name_counts.at("workflow.cross_compare"), 1u);
  EXPECT_EQ(v.name_counts.at("pair"), 3u);
}

// -- Determinism across thread counts ----------------------------------------

// The work-independent counters (arena structure, governance charges) must
// not depend on how many threads the work was spread over, and the reports
// themselves must be identical — parallelism reorders work, never output.
TEST(ObsDeterminismTest, ArenaCountersIdenticalAcrossThreadCounts) {
  const Policy base = synth(80, 11);
  Rng rng(12);
  const Policy variant_a = perturb_policy(base, 15.0, rng);
  const Policy variant_b = perturb_policy(base, 15.0, rng);

  std::vector<MetricsSnapshot> snaps;
  std::vector<std::vector<PairwiseReport>> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    Executor pool(threads);
    MetricsRegistry registry;
    WorkflowOptions options;
    options.run.executor = &pool;
    options.run.obs.metrics = &registry;
    DiverseDesign session((DecisionSet()), options);
    session.submit("t0", base);
    session.submit("t1", variant_a);
    session.submit("t2", variant_b);
    reports.push_back(session.cross_compare());
    snaps.push_back(registry.snapshot());
  }
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(reports[i], reports[0]);
    // Counter values are exactly reproducible; timing histograms keep
    // reproducible counts with run-dependent sums.
    EXPECT_EQ(snaps[i].counters, snaps[0].counters);
    ASSERT_EQ(snaps[i].histograms.size(), snaps[0].histograms.size());
    auto it = snaps[i].histograms.begin();
    auto ref = snaps[0].histograms.begin();
    for (; it != snaps[i].histograms.end(); ++it, ++ref) {
      EXPECT_EQ(it->first, ref->first);
      EXPECT_EQ(it->second.count, ref->second.count) << it->first;
    }
  }
}

// -- Null sink ----------------------------------------------------------------

TEST(NullSinkTest, ReportsAreByteIdenticalWithAndWithoutSinks) {
  const Policy base = synth(60, 21);
  Rng rng(22);
  const Policy variant = perturb_policy(base, 20.0, rng);

  const auto run = [&](ObsOptions obs) {
    WorkflowOptions options;
    options.run.obs = obs;
    DiverseDesign session((DecisionSet()), options);
    session.submit("alpha", base);
    session.submit("beta", variant);
    return session.report();
  };
  Tracer tracer;
  MetricsRegistry registry;
  const std::string with_sinks = run(ObsOptions{&tracer, &registry});
  const std::string without_sinks = run(ObsOptions{});
  EXPECT_EQ(with_sinks, without_sinks);
  EXPECT_GT(tracer.event_count(), 0u);
}

}  // namespace
}  // namespace dfw
