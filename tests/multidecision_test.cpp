// Multi-decision support (Section 2: "Our diverse firewall design method
// can support any number of decisions"): the whole pipeline — construct,
// shape, compare, resolve, generate — over the four-decision vocabulary
// accept / discard / accept_log / discard_log.

#include <gtest/gtest.h>

#include "diverse/discrepancy.hpp"
#include "diverse/workflow.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "gen/generate.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny3;

struct FourDecisions {
  DecisionSet set;
  Decision accept_log;
  Decision discard_log;

  FourDecisions() {
    accept_log = set.add("accept_log");
    discard_log = set.add("discard_log");
  }
};

Policy random_policy4(const Schema& schema, std::size_t n,
                      std::mt19937_64& rng) {
  std::vector<Rule> rules;
  std::uniform_int_distribution<Decision> pick(0, 3);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    std::vector<IntervalSet> conjuncts;
    for (std::size_t f = 0; f < schema.field_count(); ++f) {
      conjuncts.push_back(test::random_set(schema.domain(f), rng));
    }
    rules.emplace_back(schema, std::move(conjuncts), pick(rng));
  }
  rules.push_back(Rule::catch_all(schema, pick(rng)));
  return Policy(schema, std::move(rules));
}

TEST(MultiDecision, PipelineIsExactOverFourDecisions) {
  std::mt19937_64 rng(61);
  for (int trial = 0; trial < 15; ++trial) {
    const Policy a = random_policy4(tiny3(), 5, rng);
    const Policy b = random_policy4(tiny3(), 5, rng);
    const std::vector<Discrepancy> diffs = discrepancies(a, b);
    for (const Packet& pkt : test::all_packets(tiny3())) {
      bool covered = false;
      for (const Discrepancy& d : diffs) {
        bool inside = true;
        for (std::size_t f = 0; f < pkt.size(); ++f) {
          inside = inside && d.conjuncts[f].contains(pkt[f]);
        }
        covered = covered || inside;
      }
      EXPECT_EQ(covered, a.evaluate(pkt) != b.evaluate(pkt));
    }
  }
}

TEST(MultiDecision, GenerationRoundTripsAllDecisions) {
  std::mt19937_64 rng(62);
  const Policy p = random_policy4(tiny3(), 6, rng);
  const Policy regenerated = generate_policy(build_reduced_fdd(p));
  for (const Packet& pkt : test::all_packets(tiny3())) {
    EXPECT_EQ(regenerated.evaluate(pkt), p.evaluate(pkt));
  }
}

TEST(MultiDecision, LoggingVariantIsAFunctionalDiscrepancy) {
  // accept vs accept_log must be reported: the packet sets are identical
  // but the decisions differ (the paper's notion of discrepancy is over
  // the full decision set, not just accept/discard).
  const FourDecisions four;
  const Schema schema = tiny3();
  const Policy plain(schema, {Rule::catch_all(schema, kAccept)});
  const Policy logged(schema, {Rule::catch_all(schema, four.accept_log)});
  const std::vector<Discrepancy> diffs = discrepancies(plain, logged);
  ASSERT_EQ(diffs.size(), 1u);
  EXPECT_EQ(diffs[0].decisions[0], kAccept);
  EXPECT_EQ(diffs[0].decisions[1], four.accept_log);
}

TEST(MultiDecision, WorkflowResolvesAcrossFourDecisions) {
  const FourDecisions four;
  std::mt19937_64 rng(63);
  DiverseDesign session(four.set);
  session.submit("a", random_policy4(tiny3(), 5, rng));
  session.submit("b", random_policy4(tiny3(), 5, rng));
  const std::vector<Discrepancy> diffs = session.compare();
  ResolutionPlan plan;
  for (std::size_t i = 0; i < diffs.size(); ++i) {
    // Resolve everything to the logging flavour of team a's decision.
    const Decision base = diffs[i].decisions[0];
    const Decision logged = (base == kAccept || base == four.accept_log)
                                ? four.accept_log
                                : four.discard_log;
    plan.push_back({i, logged});
  }
  const Policy final_policy =
      session.resolve(plan, ResolutionMethod::kCorrectedFdd, 1);
  // Where the teams disagreed, the final policy logs; elsewhere it matches
  // team a exactly.
  for (const Packet& pkt : test::all_packets(tiny3())) {
    const Decision da = session.policy(0).evaluate(pkt);
    const Decision db = session.policy(1).evaluate(pkt);
    const Decision df = final_policy.evaluate(pkt);
    if (da == db) {
      EXPECT_EQ(df, da);
    } else {
      EXPECT_TRUE(df == four.accept_log || df == four.discard_log);
    }
  }
}

TEST(MultiDecision, ReportNamesCustomDecisions) {
  const FourDecisions four;
  const Schema schema = tiny3();
  Discrepancy d;
  for (std::size_t f = 0; f < schema.field_count(); ++f) {
    d.conjuncts.emplace_back(schema.domain(f));
  }
  d.decisions = {four.accept_log, four.discard_log};
  const std::string line = format_discrepancy(schema, four.set, d);
  EXPECT_NE(line.find("accept_log"), std::string::npos);
  EXPECT_NE(line.find("discard_log"), std::string::npos);
}

}  // namespace
}  // namespace dfw
