// Change-impact analysis tests (Sections 1.3, 8.1): edits produce exactly
// the expected impacted traffic classes with the right classification.

#include <gtest/gtest.h>

#include "impact/impact.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

TEST(Impact, Classification) {
  EXPECT_EQ(classify_impact(kDiscard, kAccept), ImpactKind::kNowAccepted);
  EXPECT_EQ(classify_impact(kAccept, kDiscard), ImpactKind::kNowDiscarded);
  EXPECT_EQ(classify_impact(kAccept, 2), ImpactKind::kOtherChange);
  EXPECT_EQ(classify_impact(2, 3), ImpactKind::kOtherChange);
}

TEST(Impact, NoChangeMeansNoImpact) {
  std::mt19937_64 rng(71);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  EXPECT_TRUE(change_impact(p, p).empty());
  EXPECT_TRUE(is_semantics_preserving(p, p));
}

TEST(Impact, HeadInsertionImpactIsExactlyTheNewlyShadowedTraffic) {
  const Schema s = tiny2();
  const Policy before(s, {Rule::catch_all(s, kAccept)});
  Policy after = before;
  after.insert(0, rule(s, Interval(2, 3), Interval(4, 5), kDiscard));
  const std::vector<Impact> impacts = change_impact(before, after);
  ASSERT_EQ(impacts.size(), 1u);
  EXPECT_EQ(impacts[0].kind, ImpactKind::kNowDiscarded);
  EXPECT_EQ(impacts[0].packet_count, 4u);
  EXPECT_EQ(impacts[0].discrepancy.conjuncts[0],
            IntervalSet(Interval(2, 3)));
  EXPECT_EQ(impacts[0].discrepancy.conjuncts[1],
            IntervalSet(Interval(4, 5)));
}

TEST(Impact, ShadowedInsertionHasNoImpact) {
  const Schema s = tiny2();
  const Policy before(s, {rule(s, Interval(0, 7), Interval(0, 7), kDiscard),
                          Rule::catch_all(s, kAccept)});
  Policy after = before;
  // Inserting below a full-cover rule can never fire.
  after.insert(1, rule(s, Interval(1, 1), Interval(1, 1), kAccept));
  EXPECT_TRUE(is_semantics_preserving(before, after));
}

TEST(Impact, ReorderOfConflictingRulesIsDetected) {
  const Schema s = tiny2();
  const Policy before(s,
                      {rule(s, Interval(0, 4), Interval(0, 7), kAccept),
                       rule(s, Interval(2, 7), Interval(0, 7), kDiscard),
                       Rule::catch_all(s, kDiscard)});
  Policy after = before;
  after.move(0, 1);
  const std::vector<Impact> impacts = change_impact(before, after);
  ASSERT_FALSE(impacts.empty());
  // The overlap [2,4] x [0,7] flips accept -> discard.
  Value affected = 0;
  for (const Impact& impact : impacts) {
    EXPECT_EQ(impact.kind, ImpactKind::kNowDiscarded);
    affected += impact.packet_count;
  }
  EXPECT_EQ(affected, 3u * 8u);
}

TEST(Impact, ResultsSortedByBlastRadius) {
  const Schema s = tiny2();
  const Policy before(s, {Rule::catch_all(s, kAccept)});
  Policy after = before;
  after.insert(0, rule(s, Interval(0, 0), Interval(0, 0), kDiscard));
  after.insert(0, rule(s, Interval(4, 7), Interval(0, 7), kDiscard));
  const std::vector<Impact> impacts = change_impact(before, after);
  ASSERT_GE(impacts.size(), 2u);
  for (std::size_t i = 0; i + 1 < impacts.size(); ++i) {
    EXPECT_GE(impacts[i].packet_count, impacts[i + 1].packet_count);
  }
}

TEST(Impact, ImpactEqualsBruteForceDiff) {
  std::mt19937_64 rng(72);
  for (int trial = 0; trial < 15; ++trial) {
    const Policy before = test::random_policy(tiny3(), 5, rng);
    const Policy after = test::random_policy(tiny3(), 5, rng);
    const std::vector<Impact> impacts = change_impact(before, after);
    Value covered = 0;
    for (const Impact& impact : impacts) {
      covered += impact.packet_count;
    }
    Value expected = 0;
    for (const Packet& pkt : test::all_packets(tiny3())) {
      if (before.evaluate(pkt) != after.evaluate(pkt)) {
        ++expected;
      }
    }
    EXPECT_EQ(covered, expected);
  }
}

TEST(Impact, LoggingChangesClassifyAsOtherChange) {
  // Switching accept -> accept_log is a functional discrepancy (Section 2
  // supports any decision set) but not a security-direction change.
  DecisionSet ds;
  const Decision accept_log = ds.add("accept_log");
  const Schema s = tiny2();
  const Policy before(s, {Rule::catch_all(s, kAccept)});
  const Policy after(s, {Rule::catch_all(s, accept_log)});
  const std::vector<Impact> impacts = change_impact(before, after);
  ASSERT_EQ(impacts.size(), 1u);
  EXPECT_EQ(impacts[0].kind, ImpactKind::kOtherChange);
  const std::string report = format_impact_report(s, ds, impacts);
  EXPECT_NE(report.find("[changed,"), std::string::npos);
  EXPECT_NE(report.find("accept_log"), std::string::npos);
}

TEST(Impact, ReportNamesDirections) {
  const Schema s = tiny2();
  const Policy before(s, {Rule::catch_all(s, kAccept)});
  Policy after = before;
  after.insert(0, rule(s, Interval(0, 1), Interval(0, 7), kDiscard));
  const std::string report = format_impact_report(
      s, default_decisions(), change_impact(before, after));
  EXPECT_NE(report.find("NOW-DISCARDED"), std::string::npos);
  EXPECT_NE(report.find("newly discarded"), std::string::npos);
  EXPECT_NE(report.find("before=accept"), std::string::npos);
  const std::string empty_report =
      format_impact_report(s, default_decisions(), {});
  EXPECT_NE(empty_report.find("none"), std::string::npos);
}

}  // namespace
}  // namespace dfw
