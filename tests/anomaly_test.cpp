// Anomaly-analysis tests: the four pair classes on hand-built policies,
// exactness of the dead-rule detector against brute force, and agreement
// between the syntactic and semantic views.

#include <gtest/gtest.h>

#include "analysis/anomaly.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

bool has(const std::vector<Anomaly>& anomalies, AnomalyKind kind,
         std::size_t first, std::size_t second) {
  for (const Anomaly& a : anomalies) {
    if (a.kind == kind && a.first == first && a.second == second) {
      return true;
    }
  }
  return false;
}

TEST(Anomaly, PredicateSubsetAndOverlap) {
  const Schema s = tiny2();
  const Rule big = rule(s, Interval(0, 7), Interval(0, 7), kAccept);
  const Rule small = rule(s, Interval(2, 3), Interval(2, 3), kDiscard);
  const Rule side = rule(s, Interval(4, 7), Interval(0, 1), kDiscard);
  EXPECT_TRUE(predicate_subset(small, big));
  EXPECT_FALSE(predicate_subset(big, small));
  EXPECT_TRUE(predicates_overlap(big, small));
  EXPECT_FALSE(predicates_overlap(small, side));
}

TEST(Anomaly, ShadowingDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kShadowing, 0, 1));
}

TEST(Anomaly, GeneralizationDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kGeneralization, 0, 1));
  EXPECT_FALSE(has(anomalies, AnomalyKind::kShadowing, 0, 1));
}

TEST(Anomaly, CorrelationDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 4), Interval(0, 7), kAccept),
                     rule(s, Interval(2, 7), Interval(0, 7), kDiscard),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kCorrelation, 0, 1));
}

TEST(Anomaly, RedundancyPairDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kRedundancyPair, 0, 1));
}

TEST(Anomaly, BenignOverlapNotFlagged) {
  const Schema s = tiny2();
  // Overlapping, non-nested, same decision.
  const Policy p(s, {rule(s, Interval(0, 4), Interval(0, 7), kAccept),
                     rule(s, Interval(2, 7), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  for (const Anomaly& a : anomalies) {
    EXPECT_FALSE(a.first == 0 && a.second == 1);
  }
}

TEST(Anomaly, DisjointRulesProduceNoAnomalies) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 3), kAccept),
                     rule(s, Interval(4, 7), Interval(4, 7), kDiscard)});
  EXPECT_TRUE(find_anomalies(p).empty());
}

TEST(Anomaly, DeadRulesMatchBruteForce) {
  std::mt19937_64 rng(91);
  for (int trial = 0; trial < 25; ++trial) {
    const Policy p = test::random_policy(tiny3(), 6, rng);
    const std::vector<std::size_t> dead = dead_rules(p);
    // Brute force: a rule is dead iff no packet first-matches it.
    std::vector<bool> hit(p.size(), false);
    for (const Packet& pkt : test::all_packets(tiny3())) {
      hit[*p.first_match(pkt)] = true;
    }
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!hit[i]) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(dead, expected) << "trial " << trial;
  }
}

TEST(Anomaly, DeadRuleFromCombinedCoverage) {
  // Neither earlier rule alone shadows rule 3, but together they do — the
  // pairwise scan cannot see it, the semantic check must.
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept),
                     rule(s, Interval(4, 7), Interval(0, 7), kDiscard),
                     rule(s, Interval(2, 5), Interval(2, 5), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<std::size_t> dead = dead_rules(p);
  // Rules 1 and 2 already cover the whole space, so the trailing
  // catch-all is dead too.
  EXPECT_EQ(dead, (std::vector<std::size_t>{2, 3}));
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_FALSE(has(anomalies, AnomalyKind::kShadowing, 0, 2));
  EXPECT_FALSE(has(anomalies, AnomalyKind::kShadowing, 1, 2));
}

TEST(Anomaly, ReportFormatsKindsAndRules) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     Rule::catch_all(s, kDiscard)});
  const std::string report = format_anomaly_report(
      p, default_decisions(), find_anomalies(p), dead_rules(p));
  EXPECT_NE(report.find("[shadowing] r2 vs r1"), std::string::npos);
  EXPECT_NE(report.find("dead rules"), std::string::npos);
  const std::string clean = format_anomaly_report(
      p, default_decisions(), {}, {});
  EXPECT_NE(clean.find("anomalies: none"), std::string::npos);
  EXPECT_NE(clean.find("dead rules: none"), std::string::npos);
}

TEST(Anomaly, KindNames) {
  EXPECT_STREQ(to_string(AnomalyKind::kShadowing), "shadowing");
  EXPECT_STREQ(to_string(AnomalyKind::kGeneralization), "generalization");
  EXPECT_STREQ(to_string(AnomalyKind::kCorrelation), "correlation");
  EXPECT_STREQ(to_string(AnomalyKind::kRedundancyPair), "redundancy-pair");
}

}  // namespace
}  // namespace dfw
