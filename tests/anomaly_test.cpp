// Anomaly-analysis tests: the four pair classes on hand-built policies,
// exactness of the dead-rule detector against brute force and against an
// independent reachability-based reference, agreement between the
// syntactic and semantic views, and determinism of the parallel pair scan
// against the serial path.

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/anomaly.hpp"
#include "fdd/construct.hpp"
#include "query/query.hpp"
#include "rt/executor.hpp"
#include "rt/govern.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

bool has(const std::vector<Anomaly>& anomalies, AnomalyKind kind,
         std::size_t first, std::size_t second) {
  for (const Anomaly& a : anomalies) {
    if (a.kind == kind && a.first == first && a.second == second) {
      return true;
    }
  }
  return false;
}

TEST(Anomaly, PredicateSubsetAndOverlap) {
  const Schema s = tiny2();
  const Rule big = rule(s, Interval(0, 7), Interval(0, 7), kAccept);
  const Rule small = rule(s, Interval(2, 3), Interval(2, 3), kDiscard);
  const Rule side = rule(s, Interval(4, 7), Interval(0, 1), kDiscard);
  EXPECT_TRUE(predicate_subset(small, big));
  EXPECT_FALSE(predicate_subset(big, small));
  EXPECT_TRUE(predicates_overlap(big, small));
  EXPECT_FALSE(predicates_overlap(small, side));
}

TEST(Anomaly, ShadowingDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kShadowing, 0, 1));
}

TEST(Anomaly, GeneralizationDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kGeneralization, 0, 1));
  EXPECT_FALSE(has(anomalies, AnomalyKind::kShadowing, 0, 1));
}

TEST(Anomaly, CorrelationDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 4), Interval(0, 7), kAccept),
                     rule(s, Interval(2, 7), Interval(0, 7), kDiscard),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kCorrelation, 0, 1));
}

TEST(Anomaly, RedundancyPairDetected) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_TRUE(has(anomalies, AnomalyKind::kRedundancyPair, 0, 1));
}

TEST(Anomaly, BenignOverlapNotFlagged) {
  const Schema s = tiny2();
  // Overlapping, non-nested, same decision.
  const Policy p(s, {rule(s, Interval(0, 4), Interval(0, 7), kAccept),
                     rule(s, Interval(2, 7), Interval(0, 7), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  for (const Anomaly& a : anomalies) {
    EXPECT_FALSE(a.first == 0 && a.second == 1);
  }
}

TEST(Anomaly, DisjointRulesProduceNoAnomalies) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 3), kAccept),
                     rule(s, Interval(4, 7), Interval(4, 7), kDiscard)});
  EXPECT_TRUE(find_anomalies(p).empty());
}

TEST(Anomaly, DeadRulesMatchBruteForce) {
  std::mt19937_64 rng(91);
  for (int trial = 0; trial < 25; ++trial) {
    const Policy p = test::random_policy(tiny3(), 6, rng);
    const std::vector<std::size_t> dead = dead_rules(p);
    // Brute force: a rule is dead iff no packet first-matches it.
    std::vector<bool> hit(p.size(), false);
    for (const Packet& pkt : test::all_packets(tiny3())) {
      hit[*p.first_match(pkt)] = true;
    }
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (!hit[i]) {
        expected.push_back(i);
      }
    }
    EXPECT_EQ(dead, expected) << "trial " << trial;
  }
}

TEST(Anomaly, DeadRuleFromCombinedCoverage) {
  // Neither earlier rule alone shadows rule 3, but together they do — the
  // pairwise scan cannot see it, the semantic check must.
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept),
                     rule(s, Interval(4, 7), Interval(0, 7), kDiscard),
                     rule(s, Interval(2, 5), Interval(2, 5), kAccept),
                     Rule::catch_all(s, kDiscard)});
  const std::vector<std::size_t> dead = dead_rules(p);
  // Rules 1 and 2 already cover the whole space, so the trailing
  // catch-all is dead too.
  EXPECT_EQ(dead, (std::vector<std::size_t>{2, 3}));
  const std::vector<Anomaly> anomalies = find_anomalies(p);
  EXPECT_FALSE(has(anomalies, AnomalyKind::kShadowing, 0, 2));
  EXPECT_FALSE(has(anomalies, AnomalyKind::kShadowing, 1, 2));
}

TEST(Anomaly, ReportFormatsKindsAndRules) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 5), Interval(0, 7), kAccept),
                     rule(s, Interval(1, 2), Interval(1, 2), kDiscard),
                     Rule::catch_all(s, kDiscard)});
  const std::string report = format_anomaly_report(
      p, default_decisions(), find_anomalies(p), dead_rules(p));
  EXPECT_NE(report.find("[shadowing] r2 vs r1"), std::string::npos);
  EXPECT_NE(report.find("dead rules"), std::string::npos);
  const std::string clean = format_anomaly_report(
      p, default_decisions(), {}, {});
  EXPECT_NE(clean.find("anomalies: none"), std::string::npos);
  EXPECT_NE(clean.find("dead rules: none"), std::string::npos);
}

TEST(Anomaly, ParallelPairScanMatchesSerialExactly) {
  // The chunked parallel scan must reproduce the serial result *including
  // ordering*, whatever the thread count or chunk grain.
  std::mt19937_64 rng(113);
  for (int trial = 0; trial < 5; ++trial) {
    const Policy p = test::random_policy(tiny3(), 20, rng);
    const std::vector<Anomaly> serial = find_anomalies(p);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
      Executor executor(threads);
      AnomalyOptions options;
      options.run.executor = &executor;
      options.row_grain = 3;  // force multiple chunks
      EXPECT_EQ(find_anomalies(p, options), serial)
          << "trial " << trial << ", threads " << threads;
    }
  }
}

TEST(Anomaly, GovernedPairScanAbortsOnTinyNodeBudget) {
  // The pair scan itself creates no nodes; a shared context someone else
  // has already breached must still stop it at the next checkpoint.
  std::mt19937_64 rng(7);
  const Policy p = test::random_policy(tiny3(), 12, rng);
  RunContext::Config config;
  config.budgets.max_nodes = 1;
  config.checkpoint_grain = 1;
  RunContext context(std::move(config));
  EXPECT_THROW(context.charge_nodes(2), Error);  // breach it
  AnomalyOptions options;
  options.run.context = &context;
  EXPECT_THROW(find_anomalies(p, options), Error);
  EXPECT_THROW(dead_rules(p, options), Error);
}

// Independent dead-rule reference: give rule i a fresh decision nothing
// else uses; i is dead iff that decision is unreachable in the rebuilt
// diagram. Exercises a completely different code path (full FDD build +
// reachability) than the incremental coverage walk under test.
std::vector<std::size_t> dead_rules_by_reachability(const Policy& p) {
  constexpr Decision kFresh = 9;
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < p.size(); ++i) {
    std::vector<Rule> rules = p.rules();
    rules[i] = Rule(p.schema(), rules[i].conjuncts(), kFresh);
    const Fdd fdd = build_reduced_fdd(Policy(p.schema(), std::move(rules)));
    const std::vector<Decision> reach = reachable_decisions(fdd);
    if (std::find(reach.begin(), reach.end(), kFresh) == reach.end()) {
      dead.push_back(i);
    }
  }
  return dead;
}

TEST(Anomaly, DeadRulesMatchReachabilityReferenceOnRandomCorpus) {
  std::mt19937_64 rng(127);
  for (int trial = 0; trial < 10; ++trial) {
    const Policy p = test::random_policy(tiny3(), 8, rng);
    EXPECT_EQ(dead_rules(p), dead_rules_by_reachability(p))
        << "trial " << trial;
  }
}

TEST(Anomaly, DeadRulesInterleavedReductionKeepsExactness) {
  // A coverage diagram that outgrows the 256-node reduction threshold:
  // staggered cubes over [0,4095]^3 followed by exact duplicates. The
  // duplicates (and only they) are dead; the interleaved reduce() on the
  // partial coverage FDD must not change that.
  const Schema s({{"a", Interval(0, 4095), FieldKind::kInteger},
                  {"b", Interval(0, 4095), FieldKind::kInteger},
                  {"c", Interval(0, 4095), FieldKind::kInteger}});
  std::vector<Rule> rules;
  const std::size_t n = 10;
  for (std::size_t i = 0; i < n; ++i) {
    const IntervalSet span(Interval(i * 64, i * 64 + 2048));
    rules.emplace_back(s, std::vector<IntervalSet>{span, span, span},
                       i % 2 == 0 ? kAccept : kDiscard);
  }
  for (std::size_t i = 0; i < n; ++i) {
    rules.push_back(rules[i]);  // exact duplicates: all dead
  }
  rules.push_back(Rule::catch_all(s, kDiscard));
  const Policy p(s, std::move(rules));
  EXPECT_GT(build_reduced_fdd(p).node_count(), 50u);  // nontrivial diagram
  const std::vector<std::size_t> dead = dead_rules(p);
  EXPECT_EQ(dead, dead_rules_by_reachability(p));
  for (std::size_t i = n; i < 2 * n; ++i) {
    EXPECT_NE(std::find(dead.begin(), dead.end(), i), dead.end()) << i;
  }
  // Governed run with a generous budget agrees with the ungoverned one.
  Budgets budgets;
  budgets.max_nodes = 1000000;
  RunContext context = RunContext::with_budgets(budgets);
  AnomalyOptions options;
  options.run.context = &context;
  EXPECT_EQ(dead_rules(p, options), dead);
  EXPECT_GT(context.nodes_charged(), 0u);
}

TEST(Anomaly, KindNames) {
  EXPECT_STREQ(to_string(AnomalyKind::kShadowing), "shadowing");
  EXPECT_STREQ(to_string(AnomalyKind::kGeneralization), "generalization");
  EXPECT_STREQ(to_string(AnomalyKind::kCorrelation), "correlation");
  EXPECT_STREQ(to_string(AnomalyKind::kRedundancyPair), "redundancy-pair");
}

}  // namespace
}  // namespace dfw
