// Determinism guarantees of the parallel runtime: for every executor
// width (serial, 1, 2, 8 threads), N-way direct comparison, cross
// comparison, batch classification, and the forked comparison walk must
// return results *identical* to the serial path — same discrepancies, in
// the same order, with the same counts.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "diverse/workflow.hpp"
#include "engine/classifier.hpp"
#include "engine/trace.hpp"
#include "fdd/compare.hpp"
#include "rt/executor.hpp"
#include "synth/synth.hpp"

namespace dfw {
namespace {

constexpr std::size_t kThreadWidths[] = {1, 2, 8};

std::vector<Policy> make_teams(std::size_t teams, std::size_t rules,
                               std::uint64_t seed) {
  SynthConfig config;
  config.num_rules = rules;
  Rng rng(seed);
  std::vector<Policy> policies;
  policies.push_back(synth_policy(config, rng));
  for (std::size_t i = 1; i < teams; ++i) {
    policies.push_back(perturb_policy(policies.front(), 15.0, rng));
  }
  return policies;
}

DiverseDesign make_session(const std::vector<Policy>& teams,
                           const WorkflowOptions& options) {
  DiverseDesign session(DecisionSet(), options);
  for (std::size_t i = 0; i < teams.size(); ++i) {
    session.submit("t" + std::to_string(i), teams[i]);
  }
  return session;
}

TEST(ParallelDeterminismTest, DirectNWayComparisonMatchesSerial) {
  const std::vector<Policy> teams = make_teams(6, 60, 7);
  const std::vector<Discrepancy> serial =
      make_session(teams, WorkflowOptions{}).compare();
  ASSERT_FALSE(serial.empty());
  for (const std::size_t width : kThreadWidths) {
    Executor pool(width);
    WorkflowOptions options;
    options.run.executor = &pool;
    options.fork_threshold = 1;  // force the forked walk even at tiny roots
    EXPECT_EQ(make_session(teams, options).compare(), serial)
        << "width " << width;
  }
}

TEST(ParallelDeterminismTest, CrossComparisonMatchesSerial) {
  const std::vector<Policy> teams = make_teams(6, 50, 11);
  const std::vector<PairwiseReport> serial =
      make_session(teams, WorkflowOptions{}).cross_compare();
  ASSERT_EQ(serial.size(), 6u * 5u / 2u);
  for (const std::size_t width : kThreadWidths) {
    Executor pool(width);
    WorkflowOptions options;
    options.run.executor = &pool;
    EXPECT_EQ(make_session(teams, options).cross_compare(), serial)
        << "width " << width;
  }
}

TEST(ParallelDeterminismTest, PairwisePipelineMatchesSerial) {
  const std::vector<Policy> teams = make_teams(2, 80, 23);
  const std::vector<Discrepancy> serial =
      discrepancies(teams[0], teams[1]);
  for (const std::size_t width : kThreadWidths) {
    Executor pool(width);
    CompareOptions options;
    options.run.executor = &pool;
    options.fork_threshold = 1;
    EXPECT_EQ(discrepancies(teams[0], teams[1], options), serial)
        << "width " << width;
  }
}

TEST(ParallelDeterminismTest, ClassifyBatchMatchesSerialLoop) {
  const std::vector<Policy> teams = make_teams(1, 80, 42);
  const Policy& policy = teams.front();
  Rng rng(99);
  const std::vector<Packet> trace = synth_trace(policy, 4000, rng);

  const Classifier serial_classifier = Classifier::compile(policy);
  std::vector<Decision> expected;
  expected.reserve(trace.size());
  for (const Packet& p : trace) {
    expected.push_back(serial_classifier.classify(p));
  }
  // Serial batch (no executor configured) equals the classify loop.
  EXPECT_EQ(serial_classifier.classify_batch(trace), expected);

  for (const std::size_t width : kThreadWidths) {
    Executor pool(width);
    CompileOptions options;
    options.run.executor = &pool;
    options.batch_grain = 128;  // several chunks per worker
    const Classifier c = Classifier::compile(policy, options);
    EXPECT_EQ(c.classify_batch(trace), expected) << "width " << width;
    // Per-call RunOptions override on a serially-compiled classifier.
    RunOptions per_call;
    per_call.executor = &pool;
    EXPECT_EQ(serial_classifier.classify_batch(trace, per_call), expected)
        << "width " << width;
  }
}

TEST(ParallelDeterminismTest, EvaluateTraceSpanShimsAgree) {
  const std::vector<Policy> teams = make_teams(1, 40, 5);
  const Policy& policy = teams.front();
  Rng rng(6);
  const std::vector<Packet> trace = synth_trace(policy, 1000, rng);
  const TraceStats from_vector = evaluate_trace(policy, trace);
  const TraceStats from_span =
      evaluate_trace(policy, std::span<const Packet>(trace));
  EXPECT_EQ(from_vector.rule_hits, from_span.rule_hits);
  EXPECT_EQ(from_vector.decision_hits, from_span.decision_hits);
  EXPECT_EQ(from_vector.packets, from_span.packets);
}

}  // namespace
}  // namespace dfw
