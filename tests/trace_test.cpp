// Trace-evaluation tests: counter bookkeeping, agreement between dynamic
// coverage and static dead-rule analysis, and the biased generator's
// exercise guarantees.

#include <gtest/gtest.h>

#include "analysis/anomaly.hpp"
#include "engine/trace.hpp"
#include "test_util.hpp"

namespace dfw {
namespace {

using test::tiny2;
using test::tiny3;

Rule rule(const Schema& s, Interval x, Interval y, Decision d) {
  return Rule(s, {IntervalSet(x), IntervalSet(y)}, d);
}

TEST(Trace, CountersSumToTraceLength) {
  std::mt19937_64 rng(151);
  const Policy p = test::random_policy(tiny3(), 5, rng);
  Rng trace_rng(152);
  const std::vector<Packet> trace = synth_trace(p, 500, trace_rng);
  const TraceStats stats = evaluate_trace(p, trace);
  EXPECT_EQ(stats.packets, 500u);
  std::uint64_t rule_total = 0;
  for (const std::uint64_t h : stats.rule_hits) {
    rule_total += h;
  }
  EXPECT_EQ(rule_total, 500u);
  std::uint64_t decision_total = 0;
  for (const std::uint64_t h : stats.decision_hits) {
    decision_total += h;
  }
  EXPECT_EQ(decision_total, 500u);
}

TEST(Trace, HitsMatchFirstMatchExactly) {
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept),
                     rule(s, Interval(4, 7), Interval(0, 3), kDiscard),
                     Rule::catch_all(s, kAccept)});
  const std::vector<Packet> trace = {{0, 0}, {2, 5}, {5, 1}, {6, 6}, {7, 0}};
  const TraceStats stats = evaluate_trace(p, trace);
  EXPECT_EQ(stats.rule_hits[0], 2u);  // {0,0}, {2,5}
  EXPECT_EQ(stats.rule_hits[1], 2u);  // {5,1}, {7,0}
  EXPECT_EQ(stats.rule_hits[2], 1u);  // {6,6}
  EXPECT_EQ(stats.decision_hits[kAccept], 3u);
  EXPECT_EQ(stats.decision_hits[kDiscard], 2u);
}

TEST(Trace, DeadRulesAreNeverExercised) {
  std::mt19937_64 rng(153);
  for (int trial = 0; trial < 10; ++trial) {
    const Policy p = test::random_policy(tiny3(), 6, rng);
    Rng trace_rng(1000 + static_cast<std::uint64_t>(trial));
    const TraceStats stats =
        evaluate_trace(p, synth_trace(p, 2000, trace_rng));
    const std::vector<std::size_t> dead = dead_rules(p);
    // Every statically dead rule must have zero dynamic hits.
    for (const std::size_t i : dead) {
      EXPECT_EQ(stats.rule_hits[i], 0u) << "dead rule " << i << " was hit";
    }
    // unexercised() is a superset of the dead set.
    const std::vector<std::size_t> cold = stats.unexercised();
    for (const std::size_t i : dead) {
      EXPECT_NE(std::find(cold.begin(), cold.end(), i), cold.end());
    }
  }
}

TEST(Trace, BiasedGeneratorExercisesLiveRules) {
  // On an exhaustive trace budget over a tiny universe, the biased
  // generator reaches every live rule.
  const Schema s = tiny2();
  const Policy p(s, {rule(s, Interval(0, 1), Interval(0, 1), kDiscard),
                     rule(s, Interval(6, 7), Interval(6, 7), kDiscard),
                     Rule::catch_all(s, kAccept)});
  Rng rng(154);
  const TraceStats stats = evaluate_trace(p, synth_trace(p, 3000, rng));
  EXPECT_TRUE(stats.unexercised().empty());
}

TEST(Trace, RandomFractionValidation) {
  const Schema s = tiny2();
  const Policy p(s, {Rule::catch_all(s, kAccept)});
  Rng rng(155);
  EXPECT_THROW(synth_trace(p, 10, rng, -0.1), std::invalid_argument);
  EXPECT_THROW(synth_trace(p, 10, rng, 1.5), std::invalid_argument);
  EXPECT_EQ(synth_trace(p, 10, rng, 1.0).size(), 10u);
  EXPECT_EQ(synth_trace(p, 0, rng).size(), 0u);
}

TEST(Trace, FallThroughIsAnError) {
  const Schema s = tiny2();
  const Policy partial(
      s, {rule(s, Interval(0, 3), Interval(0, 7), kAccept)});
  const std::vector<Packet> stray = {{5, 5}};
  EXPECT_THROW(evaluate_trace(partial, stray), std::logic_error);
}

}  // namespace
}  // namespace dfw
