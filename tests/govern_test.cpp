// Governance tests: budgets, deadlines, and cancellation must cut the
// worst-case exponential pipelines short with a structured, partial
// result — and must be completely invisible (identical output) when
// disabled. The adversarial policy geometry is the one from
// bench/bench_worstcase.cpp: staggered pairwise-straddling intervals on
// every field, the worst case of Theorem 1's proof.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <thread>
#include <utility>
#include <vector>

#include "diverse/workflow.hpp"
#include "fdd/compare.hpp"
#include "fdd/construct.hpp"
#include "gen/generate.hpp"
#include "rt/govern.hpp"

namespace dfw {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

Schema worst_schema() {
  return Schema({{"a", Interval(0, 4095), FieldKind::kInteger},
                 {"b", Interval(0, 4095), FieldKind::kInteger},
                 {"c", Interval(0, 4095), FieldKind::kInteger}});
}

// Staggered intervals: rule i spans [i*s, 2048 + i*s], so every pair of
// rules straddles on every field. `flip` inverts the decisions, giving
// two policies that disagree almost everywhere.
Policy adversarial(std::size_t n, bool flip) {
  const Schema schema = worst_schema();
  std::vector<Rule> rules;
  const Value step = 2048 / static_cast<Value>(n + 1);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const Value lo = static_cast<Value>(i + 1) * step;
    const Interval iv(lo, lo + 2048);
    const bool accept = (i % 2 == 0) != flip;
    rules.emplace_back(schema,
                       std::vector<IntervalSet>{IntervalSet(iv),
                                                IntervalSet(iv),
                                                IntervalSet(iv)},
                       accept ? kAccept : kDiscard);
  }
  rules.push_back(Rule::catch_all(schema, flip ? kAccept : kDiscard));
  return Policy(schema, std::move(rules));
}

Policy constant_policy(Decision d) {
  const Schema schema = worst_schema();
  return Policy(schema, {Rule::catch_all(schema, d)});
}

// ---------------------------------------------------------------------------
// The headline acceptance criterion: a 10k-node budget turns the
// worst-case exponential pair into a fast, clearly-marked partial result.

TEST(GovernTest, WorstCasePairUnderNodeBudgetFailsFastWithPartialReport) {
  // With hash-consing the symmetric adversarial geometry costs ~(2n-1)^2
  // arena nodes (the tree path pays the full (2n-1)^3 bound), so n = 128
  // wants ~65k nodes on both paths — far past the 10k budget.
  const Policy a = adversarial(128, false);
  const Policy b = adversarial(128, true);
  for (const bool use_arena : {true, false}) {
    RunContext ctx = RunContext::with_budgets({.max_nodes = 10000});
    CompareOptions options;
    options.use_arena = use_arena;
    options.run.context = &ctx;
    const auto start = Clock::now();
    const CompareOutcome outcome = discrepancies_governed(a, b, options);
    const double elapsed = ms_since(start);
    EXPECT_FALSE(outcome.complete) << "use_arena=" << use_arena;
    EXPECT_EQ(outcome.status, ErrorCode::kNodeBudgetExceeded);
    EXPECT_FALSE(outcome.message.empty());
    EXPECT_LT(elapsed, 1000.0) << "use_arena=" << use_arena;
    EXPECT_GT(ctx.nodes_charged(), 10000u);
  }
}

TEST(GovernTest, LabelBudgetAlsoCutsTheArenaPipeline) {
  const Policy a = adversarial(24, false);
  const Policy b = adversarial(24, true);
  RunContext ctx = RunContext::with_budgets({.max_label_bytes = 4096});
  CompareOptions options;
  options.run.context = &ctx;
  const CompareOutcome outcome = discrepancies_governed(a, b, options);
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.status, ErrorCode::kLabelBudgetExceeded);
}

// ---------------------------------------------------------------------------
// Governance off (null context or no budgets) must be invisible.

TEST(GovernTest, NoBudgetsProducesIdenticalOutputOnBothPaths) {
  const Policy a = adversarial(8, false);
  const Policy b = adversarial(8, true);
  for (const bool use_arena : {true, false}) {
    CompareOptions plain;
    plain.use_arena = use_arena;
    const std::vector<Discrepancy> expected = discrepancies(a, b, plain);
    ASSERT_FALSE(expected.empty());

    RunContext ctx;  // no budgets, no deadline, no cancellation
    CompareOptions governed = plain;
    governed.run.context = &ctx;
    const CompareOutcome outcome = discrepancies_governed(a, b, governed);
    EXPECT_TRUE(outcome.complete) << "use_arena=" << use_arena;
    EXPECT_EQ(outcome.status, ErrorCode::kOk);
    EXPECT_TRUE(outcome.message.empty());
    EXPECT_EQ(outcome.discrepancies, expected) << "use_arena=" << use_arena;
  }
}

TEST(GovernTest, GeneratedPolicyIdenticalWithIdleContext) {
  const Fdd fdd = build_reduced_fdd(adversarial(8, false));
  const Policy plain = generate_policy(fdd);
  RunContext ctx;
  GenerateOptions governed_options;
  governed_options.run.context = &ctx;
  const Policy governed = generate_policy(fdd, governed_options);
  EXPECT_EQ(plain.rules(), governed.rules());
  EXPECT_GT(ctx.rules_charged(), 0u);
}

TEST(GovernTest, RuleBudgetBoundsGeneration) {
  const Fdd fdd = build_reduced_fdd(adversarial(8, false));
  const std::size_t full = generate_policy(fdd).size();
  ASSERT_GT(full, 2u);
  RunContext ctx = RunContext::with_budgets({.max_rules = 2});
  GenerateOptions capped;
  capped.run.context = &ctx;
  try {
    (void)generate_policy(fdd, capped);
    FAIL() << "expected rule budget breach";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRuleBudgetExceeded);
  }
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines.

TEST(GovernTest, PreCancelledContextYieldsCancelledOutcome) {
  CancelSource source;
  source.cancel();
  RunContext::Config config;
  config.cancel = source.token();
  RunContext ctx(std::move(config));
  CompareOptions options;
  options.run.context = &ctx;
  const CompareOutcome outcome =
      discrepancies_governed(adversarial(6, false), adversarial(6, true),
                             options);
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.status, ErrorCode::kCancelled);
  EXPECT_TRUE(outcome.discrepancies.empty());
}

TEST(GovernTest, ExpiredDeadlineYieldsDeadlineExceeded) {
  RunContext ctx = RunContext::after(std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  CompareOptions options;
  options.run.context = &ctx;
  const CompareOutcome outcome =
      discrepancies_governed(adversarial(6, false), adversarial(6, true),
                             options);
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.status, ErrorCode::kDeadlineExceeded);
}

TEST(GovernTest, CancellationCutsALongComparisonShort) {
  // Find a pair slow enough to measure against; on very fast machines the
  // latency claim is unmeasurable and the test skips.
  Policy a = constant_policy(kAccept);
  Policy b = constant_policy(kDiscard);
  double baseline = 0.0;
  for (const std::size_t n : {64u, 128u, 192u}) {
    a = adversarial(n, false);
    b = adversarial(n, true);
    const auto start = Clock::now();
    (void)discrepancies(a, b);
    baseline = ms_since(start);
    if (baseline >= 300.0) {
      break;
    }
  }
  if (baseline < 300.0) {
    GTEST_SKIP() << "machine too fast to measure cancellation latency";
  }

  CancelSource source;
  RunContext::Config config;
  config.cancel = source.token();
  RunContext ctx(std::move(config));
  CompareOptions options;
  options.run.context = &ctx;
  const auto start = Clock::now();
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    source.cancel();
  });
  const CompareOutcome outcome = discrepancies_governed(a, b, options);
  const double governed = ms_since(start);
  canceller.join();
  EXPECT_FALSE(outcome.complete);
  EXPECT_EQ(outcome.status, ErrorCode::kCancelled);
  // The run must end well before the ungoverned baseline: cancellation
  // latency is one checkpoint grain plus an unwind, not a full pipeline.
  EXPECT_LT(governed, baseline);
}

// ---------------------------------------------------------------------------
// Cross comparison: one shared budget, per-pair status.

TEST(GovernTest, CrossCompareReportsPerPairStatusUnderSharedBudget) {
  const Policy trivial_a = constant_policy(kAccept);
  const Policy trivial_b = constant_policy(kDiscard);
  const Policy heavy = adversarial(16, false);

  // Probe 1: node cost of submitting all three teams (construction runs
  // once per submit for validation). Deterministic, so the real run
  // charges exactly the same.
  RunContext submit_probe;
  WorkflowOptions probe_options;
  probe_options.comparison = ComparisonMode::kCross;
  probe_options.run.context = &submit_probe;
  DiverseDesign probe(default_decisions(), probe_options);
  probe.submit("a", trivial_a);
  probe.submit("b", trivial_b);
  probe.submit("heavy", heavy);
  const std::size_t submit_cost = submit_probe.nodes_charged();

  // Probe 2: node cost of the first (trivial) pair's comparison.
  RunContext pair_probe;
  CompareOptions pair_options;
  pair_options.run.context = &pair_probe;
  const CompareOutcome first_pair =
      discrepancies_governed(trivial_a, trivial_b, pair_options);
  ASSERT_TRUE(first_pair.complete);
  const std::size_t pair_cost = pair_probe.nodes_charged();

  // Budget: submissions + the trivial pair + a margin far below the
  // adversarial pair's construction cost. Pair (0,1) completes, pair
  // (0,2) breaches, pair (1,2) is skipped by the sticky abort.
  RunContext ctx = RunContext::with_budgets(
      {.max_nodes = submit_cost + pair_cost + 200});
  WorkflowOptions options;
  options.comparison = ComparisonMode::kCross;
  options.run.context = &ctx;
  DiverseDesign session(default_decisions(), options);
  session.submit("a", trivial_a);
  session.submit("b", trivial_b);
  session.submit("heavy", heavy);

  const std::vector<PairwiseReport> reports = session.cross_compare();
  ASSERT_EQ(reports.size(), 3u);

  EXPECT_TRUE(reports[0].complete);
  EXPECT_EQ(reports[0].status, ErrorCode::kOk);
  EXPECT_FALSE(reports[0].discrepancies.empty());

  EXPECT_FALSE(reports[1].complete);
  EXPECT_EQ(reports[1].status, ErrorCode::kNodeBudgetExceeded);

  EXPECT_FALSE(reports[2].complete);
  EXPECT_EQ(reports[2].status, ErrorCode::kNodeBudgetExceeded);
  EXPECT_TRUE(reports[2].discrepancies.empty())
      << "a skipped pair reports no findings";
}

TEST(GovernTest, GovernedDirectCompareMatchesUngovernedWhenIdle) {
  WorkflowOptions governed_options;
  RunContext ctx;
  governed_options.run.context = &ctx;
  DiverseDesign governed(default_decisions(), governed_options);
  DiverseDesign plain(default_decisions());
  for (DiverseDesign* session : {&governed, &plain}) {
    session->submit("a", adversarial(6, false));
    session->submit("b", adversarial(6, true));
  }
  const CompareOutcome outcome = governed.compare_governed();
  EXPECT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.status, ErrorCode::kOk);
  EXPECT_EQ(outcome.discrepancies, plain.compare());
}

TEST(GovernTest, SubmissionBreachPropagatesAsStructuredError) {
  // Submission validates by constructing the team FDD, so a hostile team
  // firewall is rejected at the session boundary — the plain entry points
  // let the structured error propagate rather than report partially.
  RunContext ctx = RunContext::with_budgets({.max_nodes = 2000});
  WorkflowOptions options;
  options.run.context = &ctx;
  DiverseDesign session(default_decisions(), options);
  EXPECT_THROW(session.submit("a", adversarial(32, false)), Error);
  EXPECT_TRUE(ctx.aborted());
  EXPECT_EQ(ctx.abort_code(), ErrorCode::kNodeBudgetExceeded);
}

}  // namespace
}  // namespace dfw
