// Cisco extended-ACL frontend tests: address forms, wildcard masks, port
// operators (including neq's two-interval result), implicit deny, and
// cross-vendor comparison through the pipeline.

#include <gtest/gtest.h>

#include "adapters/cisco.hpp"
#include "adapters/iptables.hpp"
#include "fdd/compare.hpp"
#include "net/ipv4.hpp"

namespace dfw {
namespace {

constexpr std::string_view kConfig =
    "hostname edge-router\n"
    "!\n"
    "access-list 101 remark --- mail server ---\n"
    "access-list 101 permit tcp any host 192.168.0.1 eq smtp\n"
    "access-list 101 deny ip 224.168.0.0 0.0.255.255 any\n"
    "access-list 101 permit tcp 10.0.0.0 0.255.255.255 any range 80 443\n"
    "access-list 101 permit udp any eq domain any\n"
    "access-list 101 deny tcp any any neq 22 log\n"
    "access-list 102 permit ip any any\n"
    "!\n"
    "interface GigabitEthernet0/0\n"
    " ip access-group 101 in\n";

TEST(Cisco, ParsesOnlyTheRequestedAcl) {
  const Policy p = parse_cisco_acl(kConfig, "101");
  // 5 rules (remark skipped) + implicit deny.
  ASSERT_EQ(p.size(), 6u);
  EXPECT_TRUE(p.last_rule_is_catch_all());
  EXPECT_EQ(p.rules().back().decision(), kDiscard);
  const Policy other = parse_cisco_acl(kConfig, "102");
  ASSERT_EQ(other.size(), 2u);
}

TEST(Cisco, AddressForms) {
  const Policy p = parse_cisco_acl(kConfig, "101");
  // host form.
  EXPECT_EQ(p.rule(0).conjunct(1),
            IntervalSet(Interval::point(*parse_ipv4("192.168.0.1"))));
  // wildcard-mask form: 224.168.0.0 0.0.255.255 == 224.168.0.0/16.
  EXPECT_EQ(p.rule(1).conjunct(0),
            IntervalSet(Interval(*parse_ipv4("224.168.0.0"),
                                 *parse_ipv4("224.168.255.255"))));
  // any form.
  EXPECT_EQ(p.rule(0).conjunct(0), IntervalSet(Interval(0, UINT32_MAX)));
}

TEST(Cisco, PortOperators) {
  const Policy p = parse_cisco_acl(kConfig, "101");
  EXPECT_EQ(p.rule(0).conjunct(3), IntervalSet(Interval::point(25)));  // smtp
  EXPECT_EQ(p.rule(2).conjunct(3), IntervalSet(Interval(80, 443)));
  EXPECT_EQ(p.rule(3).conjunct(2), IntervalSet(Interval::point(53)));
  // neq 22: the complement split into two runs.
  IntervalSet not_ssh;
  not_ssh.add(Interval(0, 21));
  not_ssh.add(Interval(23, 65535));
  EXPECT_EQ(p.rule(4).conjunct(3), not_ssh);
}

TEST(Cisco, LtGtOperators) {
  const Policy p = parse_cisco_acl(
      "access-list 7 permit tcp any any lt 1024\n"
      "access-list 7 deny tcp any gt 50000 any\n",
      "7");
  EXPECT_EQ(p.rule(0).conjunct(3), IntervalSet(Interval(0, 1023)));
  EXPECT_EQ(p.rule(1).conjunct(2), IntervalSet(Interval(50001, 65535)));
}

TEST(Cisco, ProtocolHandling) {
  const Policy p = parse_cisco_acl(
      "access-list 9 permit icmp any any\n"
      "access-list 9 permit 89 any any\n"
      "access-list 9 permit ip any any\n",
      "9");
  EXPECT_EQ(p.rule(0).conjunct(4), IntervalSet(Interval::point(1)));
  EXPECT_EQ(p.rule(1).conjunct(4), IntervalSet(Interval::point(89)));
  EXPECT_EQ(p.rule(2).conjunct(4), IntervalSet(Interval(0, 255)));
}

TEST(Cisco, FirstMatchSemantics) {
  const Policy p = parse_cisco_acl(kConfig, "101");
  // Mail from the malicious net: the smtp permit precedes the deny.
  const Packet mail = {*parse_ipv4("224.168.1.1"),
                       *parse_ipv4("192.168.0.1"), 40000, 25, 6};
  EXPECT_EQ(p.evaluate(mail), kAccept);
  // Other malicious traffic hits the deny.
  const Packet other = {*parse_ipv4("224.168.1.1"), *parse_ipv4("1.2.3.4"),
                        40000, 80, 6};
  EXPECT_EQ(p.evaluate(other), kDiscard);
  // Unmatched traffic hits the implicit deny.
  const Packet stray = {*parse_ipv4("8.8.8.8"), *parse_ipv4("9.9.9.9"),
                        1000, 22, 6};
  EXPECT_EQ(p.evaluate(stray), kDiscard);
}

TEST(Cisco, RejectsUnsupportedSyntax) {
  EXPECT_THROW(parse_cisco_acl("access-list 5 permit tcp any any eq 80 80\n",
                               "5"),
               ParseError);
  EXPECT_THROW(
      parse_cisco_acl("access-list 5 allow tcp any any\n", "5"),
      ParseError);
  // Non-contiguous wildcard mask.
  EXPECT_THROW(parse_cisco_acl(
                   "access-list 5 permit ip 10.0.0.0 0.255.0.255 any\n", "5"),
               ParseError);
  // Address bits inside the wildcard.
  EXPECT_THROW(parse_cisco_acl(
                   "access-list 5 permit ip 10.0.0.7 0.0.0.255 any\n", "5"),
               ParseError);
  // Port operator on a non-port protocol.
  EXPECT_THROW(parse_cisco_acl(
                   "access-list 5 permit icmp any any eq 80\n", "5"),
               ParseError);
  // Inverted range.
  EXPECT_THROW(parse_cisco_acl(
                   "access-list 5 permit tcp any any range 90 80\n", "5"),
               ParseError);
  // Missing ACL entirely.
  EXPECT_THROW(parse_cisco_acl("hostname r1\n", "5"), ParseError);
}

TEST(Cisco, CrossVendorComparisonThroughPipeline) {
  // The same intent written for a router and for a Linux box; the
  // comparison pipeline verifies the translation is faithful.
  const Policy cisco = parse_cisco_acl(
      "access-list 110 permit tcp any host 192.168.0.1 eq smtp\n"
      "access-list 110 deny ip 224.168.0.0 0.0.255.255 any\n",
      "110");
  const Policy linux = parse_iptables_save(
      ":INPUT DROP [0:0]\n"
      "-A INPUT -d 192.168.0.1/32 -p tcp --dport 25 -j ACCEPT\n"
      "-A INPUT -s 224.168.0.0/16 -j DROP\n",
      "INPUT");
  EXPECT_TRUE(equivalent(cisco, linux));
  // And a deliberately different port shows up as a discrepancy.
  const Policy linux_typo = parse_iptables_save(
      ":INPUT DROP [0:0]\n"
      "-A INPUT -d 192.168.0.1/32 -p tcp --dport 26 -j ACCEPT\n"
      "-A INPUT -s 224.168.0.0/16 -j DROP\n",
      "INPUT");
  const std::vector<Discrepancy> diffs = discrepancies(cisco, linux_typo);
  EXPECT_FALSE(diffs.empty());
  for (const Discrepancy& d : diffs) {
    EXPECT_TRUE(d.conjuncts[3].contains(25) || d.conjuncts[3].contains(26));
  }
}

}  // namespace
}  // namespace dfw
