// ROBDD engine tests: reduction rules, hash-consing canonicity, Boolean
// algebra against truth tables, and the counting operations the baseline
// benchmark relies on.

#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"

namespace dfw {
namespace {

// Small expression tree for randomized truth-table comparison.
struct Expr {
  enum Kind { kVar, kAnd, kOr, kXor, kNot } kind;
  std::size_t var = 0;
  std::unique_ptr<Expr> a;
  std::unique_ptr<Expr> b;

  bool eval(const std::vector<bool>& assignment) const {
    switch (kind) {
      case kVar:
        return assignment[var];
      case kAnd:
        return a->eval(assignment) && b->eval(assignment);
      case kOr:
        return a->eval(assignment) || b->eval(assignment);
      case kXor:
        return a->eval(assignment) != b->eval(assignment);
      case kNot:
        return !a->eval(assignment);
    }
    return false;
  }
};

std::unique_ptr<Expr> random_expr(std::mt19937_64& rng, std::size_t vars,
                                  int depth) {
  std::uniform_int_distribution<int> kind_pick(0, depth <= 0 ? 0 : 4);
  std::uniform_int_distribution<std::size_t> var_pick(0, vars - 1);
  auto e = std::make_unique<Expr>();
  switch (kind_pick(rng)) {
    case 0:
      e->kind = Expr::kVar;
      e->var = var_pick(rng);
      return e;
    case 1:
      e->kind = Expr::kAnd;
      break;
    case 2:
      e->kind = Expr::kOr;
      break;
    case 3:
      e->kind = Expr::kXor;
      break;
    default:
      e->kind = Expr::kNot;
      e->a = random_expr(rng, vars, depth - 1);
      return e;
  }
  e->a = random_expr(rng, vars, depth - 1);
  e->b = random_expr(rng, vars, depth - 1);
  return e;
}

BddRef build(BddManager& mgr, const Expr& e) {
  switch (e.kind) {
    case Expr::kVar:
      return mgr.var(e.var);
    case Expr::kAnd:
      return mgr.land(build(mgr, *e.a), build(mgr, *e.b));
    case Expr::kOr:
      return mgr.lor(build(mgr, *e.a), build(mgr, *e.b));
    case Expr::kXor:
      return mgr.lxor(build(mgr, *e.a), build(mgr, *e.b));
    case Expr::kNot:
      return mgr.lnot(build(mgr, *e.a));
  }
  return mgr.zero();
}

// Semantic evaluation of a BDD by restriction: walk with ite against
// constants is overkill; instead exploit canonicity — f restricted to an
// assignment equals one() iff f evaluates true. Restriction via ite with
// literal conjunctions:
bool bdd_eval(BddManager& mgr, BddRef f, const std::vector<bool>& assign) {
  // cube = conjunction of literals; f * cube != 0 iff f(assign) = 1.
  BddRef cube = mgr.one();
  for (std::size_t v = 0; v < assign.size(); ++v) {
    const BddRef literal =
        assign[v] ? mgr.var(v) : mgr.lnot(mgr.var(v));
    cube = mgr.land(cube, literal);
  }
  return mgr.land(f, cube) != mgr.zero();
}

TEST(Bdd, TerminalsAndVar) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.zero(), 0u);
  EXPECT_EQ(mgr.one(), 1u);
  const BddRef x0 = mgr.var(0);
  EXPECT_NE(x0, mgr.zero());
  EXPECT_NE(x0, mgr.one());
  EXPECT_EQ(mgr.var(0), x0);  // hash-consed
  EXPECT_THROW(mgr.var(3), std::out_of_range);
}

TEST(Bdd, BasicIdentities) {
  BddManager mgr(2);
  const BddRef x = mgr.var(0);
  const BddRef y = mgr.var(1);
  EXPECT_EQ(mgr.land(x, mgr.one()), x);
  EXPECT_EQ(mgr.land(x, mgr.zero()), mgr.zero());
  EXPECT_EQ(mgr.lor(x, mgr.zero()), x);
  EXPECT_EQ(mgr.lor(x, mgr.one()), mgr.one());
  EXPECT_EQ(mgr.lxor(x, x), mgr.zero());
  EXPECT_EQ(mgr.lnot(mgr.lnot(x)), x);
  EXPECT_EQ(mgr.land(x, y), mgr.land(y, x));  // canonical form
}

TEST(Bdd, CanonicityEqualFunctionsShareNodes) {
  BddManager mgr(3);
  const BddRef a = mgr.lor(mgr.var(0), mgr.var(1));
  const BddRef b =
      mgr.lnot(mgr.land(mgr.lnot(mgr.var(0)), mgr.lnot(mgr.var(1))));
  EXPECT_EQ(a, b);  // De Morgan, same canonical node
}

TEST(Bdd, RandomExpressionsMatchTruthTables) {
  std::mt19937_64 rng(2024);
  constexpr std::size_t kVars = 4;
  for (int trial = 0; trial < 60; ++trial) {
    BddManager mgr(kVars);
    const auto expr = random_expr(rng, kVars, 4);
    const BddRef f = build(mgr, *expr);
    for (unsigned mask = 0; mask < (1u << kVars); ++mask) {
      std::vector<bool> assign(kVars);
      for (std::size_t v = 0; v < kVars; ++v) {
        assign[v] = (mask >> v) & 1;
      }
      EXPECT_EQ(bdd_eval(mgr, f, assign), expr->eval(assign))
          << "trial " << trial << " mask " << mask;
    }
  }
}

TEST(Bdd, SatCountMatchesTruthTable) {
  std::mt19937_64 rng(2025);
  constexpr std::size_t kVars = 5;
  for (int trial = 0; trial < 40; ++trial) {
    BddManager mgr(kVars);
    const auto expr = random_expr(rng, kVars, 4);
    const BddRef f = build(mgr, *expr);
    std::uint64_t expected = 0;
    for (unsigned mask = 0; mask < (1u << kVars); ++mask) {
      std::vector<bool> assign(kVars);
      for (std::size_t v = 0; v < kVars; ++v) {
        assign[v] = (mask >> v) & 1;
      }
      expected += expr->eval(assign) ? 1 : 0;
    }
    EXPECT_EQ(mgr.sat_count(f), expected) << "trial " << trial;
  }
}

TEST(Bdd, SatCountTerminals) {
  BddManager mgr(4);
  EXPECT_EQ(mgr.sat_count(mgr.zero()), 0u);
  EXPECT_EQ(mgr.sat_count(mgr.one()), 16u);  // 2^4
  EXPECT_EQ(mgr.sat_count(mgr.var(0)), 8u);
}

TEST(Bdd, CubeCountCountsOnePaths) {
  BddManager mgr(3);
  // x0 XOR x1: BDD has two 1-paths.
  const BddRef f = mgr.lxor(mgr.var(0), mgr.var(1));
  EXPECT_EQ(mgr.cube_count(f), 2u);
  EXPECT_EQ(mgr.cube_count(mgr.zero()), 0u);
  EXPECT_EQ(mgr.cube_count(mgr.one()), 1u);
  // Single variable: one 1-path regardless of total variable count.
  EXPECT_EQ(mgr.cube_count(mgr.var(2)), 1u);
}

TEST(Bdd, ParityFunctionHasExponentialCubes) {
  // Parity is the classic cube-explosion function: 2^(n-1) one-paths.
  constexpr std::size_t kVars = 10;
  BddManager mgr(kVars);
  BddRef parity = mgr.zero();
  for (std::size_t v = 0; v < kVars; ++v) {
    parity = mgr.lxor(parity, mgr.var(v));
  }
  EXPECT_EQ(mgr.cube_count(parity), 1u << (kVars - 1));
  // Yet the BDD itself is linear in size.
  EXPECT_LT(mgr.node_count(), 200u);
}

}  // namespace
}  // namespace dfw
